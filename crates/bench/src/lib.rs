//! Shared harness utilities for the table/figure regeneration targets.
//!
//! Every binary and the `figures` bench read their simulation scale from
//! the environment so quick runs and paper-scale runs use one code path:
//!
//! * `NUCANET_MEASURED` — timed accesses per (benchmark, design, scheme)
//!   cell (default 4000).
//! * `NUCANET_WARMUP` — functional warm-up accesses (default 20000).
//! * `NUCANET_SETS` — active cache sets in the workload (default 256).
//! * `NUCANET_SEED` — workload seed (default 0xCAFE).
//! * `NUCANET_WORKERS` — sweep worker threads (default: all cores).
//!   Results are bit-identical for any value; see [`nucanet::sweep`].
//! * `NUCANET_BENCH_DIR` — where `BENCH_*.json` files land (default:
//!   the current directory).

use std::path::PathBuf;

use nucanet::experiments::ExperimentScale;
use nucanet::sweep::{render_json, SweepOutcome, SweepPoint, SweepRunner};

/// Reads the experiment scale from the environment (see crate docs).
pub fn scale_from_env() -> ExperimentScale {
    let get = |k: &str, d: u64| -> u64 {
        std::env::var(k)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(d)
    };
    ExperimentScale {
        warmup: get("NUCANET_WARMUP", 20_000) as usize,
        measured: get("NUCANET_MEASURED", 4_000) as usize,
        active_sets: get("NUCANET_SETS", 256) as u32,
        seed: get("NUCANET_SEED", 0xCAFE),
    }
}

/// Builds the sweep runner from the environment: `NUCANET_WORKERS`
/// worker threads, or every available core when unset (see crate docs).
pub fn runner_from_env() -> SweepRunner {
    match std::env::var("NUCANET_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) => SweepRunner::with_workers(n),
        None => SweepRunner::new(),
    }
}

/// Writes `BENCH_<name>.json` (schema `nucanet/sweep-v1`) into
/// `NUCANET_BENCH_DIR` (default: current directory) and returns the
/// path written.
pub fn write_bench_json(
    name: &str,
    runner: &SweepRunner,
    points: &[SweepPoint],
    outcomes: &[SweepOutcome],
) -> std::io::Result<PathBuf> {
    let dir = std::env::var("NUCANET_BENCH_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("."));
    let path = dir.join(format!("BENCH_{name}.json"));
    std::fs::write(&path, render_json(name, runner.workers(), points, outcomes))?;
    Ok(path)
}

/// Formats a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:5.1}", 100.0 * x)
}

/// Prints a horizontal rule sized for our tables.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_sane() {
        // (Environment-dependent only if the caller sets the variables;
        // the test environment does not.)
        let s = scale_from_env();
        assert!(s.measured > 0);
        assert!(s.warmup > 0);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.5), " 50.0");
        assert_eq!(pct(1.0), "100.0");
    }
}
