//! Shared harness utilities for the table/figure regeneration targets.
//!
//! Every binary and the `figures` bench read their simulation scale from
//! the environment so quick runs and paper-scale runs use one code path:
//!
//! * `NUCANET_MEASURED` — timed accesses per (benchmark, design, scheme)
//!   cell (default 4000).
//! * `NUCANET_WARMUP` — functional warm-up accesses (default 20000).
//! * `NUCANET_SETS` — active cache sets in the workload (default 256).
//! * `NUCANET_SEED` — workload seed (default 0xCAFE).

use nucanet::experiments::ExperimentScale;

/// Reads the experiment scale from the environment (see crate docs).
pub fn scale_from_env() -> ExperimentScale {
    let get = |k: &str, d: u64| -> u64 {
        std::env::var(k)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(d)
    };
    ExperimentScale {
        warmup: get("NUCANET_WARMUP", 20_000) as usize,
        measured: get("NUCANET_MEASURED", 4_000) as usize,
        active_sets: get("NUCANET_SETS", 256) as u32,
        seed: get("NUCANET_SEED", 0xCAFE),
    }
}

/// Formats a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:5.1}", 100.0 * x)
}

/// Prints a horizontal rule sized for our tables.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_sane() {
        // (Environment-dependent only if the caller sets the variables;
        // the test environment does not.)
        let s = scale_from_env();
        assert!(s.measured > 0);
        assert!(s.warmup > 0);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.5), " 50.0");
        assert_eq!(pct(1.0), "100.0");
    }
}
