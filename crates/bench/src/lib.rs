#![warn(missing_docs)]
//! Shared harness utilities for the table/figure regeneration targets.
//!
//! Every binary and the `figures` bench read their simulation scale from
//! the environment so quick runs and paper-scale runs use one code path:
//!
//! * `NUCANET_MEASURED` — timed accesses per (benchmark, design, scheme)
//!   cell (default 4000).
//! * `NUCANET_WARMUP` — functional warm-up accesses (default 20000).
//! * `NUCANET_SETS` — active cache sets in the workload (default 256).
//! * `NUCANET_SEED` — workload seed (default 0xCAFE).
//! * `NUCANET_WORKERS` — sweep worker threads (default: all cores).
//!   Results are bit-identical for any value; see [`nucanet::sweep`].
//! * `NUCANET_SIM_THREADS` — cycle-kernel threads inside each simulated
//!   network (default 1: the serial kernel; 0 auto-detects the core
//!   count). Bit-identical for any value; the sweep runner budgets
//!   this against `NUCANET_WORKERS` so the two levels of parallelism
//!   never oversubscribe the host.
//! * `NUCANET_FAULTS` — random link faults injected per sweep point
//!   (default 0; `sweep` binary only).
//! * `NUCANET_FAULT_REPAIR` — cycles after which each injected fault is
//!   repaired (default: never — faults are permanent).
//! * `NUCANET_CHECK` — non-zero enables the network's runtime invariant
//!   checker on every point (default 0: the checker audits each cycle
//!   and would distort throughput numbers; CI smoke runs set it).
//! * `NUCANET_STRATEGY` — multicast replication strategy (`hybrid`,
//!   `tree`, or `path`; default: the paper's hybrid). Applies to every
//!   sweep point and to the perf harness's router parameters, so one
//!   variable re-runs any figure or timing under an alternative
//!   strategy. Delivered results are strategy-invariant (same packets
//!   reach the same endpoints); latencies and replication counts move.
//! * `NUCANET_BENCH_DIR` — where `BENCH_*.json` files land (default:
//!   the current directory).
//!
//! Numeric variables accept decimal or `0x`-prefixed hex. A malformed
//! value aborts the run with a clear message instead of silently falling
//! back to the default (a typo in `NUCANET_MEASURED` must not quietly
//! produce a tiny run that looks like a paper-scale one).

pub mod perf;

use std::path::PathBuf;

use nucanet::experiments::ExperimentScale;
use nucanet::sweep::{
    render_json_results, write_atomically, PointFailure, SweepOutcome, SweepPoint, SweepRunner,
};
use nucanet::FaultConfig;
use nucanet_noc::MulticastStrategy;

/// Parses a numeric environment value: decimal, or hex with a `0x`/`0X`
/// prefix. Returns a message naming the offending value on failure.
pub fn parse_env_u64(value: &str) -> Result<u64, String> {
    let v = value.trim();
    let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => v.parse(),
    };
    parsed.map_err(|_| format!("'{value}' is not an unsigned integer (decimal or 0x-hex)"))
}

fn env_u64(key: &str, default: u64) -> u64 {
    match std::env::var(key) {
        Err(_) => default,
        Ok(v) => match parse_env_u64(&v) {
            Ok(n) => n,
            Err(e) => panic!("bad {key}: {e}"),
        },
    }
}

/// Reads the experiment scale from the environment (see crate docs).
///
/// # Panics
///
/// Panics with a clear message if a set variable is not a valid decimal
/// or `0x`-hex unsigned integer — malformed values are rejected, never
/// silently replaced by the default.
#[must_use]
pub fn scale_from_env() -> ExperimentScale {
    ExperimentScale {
        warmup: env_u64("NUCANET_WARMUP", 20_000) as usize,
        measured: env_u64("NUCANET_MEASURED", 4_000) as usize,
        active_sets: env_u64("NUCANET_SETS", 256) as u32,
        seed: env_u64("NUCANET_SEED", 0xCAFE),
    }
}

/// Builds the sweep runner from the environment: `NUCANET_WORKERS`
/// worker threads, or every available core when unset (see crate docs).
///
/// # Panics
///
/// Panics if `NUCANET_WORKERS` is set but malformed.
#[must_use]
pub fn runner_from_env() -> SweepRunner {
    match std::env::var("NUCANET_WORKERS") {
        Err(_) => SweepRunner::new(),
        Ok(v) => match parse_env_u64(&v) {
            Ok(n) => SweepRunner::with_workers(n as usize),
            Err(e) => panic!("bad NUCANET_WORKERS: {e}"),
        },
    }
}

/// Reads `NUCANET_SIM_THREADS` — the cycle-kernel thread count for each
/// simulated network (see crate docs). Defaults to 1 (serial kernel);
/// `0` asks the network to auto-detect the host's core count. Results
/// are bit-identical for any value.
///
/// # Panics
///
/// Panics if `NUCANET_SIM_THREADS` is set but malformed.
#[must_use]
pub fn sim_threads_from_env() -> u32 {
    env_u64("NUCANET_SIM_THREADS", 1) as u32
}

/// Applies [`sim_threads_from_env`] to a point list, so sweep binaries
/// pick up `NUCANET_SIM_THREADS` uniformly. Call after building the
/// points and before running them.
pub fn apply_env_sim_threads(points: &mut [SweepPoint]) {
    let threads = sim_threads_from_env();
    for p in points {
        std::sync::Arc::make_mut(&mut p.config).router.sim_threads = threads;
    }
}

/// Reads the fault-injection knobs from the environment: `NUCANET_FAULTS`
/// random link faults per sweep point, each repaired after
/// `NUCANET_FAULT_REPAIR` cycles (permanent when unset). Returns `None`
/// when no faults are requested. The fault seed is re-derived per sweep
/// point, so results stay bit-identical for any worker count.
///
/// # Panics
///
/// Panics if either variable is set but malformed.
#[must_use]
pub fn faults_from_env() -> Option<FaultConfig> {
    let count = env_u64("NUCANET_FAULTS", 0);
    if count == 0 {
        return None;
    }
    let repair = match env_u64("NUCANET_FAULT_REPAIR", 0) {
        0 => None,
        c => Some(c),
    };
    Some(FaultConfig::random(count as u32, (1, 1_000), repair))
}

/// Reads `NUCANET_STRATEGY` — the multicast replication strategy (see
/// crate docs). Returns `None` when unset, so callers can distinguish
/// "explicitly hybrid" from "defaulted".
///
/// # Panics
///
/// Panics if `NUCANET_STRATEGY` is set but names no known strategy.
#[must_use]
pub fn strategy_from_env() -> Option<MulticastStrategy> {
    match std::env::var("NUCANET_STRATEGY") {
        Err(_) => None,
        Ok(v) => match MulticastStrategy::parse(&v) {
            Some(s) => Some(s),
            None => panic!("bad NUCANET_STRATEGY: '{v}' is not hybrid|tree|path"),
        },
    }
}

/// Applies [`strategy_from_env`] to a point list, so sweep binaries
/// pick up `NUCANET_STRATEGY` uniformly. A no-op when the variable is
/// unset (points keep whatever strategy their config carries). Call
/// after building the points and before running them.
pub fn apply_env_strategy(points: &mut [SweepPoint]) {
    if let Some(s) = strategy_from_env() {
        for p in points {
            std::sync::Arc::make_mut(&mut p.config).router.strategy = s;
        }
    }
}

/// Applies `NUCANET_CHECK` to a point list: non-zero turns the runtime
/// invariant checker on for every point. Call after building the points
/// and before running them.
///
/// # Panics
///
/// Panics if `NUCANET_CHECK` is set but malformed.
pub fn apply_env_check(points: &mut [SweepPoint]) {
    if env_u64("NUCANET_CHECK", 0) != 0 {
        for p in points {
            std::sync::Arc::make_mut(&mut p.config).check_invariants = true;
        }
    }
}

/// Writes `BENCH_<name>.json` (schema `nucanet/sweep-v2`) into
/// `NUCANET_BENCH_DIR` (default: current directory) and returns the
/// path written. For all-successful runs; see
/// [`write_bench_json_results`] for fault-isolating sweeps. The write
/// is atomic (temp file + rename), so a crash mid-write never leaves a
/// truncated JSON behind.
///
/// # Errors
///
/// Propagates I/O errors from creating or renaming the temp file.
pub fn write_bench_json(
    name: &str,
    runner: &SweepRunner,
    points: &[SweepPoint],
    outcomes: &[SweepOutcome],
) -> std::io::Result<PathBuf> {
    let results: Vec<Result<SweepOutcome, PointFailure>> =
        outcomes.iter().cloned().map(Ok).collect();
    write_bench_json_results(name, runner, points, &results)
}

/// Like [`write_bench_json`] but for [`SweepRunner::try_run`] results:
/// failed points appear as structured `"error"` entries and flip the
/// document's `"degraded"` flag.
///
/// # Errors
///
/// Propagates I/O errors from creating or renaming the temp file.
pub fn write_bench_json_results(
    name: &str,
    runner: &SweepRunner,
    points: &[SweepPoint],
    results: &[Result<SweepOutcome, PointFailure>],
) -> std::io::Result<PathBuf> {
    let dir = std::env::var("NUCANET_BENCH_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("."));
    let path = dir.join(format!("BENCH_{name}.json"));
    write_atomically(
        &path,
        &render_json_results(name, runner.workers(), points, results),
    )?;
    Ok(path)
}

/// Formats a percentage with one decimal.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:5.1}", 100.0 * x)
}

/// Prints a horizontal rule sized for our tables.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_sane() {
        // (Environment-dependent only if the caller sets the variables;
        // the test environment does not.)
        let s = scale_from_env();
        assert!(s.measured > 0);
        assert!(s.warmup > 0);
    }

    #[test]
    fn env_numbers_parse_decimal_and_hex() {
        assert_eq!(parse_env_u64("4000"), Ok(4_000));
        assert_eq!(parse_env_u64(" 12 "), Ok(12));
        assert_eq!(parse_env_u64("0xCAFE"), Ok(0xCAFE));
        assert_eq!(parse_env_u64("0Xcafe"), Ok(0xCAFE));
        assert_eq!(parse_env_u64("0"), Ok(0));
    }

    #[test]
    fn env_numbers_reject_garbage() {
        for bad in ["", "40k", "4e3", "-1", "0x", "0xZZ", "40 00"] {
            let e = parse_env_u64(bad).unwrap_err();
            assert!(e.contains("not an unsigned integer"), "{bad}: {e}");
        }
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.5), " 50.0");
        assert_eq!(pct(1.0), "100.0");
    }
}
