//! Cross-strategy comparison: the same Design A / Multicast Fast-LRU
//! cells under every multicast replication strategy (hybrid, tree,
//! path), side by side.
//!
//! Delivered traffic is strategy-invariant — the same packets reach the
//! same endpoints — so hit rates match across rows and the interesting
//! columns are latency, IPC, and the replication count (how many flit
//! copies the network minted to serve the multicasts). Results land in
//! `BENCH_strategies.json` for the trajectory.

use nucanet::experiments::ExperimentScale;
use nucanet::sweep::SweepPoint;
use nucanet::{Design, Scheme};
use nucanet_bench::{
    apply_env_check, apply_env_sim_threads, rule, runner_from_env, scale_from_env,
    write_bench_json,
};
use nucanet_noc::ALL_STRATEGIES;
use nucanet_workload::BenchmarkProfile;

const BENCHES: [&str; 3] = ["gcc", "twolf", "art"];

fn points(scale: ExperimentScale) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for strategy in ALL_STRATEGIES {
        // One shared config per strategy, so the sweep runner's warm
        // path reuses arenas across the strategy's benchmarks.
        let mut cfg = Design::A.config(Scheme::MulticastFastLru);
        cfg.router.strategy = strategy;
        let cfg: std::sync::Arc<_> = cfg.into();
        for bench in BENCHES {
            points.push(SweepPoint {
                label: format!("{strategy}/{bench}").into(),
                config: cfg.clone(),
                profile: BenchmarkProfile::by_name(bench).expect("Table 2 benchmark"),
                scale,
            });
        }
    }
    points
}

fn main() {
    let scale = scale_from_env();
    let runner = runner_from_env();
    println!("Multicast strategy comparison — Design A, Multicast Fast-LRU");
    println!(
        "(scale: {} measured accesses, {} warm-up, {} workers)",
        scale.measured,
        scale.warmup,
        runner.workers()
    );
    rule(64);
    println!(
        "{:14} {:>8} {:>8} {:>8} {:>12}",
        "point", "avg", "hitrate", "ipc", "replications"
    );
    rule(64);
    let mut points = points(scale);
    apply_env_sim_threads(&mut points);
    apply_env_check(&mut points);
    let outcomes = runner.run(&points);
    for o in &outcomes {
        println!(
            "{:14} {:>8.1} {:>8.3} {:>8.3} {:>12}",
            o.label,
            o.metrics.avg_latency(),
            o.metrics.hit_rate(),
            o.ipc,
            o.metrics.net.replications
        );
    }
    rule(64);
    println!("\ndelivered work is identical per benchmark; latency and");
    println!("replication cost are what the strategies trade off.");
    match write_bench_json("strategies", &runner, &points, &outcomes) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write BENCH_strategies.json: {e}"),
    }
}
