//! Regenerates the paper's **tables**:
//!
//! * `table1` — system parameters (memory, router, wire delays, bank
//!   latencies) as produced by our timing models.
//! * `table2` — benchmark characterisation, with the derived
//!   accesses-per-instruction column recomputed and the synthetic
//!   generator's write mix cross-checked.
//! * `table3` — the six network designs.
//! * `table4` — area analysis (bank/router/link shares, L2 area, chip
//!   area) for Designs A, B, E, F.
//! * `census` — the §1/§4 link-utilisation analysis: fraction of mesh
//!   links never used by cache traffic and the minimal-link count.
//!
//! Run with a table name as argument, or `all`.

use nucanet::area::{table4, unused_area_mm2};
use nucanet::config::ALL_DESIGNS;
use nucanet::Scheme;
use nucanet_bench::{pct, rule, runner_from_env};
use nucanet_cache::AddressMap;
use nucanet_noc::{LinkCensus, NodeId, RoutingSpec, Topology};
use nucanet_timing::{BankModel, Technology, WireModel};
use nucanet_workload::{SynthConfig, TraceGenerator, ALL_BENCHMARKS};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    match which.as_str() {
        "table1" => table1(),
        "table2" => table2(),
        "table3" => table3(),
        "table4" => table4_print(),
        "census" => census(),
        "all" => {
            table1();
            println!();
            table2();
            println!();
            table3();
            println!();
            table4_print();
            println!();
            census();
        }
        other => {
            eprintln!("unknown table '{other}'; use table1|table2|table3|table4|census|all");
            std::process::exit(2);
        }
    }
}

fn table1() {
    let tech = Technology::hpca07_65nm();
    let wire = WireModel::new(&tech);
    println!("Table 1 — system parameters (regenerated from the models)");
    rule(64);
    println!("memory: block 64B; latency 130 cycles + 4 cycles per 8B");
    println!("router: 4-flit buffers, 4 VCs/PC, 128-bit flits, 1 cycle/stage");
    println!(
        "wire:   {:.1} ps/mm repeated global wire at {} GHz",
        wire.repeated_delay_ps_per_mm(),
        tech.clock_ghz
    );
    rule(64);
    println!(
        "{:>8} {:>10} {:>12} {:>16}",
        "bank", "wire", "tag match", "tag+replace"
    );
    for kb in [64u32, 128, 256, 512] {
        let b = BankModel::new(kb);
        println!(
            "{:>6}KB {:>8}cy {:>10}cy {:>14}cy",
            kb,
            b.tile_wire_cycles(&tech),
            b.tag_match_cycles(),
            b.tag_match_replace_cycles()
        );
    }
    println!("paper:  64KB 1/2/3, 128KB 2/4/4, 256KB 2/4/5, 512KB 3/5/6");
}

fn table2() {
    println!("Table 2 — benchmarks (observables from the paper, mix checked");
    println!("against the synthetic generator over 20k accesses)");
    rule(78);
    println!(
        "{:10} {:>6} {:>8} {:>9} {:>9} {:>9} {:>11} {:>9}",
        "benchmark", "class", "instr", "IPC(L2p)", "reads", "writes", "acc/instr", "gen wr%"
    );
    rule(78);
    for b in ALL_BENCHMARKS {
        let mut gen = TraceGenerator::new(b, SynthConfig::default());
        let t = gen.generate(0, 20_000);
        println!(
            "{:10} {:>6} {:>7}M {:>9.2} {:>8.3}M {:>8.3}M {:>11.3} {:>9}",
            b.name,
            format!("{:?}", b.class),
            b.instructions / 1_000_000,
            b.perfect_l2_ipc,
            b.l2_reads as f64 / 1e6,
            b.l2_writes as f64 / 1e6,
            b.accesses_per_instr(),
            pct(t.write_fraction()),
        );
    }
}

fn table3() {
    println!("Table 3 — network designs");
    rule(64);
    println!(
        "{:8} {:38} {:16}",
        "design", "interconnection network", "bank size"
    );
    rule(64);
    for d in ALL_DESIGNS {
        println!(
            "{:8} {:38} {:16}",
            format!("{d:?}"),
            d.interconnect_description(),
            d.bank_description()
        );
    }
}

fn table4_print() {
    println!("Table 4 — area analysis of network designs");
    rule(76);
    println!(
        "{:8} {:>8} {:>8} {:>8} {:>12} {:>12} {:>12}",
        "design", "bank%", "router%", "link%", "L2 [mm2]", "chip [mm2]", "unused[mm2]"
    );
    rule(76);
    for a in table4() {
        let (b, r, l) = a.breakdown.shares();
        println!(
            "{:8} {:>8} {:>8} {:>8} {:>12.2} {:>12.2} {:>12.2}",
            format!("{:?}", a.design),
            pct(b),
            pct(r),
            pct(l),
            a.breakdown.l2_mm2(),
            a.chip_mm2,
            unused_area_mm2(&a)
        );
    }
    rule(76);
    println!("paper:  A 47.8/20.8/31.4 567.70/567.70   B 58.4/13.0/28.6 464.60/521.99");
    println!("        E 67.5/14.1/18.4 402.30/1602.22  F 78.7/ 5.7/15.7 312.19/517.61");
}

fn census() {
    println!("Link census — §1 \"20% of the links are never used\" / §4 minimal links");
    let unit = |n: u16| vec![1u32; n as usize];
    let topo = Topology::mesh(16, 16, &unit(15), &unit(15));
    let rt = RoutingSpec::Xy.build(&topo).expect("mesh routes under XY");
    let core = topo.node_at(7, 0);
    let memory = topo.node_at(8, 15);
    let mut flows: Vec<(NodeId, NodeId)> = Vec::new();
    for c in 0..16 {
        for r in 0..16 {
            let bank = topo.node_at(c, r);
            flows.push((core, bank));
            flows.push((bank, core));
            if r + 1 < 16 {
                flows.push((bank, topo.node_at(c, r + 1)));
                flows.push((topo.node_at(c, r + 1), bank));
            }
        }
        flows.push((memory, topo.node_at(c, 0)));
        flows.push((topo.node_at(c, 15), memory));
    }
    flows.push((core, memory));
    flows.push((memory, core));
    let census = LinkCensus::from_flows(&topo, &rt, &flows);
    println!(
        "16x16 mesh, XY, cache traffic: {}/{} links unused ({})",
        census.unused(),
        census.total(),
        pct(census.unused_fraction())
    );
    println!("paper: ~20% never used");

    // §4: link counts.
    let n = 16u32;
    let full = 4 * (n - 1) * (n - 1) + 2 * (n - 1) * 2; // paper counts 4(n-1)^2 core links
    let _ = full;
    let simp = Topology::simplified_mesh(16, 16, &unit(15), &unit(15));
    println!(
        "full mesh links: {}   simplified mesh links: {}   removed: {}",
        topo.link_count(),
        simp.link_count(),
        topo.link_count() - simp.link_count()
    );
    let map = AddressMap::hpca07();
    println!(
        "address map: {} columns x {} sets, tag {} bits",
        map.columns(),
        map.sets(),
        map.tag_bits()
    );

    // Replication-blocking rarity: quote §3.1 "blocking rarely happens".
    // One sweep point per benchmark, fanned out over the parallel engine.
    let scale = nucanet::experiments::ExperimentScale::tiny();
    let runner = runner_from_env();
    let points: Vec<_> = ["gcc", "twolf", "vpr", "mcf"]
        .iter()
        .map(|name| {
            let profile = nucanet_workload::BenchmarkProfile::by_name(name).expect("benchmark");
            nucanet::experiments::cell_point(
                nucanet::Design::A,
                Scheme::MulticastFastLru,
                &profile,
                scale,
            )
        })
        .collect();
    for o in runner.run(&points) {
        let m = &o.metrics;
        println!(
            "multicast replication [{}]: {} replicas, {} blocked cycles over {} cycles (rarely blocks: {})",
            o.label,
            m.net.replications,
            m.net.replication_blocked_cycles,
            m.cycles,
            m.net.replication_blocked_cycles * 100 / m.cycles.max(1) < 5
        );
    }
}
