//! Measures cycle-kernel throughput (cycles/sec, flit-hops/sec) on the
//! Fig. 7 mesh and Design E halo — burst-and-drain plus closed-loop
//! saturation shapes — and records the perf trajectory in
//! `BENCH_perf.json` (schema `nucanet/perf-v2`).
//!
//! Environment:
//!
//! * `NUCANET_PERF_PACKETS` — packets per configuration (default
//!   20000; CI uses a smaller count).
//! * `NUCANET_PERF_REPEATS` — runs per configuration, keeping the
//!   fastest (default 3). The simulation is deterministic, so repeats
//!   differ only in wall time; the minimum is the least-noisy estimate
//!   of kernel speed.
//! * `NUCANET_SIM_THREADS` — cycle-kernel threads (default 1: serial;
//!   0 auto-detects). Simulated results are bit-identical for any
//!   value; only wall time and the phase breakdown change.
//! * `NUCANET_PERF_CORES` — injector endpoints driving the 32×32
//!   `mesh-giant` closed loop (default 4).
//! * `NUCANET_PERF_MIN_RATIO` — when set (e.g. `0.33`), exit nonzero
//!   if cycles/sec falls below `ratio × baseline` on any config with a
//!   recorded baseline: the CI smoke-perf regression floor.
//! * `NUCANET_PERF_SWEEP_POINTS` — points in the screening-sweep
//!   throughput measurement (default 1000; `0` skips it). The sweep
//!   runs twice — fresh (per-point construction) and warm (structural
//!   cache + reusable arenas) — and both land in the `points_per_sec`
//!   section of `BENCH_perf.json`.
//! * `NUCANET_PERF_SWEEP_WORKERS` — sweep worker threads for the
//!   measurement (default 1: the per-worker speedup, uncontended).
//! * `NUCANET_PERF_SWEEP_MIN_SPEEDUP` — when set (e.g. `1.2`), exit
//!   nonzero if warm points/sec falls below `value × fresh points/sec`:
//!   the warm path's same-machine relative regression floor.
//! * `NUCANET_BENCH_DIR` — where `BENCH_perf.json` lands.

use std::path::PathBuf;

use nucanet::sweep::write_atomically;
use nucanet_bench::perf::{
    baseline_for, giant_sat_throughput, halo_sat_throughput, halo_throughput,
    mesh_sat_throughput, mesh_throughput, render_perf_json_with_sweep, screening_points,
    sweep_throughput, warm_speedup, SweepPerfSample,
};
use nucanet_bench::{parse_env_u64, sim_threads_from_env};

fn env_u64(key: &str, default: u64) -> u64 {
    match std::env::var(key) {
        Err(_) => default,
        Ok(v) => match parse_env_u64(&v) {
            Ok(n) => n,
            Err(e) => panic!("bad {key}: {e}"),
        },
    }
}

fn best_of<F: Fn() -> nucanet_bench::perf::PerfSample>(
    repeats: u64,
    run: F,
) -> nucanet_bench::perf::PerfSample {
    (0..repeats.max(1))
        .map(|_| run())
        .min_by_key(|s| s.wall)
        .expect("at least one repeat")
}

fn main() {
    let packets = env_u64("NUCANET_PERF_PACKETS", 20_000);
    let repeats = env_u64("NUCANET_PERF_REPEATS", 3);
    let threads = sim_threads_from_env();
    println!(
        "cycle-kernel throughput ({packets} packets per config, best of {repeats}, sim-threads {threads})"
    );
    let cores = env_u64("NUCANET_PERF_CORES", 4) as u16;
    let samples = vec![
        best_of(repeats, || mesh_throughput(packets, threads)),
        best_of(repeats, || halo_throughput(packets, threads)),
        best_of(repeats, || mesh_sat_throughput(packets, threads)),
        best_of(repeats, || halo_sat_throughput(packets, threads)),
        best_of(repeats, || giant_sat_throughput(packets, threads, cores)),
    ];
    let mut floor_violated = false;
    let min_ratio: Option<f64> = std::env::var("NUCANET_PERF_MIN_RATIO")
        .ok()
        .map(|v| v.parse().expect("NUCANET_PERF_MIN_RATIO must be a float"));
    for s in &samples {
        print!(
            "{:10}  {:>12.0} cycles/s  {:>12.0} flit-hops/s  ({} cycles, {} ms, {} thr)",
            s.config,
            s.cycles_per_sec(),
            s.flit_hops_per_sec(),
            s.cycles,
            s.wall.as_millis(),
            s.threads
        );
        match baseline_for(s.config) {
            Some(b) if b.cycles_per_sec.is_finite() => {
                let ratio = s.cycles_per_sec() / b.cycles_per_sec;
                println!("  {ratio:.2}x vs baseline");
                if let Some(floor) = min_ratio {
                    if ratio < floor {
                        eprintln!(
                            "PERF REGRESSION: {} at {ratio:.2}x of baseline (floor {floor})",
                            s.config
                        );
                        floor_violated = true;
                    }
                }
            }
            _ => println!("  (no baseline recorded)"),
        }
    }
    let sweep_points = env_u64("NUCANET_PERF_SWEEP_POINTS", 1_000);
    let sweep_workers = env_u64("NUCANET_PERF_SWEEP_WORKERS", 1).max(1) as usize;
    let mut sweep_samples: Vec<SweepPerfSample> = Vec::new();
    if sweep_points > 0 {
        let points = screening_points(sweep_points);
        println!(
            "\nsweep throughput ({sweep_points} screening points, {sweep_workers} workers, best of {repeats})"
        );
        for warm in [false, true] {
            let s = (0..repeats.max(1))
                .map(|_| sweep_throughput(&points, sweep_workers, warm))
                .min_by_key(|s| s.wall)
                .expect("at least one repeat");
            println!(
                "{:10}  {:>12.1} points/s  ({} points, {} ms, {} workers)",
                s.mode,
                s.points_per_sec(),
                s.points,
                s.wall.as_millis(),
                s.workers
            );
            sweep_samples.push(s);
        }
        if let Some(x) = warm_speedup(&sweep_samples) {
            println!("warm speedup: {x:.2}x fresh points/sec");
            if let Ok(v) = std::env::var("NUCANET_PERF_SWEEP_MIN_SPEEDUP") {
                let floor: f64 = v.parse().expect("NUCANET_PERF_SWEEP_MIN_SPEEDUP must be a float");
                if x < floor {
                    eprintln!(
                        "PERF REGRESSION: warm sweep at {x:.2}x of fresh (floor {floor})"
                    );
                    floor_violated = true;
                }
            }
        }
    }
    let dir = std::env::var("NUCANET_BENCH_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("."));
    let path = dir.join("BENCH_perf.json");
    match write_atomically(&path, &render_perf_json_with_sweep(&samples, &sweep_samples)) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    if floor_violated {
        std::process::exit(2);
    }
}
