//! Capacity-scaling sweep: mesh vs halo as the L2 grows.
//!
//! The paper's motivation is that wire delay makes large caches
//! network-dominated; the halo's constant-distance MRU banks should
//! therefore matter *more* as capacity grows. This sweep holds the bank
//! size (64 KB) and column count (16) fixed and scales the column
//! length: 4 MB (4 banks/set) → 32 MB (32 banks/set), comparing the
//! 16×N mesh against the N-long halo under Multicast Fast-LRU.
//!
//! Points run in parallel on the [`nucanet::sweep`] engine
//! (`NUCANET_WORKERS` selects the worker count; results are
//! bit-identical for any value) and the machine-readable summary lands
//! in `BENCH_sweep.json`.
//!
//! ```text
//! cargo run --release -p nucanet-bench --bin sweep
//! ```

use std::time::Instant;

use nucanet::sweep::capacity_points;
use nucanet_bench::{runner_from_env, scale_from_env, write_bench_json};
use nucanet_workload::BenchmarkProfile;

fn main() {
    let scale = scale_from_env();
    let runner = runner_from_env();
    let bench =
        BenchmarkProfile::by_name(&std::env::args().nth(1).unwrap_or_else(|| "twolf".into()))
            .expect("benchmark exists");
    println!(
        "capacity sweep, {} ({} measured accesses, {} warm-up, {} workers)\n",
        bench.name,
        scale.measured,
        scale.warmup,
        runner.workers()
    );

    let points = capacity_points(bench, scale);
    let start = Instant::now();
    let outcomes = runner.run(&points);
    let wall = start.elapsed();

    println!(
        "{:>6} {:>7} {:>12} {:>12} {:>12} {:>12} {:>9}",
        "MB", "banks", "mesh avg", "halo avg", "mesh IPC", "halo IPC", "halo/mesh"
    );
    println!("{}", "-".repeat(78));
    // capacity_points interleaves (mesh, halo) per banks_per_set step.
    for (i, banks_per_set) in [4usize, 8, 16, 32].into_iter().enumerate() {
        let mb = banks_per_set * 16 * 64 / 1024;
        let mesh = &outcomes[2 * i];
        let halo = &outcomes[2 * i + 1];
        println!(
            "{mb:>6} {banks_per_set:>7} {:>12.1} {:>12.1} {:>12.3} {:>12.3} {:>9.3}",
            mesh.metrics.avg_latency(),
            halo.metrics.avg_latency(),
            mesh.ipc,
            halo.ipc,
            halo.ipc / mesh.ipc
        );
    }
    println!("\nexpected shape: the halo's relative IPC advantage grows with the");
    println!("column length — longer mesh columns mean longer walks, while every");
    println!("halo MRU bank stays one hop from the hub.");

    match write_bench_json("sweep", &runner, &points, &outcomes) {
        Ok(path) => println!(
            "\nwrote {} ({} points, wall {:.1}s)",
            path.display(),
            outcomes.len(),
            wall.as_secs_f64()
        ),
        Err(e) => eprintln!("\nfailed to write BENCH_sweep.json: {e}"),
    }
}
