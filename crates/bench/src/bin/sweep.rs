//! Capacity-scaling sweep: mesh vs halo as the L2 grows.
//!
//! The paper's motivation is that wire delay makes large caches
//! network-dominated; the halo's constant-distance MRU banks should
//! therefore matter *more* as capacity grows. This sweep holds the bank
//! size (64 KB) and column count (16) fixed and scales the column
//! length: 4 MB (4 banks/set) → 32 MB (32 banks/set), comparing the
//! 16×N mesh against the N-long halo under Multicast Fast-LRU.
//!
//! Points run in parallel on the [`nucanet::sweep`] engine
//! (`NUCANET_WORKERS` selects the worker count; results are
//! bit-identical for any value) and the machine-readable summary lands
//! in `BENCH_sweep.json`. Set `NUCANET_FAULTS` (and optionally
//! `NUCANET_FAULT_REPAIR`) to inject link faults per point; a point
//! whose faults partition its topology fails alone with a structured
//! error while the rest of the sweep completes.
//!
//! ```text
//! cargo run --release -p nucanet-bench --bin sweep
//! ```

use std::time::Instant;

use nucanet::sweep::capacity_points;
use nucanet_bench::{
    apply_env_check, apply_env_sim_threads, faults_from_env, runner_from_env, scale_from_env,
    write_bench_json_results,
};
use nucanet_workload::BenchmarkProfile;

fn main() {
    let scale = scale_from_env();
    let runner = runner_from_env();
    let faults = faults_from_env();
    let bench =
        BenchmarkProfile::by_name(&std::env::args().nth(1).unwrap_or_else(|| "twolf".into()))
            .expect("benchmark exists");
    println!(
        "capacity sweep, {} ({} measured accesses, {} warm-up, {} workers)\n",
        bench.name,
        scale.measured,
        scale.warmup,
        runner.workers()
    );

    let mut points = capacity_points(bench, scale);
    apply_env_check(&mut points);
    apply_env_sim_threads(&mut points);
    if let Some(fc) = &faults {
        for p in &mut points {
            std::sync::Arc::make_mut(&mut p.config).faults = Some(fc.clone());
        }
    }
    let start = Instant::now();
    let results = runner.try_run(&points);
    let wall = start.elapsed();

    println!(
        "{:>6} {:>7} {:>12} {:>12} {:>12} {:>12} {:>9}",
        "MB", "banks", "mesh avg", "halo avg", "mesh IPC", "halo IPC", "halo/mesh"
    );
    println!("{}", "-".repeat(78));
    // capacity_points interleaves (mesh, halo) per banks_per_set step.
    for (i, banks_per_set) in [4usize, 8, 16, 32].into_iter().enumerate() {
        let mb = banks_per_set * 16 * 64 / 1024;
        match (&results[2 * i], &results[2 * i + 1]) {
            (Ok(mesh), Ok(halo)) => println!(
                "{mb:>6} {banks_per_set:>7} {:>12.1} {:>12.1} {:>12.3} {:>12.3} {:>9.3}",
                mesh.metrics.avg_latency(),
                halo.metrics.avg_latency(),
                mesh.ipc,
                halo.ipc,
                halo.ipc / mesh.ipc
            ),
            (mesh, halo) => {
                let cell = |r: &Result<_, nucanet::PointFailure>| match r {
                    Ok(_) => "ok".to_string(),
                    Err(f) => format!("error: {}", f.error.kind()),
                };
                println!(
                    "{mb:>6} {banks_per_set:>7} {:>12} {:>12} (point failed; see below)",
                    cell(mesh),
                    cell(halo)
                );
            }
        }
    }
    let failures: Vec<_> = results.iter().filter_map(|r| r.as_ref().err()).collect();
    for f in &failures {
        println!("point '{}' failed: {}", f.label, f.error);
    }
    if !failures.is_empty() {
        println!(
            "{}/{} points failed; surviving results above (degraded sweep)",
            failures.len(),
            results.len()
        );
    }
    println!("\nexpected shape: the halo's relative IPC advantage grows with the");
    println!("column length — longer mesh columns mean longer walks, while every");
    println!("halo MRU bank stays one hop from the hub.");

    match write_bench_json_results("sweep", &runner, &points, &results) {
        Ok(path) => println!(
            "\nwrote {} ({} points, wall {:.1}s)",
            path.display(),
            results.len(),
            wall.as_secs_f64()
        ),
        Err(e) => eprintln!("\nfailed to write BENCH_sweep.json: {e}"),
    }
}
