//! Capacity-scaling sweep: mesh vs halo as the L2 grows.
//!
//! The paper's motivation is that wire delay makes large caches
//! network-dominated; the halo's constant-distance MRU banks should
//! therefore matter *more* as capacity grows. This sweep holds the bank
//! size (64 KB) and column count (16) fixed and scales the column
//! length: 4 MB (4 banks/set) → 32 MB (32 banks/set), comparing the
//! 16×N mesh against the N-long halo under Multicast Fast-LRU.
//!
//! ```text
//! cargo run --release -p nucanet-bench --bin sweep
//! ```

use nucanet::config::TopologyChoice;
use nucanet::{CacheSystem, Design, Scheme, SystemConfig};
use nucanet_bench::scale_from_env;
use nucanet_workload::{BenchmarkProfile, CoreModel, SynthConfig, TraceGenerator};

fn config(topology: TopologyChoice, banks_per_set: usize) -> SystemConfig {
    let mut cfg = Design::A.config(Scheme::MulticastFastLru);
    cfg.topology = topology;
    cfg.bank_kb = vec![64; banks_per_set];
    cfg.bank_ways = vec![1; banks_per_set];
    cfg.core_ports = if topology == TopologyChoice::Halo {
        4
    } else {
        1
    };
    cfg.mem_extra_wire = if topology == TopologyChoice::Halo {
        // The controller sits mid-die; the off-chip wire grows with the
        // spike run (Design E uses 16 cycles at 16 banks).
        banks_per_set as u32
    } else {
        0
    };
    cfg.name = format!(
        "{} ({} MB)",
        match topology {
            TopologyChoice::Mesh => "16xN mesh",
            TopologyChoice::SimplifiedMesh => "16xN simplified mesh",
            TopologyChoice::Halo => "N-spike halo",
        },
        banks_per_set * 16 * 64 / 1024
    );
    cfg
}

fn main() {
    let scale = scale_from_env();
    let bench =
        BenchmarkProfile::by_name(&std::env::args().nth(1).unwrap_or_else(|| "twolf".into()))
            .expect("benchmark exists");
    println!(
        "capacity sweep, {} ({} measured accesses, {} warm-up)\n",
        bench.name, scale.measured, scale.warmup
    );
    println!(
        "{:>6} {:>7} {:>12} {:>12} {:>12} {:>12} {:>9}",
        "MB", "banks", "mesh avg", "halo avg", "mesh IPC", "halo IPC", "halo/mesh"
    );
    println!("{}", "-".repeat(78));
    for banks_per_set in [4usize, 8, 16, 32] {
        let mb = banks_per_set * 16 * 64 / 1024;
        let run = |cfg: &SystemConfig| {
            let mut gen = TraceGenerator::new(
                bench,
                SynthConfig {
                    active_sets: scale.active_sets,
                    seed: scale.seed,
                    ..Default::default()
                },
            );
            let trace = gen.generate(scale.warmup, scale.measured);
            let mut sys = CacheSystem::new(cfg);
            let m = sys.run(&trace);
            let ipc = m.ipc(&CoreModel::for_profile(&bench));
            (m.avg_latency(), ipc)
        };
        let (mesh_avg, mesh_ipc) = run(&config(TopologyChoice::Mesh, banks_per_set));
        let (halo_avg, halo_ipc) = run(&config(TopologyChoice::Halo, banks_per_set));
        println!(
            "{mb:>6} {banks_per_set:>7} {mesh_avg:>12.1} {halo_avg:>12.1} {mesh_ipc:>12.3} {halo_ipc:>12.3} {:>9.3}",
            halo_ipc / mesh_ipc
        );
    }
    println!("\nexpected shape: the halo's relative IPC advantage grows with the");
    println!("column length — longer mesh columns mean longer walks, while every");
    println!("halo MRU bank stays one hop from the hub.");
}
