//! Regenerates **Figure 7**: latency distribution of L2 cache accesses
//! (bank / network / memory percentages) in the Unicast LRU environment
//! on Design A (16×16 mesh, 64 KB banks).
//!
//! Paper values to compare against: network ≈ 65 % on average,
//! bank ≈ 25 %, memory ≈ 10 %.

use nucanet::experiments::{fig7_cells, fig7_points};
use nucanet_bench::{apply_env_check, pct, rule, runner_from_env, scale_from_env, write_bench_json};

fn main() {
    let scale = scale_from_env();
    let runner = runner_from_env();
    println!("Figure 7 — latency distribution, Unicast LRU, Design A");
    println!(
        "(scale: {} measured accesses, {} warm-up, {} workers)",
        scale.measured,
        scale.warmup,
        runner.workers()
    );
    rule(52);
    println!(
        "{:10} {:>8} {:>8} {:>8}",
        "benchmark", "bank%", "net%", "mem%"
    );
    rule(52);
    let mut points = fig7_points(scale);
    apply_env_check(&mut points);
    let outcomes = runner.run(&points);
    let rows = fig7_cells(&outcomes);
    let (mut b, mut n, mut m) = (0.0, 0.0, 0.0);
    for r in &rows {
        println!(
            "{:10} {:>8} {:>8} {:>8}",
            r.benchmark,
            pct(r.bank),
            pct(r.network),
            pct(r.memory)
        );
        b += r.bank;
        n += r.network;
        m += r.memory;
    }
    let k = rows.len() as f64;
    rule(52);
    println!(
        "{:10} {:>8} {:>8} {:>8}",
        "avg",
        pct(b / k),
        pct(n / k),
        pct(m / k)
    );
    println!("\npaper:      bank ~25%   network ~65%   memory ~10%");
    match write_bench_json("fig7", &runner, &points, &outcomes) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write BENCH_fig7.json: {e}"),
    }
}
