//! Regenerates **Figure 8**: average access / hit / miss latency of the
//! five replacement schemes on the Design A network, plus the derived
//! IPC comparison quoted in §6.1.
//!
//! Paper shapes to compare against:
//! * Unicast LRU ≈ +4.4 % average latency over Unicast Promotion.
//! * Unicast Fast-LRU ≈ −30 % vs Unicast Promotion.
//! * Multicast Fast-LRU ≈ −46 % vs Unicast LRU, ≈ −27 % vs Unicast
//!   Fast-LRU, ≈ −37 % vs Multicast Promotion (⇒ ≈ +20 % IPC).

use nucanet::experiments::{fig8_cells, fig8_points, geomean};
use nucanet::Scheme;
use nucanet_bench::{apply_env_check, rule, runner_from_env, scale_from_env, write_bench_json};
use nucanet_workload::ALL_BENCHMARKS;

fn main() {
    let scale = scale_from_env();
    let runner = runner_from_env();
    println!("Figure 8 — L2 access latency by scheme, Design A network");
    println!(
        "(scale: {} measured accesses, {} warm-up, {} workers)\n",
        scale.measured,
        scale.warmup,
        runner.workers()
    );
    let mut points = fig8_points(scale);
    apply_env_check(&mut points);
    let outcomes = runner.run(&points);
    let cells = fig8_cells(&outcomes);

    for (title, f) in [
        ("(a) average access latency [cycles]", 0usize),
        ("(b) average hit latency [cycles]", 1),
        ("(c) average miss latency [cycles]", 2),
    ] {
        println!("{title}");
        rule(118);
        print!("{:10}", "benchmark");
        for s in nucanet::scheme::ALL_SCHEMES {
            print!(" {:>20}", s.name());
        }
        println!();
        rule(118);
        for b in &ALL_BENCHMARKS {
            print!("{:10}", b.name);
            for s in nucanet::scheme::ALL_SCHEMES {
                let c = cells
                    .iter()
                    .find(|c| c.benchmark == b.name && c.scheme == s)
                    .expect("cell computed");
                let v = match f {
                    0 => c.avg_latency,
                    1 => c.hit_latency,
                    _ => c.miss_latency,
                };
                print!(" {:>20.1}", v);
            }
            println!();
        }
        rule(118);
        println!();
    }

    // §6.1 summary ratios.
    let mean = |s: Scheme| {
        geomean(
            cells
                .iter()
                .filter(|c| c.scheme == s && c.avg_latency > 0.0)
                .map(|c| c.avg_latency),
        )
    };
    let up = mean(Scheme::UnicastPromotion);
    let ul = mean(Scheme::UnicastLru);
    let uf = mean(Scheme::UnicastFastLru);
    let mp = mean(Scheme::MulticastPromotion);
    let mf = mean(Scheme::MulticastFastLru);
    println!("summary (geomean of average latency):");
    println!(
        "  unicast LRU vs unicast promotion: {:+.1}%  (paper: +4.4%)",
        100.0 * (ul / up - 1.0)
    );
    println!(
        "  unicast fastLRU vs unicast promotion: {:+.1}%  (paper: -30.2%)",
        100.0 * (uf / up - 1.0)
    );
    println!(
        "  multicast fastLRU vs unicast LRU: {:+.1}%  (paper: -46%)",
        100.0 * (mf / ul - 1.0)
    );
    println!(
        "  multicast fastLRU vs unicast fastLRU: {:+.1}%  (paper: -27%)",
        100.0 * (mf / uf - 1.0)
    );
    println!(
        "  multicast fastLRU vs multicast promotion: {:+.1}%  (paper: -37%)",
        100.0 * (mf / mp - 1.0)
    );

    let ipc_gain = geomean(ALL_BENCHMARKS.iter().map(|b| {
        let best = cells
            .iter()
            .find(|c| c.benchmark == b.name && c.scheme == Scheme::MulticastFastLru)
            .expect("cell");
        let base = cells
            .iter()
            .find(|c| c.benchmark == b.name && c.scheme == Scheme::MulticastPromotion)
            .expect("cell");
        best.ipc / base.ipc
    }));
    println!(
        "  IPC, multicast fastLRU vs multicast promotion: {:+.1}%  (paper: +20%)",
        100.0 * (ipc_gain - 1.0)
    );
    match write_bench_json("fig8", &runner, &points, &outcomes) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nfailed to write BENCH_fig8.json: {e}"),
    }
}
