//! Regenerates **Figure 9**: IPC of Designs A–F (Table 3) under
//! Multicast Fast-LRU, normalised to Design A per benchmark.
//!
//! Paper shapes to compare against: B ≈ A; C ≈ −14 %; D ≈ −12 %;
//! E ≈ +12 %; F ≈ +13 % (and F = 1.38× over Design A with Multicast
//! Promotion — the headline claim).

use nucanet::config::ALL_DESIGNS;
use nucanet::experiments::{cell_point, fig9_cells, fig9_points, geomean, normalize_fig9};
use nucanet::{Design, Scheme};
use nucanet_bench::{apply_env_check, rule, runner_from_env, scale_from_env, write_bench_json};
use nucanet_workload::ALL_BENCHMARKS;

fn main() {
    let scale = scale_from_env();
    let runner = runner_from_env();
    println!("Figure 9 — normalized IPC by network design (Multicast Fast-LRU)");
    println!(
        "(scale: {} measured accesses, {} warm-up, {} workers)\n",
        scale.measured,
        scale.warmup,
        runner.workers()
    );
    let mut points = fig9_points(scale);
    apply_env_check(&mut points);
    let outcomes = runner.run(&points);
    let cells = fig9_cells(&outcomes);
    let normalized = normalize_fig9(&cells);

    rule(70);
    print!("{:10}", "benchmark");
    for d in ALL_DESIGNS {
        print!(" {:>9}", format!("{d:?}"));
    }
    println!();
    rule(70);
    for b in &ALL_BENCHMARKS {
        print!("{:10}", b.name);
        for d in ALL_DESIGNS {
            let (_, norm) = normalized
                .iter()
                .find(|(c, _)| c.benchmark == b.name && c.design == d)
                .expect("cell computed");
            print!(" {:>9.3}", norm);
        }
        println!();
    }
    rule(70);
    print!("{:10}", "geomean");
    for d in ALL_DESIGNS {
        let g = geomean(
            normalized
                .iter()
                .filter(|(c, _)| c.design == d)
                .map(|(_, n)| *n),
        );
        print!(" {:>9.3}", g);
    }
    println!();
    println!("\npaper:  A=1.00  B~1.00  C~0.86  D~0.88  E~1.12  F~1.13");

    // Headline: halo + Multicast Fast-LRU vs mesh + Multicast Promotion.
    // The F / Multicast Fast-LRU side is already in `cells`; only the
    // Design A Multicast Promotion baselines need extra runs.
    let base_points: Vec<_> = ALL_BENCHMARKS
        .iter()
        .map(|b| cell_point(Design::A, Scheme::MulticastPromotion, b, scale))
        .collect();
    let base_outcomes = runner.run(&base_points);
    let headline = geomean(ALL_BENCHMARKS.iter().zip(&base_outcomes).map(|(b, base)| {
        let best = cells
            .iter()
            .find(|c| c.benchmark == b.name && c.design == Design::F)
            .expect("Design F cell computed");
        best.ipc / base.ipc
    }));
    println!(
        "\nheadline: Design F multicast fastLRU vs Design A multicast promotion: {:.2}x (paper: 1.38x)",
        headline
    );
    match write_bench_json("fig9", &runner, &points, &outcomes) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write BENCH_fig9.json: {e}"),
    }
}
