//! Regenerates **Figure 9**: IPC of Designs A–F (Table 3) under
//! Multicast Fast-LRU, normalised to Design A per benchmark.
//!
//! Paper shapes to compare against: B ≈ A; C ≈ −14 %; D ≈ −12 %;
//! E ≈ +12 %; F ≈ +13 % (and F = 1.38× over Design A with Multicast
//! Promotion — the headline claim).

use nucanet::config::ALL_DESIGNS;
use nucanet::experiments::{fig9, geomean, normalize_fig9, run_cell, ExperimentScale};
use nucanet::{Design, Scheme};
use nucanet_bench::{rule, scale_from_env};
use nucanet_workload::{BenchmarkProfile, ALL_BENCHMARKS};

fn main() {
    let scale = scale_from_env();
    println!("Figure 9 — normalized IPC by network design (Multicast Fast-LRU)");
    println!(
        "(scale: {} measured accesses, {} warm-up)\n",
        scale.measured, scale.warmup
    );
    let cells = fig9(scale);
    let normalized = normalize_fig9(&cells);

    rule(70);
    print!("{:10}", "benchmark");
    for d in ALL_DESIGNS {
        print!(" {:>9}", format!("{d:?}"));
    }
    println!();
    rule(70);
    for b in &ALL_BENCHMARKS {
        print!("{:10}", b.name);
        for d in ALL_DESIGNS {
            let (_, norm) = normalized
                .iter()
                .find(|(c, _)| c.benchmark == b.name && c.design == d)
                .expect("cell computed");
            print!(" {:>9.3}", norm);
        }
        println!();
    }
    rule(70);
    print!("{:10}", "geomean");
    for d in ALL_DESIGNS {
        let g = geomean(
            normalized
                .iter()
                .filter(|(c, _)| c.design == d)
                .map(|(_, n)| *n),
        );
        print!(" {:>9.3}", g);
    }
    println!();
    println!("\npaper:  A=1.00  B~1.00  C~0.86  D~0.88  E~1.12  F~1.13");

    // Headline: halo + Multicast Fast-LRU vs mesh + Multicast Promotion.
    let headline = geomean(ALL_BENCHMARKS.iter().map(|b: &BenchmarkProfile| {
        let (_, best) = run_cell(Design::F, Scheme::MulticastFastLru, b, scale);
        let (_, base) = run_cell(Design::A, Scheme::MulticastPromotion, b, scale);
        best / base
    }));
    println!(
        "\nheadline: Design F multicast fastLRU vs Design A multicast promotion: {:.2}x (paper: 1.38x)",
        headline
    );
    let _ = ExperimentScale::default();
}
