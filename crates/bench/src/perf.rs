//! Simulator throughput self-measurement: the tracked perf trajectory.
//!
//! The paper's figures come from sweeping millions of simulated cycles,
//! so the cycle kernel's speed bounds every experiment. This module
//! times the flit-level [`Network`] on the topologies the headline
//! results use — the Fig. 7 16×16 mesh (Design A) and the 16-spike
//! halo of Design E — and reports **cycles/sec** and **flit-hops/sec**.
//!
//! Two traffic shapes per topology:
//!
//! * the original **burst-and-drain** configs (`"fig7-mesh"`,
//!   `"halo"`), which alternate between saturated and draining phases
//!   like the cache protocol's request/response exchange;
//! * the **closed-loop saturation** configs (`"mesh-sat"`,
//!   `"halo-sat"`), which keep a fixed window of packets in flight so
//!   nearly every router is active every cycle — the regime the
//!   two-phase threaded kernel targets, since a full worklist is what
//!   the compute phase shards;
//! * the **giant-topology** config (`"mesh-giant"`), a 32×32 mesh
//!   (1024 routers) driven closed-loop from N injector endpoints with
//!   thousands of outstanding packets — the scale the O(links) routing
//!   builder unlocks.
//!
//! Every measurement function takes a `sim_threads` argument
//! ([`nucanet_noc::RouterParams::sim_threads`]); the simulation is
//! bit-identical for any value, so threads change only the wall time
//! and the [`PerfSample`] phase breakdown.
//!
//! The `perf` binary writes the measurements next to a baked-in
//! baseline (the serial SoA-slab kernel, re-recorded when the
//! structure-of-arrays rewrite landed) into `BENCH_perf.json`, so
//! every future PR extends a perf trajectory instead of guessing.
//! Absolute numbers are machine-dependent; the CI smoke-perf job
//! therefore only fails on a catastrophic (>3×) regression against the
//! same-machine baseline ratio, while local runs show the real
//! speedup. Committed snapshots compare across PRs via
//! [`parse_trajectory`] / `nucanet perf --baseline PATH`, which
//! refuses to mix documents from different schema versions
//! ([`PERF_SCHEMA`]).
//!
//! Traffic is generated from a fixed-seed LCG, so a sample simulates
//! the exact same cycles on every run and machine — wall time is the
//! only thing that varies.

use std::time::{Duration, Instant};

use nucanet::experiments::ExperimentScale;
use nucanet::metrics::MetricsCapture;
use nucanet::sweep::{derive_seed, SweepPoint, SweepRunner};
use nucanet::{Design, Scheme};
use nucanet_noc::{
    Dest, Endpoint, Network, NodeId, Packet, RouterParams, RoutingSpec, Topology,
};
use nucanet_workload::BenchmarkProfile;

/// The schema identifier this harness emits in `BENCH_perf.json`.
///
/// `nucanet/perf-v1` documents (written before the two-phase kernel)
/// lack the thread count, `host_cores`, and the phase breakdown, and
/// their `wall_ms` was measured by a different harness loop — numbers
/// across schemas do not line up. [`parse_trajectory`] therefore
/// refuses to read any document whose schema is not exactly this
/// constant.
pub const PERF_SCHEMA: &str = "nucanet/perf-v2";

/// One timed throughput measurement of the cycle kernel.
#[derive(Debug, Clone)]
pub struct PerfSample {
    /// Which configuration was measured (`"fig7-mesh"`, `"halo"`,
    /// `"mesh-sat"`, `"halo-sat"`, `"mesh-giant"`).
    pub config: &'static str,
    /// Cycle-kernel threads the network resolved to (1 = serial).
    pub threads: usize,
    /// Wall-clock time spent inside the simulation loop.
    pub wall: Duration,
    /// Simulated cycles stepped.
    pub cycles: u64,
    /// Total flit link traversals (sum over links of flits carried).
    pub flit_hops: u64,
    /// Packets injected and delivered.
    pub packets: u64,
    /// Cycles that ran the sharded two-phase kernel.
    pub parallel_cycles: u64,
    /// Cycles that ran the classic serial kernel.
    pub serial_cycles: u64,
    /// Wall nanoseconds inside the parallel compute phase.
    pub compute_ns: u64,
    /// Wall nanoseconds inside the serial commit phase.
    pub commit_ns: u64,
    /// Wall nanoseconds of pool-dispatch overhead across all parallel
    /// cycles (job publish + spawned-worker tail wait).
    pub dispatch_ns: u64,
    /// Cycles the adaptive gate ran serially despite `sim_threads > 1`.
    pub adaptive_serial_cycles: u64,
    /// Cycles the adaptive gate sharded (including calibration probes).
    pub adaptive_parallel_cycles: u64,
}

impl PerfSample {
    /// Simulated cycles per wall-clock second.
    #[must_use]
    pub fn cycles_per_sec(&self) -> f64 {
        self.cycles as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Flit link traversals per wall-clock second.
    #[must_use]
    pub fn flit_hops_per_sec(&self) -> f64 {
        self.flit_hops as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

/// Reference numbers a later run is compared against.
#[derive(Debug, Clone, Copy)]
pub struct PerfBaseline {
    /// Configuration the baseline was recorded on.
    pub config: &'static str,
    /// Cycles/sec of the pre-rewrite kernel.
    pub cycles_per_sec: f64,
    /// Flit-hops/sec of the pre-rewrite kernel.
    pub flit_hops_per_sec: f64,
}

/// Serial (1-thread) throughput of the SoA-slab two-phase kernel,
/// re-recorded on the development container when the structure-of-arrays
/// rewrite and the sharded commit phase landed (8000 packets, best of
/// 3). These gate the CI smoke-perf regression floor; the historical
/// pre-rewrite numbers live in `perf/BENCH_perf_baseline.json`. Later
/// PRs append to the trajectory by comparing `BENCH_perf*.json` files
/// (`nucanet perf --baseline PATH`), not by editing these constants —
/// the closed-loop saturation configs have no baked-in baseline and are
/// gated purely through the committed `BENCH_perf*.json` trajectory.
pub const BASELINES: [PerfBaseline; 2] = [
    PerfBaseline {
        config: "fig7-mesh",
        cycles_per_sec: 31_500.0,
        flit_hops_per_sec: 2_020_000.0,
    },
    PerfBaseline {
        config: "halo",
        cycles_per_sec: 209_000.0,
        flit_hops_per_sec: 1_600_000.0,
    },
];

/// The baseline recorded for `config`, if any.
#[must_use]
pub fn baseline_for(config: &str) -> Option<PerfBaseline> {
    BASELINES.iter().find(|b| b.config == config).copied()
}

/// One run read back out of a committed `BENCH_perf*.json` trajectory
/// snapshot by [`parse_trajectory`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryRun {
    /// Configuration name (`"fig7-mesh"`, `"halo"`, `"mesh-sat"`,
    /// `"halo-sat"`).
    pub config: String,
    /// Cycle-kernel threads the recorded run used.
    pub threads: usize,
    /// Throughput the run recorded.
    pub cycles_per_sec: f64,
}

/// Extracts a `"key": "value"` string field from a rendered document.
fn str_field<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": \"");
    let start = json.find(&pat)? + pat.len();
    let rest = &json[start..];
    Some(&rest[..rest.find('"')?])
}

/// Extracts a `"key": number` field from a rendered document.
fn num_field(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = json.find(&pat)? + pat.len();
    let rest = &json[start..];
    let end = rest
        .find([',', '\n', '}'])
        .unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Parses a previously written `BENCH_perf*.json` document back into
/// its runs so a fresh measurement can be compared against it.
///
/// Refuses any document whose `"schema"` is not [`PERF_SCHEMA`]: a
/// perf-v1 file was measured by a different harness loop and lacks the
/// fields a comparison needs, so mixing schemas would silently compare
/// numbers that do not mean the same thing. The returned error says
/// which schema the file records and how to proceed (re-record the
/// reference with the current binary).
///
/// # Errors
///
/// Returns a human-readable message when the document has no schema
/// field, records a different schema, or contains a malformed run.
///
/// ```
/// use nucanet_bench::perf::parse_trajectory;
///
/// let v1 = "{\n  \"schema\": \"nucanet/perf-v1\",\n  \"runs\": []\n}\n";
/// let err = parse_trajectory(v1).unwrap_err();
/// assert!(err.contains("nucanet/perf-v1"), "{err}");
/// assert!(err.contains("re-record"), "{err}");
/// ```
pub fn parse_trajectory(json: &str) -> Result<Vec<TrajectoryRun>, String> {
    let schema = str_field(json, "schema")
        .ok_or_else(|| "not a BENCH_perf document: no \"schema\" field".to_string())?;
    if schema != PERF_SCHEMA {
        return Err(format!(
            "refusing to compare across perf schemas: the file records \
             \"{schema}\" but this binary emits \"{PERF_SCHEMA}\"; runs in \
             different schemas were measured by different harness loops and \
             their numbers do not line up — re-record the reference with the \
             current binary (see docs/PERFORMANCE.md)"
        ));
    }
    // Within a run object the fields render in a fixed order with
    // "config" first, so each run is the slice between consecutive
    // "config" keys.
    let mut starts: Vec<usize> = json.match_indices("\"config\":").map(|(i, _)| i).collect();
    starts.push(json.len());
    let mut runs = Vec::new();
    for w in starts.windows(2) {
        let obj = &json[w[0]..w[1]];
        let (Some(config), Some(threads), Some(cycles_per_sec)) = (
            str_field(obj, "config"),
            num_field(obj, "threads"),
            num_field(obj, "cycles_per_sec"),
        ) else {
            return Err(format!(
                "malformed run entry in BENCH_perf document (run {})",
                runs.len()
            ));
        };
        runs.push(TrajectoryRun {
            config: config.to_string(),
            threads: threads as usize,
            cycles_per_sec,
        });
    }
    Ok(runs)
}

fn lcg(x: &mut u64) -> u64 {
    *x = x
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *x >> 16
}

/// Router parameters for every timed config: Table 1 values, the
/// requested thread count, and — when `NUCANET_STRATEGY` is set — the
/// requested multicast replication strategy, so the perf trajectory
/// can be re-measured under tree or path replication without a new
/// harness entry point.
fn params(sim_threads: u32) -> RouterParams {
    let mut p = RouterParams {
        sim_threads,
        ..RouterParams::hpca07()
    };
    if let Some(s) = crate::strategy_from_env() {
        p.strategy = s;
    }
    p
}

fn drain<P>(net: &mut Network<P>, inbox: &mut Vec<nucanet_noc::Delivered<P>>) {
    while net.is_busy() || net.next_event_cycle().is_some() {
        net.advance().expect("perf traffic cannot deadlock");
        net.drain_all_delivered_into(inbox);
        inbox.clear();
    }
}

/// Finalises a measurement from the network's own counters.
fn sample<P>(config: &'static str, net: &Network<P>, wall: Duration) -> PerfSample {
    let phase = net.phase_stats();
    PerfSample {
        config,
        threads: net.sim_threads(),
        wall,
        cycles: net.stats().cycles,
        flit_hops: net.stats().total_flit_hops(),
        packets: net.stats().packets_delivered,
        parallel_cycles: phase.parallel_cycles,
        serial_cycles: phase.serial_cycles,
        compute_ns: phase.compute_ns,
        commit_ns: phase.commit_ns,
        dispatch_ns: phase.dispatch_ns,
        adaptive_serial_cycles: phase.adaptive_serial_cycles,
        adaptive_parallel_cycles: phase.adaptive_parallel_cycles,
    }
}

/// Times random unicast traffic on the Fig. 7 16×16 full mesh
/// (Design A geometry, XY routing, Table 1 router parameters) with
/// `sim_threads` cycle-kernel threads.
///
/// Injects `packets` packets in bursts of 64 (mixing 1-flit requests
/// and 5-flit block transfers like the cache protocol does) and steps
/// the network until every burst drains.
///
/// ```
/// use nucanet_bench::perf::mesh_throughput;
///
/// // Fixed-seed traffic: the simulated cycle count is identical on
/// // every run and machine; only the wall time varies.
/// let s = mesh_throughput(100, 1);
/// assert_eq!(s.packets, 100);
/// assert_eq!(s.cycles, mesh_throughput(100, 2).cycles);
/// assert!(s.cycles_per_sec() > 0.0);
/// ```
#[must_use]
pub fn mesh_throughput(packets: u64, sim_threads: u32) -> PerfSample {
    let topo = Topology::mesh(16, 16, &[1; 15], &[1; 15]);
    let table = RoutingSpec::Xy.build(&topo).expect("mesh routes");
    let mut net: Network<u64> = Network::new(topo, table, params(sim_threads));
    let mut x: u64 = 0x9E3779B97F4A7C15;
    let mut inbox = Vec::new();
    let start = Instant::now();
    let mut injected = 0u64;
    while injected < packets {
        let burst = 64.min(packets - injected);
        for _ in 0..burst {
            let r = lcg(&mut x);
            let a = (r % 256) as u32;
            let mut b = ((r >> 8) % 256) as u32;
            if a == b {
                b = (b + 1) % 256;
            }
            let flits = if r & 0x10000 == 0 { 1 } else { 5 };
            net.inject(Packet::new(
                Endpoint::at(NodeId(a)),
                Dest::unicast(Endpoint::at(NodeId(b))),
                flits,
                injected,
            ));
            injected += 1;
        }
        drain(&mut net, &mut inbox);
    }
    sample("fig7-mesh", &net, start.elapsed())
}

/// Times hub-to-spike traffic on the Design E halo (16 spikes of 16
/// banks, shortest-path routing) with `sim_threads` cycle-kernel
/// threads: alternating unicast requests to random banks and
/// full-spike path multicasts, the pattern the paper's concurrent
/// tag-match produces.
#[must_use]
pub fn halo_throughput(packets: u64, sim_threads: u32) -> PerfSample {
    let topo = Topology::halo(16, 16, &[1; 16], 2);
    let table = RoutingSpec::ShortestPath.build(&topo).expect("halo routes");
    // Shared endpoint lists: every multicast down a spike reuses one
    // `Arc<[Endpoint]>` instead of allocating a fresh path per packet.
    let spike_paths: Vec<std::sync::Arc<[Endpoint]>> = (0..16)
        .map(|s| (0..16).map(|p| Endpoint::at(topo.spike_node(s, p))).collect())
        .collect();
    let mut net: Network<u64> = Network::new(topo, table, params(sim_threads));
    let hub = Endpoint {
        node: NodeId(0),
        slot: 1,
    };
    let mut x: u64 = 0x6A09E667F3BCC909;
    let mut inbox = Vec::new();
    let start = Instant::now();
    let mut injected = 0u64;
    while injected < packets {
        let burst = 16.min(packets - injected);
        for _ in 0..burst {
            let r = lcg(&mut x);
            let s = (r % 16) as u16;
            if r & 0x1000 == 0 {
                // Concurrent tag-match: multicast down the whole spike.
                net.inject(Packet::new(
                    hub,
                    Dest::multicast_shared(std::sync::Arc::clone(&spike_paths[s as usize])),
                    1,
                    injected,
                ));
            } else {
                // Block transfer to one bank.
                let p = ((r >> 8) % 16) as u16;
                net.inject(Packet::new(
                    hub,
                    Dest::unicast(Endpoint::at(net.topology().spike_node(s, p))),
                    5,
                    injected,
                ));
            }
            injected += 1;
        }
        drain(&mut net, &mut inbox);
    }
    sample("halo", &net, start.elapsed())
}

/// Packets kept in flight by the closed-loop mesh measurement. Large
/// enough that most of the 256 routers are busy every cycle.
const MESH_SAT_WINDOW: u64 = 512;

/// Packets kept in flight by the closed-loop halo measurement. The hub
/// is the single injector, so the window models the cache controller's
/// outstanding-transaction budget rather than per-node sources.
const HALO_SAT_WINDOW: u64 = 64;

/// Packets kept in flight by the giant-mesh closed loop: thousands of
/// outstanding transactions across 1024 routers, the regime the
/// giant-topology CMP mode targets.
const GIANT_SAT_WINDOW: u64 = 2048;

/// Times the 16×16 mesh at saturation with `sim_threads` cycle-kernel
/// threads: a closed loop keeps a 512-packet window of random unicasts
/// in flight (refilling as deliveries complete) until `packets` have
/// been injected, then drains. Nearly every router stays on the
/// worklist every cycle — the regime the sharded compute phase targets.
#[must_use]
pub fn mesh_sat_throughput(packets: u64, sim_threads: u32) -> PerfSample {
    let topo = Topology::mesh(16, 16, &[1; 15], &[1; 15]);
    let table = RoutingSpec::Xy.build(&topo).expect("mesh routes");
    let mut net: Network<u64> = Network::new(topo, table, params(sim_threads));
    let mut x: u64 = 0x243F6A8885A308D3;
    let mut injected = 0u64;
    let mut completed = 0u64;
    let mut inbox = Vec::new();
    let start = Instant::now();
    while completed < packets {
        while injected < packets && injected - completed < MESH_SAT_WINDOW {
            let r = lcg(&mut x);
            let a = (r % 256) as u32;
            let mut b = ((r >> 8) % 256) as u32;
            if a == b {
                b = (b + 1) % 256;
            }
            let flits = if r & 0x10000 == 0 { 1 } else { 5 };
            net.inject(Packet::new(
                Endpoint::at(NodeId(a)),
                Dest::unicast(Endpoint::at(NodeId(b))),
                flits,
                injected,
            ));
            injected += 1;
        }
        net.advance().expect("perf traffic cannot deadlock");
        net.drain_all_delivered_into(&mut inbox);
        completed += inbox.drain(..).count() as u64;
    }
    sample("mesh-sat", &net, start.elapsed())
}

/// Times the Design E halo at saturation with `sim_threads`
/// cycle-kernel threads: a closed loop keeps a 64-transaction window
/// in flight from the hub — the usual mix of unicast block transfers
/// and full-spike tag-match multicasts — counting a multicast complete
/// only when all 16 spike banks received it.
#[must_use]
pub fn halo_sat_throughput(packets: u64, sim_threads: u32) -> PerfSample {
    let topo = Topology::halo(16, 16, &[1; 16], 2);
    let table = RoutingSpec::ShortestPath.build(&topo).expect("halo routes");
    let spike_paths: Vec<std::sync::Arc<[Endpoint]>> = (0..16)
        .map(|s| (0..16).map(|p| Endpoint::at(topo.spike_node(s, p))).collect())
        .collect();
    let mut net: Network<u64> = Network::new(topo, table, params(sim_threads));
    let hub = Endpoint {
        node: NodeId(0),
        slot: 1,
    };
    let mut x: u64 = 0xB7E151628AED2A6A;
    let mut injected = 0u64;
    let mut completed = 0u64;
    // Endpoint deliveries still owed per injected packet (multicasts
    // owe one per spike bank).
    let mut owed: Vec<u16> = Vec::new();
    let mut inbox: Vec<nucanet_noc::Delivered<u64>> = Vec::new();
    let start = Instant::now();
    while completed < packets {
        while injected < packets && injected - completed < HALO_SAT_WINDOW {
            let r = lcg(&mut x);
            let s = (r % 16) as u16;
            if r & 0x1000 == 0 {
                net.inject(Packet::new(
                    hub,
                    Dest::multicast_shared(std::sync::Arc::clone(&spike_paths[s as usize])),
                    1,
                    injected,
                ));
                owed.push(16);
            } else {
                let p = ((r >> 8) % 16) as u16;
                net.inject(Packet::new(
                    hub,
                    Dest::unicast(Endpoint::at(net.topology().spike_node(s, p))),
                    5,
                    injected,
                ));
                owed.push(1);
            }
            injected += 1;
        }
        net.advance().expect("perf traffic cannot deadlock");
        net.drain_all_delivered_into(&mut inbox);
        for d in inbox.drain(..) {
            let slot = &mut owed[d.packet.payload as usize];
            *slot -= 1;
            if *slot == 0 {
                completed += 1;
            }
        }
    }
    sample("halo-sat", &net, start.elapsed())
}

/// Times a 32×32 mesh (1024 routers) at saturation with `sim_threads`
/// cycle-kernel threads: `cores` injector endpoints spread across the
/// top row keep a shared 2048-packet window of random unicasts in
/// flight until `packets` transactions complete, then the loop drains.
/// Table construction for the 1024-router mesh happens inside the
/// measured region, so this config also smoke-tests the O(links)
/// routing builder at giant scale.
///
/// ```
/// use nucanet_bench::perf::giant_sat_throughput;
///
/// let s = giant_sat_throughput(64, 1, 4);
/// assert_eq!(s.packets, 64);
/// assert_eq!(s.config, "mesh-giant");
/// ```
#[must_use]
pub fn giant_sat_throughput(packets: u64, sim_threads: u32, cores: u16) -> PerfSample {
    let cores = cores.max(1);
    let topo = Topology::mesh(32, 32, &[1; 31], &[1; 31]);
    let table = RoutingSpec::Xy.build(&topo).expect("mesh routes");
    let srcs: Vec<Endpoint> = (0..cores)
        .map(|i| Endpoint::at(topo.node_at((i as u32 * 32 / cores as u32) as u16, 0)))
        .collect();
    let mut net: Network<u64> = Network::new(topo, table, params(sim_threads));
    let mut x: u64 = 0x452821E638D01377;
    let mut injected = 0u64;
    let mut completed = 0u64;
    let mut inbox = Vec::new();
    let start = Instant::now();
    while completed < packets {
        while injected < packets && injected - completed < GIANT_SAT_WINDOW {
            let src = srcs[(injected % cores as u64) as usize];
            let r = lcg(&mut x);
            let mut b = (r % 1024) as u32;
            if NodeId(b) == src.node {
                b = (b + 1) % 1024;
            }
            let flits = if r & 0x10000 == 0 { 1 } else { 5 };
            net.inject(Packet::new(
                src,
                Dest::unicast(Endpoint::at(NodeId(b))),
                flits,
                injected,
            ));
            injected += 1;
        }
        net.advance().expect("perf traffic cannot deadlock");
        net.drain_all_delivered_into(&mut inbox);
        completed += inbox.drain(..).count() as u64;
    }
    sample("mesh-giant", &net, start.elapsed())
}

/// One timed sweep-engine measurement: a screening sweep of
/// structurally identical points run end to end through
/// [`SweepRunner`], either warm (structural cache + per-worker arenas,
/// the default path) or fresh (`reuse(false)`: every point builds its
/// simulator from scratch, the pre-warm behaviour).
#[derive(Debug, Clone)]
pub struct SweepPerfSample {
    /// `"warm"` (arena reuse) or `"fresh"` (per-point construction).
    pub mode: &'static str,
    /// Sweep worker threads used.
    pub workers: usize,
    /// Points evaluated.
    pub points: u64,
    /// Wall-clock time for the whole sweep.
    pub wall: Duration,
}

impl SweepPerfSample {
    /// Sweep points evaluated per wall-clock second.
    #[must_use]
    pub fn points_per_sec(&self) -> f64 {
        self.points as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

/// Builds an `n`-point screening sweep: every point is the Design A
/// Multicast Fast-LRU machine (one shared `Arc<SystemConfig>`), with
/// the benchmark and workload seed rotating per point. Screening runs
/// triage thousands of candidate points with small traces, so per-point
/// construction — not simulation — dominates the fresh path; this is
/// the regime the warm-evaluation path exists for.
#[must_use]
pub fn screening_points(n: u64) -> Vec<SweepPoint> {
    const BENCHES: [&str; 8] = [
        "gcc", "twolf", "vpr", "art", "mesa", "parser", "mcf", "apsi",
    ];
    let config: std::sync::Arc<_> = Design::A.config(Scheme::MulticastFastLru).into();
    (0..n)
        .map(|i| SweepPoint {
            label: format!("screen-{i}").into(),
            config: config.clone(),
            profile: BenchmarkProfile::by_name(BENCHES[(i % 8) as usize]).expect("profile"),
            scale: ExperimentScale {
                warmup: 40,
                measured: 10,
                active_sets: 32,
                seed: derive_seed(0x5C4EE4, i),
            },
        })
        .collect()
}

/// Times one full sweep over `points` with `workers` worker threads,
/// warm (`reuse = true`) or fresh. Streaming capture keeps the metrics
/// footprint constant, the screening regime. The simulated results are
/// bit-identical between the two modes (and for any worker count); only
/// wall time differs.
#[must_use]
pub fn sweep_throughput(points: &[SweepPoint], workers: usize, warm: bool) -> SweepPerfSample {
    let runner = SweepRunner::with_workers(workers)
        .capture(MetricsCapture::Streaming)
        .reuse(warm);
    let start = Instant::now();
    let outcomes = runner.run(points);
    let wall = start.elapsed();
    assert_eq!(outcomes.len(), points.len());
    SweepPerfSample {
        mode: if warm { "warm" } else { "fresh" },
        workers,
        points: points.len() as u64,
        wall,
    }
}

/// Renders samples plus the baked-in baseline as the
/// `nucanet/perf-v2` JSON document written to `BENCH_perf.json`:
/// v1's throughput fields plus the cycle-kernel thread count, the
/// host's core count, and the two-phase breakdown
/// (parallel/serial cycles, compute/commit wall nanoseconds).
#[must_use]
pub fn render_perf_json(samples: &[PerfSample]) -> String {
    render_perf_json_with_sweep(samples, &[])
}

/// Like [`render_perf_json`] but also emits a `"points_per_sec"`
/// section recording sweep-engine throughput (one entry per
/// [`SweepPerfSample`]) and, when both a warm and a fresh run at the
/// same worker count are present, a `"warm_speedup"` summary field.
/// The section deliberately avoids the `"config":` token so
/// [`parse_trajectory`]'s run splitter is unaffected; an empty `sweep`
/// slice renders the exact [`render_perf_json`] document.
#[must_use]
pub fn render_perf_json_with_sweep(samples: &[PerfSample], sweep: &[SweepPerfSample]) -> String {
    fn f(x: f64) -> String {
        if x.is_finite() {
            format!("{x:.1}")
        } else {
            "null".into()
        }
    }
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{PERF_SCHEMA}\",\n"));
    out.push_str("  \"name\": \"perf\",\n");
    out.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    out.push_str("  \"runs\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let base = baseline_for(s.config);
        out.push_str("    {\n");
        out.push_str(&format!("      \"config\": \"{}\",\n", s.config));
        out.push_str(&format!("      \"threads\": {},\n", s.threads));
        out.push_str(&format!("      \"wall_ms\": {},\n", s.wall.as_millis()));
        out.push_str(&format!("      \"sim_cycles\": {},\n", s.cycles));
        out.push_str(&format!("      \"flit_hops\": {},\n", s.flit_hops));
        out.push_str(&format!("      \"packets\": {},\n", s.packets));
        out.push_str(&format!(
            "      \"parallel_cycles\": {},\n",
            s.parallel_cycles
        ));
        out.push_str(&format!("      \"serial_cycles\": {},\n", s.serial_cycles));
        out.push_str(&format!("      \"compute_ns\": {},\n", s.compute_ns));
        out.push_str(&format!("      \"commit_ns\": {},\n", s.commit_ns));
        out.push_str(&format!("      \"dispatch_ns\": {},\n", s.dispatch_ns));
        out.push_str(&format!(
            "      \"adaptive_serial_cycles\": {},\n",
            s.adaptive_serial_cycles
        ));
        out.push_str(&format!(
            "      \"adaptive_parallel_cycles\": {},\n",
            s.adaptive_parallel_cycles
        ));
        out.push_str(&format!(
            "      \"cycles_per_sec\": {},\n",
            f(s.cycles_per_sec())
        ));
        out.push_str(&format!(
            "      \"flit_hops_per_sec\": {},\n",
            f(s.flit_hops_per_sec())
        ));
        match base {
            Some(b) if b.cycles_per_sec.is_finite() => {
                out.push_str(&format!(
                    "      \"baseline_cycles_per_sec\": {},\n",
                    f(b.cycles_per_sec)
                ));
                out.push_str(&format!(
                    "      \"speedup_vs_baseline\": {}\n",
                    f(s.cycles_per_sec() / b.cycles_per_sec)
                ));
            }
            _ => {
                out.push_str("      \"baseline_cycles_per_sec\": null,\n");
                out.push_str("      \"speedup_vs_baseline\": null\n");
            }
        }
        out.push_str(if i + 1 == samples.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    if sweep.is_empty() {
        out.push_str("  ]\n");
    } else {
        out.push_str("  ],\n");
        out.push_str("  \"points_per_sec\": [\n");
        for (i, s) in sweep.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"mode\": \"{}\",\n", s.mode));
            out.push_str(&format!("      \"workers\": {},\n", s.workers));
            out.push_str(&format!("      \"points\": {},\n", s.points));
            out.push_str(&format!("      \"wall_ms\": {},\n", s.wall.as_millis()));
            out.push_str(&format!(
                "      \"points_per_sec\": {}\n",
                f(s.points_per_sec())
            ));
            out.push_str(if i + 1 == sweep.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        let speedup = warm_speedup(sweep);
        match speedup {
            Some(x) => {
                out.push_str("  ],\n");
                out.push_str(&format!("  \"warm_speedup\": {}\n", f(x)));
            }
            None => out.push_str("  ]\n"),
        }
    }
    out.push_str("}\n");
    out
}

/// Warm-over-fresh points/sec ratio when the slice holds both modes at
/// the same worker count; `None` otherwise.
#[must_use]
pub fn warm_speedup(sweep: &[SweepPerfSample]) -> Option<f64> {
    let warm = sweep.iter().find(|s| s.mode == "warm")?;
    let fresh = sweep
        .iter()
        .find(|s| s.mode == "fresh" && s.workers == warm.workers)?;
    Some(warm.points_per_sec() / fresh.points_per_sec().max(1e-9))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_simulate_deterministic_cycles() {
        let a = mesh_throughput(200, 1);
        let b = mesh_throughput(200, 1);
        assert_eq!(a.cycles, b.cycles, "same traffic, same cycles");
        assert_eq!(a.flit_hops, b.flit_hops);
        assert_eq!(a.packets, 200);
        assert_eq!(a.threads, 1);
        assert_eq!(a.parallel_cycles, 0, "serial run never shards");
    }

    #[test]
    fn thread_count_changes_only_wall_time() {
        for run in [mesh_throughput, halo_throughput, mesh_sat_throughput] {
            let serial = run(200, 1);
            let threaded = run(200, 2);
            assert_eq!(serial.cycles, threaded.cycles, "{}", serial.config);
            assert_eq!(serial.flit_hops, threaded.flit_hops, "{}", serial.config);
            assert_eq!(serial.packets, threaded.packets, "{}", serial.config);
            assert_eq!(threaded.threads, 2);
        }
    }

    #[test]
    fn halo_sample_delivers_multicasts() {
        let s = halo_throughput(64, 1);
        // Spike multicasts deliver to 16 banks each, so deliveries
        // exceed injections.
        assert!(s.packets > 64, "deliveries {}", s.packets);
        assert!(s.flit_hops > 0);
    }

    #[test]
    fn saturation_configs_complete_their_window() {
        let m = mesh_sat_throughput(300, 1);
        assert_eq!(m.packets, 300, "every unicast delivered");
        let h = halo_sat_throughput(100, 2);
        // Multicasts fan out, so endpoint deliveries exceed the 100
        // completed transactions.
        assert!(h.packets >= 100, "deliveries {}", h.packets);
        assert_eq!(h.config, "halo-sat");
        assert_eq!(
            halo_sat_throughput(100, 1).cycles,
            h.cycles,
            "saturation loop is bit-identical across thread counts"
        );
    }

    #[test]
    fn giant_config_is_bit_identical_across_threads_and_sources() {
        let serial = giant_sat_throughput(150, 1, 4);
        let threaded = giant_sat_throughput(150, 4, 4);
        assert_eq!(serial.cycles, threaded.cycles);
        assert_eq!(serial.flit_hops, threaded.flit_hops);
        assert_eq!(serial.packets, 150);
        // More sources change the traffic (different scenario), but the
        // run stays deterministic for a fixed source count.
        let eight = giant_sat_throughput(150, 1, 8);
        assert_eq!(eight.cycles, giant_sat_throughput(150, 2, 8).cycles);
    }

    #[test]
    fn trajectory_roundtrips_through_the_renderer() {
        let samples = [mesh_throughput(50, 1), halo_throughput(50, 2)];
        let runs = parse_trajectory(&render_perf_json(&samples)).expect("own output parses");
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].config, "fig7-mesh");
        assert_eq!(runs[0].threads, 1);
        assert_eq!(runs[1].config, "halo");
        assert_eq!(runs[1].threads, 2);
        for (run, s) in runs.iter().zip(&samples) {
            // The renderer rounds to one decimal; the parse must agree
            // to that precision.
            assert!(
                (run.cycles_per_sec - s.cycles_per_sec()).abs() <= 0.05 + 1e-9,
                "{} {} vs {}",
                run.config,
                run.cycles_per_sec,
                s.cycles_per_sec()
            );
        }
    }

    #[test]
    fn trajectory_refuses_other_schemas() {
        let v1 = "{\n  \"schema\": \"nucanet/perf-v1\",\n  \"runs\": [\n    {\n      \
                  \"config\": \"fig7-mesh\",\n      \"cycles_per_sec\": 28400.0\n    }\n  ]\n}\n";
        let err = parse_trajectory(v1).unwrap_err();
        assert!(err.contains("nucanet/perf-v1"), "{err}");
        assert!(err.contains(PERF_SCHEMA), "{err}");
        assert!(err.contains("re-record"), "{err}");

        let e2 = parse_trajectory("{\n  \"name\": \"perf\"\n}\n").unwrap_err();
        assert!(e2.contains("no \"schema\" field"), "{e2}");
    }

    #[test]
    fn sweep_section_renders_and_keeps_the_trajectory_parseable() {
        let points = screening_points(6);
        let fresh = sweep_throughput(&points, 1, false);
        let warm = sweep_throughput(&points, 1, true);
        assert_eq!(fresh.points, 6);
        assert_eq!(warm.mode, "warm");
        assert!(warm.points_per_sec() > 0.0);
        let sweep = [fresh, warm];
        assert!(warm_speedup(&sweep).is_some());
        let json = render_perf_json_with_sweep(&[mesh_throughput(50, 1)], &sweep);
        assert!(json.contains("\"points_per_sec\": ["), "{json}");
        assert!(json.contains("\"mode\": \"warm\""), "{json}");
        assert!(json.contains("\"warm_speedup\":"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // The section must not disturb the cycles/sec trajectory parser.
        let runs = parse_trajectory(&json).expect("sweep section leaves runs parseable");
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].config, "fig7-mesh");
    }

    #[test]
    fn screening_points_share_one_structure() {
        let points = screening_points(16);
        assert_eq!(points.len(), 16);
        for p in &points[1..] {
            assert!(
                std::sync::Arc::ptr_eq(&p.config, &points[0].config),
                "screening points must share one Arc'd config"
            );
        }
        // Seeds differ per point, so the workload is not 16 repeats.
        assert_ne!(points[0].scale.seed, points[1].scale.seed);
    }

    #[test]
    fn json_names_all_configs() {
        let json = render_perf_json(&[
            mesh_throughput(50, 1),
            halo_throughput(50, 1),
            mesh_sat_throughput(50, 1),
            halo_sat_throughput(50, 1),
        ]);
        assert!(json.contains("\"fig7-mesh\""));
        assert!(json.contains("\"halo\""));
        assert!(json.contains("\"mesh-sat\""));
        assert!(json.contains("\"halo-sat\""));
        assert!(json.contains("nucanet/perf-v2"));
        assert!(json.contains("\"threads\": 1"));
        assert!(json.contains("\"host_cores\":"));
        assert!(json.contains("\"compute_ns\":"));
        assert!(json.contains("\"dispatch_ns\":"));
        assert!(json.contains("\"adaptive_serial_cycles\":"));
        assert!(json.contains("\"adaptive_parallel_cycles\":"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
