//! `cargo bench --bench figures` — regenerates every table and figure
//! of the paper at the environment-configured scale and prints the
//! paper-vs-measured comparison, plus the ablation studies DESIGN.md
//! calls out (router pipelining, VC count, buffer depth).
//!
//! This target is intentionally `harness = false`: it is a result
//! generator, not a timing microbenchmark (see `micro.rs` for those).

use nucanet::config::ALL_DESIGNS;
use nucanet::experiments::{fig7, fig8, fig9, geomean, normalize_fig9, run_cell};
use nucanet::{Design, Scheme};
use nucanet_bench::{pct, scale_from_env};
use nucanet_noc::RouterParams;
use nucanet_workload::{BenchmarkProfile, ALL_BENCHMARKS};

fn main() {
    let scale = scale_from_env();
    println!(
        "=== nucanet figure/table regeneration (measured={}, warmup={}) ===\n",
        scale.measured, scale.warmup
    );

    // ---- Figure 7 ----
    println!("--- Figure 7: latency split, Unicast LRU, Design A ---");
    let rows = fig7(scale);
    let k = rows.len() as f64;
    let (b, n, m) = rows.iter().fold((0.0, 0.0, 0.0), |(a, c, d), r| {
        (a + r.bank, c + r.network, d + r.memory)
    });
    for r in &rows {
        println!(
            "  {:10} bank {} net {} mem {}",
            r.benchmark,
            pct(r.bank),
            pct(r.network),
            pct(r.memory)
        );
    }
    println!(
        "  avg: bank {}% net {}% mem {}%  (paper: 25 / 65 / 10)",
        pct(b / k),
        pct(n / k),
        pct(m / k)
    );

    // ---- Figure 8 ----
    println!("\n--- Figure 8: scheme comparison, Design A ---");
    let cells = fig8(scale);
    for s in nucanet::scheme::ALL_SCHEMES {
        let avg = geomean(
            cells
                .iter()
                .filter(|c| c.scheme == s)
                .map(|c| c.avg_latency),
        );
        let hit = geomean(
            cells
                .iter()
                .filter(|c| c.scheme == s && c.hit_latency > 0.0)
                .map(|c| c.hit_latency),
        );
        let ipc = geomean(cells.iter().filter(|c| c.scheme == s).map(|c| c.ipc));
        println!(
            "  {:22} avg {:7.1}  hit {:7.1}  ipc {:.3}",
            s.name(),
            avg,
            hit,
            ipc
        );
    }
    let mean = |s: Scheme| {
        geomean(
            cells
                .iter()
                .filter(|c| c.scheme == s)
                .map(|c| c.avg_latency),
        )
    };
    println!(
        "  mc-fastLRU vs mc-promotion: {:+.1}% latency (paper -37%), IPC {:+.1}% (paper +20%)",
        100.0 * (mean(Scheme::MulticastFastLru) / mean(Scheme::MulticastPromotion) - 1.0),
        100.0
            * (geomean(
                cells
                    .iter()
                    .filter(|c| c.scheme == Scheme::MulticastFastLru)
                    .map(|c| c.ipc)
            ) / geomean(
                cells
                    .iter()
                    .filter(|c| c.scheme == Scheme::MulticastPromotion)
                    .map(|c| c.ipc)
            ) - 1.0)
    );

    // ---- Figure 9 ----
    println!("\n--- Figure 9: normalized IPC by design (Multicast Fast-LRU) ---");
    let cells9 = fig9(scale);
    let norm = normalize_fig9(&cells9);
    for d in ALL_DESIGNS {
        let g = geomean(norm.iter().filter(|(c, _)| c.design == d).map(|(_, v)| *v));
        println!("  Design {:?}: {:.3}", d, g);
    }
    println!("  (paper: A 1.00, B ~1.00, C 0.86, D 0.88, E 1.12, F 1.13)");
    let headline = geomean(ALL_BENCHMARKS.iter().map(|b: &BenchmarkProfile| {
        let (_, best) = run_cell(Design::F, Scheme::MulticastFastLru, b, scale);
        let (_, base) = run_cell(Design::A, Scheme::MulticastPromotion, b, scale);
        best / base
    }));
    println!("  headline F/fastLRU vs A/promotion: {headline:.2}x (paper 1.38x)");

    // ---- Table 4 ----
    println!("\n--- Table 4: area ---");
    for a in nucanet::area::table4() {
        let (bs, rs, ls) = a.breakdown.shares();
        println!(
            "  Design {:?}: bank {} router {} link {}  L2 {:7.1} mm2, chip {:7.1} mm2",
            a.design,
            pct(bs),
            pct(rs),
            pct(ls),
            a.breakdown.l2_mm2(),
            a.chip_mm2
        );
    }

    // ---- Ablations ----
    println!("\n--- Ablation: single-cycle vs pipelined router (gcc, Design A, mc-fastLRU) ---");
    let gcc = BenchmarkProfile::by_name("gcc").expect("gcc exists");
    for stages in [1u32, 2, 4] {
        let mut cfg = Design::A.config(Scheme::MulticastFastLru);
        cfg.router = RouterParams::pipelined(stages);
        let (metrics, ipc) = run_with_cfg(&cfg, &gcc, scale);
        println!(
            "  {stages}-stage router: avg latency {:7.1}, ipc {:.3}",
            metrics.avg_latency(),
            ipc
        );
    }

    println!("\n--- Ablation: VCs per port (gcc, Design A, mc-fastLRU) ---");
    for vcs in [2u8, 4, 8] {
        let mut cfg = Design::A.config(Scheme::MulticastFastLru);
        cfg.router.vcs_per_port = vcs;
        let (metrics, _) = run_with_cfg(&cfg, &gcc, scale);
        println!(
            "  {vcs} VCs: avg latency {:7.1}, replication blocked cycles {}",
            metrics.avg_latency(),
            metrics.net.replication_blocked_cycles
        );
    }

    println!("\n--- Ablation: VC buffer depth (gcc, Design A, mc-fastLRU) ---");
    for depth in [2u8, 4, 8] {
        let mut cfg = Design::A.config(Scheme::MulticastFastLru);
        cfg.router.vc_depth = depth;
        let (metrics, _) = run_with_cfg(&cfg, &gcc, scale);
        println!("  depth {depth}: avg latency {:7.1}", metrics.avg_latency());
    }

    println!("\n--- Ablation: outstanding-transaction window (gcc, Design A, mc-fastLRU) ---");
    for window in [1usize, 2, 4, 8] {
        let mut cfg = Design::A.config(Scheme::MulticastFastLru);
        cfg.max_outstanding = window;
        let (metrics, _) = run_with_cfg(&cfg, &gcc, scale);
        println!(
            "  window {window}: avg latency {:7.1}, {} cycles total, p90 packet latency {:?}",
            metrics.avg_latency(),
            metrics.cycles,
            metrics.net.latency_quantile(0.9)
        );
    }

    println!("\n--- Extra baseline: static NUCA vs the paper's schemes (gcc, Design A) ---");
    for scheme in [
        Scheme::StaticNuca,
        Scheme::UnicastPromotion,
        Scheme::MulticastFastLru,
    ] {
        let cfg = Design::A.config(scheme);
        let (metrics, ipc) = run_with_cfg(&cfg, &gcc, scale);
        println!(
            "  {:20} avg latency {:7.1}, ipc {:.3}, MRU hit share {:.0}%",
            scheme.name(),
            metrics.avg_latency(),
            ipc,
            100.0 * metrics.mru_concentration()
        );
    }

    println!("\ndone.");
}

fn run_with_cfg(
    cfg: &nucanet::SystemConfig,
    profile: &BenchmarkProfile,
    scale: nucanet::experiments::ExperimentScale,
) -> (nucanet::Metrics, f64) {
    use nucanet_workload::{CoreModel, SynthConfig, TraceGenerator};
    let mut gen = TraceGenerator::new(
        *profile,
        SynthConfig {
            active_sets: scale.active_sets,
            seed: scale.seed,
            ..Default::default()
        },
    );
    let trace = gen.generate(scale.warmup, scale.measured);
    let mut sys = nucanet::CacheSystem::new(cfg);
    let metrics = sys.run(&trace).expect("benchmark harness injects no faults");
    let ipc = metrics.ipc(&CoreModel::for_profile(profile));
    (metrics, ipc)
}
