//! Criterion microbenchmarks of the simulator substrates: network
//! stepping throughput, multicast delivery, functional cache access
//! rate, trace generation, and a small end-to-end system run per
//! scheme. These measure *our simulator's* performance (useful when
//! optimising it), not the paper's architecture metrics — those come
//! from `benches/figures.rs` and the `fig*`/`tables` binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use nucanet::experiments::ExperimentScale;
use nucanet::{CacheSystem, Design, Scheme};
use nucanet_cache::{AddressMap, CacheModel, ReplacementPolicy};
use nucanet_noc::{Dest, Endpoint, Network, NodeId, Packet, RouterParams, RoutingSpec, Topology};
use nucanet_workload::{BenchmarkProfile, SynthConfig, TraceGenerator};

fn unit(n: u16) -> Vec<u32> {
    vec![1; n as usize]
}

fn bench_network_random_traffic(c: &mut Criterion) {
    c.bench_function("noc/mesh16_random_200pkts", |bch| {
        bch.iter(|| {
            let topo = Topology::mesh(16, 16, &unit(15), &unit(15));
            let table = RoutingSpec::Xy.build(&topo).expect("mesh routes");
            let mut net: Network<u32> = Network::new(topo, table, RouterParams::default());
            let mut x: u32 = 1;
            for i in 0..200u32 {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                let a = x % 256;
                let b = (x >> 8) % 256;
                if a == b {
                    continue;
                }
                net.inject(Packet::new(
                    Endpoint::at(NodeId(a)),
                    Dest::unicast(Endpoint::at(NodeId(b))),
                    if i.is_multiple_of(2) { 1 } else { 5 },
                    i,
                ));
            }
            while net.is_busy() || net.next_event_cycle().is_some() {
                net.advance().expect("no faults injected");
            }
            net.stats().packets_delivered
        })
    });
}

fn bench_multicast_column(c: &mut Criterion) {
    c.bench_function("noc/multicast_column_16", |bch| {
        bch.iter(|| {
            let topo = Topology::mesh(2, 16, &unit(1), &unit(15));
            let table = RoutingSpec::Xy.build(&topo).expect("mesh routes");
            let mut net: Network<u32> = Network::new(topo, table, RouterParams::default());
            let path: Vec<Endpoint> = (0..16)
                .map(|r| Endpoint::at(net.topology().node_at(1, r)))
                .collect();
            for _ in 0..20 {
                net.inject(Packet::new(
                    Endpoint::at(net.topology().node_at(0, 0)),
                    Dest::multicast(path.clone()),
                    1,
                    0,
                ));
                while net.is_busy() || net.next_event_cycle().is_some() {
                    net.advance().expect("no faults injected");
                }
            }
            net.stats().packets_delivered
        })
    });
}

fn bench_cache_model(c: &mut Criterion) {
    c.bench_function("cache/functional_100k_accesses", |bch| {
        bch.iter(|| {
            let mut l2 = CacheModel::new(AddressMap::hpca07(), 16, ReplacementPolicy::Lru);
            let mut x: u32 = 1;
            for _ in 0..100_000 {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                l2.access(x & !0x3F, x.is_multiple_of(4));
            }
            l2.stats().hits
        })
    });
}

fn bench_trace_generation(c: &mut Criterion) {
    c.bench_function("workload/generate_50k", |bch| {
        bch.iter(|| {
            let profile = BenchmarkProfile::by_name("gcc").expect("gcc exists");
            let mut gen = TraceGenerator::new(profile, SynthConfig::default());
            gen.generate(0, 50_000).len()
        })
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("system/end_to_end_small");
    g.sample_size(10);
    for scheme in [Scheme::UnicastLru, Scheme::MulticastFastLru] {
        g.bench_with_input(
            BenchmarkId::from_parameter(scheme.name()),
            &scheme,
            |bch, &scheme| {
                bch.iter(|| {
                    let scale = ExperimentScale {
                        warmup: 2_000,
                        measured: 300,
                        active_sets: 64,
                        seed: 7,
                    };
                    let profile = BenchmarkProfile::by_name("twolf").expect("twolf exists");
                    let mut gen = TraceGenerator::new(
                        profile,
                        SynthConfig {
                            active_sets: scale.active_sets,
                            seed: scale.seed,
                            ..Default::default()
                        },
                    );
                    let trace = gen.generate(scale.warmup, scale.measured);
                    let mut sys = CacheSystem::new(&Design::A.config(scheme));
                    sys.run(&trace).expect("no faults injected").avg_latency()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_network_random_traffic,
    bench_multicast_column,
    bench_cache_model,
    bench_trace_generation,
    bench_end_to_end
);
criterion_main!(benches);
