//! Whole-L2 functional model: one bank set per column.

use crate::addr::{AddressMap, BlockAddr};
use crate::bank::Block;
use crate::bankset::{AccessResult, BankSetModel, ReplacementPolicy};

/// Hit/miss statistics of a [`CacheModel`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Hits at any position.
    pub hits: u64,
    /// Hits by stack position (0 = MRU bank). Length = ways.
    pub hits_by_position: Vec<u64>,
    /// Evictions whose victim was dirty (require writeback).
    pub dirty_evictions: u64,
    /// Evictions total (set was full on miss).
    pub evictions: u64,
}

impl CacheStats {
    /// Hit rate in [0, 1]; 0 when nothing was accessed.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Fraction of hits landing in the MRU bank.
    pub fn mru_concentration(&self) -> f64 {
        if self.hits == 0 {
            0.0
        } else {
            self.hits_by_position.first().copied().unwrap_or(0) as f64 / self.hits as f64
        }
    }
}

/// A full L2 cache: `columns` bank sets of `ways` ways each.
#[derive(Debug, Clone)]
pub struct CacheModel {
    map: AddressMap,
    columns: Vec<BankSetModel>,
    stats: CacheStats,
}

impl CacheModel {
    /// Creates an empty L2. The paper's base configuration is
    /// `CacheModel::new(AddressMap::hpca07(), 16, policy)` — 16 columns
    /// × 16 ways × 1024 sets × 64 B = 16 MB.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero.
    pub fn new(map: AddressMap, ways: usize, policy: ReplacementPolicy) -> Self {
        let columns = (0..map.columns())
            .map(|_| BankSetModel::new(ways, map.sets() as usize, policy))
            .collect();
        CacheModel {
            map,
            columns,
            stats: CacheStats {
                hits_by_position: vec![0; ways],
                ..Default::default()
            },
        }
    }

    /// The address map in use.
    pub fn map(&self) -> AddressMap {
        self.map
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.map.columns() as u64
            * self.columns[0].ways() as u64
            * self.map.sets() as u64
            * self.map.block_bytes() as u64
    }

    /// Accesses a 32-bit physical address.
    pub fn access(&mut self, addr: u32, write: bool) -> AccessResult {
        let b = self.map.decompose(addr);
        self.access_block(b, write)
    }

    /// Accesses a pre-decomposed block address.
    pub fn access_block(&mut self, b: BlockAddr, write: bool) -> AccessResult {
        let r = self.columns[b.column as usize].access(b.index as usize, b.tag, write);
        self.stats.accesses += 1;
        match r {
            AccessResult::Hit { position } => {
                self.stats.hits += 1;
                self.stats.hits_by_position[position] += 1;
            }
            AccessResult::Miss { evicted } => {
                if let Some(e) = evicted {
                    self.stats.evictions += 1;
                    if e.dirty {
                        self.stats.dirty_evictions += 1;
                    }
                }
            }
        }
        r
    }

    /// Read-only view of one column's bank set.
    pub fn column(&self, column: u32) -> &BankSetModel {
        &self.columns[column as usize]
    }

    /// Statistics so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics (e.g. after cache warm-up) without touching
    /// contents.
    pub fn reset_stats(&mut self) {
        let ways = self.stats.hits_by_position.len();
        self.stats = CacheStats {
            hits_by_position: vec![0; ways],
            ..Default::default()
        };
    }
}

/// Convenience: was the eviction returned by an access dirty?
pub fn needs_writeback(evicted: &Option<Block>) -> bool {
    evicted.is_some_and(|b| b.dirty)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(policy: ReplacementPolicy) -> CacheModel {
        CacheModel::new(AddressMap::hpca07(), 16, policy)
    }

    #[test]
    fn capacity_is_16_mb() {
        let m = model(ReplacementPolicy::Lru);
        assert_eq!(m.capacity_bytes(), 16 * 1024 * 1024);
    }

    #[test]
    fn repeat_access_hits_mru() {
        let mut m = model(ReplacementPolicy::Lru);
        assert!(!m.access(0xAB00_0000, false).is_hit());
        let r = m.access(0xAB00_0000, false);
        assert_eq!(r, AccessResult::Hit { position: 0 });
        assert_eq!(m.stats().hits, 1);
        assert!((m.stats().mru_concentration() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn different_columns_do_not_interfere() {
        let mut m = model(ReplacementPolicy::Lru);
        m.access(0x0000, false); // column 0
        m.access(0x0040, false); // column 1
        assert!(m.access(0x0000, false).is_hit());
        assert!(m.access(0x0040, false).is_hit());
    }

    #[test]
    fn seventeen_distinct_tags_evict() {
        let mut m = model(ReplacementPolicy::Lru);
        // Same column (0), same index (0), 17 distinct tags.
        let tag_stride = 1u32 << 20; // tag starts at bit 20
        for t in 0..17u32 {
            let r = m.access(t * tag_stride, false);
            assert!(!r.is_hit());
        }
        // Tag 0 was LRU and must be gone.
        assert!(!m.access(0, false).is_hit());
        assert_eq!(m.stats().evictions, 2); // 17th install + this re-install
    }

    #[test]
    fn dirty_eviction_counted() {
        let mut m = model(ReplacementPolicy::Lru);
        let tag_stride = 1u32 << 20;
        m.access(0, true); // dirty block
        for t in 1..=16u32 {
            m.access(t * tag_stride, false);
        }
        assert_eq!(m.stats().dirty_evictions, 1);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut m = model(ReplacementPolicy::Lru);
        m.access(0x5000, false);
        m.reset_stats();
        assert_eq!(m.stats().accesses, 0);
        assert!(
            m.access(0x5000, false).is_hit(),
            "contents must survive reset"
        );
    }

    #[test]
    fn hits_by_position_tracks_depth() {
        let mut m = model(ReplacementPolicy::Lru);
        let tag_stride = 1u32 << 20;
        m.access(0, false);
        m.access(tag_stride, false);
        // Stack: [t1, t0]. Access t0: hit at position 1.
        m.access(0, false);
        assert_eq!(m.stats().hits_by_position[1], 1);
        assert_eq!(m.stats().hits_by_position[0], 0);
    }

    #[test]
    fn needs_writeback_helper() {
        assert!(!needs_writeback(&None));
        assert!(!needs_writeback(&Some(Block {
            tag: 1,
            dirty: false
        })));
        assert!(needs_writeback(&Some(Block {
            tag: 1,
            dirty: true
        })));
    }

    #[test]
    fn lru_hit_rate_at_least_promotion_on_looping_scan() {
        // A cyclic scan over a working set slightly larger than one way
        // set; LRU and promotion differ, LRU adapts faster after the
        // warm-up phase for skewed reuse.
        let mut lru = model(ReplacementPolicy::Lru);
        let mut promo = model(ReplacementPolicy::Promotion);
        let tag_stride = 1u32 << 20;
        let mut x: u32 = 7;
        for _ in 0..30_000 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            // Zipf-ish skew over 24 tags in column 0 / index 0.
            let r = (x >> 7) % 64;
            let tag = (r * r / 180).min(23);
            lru.access(tag * tag_stride, false);
            promo.access(tag * tag_stride, false);
        }
        assert!(lru.stats().hit_rate() >= promo.stats().hit_rate());
        // And LRU concentrates hits at the MRU position harder.
        assert!(lru.stats().mru_concentration() >= promo.stats().mru_concentration());
    }
}
