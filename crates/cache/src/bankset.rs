//! The position-stack model of one distributed bank set.
//!
//! A bank set is the paper's unit of associativity: one mesh column or
//! halo spike whose banks together hold the `W` ways of every set, in
//! distance order — position 0 lives in the bank closest to the core
//! (MRU bank), position `W-1` in the farthest (LRU bank).
//!
//! Replacement policies:
//!
//! * **LRU / Fast-LRU** — a hit moves the block to position 0 and shifts
//!   the intervening blocks one position away from the core; a miss
//!   installs at position 0, shifts everything, and evicts position
//!   `W-1`. Fast-LRU (§3.2) performs exactly these movements, merely
//!   overlapped with tag-matching, so the two are functionally one
//!   policy.
//! * **Promotion** (D-NUCA) — a hit swaps the block with the one in the
//!   next-closer position; a miss installs at position 0 with recursive
//!   push-down (the paper's implementation, §6.1 footnote).

use crate::bank::Block;

/// Replacement policy of a bank set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplacementPolicy {
    /// D-NUCA promotion: hit blocks move one bank closer (swap).
    Promotion,
    /// Full LRU ordering across the bank set.
    Lru,
    /// Fast-LRU: same ordering as LRU, replacement overlapped with
    /// tag-match in the timed protocol.
    FastLru,
}

impl ReplacementPolicy {
    /// Whether the functional block movement equals LRU's.
    pub fn orders_like_lru(self) -> bool {
        matches!(self, ReplacementPolicy::Lru | ReplacementPolicy::FastLru)
    }
}

/// Outcome of one functional access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessResult {
    /// The block was found at stack `position` (0 = MRU bank).
    Hit {
        /// Way position prior to the access.
        position: usize,
    },
    /// The block was absent; it has been installed at position 0.
    Miss {
        /// The evicted LRU block, if the set was full. Dirty evictions
        /// must be written back.
        evicted: Option<Block>,
    },
}

impl AccessResult {
    /// True for [`AccessResult::Hit`].
    pub fn is_hit(&self) -> bool {
        matches!(self, AccessResult::Hit { .. })
    }
}

/// Functional model of one bank set (all sets of one column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankSetModel {
    ways: usize,
    sets: usize,
    policy: ReplacementPolicy,
    /// Ways per bank along the column, MRU bank first. Promotion moves
    /// blocks at *bank* granularity (D-NUCA), so multi-way banks change
    /// its behaviour; LRU/Fast-LRU are segment-agnostic.
    segments: Vec<usize>,
    /// `stack[set][position]`; position 0 is the MRU (closest) way.
    stack: Vec<Vec<Option<Block>>>,
}

impl BankSetModel {
    /// Creates an empty bank set of `ways` ways × `sets` sets, with
    /// one-way banks (the paper's Designs A/B/E geometry).
    ///
    /// # Panics
    ///
    /// Panics if `ways` or `sets` is zero.
    pub fn new(ways: usize, sets: usize, policy: ReplacementPolicy) -> Self {
        assert!(ways >= 1, "bank set needs at least one way");
        Self::with_segments(vec![1; ways], sets, policy)
    }

    /// Creates an empty bank set whose ways are grouped into banks of
    /// the given sizes (e.g. `[1, 1, 2, 4, 8]` for Designs D/F).
    ///
    /// # Panics
    ///
    /// Panics if `segments` is empty, contains a zero, or `sets` is 0.
    pub fn with_segments(segments: Vec<usize>, sets: usize, policy: ReplacementPolicy) -> Self {
        assert!(!segments.is_empty(), "bank set needs at least one bank");
        assert!(
            segments.iter().all(|&w| w >= 1),
            "banks need at least one way"
        );
        assert!(sets >= 1, "bank set needs at least one set");
        let ways = segments.iter().sum();
        BankSetModel {
            ways,
            sets,
            policy,
            segments,
            stack: vec![vec![None; ways]; sets],
        }
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Sets per bank.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// The policy in force.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Performs one access to (`set`, `tag`); `write` marks dirty.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    pub fn access(&mut self, set: usize, tag: u32, write: bool) -> AccessResult {
        let ways = &mut self.stack[set];
        if let Some(pos) = ways.iter().position(|b| b.is_some_and(|b| b.tag == tag)) {
            if write {
                ways[pos].as_mut().expect("position found above").dirty = true;
            }
            match self.policy {
                ReplacementPolicy::Promotion => Self::promote(&self.segments, ways, pos),
                ReplacementPolicy::Lru | ReplacementPolicy::FastLru => {
                    let blk = ways.remove(pos);
                    ways.insert(0, blk);
                }
            }
            return AccessResult::Hit { position: pos };
        }
        // Miss: install at MRU, push everything down, evict the LRU.
        let evicted = ways.pop().expect("ways is non-empty").filter(|_| true);
        ways.insert(0, Some(Block { tag, dirty: write }));
        AccessResult::Miss { evicted }
    }

    /// D-NUCA promotion at bank granularity: the hit block moves onto
    /// the *top* of the next-closer bank; that bank's bottom block
    /// descends onto the top of the hit bank. With one-way banks this
    /// degenerates to the classic position swap.
    fn promote(segments: &[usize], ways: &mut Vec<Option<Block>>, pos: usize) {
        // Split the flat stack into per-bank sub-stacks and mirror the
        // timed protocol's extract/push_top operations on them.
        let mut banks: Vec<Vec<Option<Block>>> = Vec::with_capacity(segments.len());
        let mut off = 0usize;
        let mut bank = 0usize;
        for (i, &w) in segments.iter().enumerate() {
            banks.push(ways[off..off + w].to_vec());
            if (off..off + w).contains(&pos) {
                bank = i;
            }
            off += w;
        }
        if bank == 0 {
            // Hit in the MRU bank: internal touch to its top.
            let blk = ways.remove(pos);
            ways.insert(0, blk);
            return;
        }
        // Extract the hit block; the hole sinks to the bank's bottom.
        let within = pos - segments[..bank].iter().sum::<usize>();
        let hit = banks[bank].remove(within);
        banks[bank].push(None);
        // Push the hit block onto the previous bank's top; a bottom hole
        // absorbs it, otherwise the bottom block is displaced.
        let displaced = {
            let pb = &mut banks[bank - 1];
            let out = if let Some(h) = pb.iter().rposition(Option::is_none) {
                pb.remove(h);
                None
            } else {
                pb.pop().expect("banks have at least one way")
            };
            pb.insert(0, hit);
            out
        };
        // The displaced block descends onto the hit bank's top, filling
        // the extraction hole.
        if let Some(d) = displaced {
            let hb = &mut banks[bank];
            let h = hb
                .iter()
                .rposition(Option::is_none)
                .expect("extraction left a hole");
            hb.remove(h);
            hb.insert(0, Some(d));
        }
        *ways = banks.concat();
        debug_assert_eq!(ways.len(), segments.iter().sum::<usize>());
    }

    /// Block at (`set`, `position`), if any.
    pub fn block_at(&self, set: usize, position: usize) -> Option<Block> {
        self.stack[set][position]
    }

    /// The full stack of `set` (holes included) in position order.
    pub fn stack_of(&self, set: usize) -> &[Option<Block>] {
        &self.stack[set]
    }

    /// Number of resident blocks in `set`.
    pub fn occupancy(&self, set: usize) -> usize {
        self.stack[set].iter().flatten().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tags(m: &BankSetModel, set: usize) -> Vec<Option<u32>> {
        m.stack_of(set).iter().map(|b| b.map(|b| b.tag)).collect()
    }

    #[test]
    fn cold_miss_installs_at_mru() {
        let mut m = BankSetModel::new(4, 1, ReplacementPolicy::Lru);
        let r = m.access(0, 10, false);
        assert_eq!(r, AccessResult::Miss { evicted: None });
        assert_eq!(tags(&m, 0), vec![Some(10), None, None, None]);
    }

    #[test]
    fn lru_hit_moves_to_front_and_shifts() {
        let mut m = BankSetModel::new(4, 1, ReplacementPolicy::Lru);
        for t in [1, 2, 3, 4] {
            m.access(0, t, false);
        }
        // Stack: 4,3,2,1. Hit on 2 (position 2).
        let r = m.access(0, 2, false);
        assert_eq!(r, AccessResult::Hit { position: 2 });
        assert_eq!(tags(&m, 0), vec![Some(2), Some(4), Some(3), Some(1)]);
    }

    #[test]
    fn promotion_hit_swaps_one_position() {
        let mut m = BankSetModel::new(4, 1, ReplacementPolicy::Promotion);
        for t in [1, 2, 3, 4] {
            m.access(0, t, false);
        }
        // Stack: 4,3,2,1. Promotion hit on 1 (position 3) swaps with 2.
        let r = m.access(0, 1, false);
        assert_eq!(r, AccessResult::Hit { position: 3 });
        assert_eq!(tags(&m, 0), vec![Some(4), Some(3), Some(1), Some(2)]);
    }

    #[test]
    fn promotion_hit_at_mru_is_stable() {
        let mut m = BankSetModel::new(2, 1, ReplacementPolicy::Promotion);
        m.access(0, 1, false);
        let r = m.access(0, 1, false);
        assert_eq!(r, AccessResult::Hit { position: 0 });
        assert_eq!(tags(&m, 0), vec![Some(1), None]);
    }

    #[test]
    fn full_set_miss_evicts_lru() {
        let mut m = BankSetModel::new(2, 1, ReplacementPolicy::Lru);
        m.access(0, 1, false);
        m.access(0, 2, false);
        let r = m.access(0, 3, false);
        assert_eq!(
            r,
            AccessResult::Miss {
                evicted: Some(Block {
                    tag: 1,
                    dirty: false
                })
            }
        );
        assert_eq!(tags(&m, 0), vec![Some(3), Some(2)]);
    }

    #[test]
    fn dirty_block_evicts_dirty() {
        let mut m = BankSetModel::new(1, 1, ReplacementPolicy::Lru);
        m.access(0, 1, true);
        let r = m.access(0, 2, false);
        assert_eq!(
            r,
            AccessResult::Miss {
                evicted: Some(Block {
                    tag: 1,
                    dirty: true
                })
            }
        );
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut m = BankSetModel::new(2, 1, ReplacementPolicy::Lru);
        m.access(0, 1, false);
        m.access(0, 1, true);
        assert_eq!(
            m.block_at(0, 0),
            Some(Block {
                tag: 1,
                dirty: true
            })
        );
    }

    #[test]
    fn fastlru_equals_lru_functionally() {
        let mut lru = BankSetModel::new(8, 4, ReplacementPolicy::Lru);
        let mut fast = BankSetModel::new(8, 4, ReplacementPolicy::FastLru);
        // Deterministic pseudo-random access pattern.
        let mut x: u32 = 12345;
        for _ in 0..5_000 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            let set = (x >> 8) as usize % 4;
            let tag = (x >> 16) % 12;
            let write = x.is_multiple_of(3);
            assert_eq!(lru.access(set, tag, write), fast.access(set, tag, write));
        }
        assert_eq!(lru.stack, fast.stack);
    }

    #[test]
    fn lru_beats_promotion_hit_rate_under_locality() {
        // Stack-distance-skewed workload: LRU keeps the hot set compact,
        // promotion converges slowly (the paper reports 14% better hit
        // rate for LRU).
        let mut lru = BankSetModel::new(4, 1, ReplacementPolicy::Lru);
        let mut promo = BankSetModel::new(4, 1, ReplacementPolicy::Promotion);
        let mut hits = [0u32; 2];
        let mut x: u32 = 99;
        for _ in 0..20_000 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            // 6-tag working set over 4 ways, skewed toward low tags.
            let r = (x >> 10) % 100;
            let tag = match r {
                0..=44 => 0,
                45..=69 => 1,
                70..=84 => 2,
                85..=92 => 3,
                93..=97 => 4,
                _ => 5,
            };
            if lru.access(0, tag, false).is_hit() {
                hits[0] += 1;
            }
            if promo.access(0, tag, false).is_hit() {
                hits[1] += 1;
            }
        }
        assert!(
            hits[0] >= hits[1],
            "LRU {} vs Promotion {}",
            hits[0],
            hits[1]
        );
    }

    #[test]
    fn occupancy_counts_blocks() {
        let mut m = BankSetModel::new(4, 2, ReplacementPolicy::Lru);
        assert_eq!(m.occupancy(0), 0);
        m.access(0, 1, false);
        m.access(0, 2, false);
        m.access(1, 3, false);
        assert_eq!(m.occupancy(0), 2);
        assert_eq!(m.occupancy(1), 1);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_ways_panics() {
        let _ = BankSetModel::new(0, 1, ReplacementPolicy::Lru);
    }

    #[test]
    fn segment_promotion_moves_bank_granular() {
        // Banks of [1, 1, 2]: stack positions 0 | 1 | 2,3.
        let mut m = BankSetModel::with_segments(vec![1, 1, 2], 1, ReplacementPolicy::Promotion);
        for t in [1, 2, 3, 4] {
            m.access(0, t, false);
        }
        // Stack: 4 | 3 | 2,1. Hit tag 1 at position 3 (bank 2): the hit
        // block mounts bank 1's top; bank 1's block (3) descends onto
        // bank 2's top.
        let r = m.access(0, 1, false);
        assert_eq!(r, AccessResult::Hit { position: 3 });
        assert_eq!(tags(&m, 0), vec![Some(4), Some(1), Some(3), Some(2)]);
    }

    #[test]
    fn segment_promotion_within_mru_bank_touches() {
        // One 4-way MRU bank: an internal hit moves to its top.
        let mut m = BankSetModel::with_segments(vec![4], 1, ReplacementPolicy::Promotion);
        for t in [1, 2, 3] {
            m.access(0, t, false);
        }
        m.access(0, 1, false); // hit at position 2
        assert_eq!(tags(&m, 0), vec![Some(1), Some(3), Some(2), None]);
    }

    #[test]
    fn segment_promotion_into_holey_prev_bank() {
        // Previous bank with a hole absorbs the promoted block.
        let mut m = BankSetModel::with_segments(vec![2, 2], 1, ReplacementPolicy::Promotion);
        // Fill only 3 ways: stack 3 | 2 | 1 | hole... build carefully:
        m.access(0, 1, false); // 1,_,_,_
        m.access(0, 2, false); // 2,1,_,_
        m.access(0, 3, false); // 3,2,1,_
                               // Hit tag 1 at position 2 (bank 1): bank 0 is full -> its bottom
                               // (2) descends; bank 1 becomes [2, hole].
        m.access(0, 1, false);
        assert_eq!(tags(&m, 0), vec![Some(1), Some(3), Some(2), None]);
    }
}
