//! Functional (timing-free) NUCA cache models.
//!
//! The HPCA'07 paper distributes a 16-way set-associative 16 MB L2 cache
//! over a network of banks: each mesh column (or halo spike) holds one
//! *bank set*; a block's column is chosen by its address bits, its way
//! by the replacement policy. This crate models the cache **contents**
//! independently of timing:
//!
//! * [`addr`] — the paper's §5 address decomposition (tag 12 / index 10 /
//!   bank-column 4 / offset 6 bits), configurable for other geometries.
//! * [`bank`] — one cache bank holding `ways × sets` frames with an
//!   internal LRU order among its ways.
//! * [`bankset`] — the position-stack model of one distributed bank set
//!   under Promotion / LRU / Fast-LRU replacement. (Fast-LRU is
//!   *functionally* identical to LRU — it differs only in timing — which
//!   the timed protocol engines in the `nucanet` crate are tested
//!   against.)
//! * [`model`] — a whole L2 built of one bank set per column, with hit /
//!   miss / per-position statistics.
//!
//! # Example
//!
//! ```
//! use nucanet_cache::{AddressMap, CacheModel, ReplacementPolicy};
//!
//! let map = AddressMap::hpca07();
//! let mut l2 = CacheModel::new(map, 16, ReplacementPolicy::Lru);
//! let addr = 0x1234_5678;
//! assert!(!l2.access(addr, false).is_hit()); // cold miss
//! assert!(l2.access(addr, false).is_hit());  // now resident, at MRU
//! assert_eq!(l2.stats().hits_by_position[0], 1);
//! ```

pub mod addr;
pub mod bank;
pub mod bankset;
pub mod model;

pub use addr::{AddressMap, BlockAddr};
pub use bank::{Bank, Block};
pub use bankset::{AccessResult, BankSetModel, ReplacementPolicy};
pub use model::{CacheModel, CacheStats};
