//! Address decomposition.
//!
//! Section 5 of the paper: "A 32-bit address is divided into 4 fields:
//! tag (12 bits), index (10 bits), bank-column (4 bits), and offset
//! (6 bits). The *bank-column* is used to select one of 16 columns of
//! the network while the *index* identifies one of the entries in each
//! bank in the column."

/// How physical addresses map onto (column, index, tag).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AddressMap {
    /// Block offset bits (6 for 64-byte blocks).
    pub offset_bits: u32,
    /// Bank-column selector bits (4 → 16 columns).
    pub column_bits: u32,
    /// Per-bank set index bits (10 → 1024 sets per bank way).
    pub index_bits: u32,
}

/// A decomposed block address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockAddr {
    /// Which bank set (network column / spike).
    pub column: u32,
    /// Set index within each bank of the column.
    pub index: u32,
    /// Tag compared against stored blocks.
    pub tag: u32,
}

impl AddressMap {
    /// The paper's layout: 64 B blocks, 16 columns, 1024 sets per bank.
    pub fn hpca07() -> Self {
        AddressMap {
            offset_bits: 6,
            column_bits: 4,
            index_bits: 10,
        }
    }

    /// Creates a custom map.
    ///
    /// # Panics
    ///
    /// Panics if the three fields exceed 31 bits combined (a tag bit
    /// must remain).
    pub fn new(offset_bits: u32, column_bits: u32, index_bits: u32) -> Self {
        assert!(
            offset_bits + column_bits + index_bits < 32,
            "offset+column+index must leave room for a tag"
        );
        AddressMap {
            offset_bits,
            column_bits,
            index_bits,
        }
    }

    /// Number of bank columns (`2^column_bits`).
    pub fn columns(&self) -> u32 {
        1 << self.column_bits
    }

    /// Sets per bank way (`2^index_bits`).
    pub fn sets(&self) -> u32 {
        1 << self.index_bits
    }

    /// Block size in bytes.
    pub fn block_bytes(&self) -> u32 {
        1 << self.offset_bits
    }

    /// Tag width in bits for a 32-bit address.
    pub fn tag_bits(&self) -> u32 {
        32 - self.offset_bits - self.column_bits - self.index_bits
    }

    /// Decomposes a 32-bit physical address.
    pub fn decompose(&self, addr: u32) -> BlockAddr {
        let block = addr >> self.offset_bits;
        let column = block & (self.columns() - 1);
        let index = (block >> self.column_bits) & (self.sets() - 1);
        let tag = block >> (self.column_bits + self.index_bits);
        BlockAddr { column, index, tag }
    }

    /// Recomposes a block address into the address of its first byte.
    ///
    /// # Panics
    ///
    /// Panics when a field exceeds its width.
    pub fn compose(&self, block: BlockAddr) -> u32 {
        assert!(
            block.column < self.columns(),
            "column {} out of range",
            block.column
        );
        assert!(
            block.index < self.sets(),
            "index {} out of range",
            block.index
        );
        assert!(
            block.tag < (1u32 << self.tag_bits()),
            "tag {} out of range",
            block.tag
        );
        ((block.tag << self.index_bits | block.index) << self.column_bits | block.column)
            << self.offset_bits
    }
}

impl Default for AddressMap {
    fn default() -> Self {
        AddressMap::hpca07()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_layout_widths() {
        let m = AddressMap::hpca07();
        assert_eq!(m.columns(), 16);
        assert_eq!(m.sets(), 1024);
        assert_eq!(m.block_bytes(), 64);
        assert_eq!(m.tag_bits(), 12);
    }

    #[test]
    fn decompose_compose_roundtrip() {
        let m = AddressMap::hpca07();
        for addr in [0u32, 0x40, 0xFFFF_FFC0, 0x1234_5678 & !0x3F, 0xDEAD_BEC0] {
            let b = m.decompose(addr);
            assert_eq!(m.compose(b), addr & !0x3F, "addr {addr:#x}");
        }
    }

    #[test]
    fn offset_bits_ignored() {
        let m = AddressMap::hpca07();
        assert_eq!(m.decompose(0x1000), m.decompose(0x103F));
        assert_ne!(m.decompose(0x1000), m.decompose(0x1040));
    }

    #[test]
    fn adjacent_blocks_interleave_columns() {
        // Consecutive 64 B blocks map to consecutive columns — the paper
        // spreads bank sets across columns by low block-address bits.
        let m = AddressMap::hpca07();
        let a = m.decompose(0x0000);
        let b = m.decompose(0x0040);
        assert_eq!(a.column, 0);
        assert_eq!(b.column, 1);
        assert_eq!(a.index, b.index);
    }

    #[test]
    fn index_changes_every_16_blocks() {
        let m = AddressMap::hpca07();
        let a = m.decompose(0x0000);
        let b = m.decompose(64 * 16);
        assert_eq!(b.column, 0);
        assert_eq!(b.index, a.index + 1);
    }

    #[test]
    fn custom_map() {
        let m = AddressMap::new(6, 2, 8);
        assert_eq!(m.columns(), 4);
        assert_eq!(m.sets(), 256);
        assert_eq!(m.tag_bits(), 16);
        let b = m.decompose(0xABCD_EF00);
        assert_eq!(m.compose(b), 0xABCD_EF00 & !0x3F);
    }

    #[test]
    #[should_panic(expected = "room for a tag")]
    fn overfull_map_panics() {
        let _ = AddressMap::new(6, 13, 13);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn compose_validates_fields() {
        let m = AddressMap::hpca07();
        let _ = m.compose(BlockAddr {
            column: 16,
            index: 0,
            tag: 0,
        });
    }
}
