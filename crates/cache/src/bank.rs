//! A single cache bank.
//!
//! A bank stores `ways × sets` frames. Uniform designs use 64 KB
//! direct-mapped banks (1 way × 1024 sets); the non-uniform halo and
//! mesh designs use banks of 2, 4, or 8 ways. Within a bank, the ways of
//! a set are kept in recency order (position 0 = most recently arrived),
//! so a multi-way bank behaves as one segment of the distributed LRU
//! stack: it accepts pushed-down blocks at its top and evicts from its
//! bottom.

/// One cached block: its tag and dirty bit. (Data values are not
/// simulated; only placement and movement matter.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Block {
    /// Address tag.
    pub tag: u32,
    /// Set when the block has been written since it was fetched.
    pub dirty: bool,
}

/// A bank of `ways × sets` frames with per-set recency order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bank {
    ways: usize,
    sets: usize,
    /// `frames[set]`: ways in recency order, `None` = empty frame.
    frames: Vec<Vec<Option<Block>>>,
}

impl Bank {
    /// Creates an empty bank.
    ///
    /// # Panics
    ///
    /// Panics if `ways` or `sets` is zero.
    pub fn new(ways: usize, sets: usize) -> Self {
        assert!(ways >= 1, "bank needs at least one way");
        assert!(sets >= 1, "bank needs at least one set");
        Bank {
            ways,
            sets,
            frames: vec![vec![None; ways]; sets],
        }
    }

    /// Associativity of this bank.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Whether `tag` is present in `set` (tag match; no state change).
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    pub fn probe(&self, set: usize, tag: u32) -> bool {
        self.frames[set].iter().flatten().any(|b| b.tag == tag)
    }

    /// Removes and returns the block with `tag` from `set`, leaving a
    /// hole. Used when a hit block departs toward the MRU bank.
    pub fn extract(&mut self, set: usize, tag: u32) -> Option<Block> {
        let ways = &mut self.frames[set];
        let pos = ways.iter().position(|b| b.is_some_and(|b| b.tag == tag))?;
        let blk = ways.remove(pos);
        // Keep the recency order of the survivors; the hole sinks to the
        // bottom so the next pushed-down block fills from the top.
        ways.push(None);
        blk
    }

    /// Marks `tag` dirty in `set`; returns whether it was present.
    pub fn mark_dirty(&mut self, set: usize, tag: u32) -> bool {
        for b in self.frames[set].iter_mut().flatten() {
            if b.tag == tag {
                b.dirty = true;
                return true;
            }
        }
        false
    }

    /// Pushes `block` onto the top (most recent way) of `set`, evicting
    /// and returning the bottom block when the set is full. Empty frames
    /// absorb the push without eviction.
    pub fn push_top(&mut self, set: usize, block: Block) -> Option<Block> {
        let ways = &mut self.frames[set];
        // Drop the bottom-most empty frame if one exists, else evict the
        // bottom block.
        let evicted = if let Some(hole) = ways.iter().rposition(Option::is_none) {
            ways.remove(hole);
            None
        } else {
            ways.pop().expect("ways is non-empty")
        };
        ways.insert(0, Some(block));
        evicted
    }

    /// The block currently at the bottom (least recent way) of `set`.
    pub fn peek_bottom(&self, set: usize) -> Option<Block> {
        self.frames[set].iter().rev().flatten().next().copied()
    }

    /// Removes and returns the bottom (least recent) block of `set`,
    /// leaving a hole. This is the Fast-LRU eviction a bank performs
    /// right after detecting its own miss (§3.2): the departing block
    /// travels to the next bank while the hole awaits the block pushed
    /// down from the previous bank.
    pub fn evict_bottom(&mut self, set: usize) -> Option<Block> {
        let ways = &mut self.frames[set];
        let pos = ways.iter().rposition(|b| b.is_some())?;
        let blk = ways.remove(pos);
        ways.push(None);
        blk
    }

    /// Moves `tag` to the top of its set (an internal-hit touch).
    /// Returns whether the tag was present.
    pub fn touch(&mut self, set: usize, tag: u32) -> bool {
        let Some(blk) = self.extract(set, tag) else {
            return false;
        };
        // extract left a trailing hole, so this cannot evict.
        let evicted = self.push_top(set, blk);
        debug_assert!(evicted.is_none());
        true
    }

    /// Overwrites `set` with the given frames (recency order, `None` =
    /// hole). Used to preload warmed cache contents into a timed
    /// simulation.
    ///
    /// # Panics
    ///
    /// Panics if `frames.len()` differs from the bank's way count.
    pub fn load_set(&mut self, set: usize, frames: &[Option<Block>]) {
        assert_eq!(
            frames.len(),
            self.ways,
            "frame count must equal associativity"
        );
        self.frames[set].clear();
        self.frames[set].extend_from_slice(frames);
    }

    /// Empties every frame in place, returning the bank to its
    /// just-constructed state without touching the frame storage: the
    /// warm-reset path's way of reusing a bank across sweep points.
    pub fn clear(&mut self) {
        for set in &mut self.frames {
            set.fill(None);
        }
    }

    /// All blocks of `set` in recency order (holes skipped).
    pub fn blocks(&self, set: usize) -> Vec<Block> {
        self.frames[set].iter().flatten().copied().collect()
    }

    /// Number of valid blocks in `set`.
    pub fn occupancy(&self, set: usize) -> usize {
        self.frames[set].iter().flatten().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(tag: u32) -> Block {
        Block { tag, dirty: false }
    }

    #[test]
    fn probe_empty_bank() {
        let bank = Bank::new(2, 4);
        assert!(!bank.probe(0, 1));
        assert_eq!(bank.occupancy(0), 0);
    }

    #[test]
    fn push_fills_then_evicts_bottom() {
        let mut bank = Bank::new(2, 1);
        assert_eq!(bank.push_top(0, b(1)), None);
        assert_eq!(bank.push_top(0, b(2)), None);
        // Full: pushing 3 evicts the oldest (1).
        assert_eq!(bank.push_top(0, b(3)), Some(b(1)));
        assert_eq!(bank.blocks(0), vec![b(3), b(2)]);
    }

    #[test]
    fn extract_leaves_hole_and_preserves_order() {
        let mut bank = Bank::new(3, 1);
        bank.push_top(0, b(1));
        bank.push_top(0, b(2));
        bank.push_top(0, b(3)); // order: 3,2,1
        assert_eq!(bank.extract(0, 2), Some(b(2)));
        assert_eq!(bank.blocks(0), vec![b(3), b(1)]);
        assert_eq!(bank.occupancy(0), 2);
        // The hole absorbs the next push without eviction.
        assert_eq!(bank.push_top(0, b(4)), None);
        assert_eq!(bank.blocks(0), vec![b(4), b(3), b(1)]);
    }

    #[test]
    fn extract_missing_tag_is_none() {
        let mut bank = Bank::new(1, 1);
        assert_eq!(bank.extract(0, 5), None);
    }

    #[test]
    fn touch_moves_to_top() {
        let mut bank = Bank::new(3, 1);
        bank.push_top(0, b(1));
        bank.push_top(0, b(2));
        bank.push_top(0, b(3));
        assert!(bank.touch(0, 1));
        assert_eq!(bank.blocks(0), vec![b(1), b(3), b(2)]);
        assert!(!bank.touch(0, 9));
    }

    #[test]
    fn mark_dirty() {
        let mut bank = Bank::new(2, 2);
        bank.push_top(1, b(7));
        assert!(bank.mark_dirty(1, 7));
        assert!(!bank.mark_dirty(1, 8));
        assert_eq!(
            bank.blocks(1),
            vec![Block {
                tag: 7,
                dirty: true
            }]
        );
        // Other set untouched.
        assert_eq!(bank.occupancy(0), 0);
    }

    #[test]
    fn peek_bottom_sees_oldest() {
        let mut bank = Bank::new(2, 1);
        assert_eq!(bank.peek_bottom(0), None);
        bank.push_top(0, b(1));
        bank.push_top(0, b(2));
        assert_eq!(bank.peek_bottom(0), Some(b(1)));
    }

    #[test]
    fn sets_are_independent() {
        let mut bank = Bank::new(1, 3);
        bank.push_top(0, b(1));
        bank.push_top(2, b(2));
        assert!(bank.probe(0, 1));
        assert!(!bank.probe(1, 1));
        assert!(bank.probe(2, 2));
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_ways_panics() {
        let _ = Bank::new(0, 4);
    }

    #[test]
    fn evict_bottom_removes_oldest() {
        let mut bank = Bank::new(3, 1);
        bank.push_top(0, b(1));
        bank.push_top(0, b(2));
        assert_eq!(bank.evict_bottom(0), Some(b(1)));
        assert_eq!(bank.blocks(0), vec![b(2)]);
        // The hole absorbs the next push.
        assert_eq!(bank.push_top(0, b(3)), None);
        assert_eq!(bank.evict_bottom(0), Some(b(2)));
        assert_eq!(bank.evict_bottom(0), Some(b(3)));
        assert_eq!(bank.evict_bottom(0), None);
    }

    #[test]
    fn direct_mapped_bank_replaces_immediately() {
        let mut bank = Bank::new(1, 2);
        assert_eq!(bank.push_top(0, b(1)), None);
        assert_eq!(bank.push_top(0, b(2)), Some(b(1)));
    }
}
