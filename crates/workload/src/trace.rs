//! L2 access trace records.

/// One L2 access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct L2Access {
    /// 32-bit physical address (block-aligned by the generator).
    pub addr: u32,
    /// Write (store) vs read (load).
    pub write: bool,
}

/// A generated trace: a warm-up prefix followed by a measured window,
/// mirroring the paper's fast-forward / warm-up / measure methodology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    accesses: Vec<L2Access>,
    warmup: usize,
}

impl Trace {
    /// Wraps raw accesses; the first `warmup` entries are warm-up only.
    ///
    /// # Panics
    ///
    /// Panics if `warmup` exceeds the trace length.
    pub fn new(accesses: Vec<L2Access>, warmup: usize) -> Self {
        assert!(warmup <= accesses.len(), "warm-up longer than the trace");
        Trace { accesses, warmup }
    }

    /// All accesses including warm-up.
    pub fn all(&self) -> &[L2Access] {
        &self.accesses
    }

    /// The warm-up prefix.
    pub fn warmup(&self) -> &[L2Access] {
        &self.accesses[..self.warmup]
    }

    /// The measured window (everything after the warm-up prefix).
    pub fn measured(&self) -> &[L2Access] {
        &self.accesses[self.warmup..]
    }

    /// Clears and refills this trace in place from `fill`, reusing the
    /// existing allocation: `total` accesses are drawn, of which the
    /// first `warmup` form the warm-up prefix. Allocation-free once the
    /// buffer has grown to `total` (the warm sweep path's contract).
    ///
    /// # Panics
    ///
    /// Panics if `warmup` exceeds `total`.
    pub fn refill(&mut self, warmup: usize, total: usize, mut fill: impl FnMut() -> L2Access) {
        assert!(warmup <= total, "warm-up longer than the trace");
        self.accesses.clear();
        self.accesses.reserve(total);
        for _ in 0..total {
            self.accesses.push(fill());
        }
        self.warmup = warmup;
    }

    /// Length of the measured window.
    pub fn measured_len(&self) -> usize {
        self.accesses.len() - self.warmup
    }

    /// Total length including warm-up.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Fraction of writes in the measured window.
    pub fn write_fraction(&self) -> f64 {
        let m = self.measured_len();
        if m == 0 {
            return 0.0;
        }
        self.measured().iter().filter(|a| a.write).count() as f64 / m as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(addr: u32, write: bool) -> L2Access {
        L2Access { addr, write }
    }

    #[test]
    fn splits_warmup_and_measured() {
        let t = Trace::new(vec![acc(0, false), acc(64, true), acc(128, false)], 1);
        assert_eq!(t.warmup().len(), 1);
        assert_eq!(t.measured_len(), 2);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn write_fraction_over_measured_only() {
        let t = Trace::new(vec![acc(0, true), acc(64, true), acc(128, false)], 1);
        assert!((t.write_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "warm-up longer")]
    fn oversized_warmup_panics() {
        let _ = Trace::new(vec![acc(0, false)], 2);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new(vec![], 0);
        assert!(t.is_empty());
        assert_eq!(t.write_fraction(), 0.0);
    }
}
