#![warn(missing_docs)]
//! Synthetic L2 workloads and the analytic core model.
//!
//! The paper drives its cache simulator with L2 access streams produced
//! by `sim-alpha` running SPEC2000. Lacking those binaries and traces,
//! this crate regenerates statistically equivalent streams:
//!
//! * [`profile`] — the twelve benchmark profiles of Table 2 (instruction
//!   counts, perfect-L2 IPC, read/write volumes) extended with locality
//!   parameters calibrated so each benchmark reproduces its qualitative
//!   L2 behaviour (`art` nearly miss-free, `applu`/`lucas` streaming,
//!   `mcf` miss-heavy, …).
//! * [`synth`] — a per-set stack-distance trace generator: each access
//!   reuses the `d`-th most recently used block of a uniformly chosen
//!   set, with `d` drawn from a Zipf-like distribution, or touches a
//!   brand-new block. Stack-distance locality is exactly the property
//!   that separates LRU from Promotion replacement, so the generated
//!   streams exercise the paper's mechanisms the way SPEC2000 did.
//! * [`trace`] — access records and containers.
//! * [`cpu`] — the analytic in-order-stall IPC model used to convert
//!   average L2 latencies into the relative IPCs of Figs. 8–9.
//! * [`io`] — a plain-text trace format so externally captured L2
//!   streams can be replayed against any design.
//! * [`zipf`] — a small inverse-CDF Zipf sampler.
//!
//! # Example
//!
//! ```
//! use nucanet_workload::{BenchmarkProfile, SynthConfig, TraceGenerator};
//!
//! let profile = BenchmarkProfile::by_name("art").unwrap();
//! let mut gen = TraceGenerator::new(profile, SynthConfig { seed: 1, ..Default::default() });
//! let trace = gen.generate(1_000, 4_000);
//! assert_eq!(trace.measured().len(), 4_000);
//! ```

pub mod cpu;
pub mod io;
pub mod profile;
pub mod synth;
pub mod trace;
pub mod zipf;

pub use cpu::CoreModel;
pub use io::{read_trace, write_trace, ReadTraceError};
pub use profile::{BenchClass, BenchmarkProfile, LocalityParams, ALL_BENCHMARKS};
pub use synth::{SynthConfig, TraceGenerator};
pub use trace::{L2Access, Trace};
pub use zipf::ZipfSampler;
