//! Inverse-CDF Zipf sampling over a finite support.

use rand::Rng;

/// Samples `0..n` with probability ∝ `1/(k+1)^theta`.
///
/// ```
/// use nucanet_workload::ZipfSampler;
/// use rand::SeedableRng;
/// let z = ZipfSampler::new(16, 1.5);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let v = z.sample(&mut rng);
/// assert!(v < 16);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ZipfSampler {
    /// Cumulative probabilities, `cdf[k] = P(X <= k)`.
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `0..n` with exponent `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is not finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n >= 1, "support must be non-empty");
        assert!(theta.is_finite(), "theta must be finite");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { cdf }
    }

    /// Support size.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the support is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Probability mass of outcome `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point: first k with cdf[k] >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn cdf_is_normalised_and_monotone() {
        let z = ZipfSampler::new(32, 1.2);
        assert!((z.cdf.last().unwrap() - 1.0).abs() < 1e-12);
        for w in z.cdf.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = ZipfSampler::new(10, 0.8);
        let s: f64 = (0..10).map(|k| z.pmf(k)).sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn low_outcomes_dominate() {
        let z = ZipfSampler::new(64, 1.5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut counts = [0u32; 64];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[5]);
        assert!(
            counts[0] > 10_000,
            "k=0 should carry ~39% mass, got {}",
            counts[0]
        );
    }

    #[test]
    fn theta_zero_is_uniform() {
        let z = ZipfSampler::new(4, 0.0);
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn higher_theta_is_more_skewed() {
        let flat = ZipfSampler::new(16, 0.5);
        let steep = ZipfSampler::new(16, 2.0);
        assert!(steep.pmf(0) > flat.pmf(0));
        assert!(steep.pmf(15) < flat.pmf(15));
    }

    #[test]
    fn samples_in_range() {
        let z = ZipfSampler::new(5, 1.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..1_000 {
            assert!(z.sample(&mut rng) < 5);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_support_panics() {
        let _ = ZipfSampler::new(0, 1.0);
    }
}
