//! Per-set stack-distance trace generation.
//!
//! Each access (1) picks a set uniformly among `active_sets`, (2) with
//! probability `p_new` touches a brand-new block of that set, otherwise
//! (3) reuses the block at Zipf-distributed depth `d` of the generator's
//! own per-set reference LRU stack, moving it to the front.
//!
//! Because the reference stacks are the generator's (not the simulated
//! cache's), the same trace can be replayed against *any* replacement
//! policy, and the resulting hit-rate differences between LRU and
//! Promotion arise exactly as they would from a real program's reuse
//! pattern.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::profile::BenchmarkProfile;
use crate::trace::{L2Access, Trace};
use crate::zipf::ZipfSampler;

/// Generator configuration independent of the benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthConfig {
    /// Number of distinct (column, index) sets the workload touches.
    /// Scaled-down simulations keep this low so warm-up stays cheap;
    /// the hit rate is set-count independent.
    pub active_sets: u32,
    /// RNG seed (generation is fully deterministic given the seed).
    pub seed: u64,
    /// Address-map geometry: bank-column bits (4 in the paper).
    pub column_bits: u32,
    /// Address-map geometry: per-bank index bits (10 in the paper).
    pub index_bits: u32,
    /// Address-map geometry: block offset bits (6 in the paper).
    pub offset_bits: u32,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            active_sets: 512,
            seed: 0xCAFE,
            column_bits: 4,
            index_bits: 10,
            offset_bits: 6,
        }
    }
}

/// Deterministic synthetic trace generator for one benchmark profile.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: BenchmarkProfile,
    cfg: SynthConfig,
    rng: StdRng,
    depth_sampler: ZipfSampler,
    /// Reference LRU stack of tags, per active set.
    stacks: Vec<VecDeque<u32>>,
    /// Next fresh tag, per active set.
    next_tag: Vec<u32>,
    /// Spatial run state: (current set, accesses left in the run).
    burst_state: (u32, usize),
}

impl TraceGenerator {
    /// Creates a generator for `profile`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.active_sets` is zero or exceeds the address-map
    /// capacity, or if the tag field cannot hold the working set.
    pub fn new(profile: BenchmarkProfile, cfg: SynthConfig) -> Self {
        assert!(cfg.active_sets >= 1, "need at least one active set");
        assert!(
            cfg.active_sets <= 1 << (cfg.column_bits + cfg.index_bits),
            "more active sets than the address map addresses"
        );
        let depth_sampler = ZipfSampler::new(profile.locality.max_depth, profile.locality.theta);
        TraceGenerator {
            rng: StdRng::seed_from_u64(cfg.seed ^ hash_name(profile.name)),
            stacks: vec![VecDeque::new(); cfg.active_sets as usize],
            next_tag: vec![0; cfg.active_sets as usize],
            burst_state: (0, 0),
            depth_sampler,
            profile,
            cfg,
        }
    }

    /// The profile this generator models.
    pub fn profile(&self) -> &BenchmarkProfile {
        &self.profile
    }

    /// Warm reset: restores this generator to the state
    /// [`TraceGenerator::new`]`(profile, cfg)` would produce — the
    /// subsequent access stream is bit-identical to a fresh generator's
    /// — while reusing the per-set stack storage. Allocation-free when
    /// `cfg.active_sets` does not grow and the profile's Zipf locality
    /// parameters are unchanged.
    ///
    /// # Panics
    ///
    /// Panics on the same invalid configurations as
    /// [`TraceGenerator::new`].
    pub fn reset_for(&mut self, profile: BenchmarkProfile, cfg: SynthConfig) {
        assert!(cfg.active_sets >= 1, "need at least one active set");
        assert!(
            cfg.active_sets <= 1 << (cfg.column_bits + cfg.index_bits),
            "more active sets than the address map addresses"
        );
        if profile.locality.max_depth != self.profile.locality.max_depth
            || profile.locality.theta != self.profile.locality.theta
        {
            self.depth_sampler = ZipfSampler::new(profile.locality.max_depth, profile.locality.theta);
        }
        self.rng = StdRng::seed_from_u64(cfg.seed ^ hash_name(profile.name));
        for s in &mut self.stacks {
            s.clear();
        }
        self.stacks.resize_with(cfg.active_sets as usize, VecDeque::new);
        self.next_tag.clear();
        self.next_tag.resize(cfg.active_sets as usize, 0);
        self.burst_state = (0, 0);
        self.profile = profile;
        self.cfg = cfg;
    }

    /// Like [`TraceGenerator::generate`], but refills `trace` in place,
    /// reusing its storage (see [`Trace::refill`]).
    pub fn generate_into(&mut self, trace: &mut Trace, warmup: usize, measured: usize) {
        trace.refill(warmup, warmup + measured, || self.next_access());
    }

    /// Generates `warmup + measured` accesses.
    pub fn generate(&mut self, warmup: usize, measured: usize) -> Trace {
        let total = warmup + measured;
        let mut out = Vec::with_capacity(total);
        for _ in 0..total {
            out.push(self.next_access());
        }
        Trace::new(out, warmup)
    }

    /// Produces the next access in the stream.
    pub fn next_access(&mut self) -> L2Access {
        let loc = self.profile.locality;
        // Spatial run: sweep consecutive sets for `burst` accesses, then
        // jump to a fresh random set.
        let set = {
            let (cur, left) = self.burst_state;
            if left == 0 {
                let s = self.rng.gen_range(0..self.cfg.active_sets);
                self.burst_state = (s, loc.burst.saturating_sub(1));
                s
            } else {
                let s = (cur + 1) % self.cfg.active_sets;
                self.burst_state = (s, left - 1);
                s
            }
        } as usize;
        let stack = &mut self.stacks[set];

        let tag = if self.rng.gen_bool(loc.p_new) || stack.is_empty() {
            self.fresh_tag(set)
        } else {
            let d = self.depth_sampler.sample(&mut self.rng);
            if d < stack.len() {
                stack.remove(d).expect("depth checked against len")
            } else {
                self.fresh_tag(set)
            }
        };
        let stack = &mut self.stacks[set];
        stack.push_front(tag);
        if stack.len() > loc.max_depth {
            stack.pop_back();
        }

        let write = self.rng.gen_bool(self.profile.write_fraction());
        L2Access {
            addr: self.compose(set as u32, tag),
            write,
        }
    }

    fn fresh_tag(&mut self, set: usize) -> u32 {
        let t = self.next_tag[set];
        self.next_tag[set] = t.wrapping_add(1);
        let tag_bits = 32 - self.cfg.offset_bits - self.cfg.column_bits - self.cfg.index_bits;
        t & ((1u32 << tag_bits) - 1)
    }

    /// Address layout identical to `nucanet_cache::AddressMap`: sets are
    /// numbered column-major so consecutive set ids sweep the columns.
    fn compose(&self, set: u32, tag: u32) -> u32 {
        let column = set & ((1 << self.cfg.column_bits) - 1);
        let index = set >> self.cfg.column_bits;
        ((tag << self.cfg.index_bits | index) << self.cfg.column_bits | column)
            << self.cfg.offset_bits
    }
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a, so each benchmark gets a distinct deterministic stream.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{BenchmarkProfile, ALL_BENCHMARKS};
    use std::collections::HashMap;

    fn generator(name: &str, seed: u64) -> TraceGenerator {
        TraceGenerator::new(
            BenchmarkProfile::by_name(name).unwrap(),
            SynthConfig {
                seed,
                ..Default::default()
            },
        )
    }

    #[test]
    fn deterministic_given_seed() {
        let t1 = generator("gcc", 5).generate(100, 400);
        let t2 = generator("gcc", 5).generate(100, 400);
        assert_eq!(t1, t2);
        let t3 = generator("gcc", 6).generate(100, 400);
        assert_ne!(t1, t3);
    }

    #[test]
    fn different_benchmarks_differ_under_same_seed() {
        let a = generator("gcc", 5).generate(0, 200);
        let b = generator("mcf", 5).generate(0, 200);
        assert_ne!(a, b);
    }

    #[test]
    fn addresses_are_block_aligned_and_within_active_sets() {
        let cfg = SynthConfig {
            active_sets: 128,
            ..Default::default()
        };
        let mut g = TraceGenerator::new(BenchmarkProfile::by_name("vpr").unwrap(), cfg);
        let t = g.generate(0, 2_000);
        for a in t.all() {
            assert_eq!(a.addr & 0x3F, 0, "block aligned");
            let set = (a.addr >> 6) & ((1 << 14) - 1); // column+index bits
            assert!(set < 128, "set {set} out of the active range");
        }
    }

    #[test]
    fn write_fraction_tracks_profile() {
        let mut g = generator("lucas", 1); // write fraction ~0.40
        let t = g.generate(0, 20_000);
        let wf = t.write_fraction();
        let want = BenchmarkProfile::by_name("lucas").unwrap().write_fraction();
        assert!((wf - want).abs() < 0.02, "wf {wf} vs profile {want}");
    }

    #[test]
    fn art_reuses_heavily_but_streamers_do_not() {
        let reuse_fraction = |name: &str| {
            let mut g = generator(name, 2);
            let t = g.generate(2_000, 20_000);
            let mut seen: HashMap<u32, u32> = HashMap::new();
            let mut reused = 0;
            for a in t.all() {
                let c = seen.entry(a.addr).or_insert(0);
                if *c > 0 {
                    reused += 1;
                }
                *c += 1;
            }
            reused as f64 / t.len() as f64
        };
        let art = reuse_fraction("art");
        let applu = reuse_fraction("applu");
        // (The cold-start prefix keeps art below 1.0 here; steady-state
        // behaviour is asserted via hit rates in the integration tests.)
        assert!(art > 0.85, "art must reuse almost always, got {art}");
        assert!(
            applu < art - 0.2,
            "applu must stream: applu {applu} vs art {art}"
        );
    }

    #[test]
    fn stack_depth_bounded() {
        let mut g = generator("mesa", 3);
        let _ = g.generate(0, 10_000);
        for s in &g.stacks {
            assert!(s.len() <= g.profile.locality.max_depth);
        }
    }

    #[test]
    fn all_benchmarks_generate_without_panic() {
        for b in ALL_BENCHMARKS {
            let mut g = TraceGenerator::new(b, SynthConfig::default());
            let t = g.generate(100, 400);
            assert_eq!(t.len(), 500, "{}", b.name);
        }
    }

    #[test]
    #[should_panic(expected = "at least one active set")]
    fn zero_active_sets_panics() {
        let _ = TraceGenerator::new(
            BenchmarkProfile::by_name("art").unwrap(),
            SynthConfig {
                active_sets: 0,
                ..Default::default()
            },
        );
    }

    #[test]
    fn fresh_tags_wrap_within_tag_field() {
        let mut g = generator("applu", 4);
        for _ in 0..1_000 {
            let a = g.next_access();
            assert!(a.addr >= 64 || a.addr == 0, "addr {:#x}", a.addr);
        }
    }
}
