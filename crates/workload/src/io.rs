//! Trace file import/export.
//!
//! The on-disk format is one access per line, `addr,write`, where `addr`
//! is hex (`0x…`) or decimal and `write` is `0`/`1`. Lines starting with
//! `#` are comments. A `# warmup: N` header marks the first `N` accesses
//! as warm-up. The format round-trips through [`write_trace`] /
//! [`read_trace`] and matches what `nucanet trace` prints, so externally
//! captured L2 traces can be replayed against any design.

use std::fmt;
use std::io::{self, BufRead, Write};

use crate::trace::{L2Access, Trace};

/// Why a trace file failed to parse.
#[derive(Debug)]
pub enum ReadTraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// The line as read, for the error message.
        content: String,
    },
}

impl fmt::Display for ReadTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadTraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            ReadTraceError::Parse { line, content } => {
                write!(f, "trace parse error at line {line}: '{content}'")
            }
        }
    }
}

impl std::error::Error for ReadTraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadTraceError::Io(e) => Some(e),
            ReadTraceError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for ReadTraceError {
    fn from(e: io::Error) -> Self {
        ReadTraceError::Io(e)
    }
}

/// Writes `trace` in the line format described in the module docs.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_trace<W: Write>(trace: &Trace, mut w: W) -> io::Result<()> {
    writeln!(w, "# nucanet L2 trace: addr,write")?;
    writeln!(w, "# warmup: {}", trace.warmup().len())?;
    for a in trace.all() {
        writeln!(w, "{:#010x},{}", a.addr, u8::from(a.write))?;
    }
    Ok(())
}

/// Reads a trace written by [`write_trace`] (or hand-made in the same
/// format).
///
/// # Errors
///
/// Returns [`ReadTraceError`] on I/O failures or malformed lines.
pub fn read_trace<R: BufRead>(r: R) -> Result<Trace, ReadTraceError> {
    let mut accesses = Vec::new();
    let mut warmup = 0usize;
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('#') {
            if let Some(n) = rest.trim().strip_prefix("warmup:") {
                warmup = n.trim().parse().map_err(|_| ReadTraceError::Parse {
                    line: i + 1,
                    content: line.clone(),
                })?;
            }
            continue;
        }
        let parse = || -> Option<L2Access> {
            let (addr_s, write_s) = trimmed.split_once(',')?;
            let addr_s = addr_s.trim();
            let addr = if let Some(hex) = addr_s.strip_prefix("0x") {
                u32::from_str_radix(hex, 16).ok()?
            } else {
                addr_s.parse().ok()?
            };
            let write = match write_s.trim() {
                "0" => false,
                "1" => true,
                _ => return None,
            };
            Some(L2Access { addr, write })
        };
        match parse() {
            Some(a) => accesses.push(a),
            None => {
                return Err(ReadTraceError::Parse {
                    line: i + 1,
                    content: line,
                })
            }
        }
    }
    if warmup > accesses.len() {
        return Err(ReadTraceError::Parse {
            line: 0,
            content: format!("warmup {warmup} exceeds {} accesses", accesses.len()),
        });
    }
    Ok(Trace::new(accesses, warmup))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::BenchmarkProfile;
    use crate::synth::{SynthConfig, TraceGenerator};

    #[test]
    fn roundtrip_preserves_everything() {
        let mut gen = TraceGenerator::new(
            BenchmarkProfile::by_name("gcc").unwrap(),
            SynthConfig {
                seed: 3,
                active_sets: 32,
                ..Default::default()
            },
        );
        let t = gen.generate(50, 200);
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn parses_decimal_and_comments() {
        let text = "# a comment\n\n64,1\n0x80,0\n";
        let t = read_trace(text.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(
            t.all()[0],
            L2Access {
                addr: 64,
                write: true
            }
        );
        assert_eq!(
            t.all()[1],
            L2Access {
                addr: 0x80,
                write: false
            }
        );
        assert_eq!(t.warmup().len(), 0);
    }

    #[test]
    fn warmup_header_respected() {
        let text = "# warmup: 1\n0x40,0\n0x80,1\n";
        let t = read_trace(text.as_bytes()).unwrap();
        assert_eq!(t.warmup().len(), 1);
        assert_eq!(t.measured_len(), 1);
    }

    #[test]
    fn reports_bad_lines_with_numbers() {
        let text = "0x40,0\nnot-a-line\n";
        match read_trace(text.as_bytes()) {
            Err(ReadTraceError::Parse { line: 2, .. }) => {}
            other => panic!("expected parse error at line 2, got {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_write_flag() {
        assert!(read_trace("0x40,yes\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_oversized_warmup() {
        assert!(read_trace("# warmup: 5\n0x40,0\n".as_bytes()).is_err());
    }

    #[test]
    fn error_messages_are_informative() {
        let e = read_trace("zzz\n".as_bytes()).unwrap_err();
        assert!(e.to_string().contains("line 1"), "{e}");
    }
}
