//! Analytic core/IPC model.
//!
//! The paper measures IPC with `sim-alpha` (an Alpha 21264 at 5 GHz)
//! whose L2 accesses stall the pipeline for the simulated cache latency.
//! We substitute the standard in-order-stall decomposition:
//!
//! ```text
//! cycles = instructions / perfect_ipc
//!        + Σ_access latency(access) × overlap
//! ```
//!
//! `overlap` < 1 credits the out-of-order core with hiding part of each
//! L2 access. Relative IPC across cache designs — what Figs. 8–9 report
//! — depends only on the average L2 latency each design produces, which
//! the full-system simulator measures in detail.

use crate::profile::BenchmarkProfile;

/// Default fraction of L2 latency that stalls the core.
pub const DEFAULT_OVERLAP: f64 = 0.7;

/// Converts measured L2 latencies into cycles and IPC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreModel {
    /// IPC with a perfect L2 (Table 2).
    pub perfect_ipc: f64,
    /// L2 accesses per instruction (Table 2).
    pub accesses_per_instr: f64,
    /// Fraction of each L2 access latency the core cannot hide.
    pub overlap: f64,
}

impl CoreModel {
    /// Builds the model for a benchmark profile.
    pub fn for_profile(p: &BenchmarkProfile) -> Self {
        CoreModel {
            perfect_ipc: p.perfect_l2_ipc,
            accesses_per_instr: p.accesses_per_instr(),
            overlap: DEFAULT_OVERLAP,
        }
    }

    /// IPC when every L2 access takes `avg_latency` cycles on average.
    ///
    /// # Panics
    ///
    /// Panics if `avg_latency` is negative or not finite.
    pub fn ipc(&self, avg_latency: f64) -> f64 {
        assert!(
            avg_latency.is_finite() && avg_latency >= 0.0,
            "latency must be non-negative"
        );
        let cpi = 1.0 / self.perfect_ipc + self.accesses_per_instr * avg_latency * self.overlap;
        1.0 / cpi
    }

    /// Cycles to execute `instructions` given a total of
    /// `l2_stall_cycles` (already summed over accesses).
    pub fn cycles(&self, instructions: u64, l2_stall_cycles: f64) -> f64 {
        instructions as f64 / self.perfect_ipc + l2_stall_cycles * self.overlap
    }

    /// Relative IPC of latency `a` versus latency `b` (speedup of `a`).
    pub fn speedup(&self, a: f64, b: f64) -> f64 {
        self.ipc(a) / self.ipc(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::BenchmarkProfile;

    fn model(name: &str) -> CoreModel {
        CoreModel::for_profile(&BenchmarkProfile::by_name(name).unwrap())
    }

    #[test]
    fn zero_latency_gives_perfect_ipc() {
        let m = model("art");
        assert!((m.ipc(0.0) - 0.40).abs() < 1e-12);
    }

    #[test]
    fn ipc_decreases_with_latency() {
        let m = model("mcf");
        assert!(m.ipc(10.0) > m.ipc(50.0));
        assert!(m.ipc(50.0) > m.ipc(200.0));
    }

    #[test]
    fn access_intense_benchmarks_suffer_more() {
        // mcf (0.181 acc/instr) loses relatively more IPC to a latency
        // increase than mesa (0.003 acc/instr).
        let mcf = model("mcf");
        let mesa = model("mesa");
        let degradation = |m: &CoreModel| m.ipc(100.0) / m.ipc(0.0);
        assert!(degradation(&mcf) < degradation(&mesa));
    }

    #[test]
    fn speedup_is_ratio() {
        let m = model("gcc");
        let s = m.speedup(30.0, 60.0);
        assert!(s > 1.0);
        assert!((s - m.ipc(30.0) / m.ipc(60.0)).abs() < 1e-12);
    }

    #[test]
    fn cycles_decomposition() {
        let m = CoreModel {
            perfect_ipc: 0.5,
            accesses_per_instr: 0.1,
            overlap: 1.0,
        };
        // 1000 instructions at CPI 2 = 2000 cycles + 300 stall cycles.
        assert!((m.cycles(1_000, 300.0) - 2_300.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_latency_panics() {
        let _ = model("art").ipc(-1.0);
    }
}
