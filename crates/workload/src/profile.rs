//! Benchmark profiles (Table 2 of the paper).
//!
//! The observable columns — executed instructions, perfect-L2 IPC, L2
//! read/write volumes — are transcribed from Table 2. The locality
//! parameters are **calibrated**, not measured: they are chosen so the
//! synthetic generator reproduces each benchmark's qualitative L2
//! behaviour reported in the paper (`art` has "no cache miss except
//! compulsory misses", `applu` and `lucas` are "low hit rate", etc.).

/// Benchmark suite class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenchClass {
    /// SPEC2000 floating point.
    Fp,
    /// SPEC2000 integer.
    Int,
}

/// Stack-distance locality knobs for the synthetic generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalityParams {
    /// Zipf exponent over per-set stack depths; higher = tighter reuse.
    pub theta: f64,
    /// Probability an access touches a brand-new block (compulsory).
    pub p_new: f64,
    /// Reference stack depth tracked per set (reuses beyond the cache's
    /// associativity model capacity misses).
    pub max_depth: usize,
    /// Spatial run length: consecutive accesses sweep this many
    /// consecutive sets before jumping (1 = no spatial locality;
    /// streaming codes like `applu` sweep long runs).
    pub burst: usize,
}

/// One SPEC2000 benchmark as characterised in Table 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchmarkProfile {
    /// Benchmark name (Table 2 spelling).
    pub name: &'static str,
    /// FP or INT.
    pub class: BenchClass,
    /// Instructions executed in the paper's measurement window.
    pub instructions: u64,
    /// IPC with a perfect (always-hit, zero-latency) L2.
    pub perfect_l2_ipc: f64,
    /// L2 read accesses in the window.
    pub l2_reads: u64,
    /// L2 write accesses in the window.
    pub l2_writes: u64,
    /// Calibrated locality for the synthetic generator.
    pub locality: LocalityParams,
}

const M: u64 = 1_000_000;

/// All twelve benchmarks of Table 2, in the paper's order.
pub const ALL_BENCHMARKS: [BenchmarkProfile; 12] = [
    BenchmarkProfile {
        name: "applu",
        class: BenchClass::Fp,
        instructions: 500 * M,
        perfect_l2_ipc: 0.43,
        l2_reads: 9_444_000,
        l2_writes: 4_428_000,
        // "Low hit rate": streaming with little reuse.
        locality: LocalityParams {
            theta: 0.40,
            p_new: 0.30,
            max_depth: 64,
            burst: 8,
        },
    },
    BenchmarkProfile {
        name: "apsi",
        class: BenchClass::Fp,
        instructions: 1_000 * M,
        perfect_l2_ipc: 0.40,
        l2_reads: 12_375_000,
        l2_writes: 8_204_000,
        locality: LocalityParams {
            theta: 1.30,
            p_new: 0.04,
            max_depth: 64,
            burst: 4,
        },
    },
    BenchmarkProfile {
        name: "art",
        class: BenchClass::Fp,
        instructions: 500 * M,
        perfect_l2_ipc: 0.40,
        l2_reads: 63_877_000,
        l2_writes: 13_578_000,
        // "No cache miss except compulsory misses during our simulation".
        locality: LocalityParams {
            theta: 2.40,
            p_new: 0.0002,
            max_depth: 24,
            burst: 2,
        },
    },
    BenchmarkProfile {
        name: "galgel",
        class: BenchClass::Fp,
        instructions: 2_000 * M,
        perfect_l2_ipc: 0.43,
        l2_reads: 19_415_000,
        l2_writes: 4_137_000,
        locality: LocalityParams {
            theta: 1.50,
            p_new: 0.02,
            max_depth: 64,
            burst: 4,
        },
    },
    BenchmarkProfile {
        name: "lucas",
        class: BenchClass::Fp,
        instructions: 1_000 * M,
        perfect_l2_ipc: 0.44,
        l2_reads: 19_506_000,
        l2_writes: 13_226_000,
        // "Low hit rate" like applu.
        locality: LocalityParams {
            theta: 0.45,
            p_new: 0.28,
            max_depth: 64,
            burst: 8,
        },
    },
    BenchmarkProfile {
        name: "mesa",
        class: BenchClass::Fp,
        instructions: 2_000 * M,
        perfect_l2_ipc: 0.40,
        l2_reads: 2_907_000,
        l2_writes: 2_656_000,
        locality: LocalityParams {
            theta: 1.60,
            p_new: 0.02,
            max_depth: 64,
            burst: 4,
        },
    },
    BenchmarkProfile {
        name: "bzip2",
        class: BenchClass::Int,
        instructions: 2_000 * M,
        perfect_l2_ipc: 0.39,
        l2_reads: 16_301_000,
        l2_writes: 4_233_000,
        locality: LocalityParams {
            theta: 1.40,
            p_new: 0.03,
            max_depth: 64,
            burst: 4,
        },
    },
    BenchmarkProfile {
        name: "gcc",
        class: BenchClass::Int,
        instructions: 500 * M,
        perfect_l2_ipc: 0.29,
        l2_reads: 26_201_000,
        l2_writes: 14_827_000,
        locality: LocalityParams {
            theta: 1.00,
            p_new: 0.06,
            max_depth: 64,
            burst: 2,
        },
    },
    BenchmarkProfile {
        name: "mcf",
        class: BenchClass::Int,
        instructions: 250 * M,
        perfect_l2_ipc: 0.34,
        l2_reads: 29_500_000,
        l2_writes: 15_755_000,
        // Pointer chasing over a huge working set.
        locality: LocalityParams {
            theta: 0.80,
            p_new: 0.12,
            max_depth: 64,
            burst: 1,
        },
    },
    BenchmarkProfile {
        name: "parser",
        class: BenchClass::Int,
        instructions: 2_000 * M,
        perfect_l2_ipc: 0.38,
        l2_reads: 18_257_000,
        l2_writes: 6_915_000,
        locality: LocalityParams {
            theta: 1.35,
            p_new: 0.03,
            max_depth: 64,
            burst: 2,
        },
    },
    BenchmarkProfile {
        name: "twolf",
        class: BenchClass::Int,
        instructions: 1_000 * M,
        perfect_l2_ipc: 0.38,
        l2_reads: 20_283_000,
        l2_writes: 7_653_000,
        locality: LocalityParams {
            theta: 1.25,
            p_new: 0.04,
            max_depth: 64,
            burst: 2,
        },
    },
    BenchmarkProfile {
        name: "vpr",
        class: BenchClass::Int,
        instructions: 1_000 * M,
        perfect_l2_ipc: 0.41,
        l2_reads: 12_459_000,
        l2_writes: 5_024_000,
        locality: LocalityParams {
            theta: 1.45,
            p_new: 0.03,
            max_depth: 64,
            burst: 4,
        },
    },
];

impl BenchmarkProfile {
    /// Looks a benchmark up by its Table 2 name.
    pub fn by_name(name: &str) -> Option<BenchmarkProfile> {
        ALL_BENCHMARKS.iter().copied().find(|b| b.name == name)
    }

    /// Total L2 accesses (reads + writes).
    pub fn l2_accesses(&self) -> u64 {
        self.l2_reads + self.l2_writes
    }

    /// L2 accesses per instruction (last column of Table 2).
    pub fn accesses_per_instr(&self) -> f64 {
        self.l2_accesses() as f64 / self.instructions as f64
    }

    /// Fraction of accesses that are writes.
    pub fn write_fraction(&self) -> f64 {
        self.l2_writes as f64 / self.l2_accesses() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_benchmarks() {
        assert_eq!(ALL_BENCHMARKS.len(), 12);
        let fp = ALL_BENCHMARKS
            .iter()
            .filter(|b| b.class == BenchClass::Fp)
            .count();
        assert_eq!(fp, 6, "six FP and six INT benchmarks");
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = ALL_BENCHMARKS.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn table2_access_per_instr_column() {
        // Spot-check the derived column against the printed Table 2.
        let expect = [
            ("applu", 0.028),
            ("apsi", 0.021),
            ("art", 0.155),
            ("galgel", 0.012),
            ("lucas", 0.033),
            ("mesa", 0.003),
            ("bzip2", 0.010),
            ("gcc", 0.082),
            ("mcf", 0.181),
            ("parser", 0.013),
            ("twolf", 0.028),
            ("vpr", 0.017),
        ];
        for (name, v) in expect {
            let b = BenchmarkProfile::by_name(name).unwrap();
            assert!(
                (b.accesses_per_instr() - v).abs() < 0.0015,
                "{name}: {} vs {v}",
                b.accesses_per_instr()
            );
        }
    }

    #[test]
    fn by_name_misses_gracefully() {
        assert!(BenchmarkProfile::by_name("quake").is_none());
    }

    #[test]
    fn art_has_most_intense_access_rate() {
        let max = ALL_BENCHMARKS
            .iter()
            .max_by(|a, b| a.accesses_per_instr().total_cmp(&b.accesses_per_instr()))
            .unwrap();
        assert_eq!(max.name, "mcf"); // 0.181 > art's 0.155
        assert_eq!(
            BenchmarkProfile::by_name("art").unwrap().l2_reads,
            63_877_000,
            "art has the largest read volume"
        );
    }

    #[test]
    fn locality_params_are_sane() {
        for b in &ALL_BENCHMARKS {
            assert!(b.locality.theta > 0.0, "{}", b.name);
            assert!((0.0..1.0).contains(&b.locality.p_new), "{}", b.name);
            assert!(b.locality.max_depth >= 16, "{}", b.name);
            assert!(b.locality.burst >= 1, "{}", b.name);
            assert!(
                b.write_fraction() > 0.0 && b.write_fraction() < 1.0,
                "{}",
                b.name
            );
        }
    }

    #[test]
    fn streamers_sweep_longer_spatial_runs() {
        let applu = BenchmarkProfile::by_name("applu").unwrap();
        let mcf = BenchmarkProfile::by_name("mcf").unwrap();
        assert!(applu.locality.burst > mcf.locality.burst);
    }

    #[test]
    fn streaming_benchmarks_have_low_theta() {
        let applu = BenchmarkProfile::by_name("applu").unwrap();
        let art = BenchmarkProfile::by_name("art").unwrap();
        assert!(applu.locality.theta < 1.0);
        assert!(art.locality.theta > 2.0);
        assert!(art.locality.p_new < 0.001);
    }
}
