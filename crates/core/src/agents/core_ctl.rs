//! The cache controller at the core.
//!
//! Admits L2 accesses as transactions (bounded outstanding window,
//! per-bank-set serialisation — the paper's 2-entry spike queues),
//! issues unicast walks or multicasts, collects notifications, invokes
//! the off-chip memory on a full miss, and retires transactions into
//! [`AccessRecord`]s.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::rc::Rc;
use std::sync::Arc;

use nucanet_noc::{Dest, Endpoint};

use super::Outgoing;
use crate::metrics::AccessRecord;
use crate::msg::CacheMsg;
use crate::scheme::Scheme;

/// Bank-set serialisation state, shared by every controller that uses
/// the cache (one per system; CMP cores share it so cross-core accesses
/// to one set cannot interleave mid-replacement).
#[derive(Debug)]
pub struct SetLocks {
    col_active: Vec<u8>,
    locked: HashSet<(u16, u32)>,
    per_column_limit: u8,
}

impl SetLocks {
    /// Creates an unlocked table for `columns` bank sets.
    pub fn new(columns: usize, per_column_limit: u8) -> Self {
        SetLocks {
            col_active: vec![0; columns],
            locked: HashSet::new(),
            per_column_limit: per_column_limit.max(1),
        }
    }

    /// Shared handle for several controllers.
    pub fn shared(columns: usize, per_column_limit: u8) -> Rc<RefCell<SetLocks>> {
        Rc::new(RefCell::new(SetLocks::new(columns, per_column_limit)))
    }

    fn can_admit(&self, column: u16, index: u32) -> bool {
        self.col_active[column as usize] < self.per_column_limit
            && !self.locked.contains(&(column, index))
    }

    fn lock(&mut self, column: u16, index: u32) {
        self.col_active[column as usize] += 1;
        self.locked.insert((column, index));
    }

    fn unlock(&mut self, column: u16, index: u32) {
        self.col_active[column as usize] -= 1;
        self.locked.remove(&(column, index));
    }

    /// Releases every lock, returning the table to its just-constructed
    /// state (warm-reset path). Keeps the hash-set storage.
    pub fn reset(&mut self) {
        self.col_active.fill(0);
        self.locked.clear();
    }
}

/// One L2 access waiting for admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingAccess {
    /// Bank set (column/spike).
    pub column: u16,
    /// Set index within each bank.
    pub index: u32,
    /// Address tag.
    pub tag: u32,
    /// Store vs load.
    pub write: bool,
}

#[derive(Debug)]
struct Txn {
    column: u16,
    index: u32,
    tag: u32,
    write: bool,
    issued_at: u64,
    retries_left: u8,
    data_done: Option<u64>,
    hit_position: Option<u8>,
    miss_count: u8,
    notifies_seen: u8,
    expect_completion: bool,
    completion_seen: Option<u64>,
    expect_filldone: bool,
    filldone_seen: Option<u64>,
    mem_fetch_sent: bool,
    last_pos_acc: u32,
    bank_cycles: u64,
    mem_cycles: u64,
}

/// The core-side protocol engine.
#[derive(Debug)]
pub struct CoreController {
    scheme: Scheme,
    /// The controller's network interfaces; column `c` uses interface
    /// `c % endpoints.len()` for both injection and replies.
    pub endpoints: Vec<Endpoint>,
    memory: Endpoint,
    /// Bank endpoints per column, MRU first. Reference-counted (`Arc`,
    /// matching [`Dest::multicast_shared`]) so each multicast request
    /// shares the list with the network instead of copying it per
    /// packet.
    columns: Vec<Arc<[Endpoint]>>,
    positions: u8,
    queue: VecDeque<PendingAccess>,
    txns: HashMap<u32, Txn>,
    next_txn: u32,
    /// First transaction id of this controller's stride (see
    /// [`CoreController::set_txn_base`]); `next_txn` restarts here on
    /// [`CoreController::reset`].
    txn_base: u32,
    locks: Rc<RefCell<SetLocks>>,
    max_outstanding: usize,
    /// How deep into the queue admission may look (an MSHR-like window).
    admission_scan: usize,
    completed: Vec<AccessRecord>,
    /// Cancel-and-retry deadline in cycles since admission, if any.
    timeout: Option<u64>,
    /// Retries granted to each access before it is dropped.
    retry_budget: u8,
    /// Ids of cancelled transactions whose packets may still be in
    /// flight; their late replies are dropped instead of panicking.
    /// Grows with the number of timeouts, which a finite trace bounds.
    stale: HashSet<u32>,
    timeouts: u64,
    retries: u64,
    stale_drops: u64,
}

impl CoreController {
    /// Creates a controller.
    ///
    /// # Panics
    ///
    /// Panics if `columns` is empty or ragged.
    pub fn new(
        scheme: Scheme,
        endpoints: Vec<Endpoint>,
        memory: Endpoint,
        columns: Vec<Vec<Endpoint>>,
        max_outstanding: usize,
        locks: Rc<RefCell<SetLocks>>,
    ) -> Self {
        assert!(!columns.is_empty(), "need at least one column");
        assert!(
            !endpoints.is_empty(),
            "need at least one controller interface"
        );
        let positions = columns[0].len() as u8;
        assert!(positions >= 1, "columns must hold at least one bank");
        assert!(
            columns.iter().all(|c| c.len() == positions as usize),
            "ragged columns"
        );
        let columns = columns.into_iter().map(Arc::from).collect();
        CoreController {
            scheme,
            endpoints,
            memory,
            columns,
            positions,
            queue: VecDeque::new(),
            txns: HashMap::new(),
            next_txn: 0,
            txn_base: 0,
            locks,
            max_outstanding: max_outstanding.max(1),
            admission_scan: 16,
            completed: Vec::new(),
            timeout: None,
            retry_budget: 0,
            stale: HashSet::new(),
            timeouts: 0,
            retries: 0,
            stale_drops: 0,
        }
    }

    /// Arms the cancel-and-retry path: a transaction older than
    /// `timeout` cycles is cancelled and, while it has retries left,
    /// reissued as a fresh transaction. `None` disarms it.
    pub fn set_request_timeout(&mut self, timeout: Option<u64>, retries: u8) {
        self.timeout = timeout;
        self.retry_budget = retries;
    }

    /// Accesses dropped after exhausting their retries.
    pub fn timeouts(&self) -> u64 {
        self.timeouts
    }

    /// Retry attempts issued so far.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Late replies discarded because their transaction had already
    /// been cancelled by the timeout path. The driver watches this
    /// counter to report each drop into the network event log, so
    /// invariant-violation and debugging traces carry the causal entry.
    pub fn stale_drops(&self) -> u64 {
        self.stale_drops
    }

    /// The earliest cycle at which an in-flight transaction can expire,
    /// if the timeout path is armed and anything is outstanding.
    pub fn next_expiry(&self) -> Option<u64> {
        let to = self.timeout?;
        self.txns
            .values()
            .map(|t| t.issued_at.saturating_add(to))
            .min()
    }

    /// Cancels transactions stranded past the timeout (e.g. by a link
    /// fault). A cancelled transaction with retries left is reissued
    /// immediately as a fresh transaction (same bank-set lock); one out
    /// of retries releases its lock and is counted as timed out — it
    /// produces no [`AccessRecord`]. Late replies to cancelled ids are
    /// silently dropped by [`CoreController::handle`].
    ///
    /// Expired ids are processed in sorted order so the emitted retry
    /// packets are deterministic.
    pub fn expire_stranded(&mut self, now: u64) -> Vec<(Endpoint, Outgoing)> {
        let Some(to) = self.timeout else {
            return Vec::new();
        };
        let mut expired: Vec<u32> = self
            .txns
            .iter()
            .filter(|(_, t)| now >= t.issued_at.saturating_add(to))
            .map(|(&id, _)| id)
            .collect();
        if expired.is_empty() {
            return Vec::new();
        }
        expired.sort_unstable();
        let mut out = Vec::new();
        for id in expired {
            let t = self.txns.remove(&id).expect("id came from the map");
            self.stale.insert(id);
            let a = PendingAccess {
                column: t.column,
                index: t.index,
                tag: t.tag,
                write: t.write,
            };
            if t.retries_left > 0 {
                // The retry inherits the cancelled transaction's set
                // lock, so no competing access can slip in between.
                self.retries += 1;
                let txn = self.next_txn;
                self.next_txn += 1;
                let src = self.port_for(a.column);
                out.push((src, self.issue(txn, a, now, t.retries_left - 1)));
            } else {
                self.timeouts += 1;
                self.locks.borrow_mut().unlock(a.column, a.index);
            }
        }
        out
    }

    /// Offsets this controller's transaction ids so several controllers
    /// can share the network without id collisions at the banks.
    pub fn set_txn_base(&mut self, base: u32) {
        assert!(self.txns.is_empty(), "set the txn base before issuing");
        self.next_txn = base;
        self.txn_base = base;
    }

    /// Returns the controller to its just-constructed state (same
    /// wiring, txn ids restarting at the configured base) while keeping
    /// queue/map storage. The timeout arming is per-configuration and
    /// is left untouched; the shared [`SetLocks`] must be reset
    /// separately by whoever owns it. Warm-reset path.
    pub fn reset(&mut self) {
        self.queue.clear();
        self.txns.clear();
        self.next_txn = self.txn_base;
        self.completed.clear();
        self.stale.clear();
        self.timeouts = 0;
        self.retries = 0;
        self.stale_drops = 0;
    }

    /// Enqueues one access for admission.
    pub fn push_access(&mut self, a: PendingAccess) {
        self.queue.push_back(a);
    }

    /// Transactions currently in flight.
    pub fn outstanding(&self) -> usize {
        self.txns.len()
    }

    /// Accesses not yet admitted.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Whether all work has been admitted, completed, and retired.
    pub fn is_done(&self) -> bool {
        self.queue.is_empty() && self.txns.is_empty()
    }

    /// Takes the retired access records accumulated so far.
    pub fn take_completed(&mut self) -> Vec<AccessRecord> {
        std::mem::take(&mut self.completed)
    }

    /// The interface serving `column`.
    pub fn port_for(&self, column: u16) -> Endpoint {
        self.endpoints[column as usize % self.endpoints.len()]
    }

    /// Admits as many queued accesses as limits allow; returns the
    /// request packets to inject, each tagged with the interface it
    /// departs from.
    pub fn try_admit(&mut self, now: u64) -> Vec<(Endpoint, Outgoing)> {
        let mut out = Vec::new();
        loop {
            if self.txns.len() >= self.max_outstanding {
                break;
            }
            let locks = self.locks.borrow();
            let slot = self
                .queue
                .iter()
                .take(self.admission_scan)
                .position(|a| locks.can_admit(a.column, a.index));
            drop(locks);
            let Some(i) = slot else { break };
            let a = self.queue.remove(i).expect("position came from the queue");
            let src = self.port_for(a.column);
            out.push((src, self.admit(a, now)));
        }
        out
    }

    fn admit(&mut self, a: PendingAccess, now: u64) -> Outgoing {
        let txn = self.next_txn;
        self.next_txn += 1;
        self.locks.borrow_mut().lock(a.column, a.index);
        self.issue(txn, a, now, self.retry_budget)
    }

    /// Registers transaction `txn` for `a` (the set lock must already be
    /// held) and builds its request packet.
    fn issue(&mut self, txn: u32, a: PendingAccess, now: u64, retries_left: u8) -> Outgoing {
        self.txns.insert(
            txn,
            Txn {
                column: a.column,
                index: a.index,
                tag: a.tag,
                write: a.write,
                issued_at: now,
                retries_left,
                data_done: None,
                hit_position: None,
                miss_count: 0,
                notifies_seen: 0,
                expect_completion: false,
                completion_seen: None,
                expect_filldone: false,
                filldone_seen: None,
                mem_fetch_sent: false,
                last_pos_acc: 0,
                bank_cycles: 0,
                mem_cycles: 0,
            },
        );
        let reply = self.port_for(a.column);
        if self.scheme == Scheme::StaticNuca {
            // Static placement: straight to the home bank.
            let home = a.index as usize % self.positions as usize;
            return Outgoing {
                ready: now,
                dest: Dest::unicast(self.columns[a.column as usize][home]),
                msg: CacheMsg::Request {
                    txn,
                    index: a.index,
                    tag: a.tag,
                    write: a.write,
                    reply,
                },
            };
        }
        if self.scheme.is_multicast() {
            Outgoing {
                ready: now,
                dest: Dest::multicast_shared(Arc::clone(&self.columns[a.column as usize])),
                msg: CacheMsg::Request {
                    txn,
                    index: a.index,
                    tag: a.tag,
                    write: a.write,
                    reply,
                },
            }
        } else {
            Outgoing {
                ready: now,
                dest: Dest::unicast(self.columns[a.column as usize][0]),
                msg: CacheMsg::WalkRequest {
                    txn,
                    index: a.index,
                    tag: a.tag,
                    write: a.write,
                    carry: None,
                    acc_bank: 0,
                    reply,
                },
            }
        }
    }

    /// Handles a message addressed to the core; may emit a memory fetch.
    /// Late replies to transactions cancelled by the timeout path are
    /// dropped.
    ///
    /// # Panics
    ///
    /// Panics on unknown transactions or messages the core never
    /// receives.
    pub fn handle(&mut self, msg: &CacheMsg, now: u64) -> Vec<Outgoing> {
        let id = msg.txn();
        let positions = self.positions;
        let scheme = self.scheme;
        if !self.txns.contains_key(&id) && self.stale.contains(&id) {
            self.stale_drops += 1;
            return Vec::new();
        }
        let t = self
            .txns
            .get_mut(&id)
            .unwrap_or_else(|| panic!("core received {msg:?} for unknown txn {id}"));
        let mut out = Vec::new();
        match *msg {
            CacheMsg::HitData {
                position, acc_bank, ..
            } => {
                t.hit_position = Some(position);
                t.notifies_seen += 1;
                t.bank_cycles += acc_bank as u64;
                if t.data_done.is_none() {
                    t.data_done = Some(now);
                }
                if position > 0 {
                    match scheme {
                        Scheme::UnicastPromotion
                        | Scheme::MulticastPromotion
                        | Scheme::UnicastLru => {
                            t.expect_completion = true;
                        }
                        Scheme::UnicastFastLru | Scheme::MulticastFastLru => {
                            t.expect_filldone = true;
                        }
                        // No migration: a hit is complete once the data
                        // reaches the core.
                        Scheme::StaticNuca => {}
                    }
                }
            }
            CacheMsg::MissNotify {
                position,
                chain_started,
                acc_bank,
                ..
            } => {
                t.notifies_seen += 1;
                t.miss_count += 1;
                if position == 0 && chain_started {
                    t.expect_completion = true;
                }
                let fetch = if scheme.is_multicast() {
                    if position == positions - 1 {
                        t.last_pos_acc = acc_bank;
                    }
                    t.miss_count == positions
                } else {
                    t.last_pos_acc = acc_bank;
                    true
                };
                if fetch {
                    assert!(!t.mem_fetch_sent, "duplicate memory fetch for txn {id}");
                    t.mem_fetch_sent = true;
                    t.bank_cycles += t.last_pos_acc as u64;
                    let reply = self.endpoints[t.column as usize % self.endpoints.len()];
                    out.push(Outgoing {
                        ready: now,
                        dest: Dest::unicast(self.memory),
                        msg: CacheMsg::MemFetch {
                            txn: id,
                            column: t.column,
                            index: t.index,
                            tag: t.tag,
                            write: t.write,
                            reply,
                        },
                    });
                }
            }
            CacheMsg::FillData {
                chain_started,
                acc_bank,
                acc_mem,
                ..
            } => {
                if t.data_done.is_none() {
                    t.data_done = Some(now);
                }
                t.bank_cycles += acc_bank as u64;
                t.mem_cycles += acc_mem as u64;
                if chain_started {
                    t.expect_completion = true;
                }
            }
            CacheMsg::Completion { acc_bank, .. } => {
                t.completion_seen = Some(now);
                t.bank_cycles += acc_bank as u64;
            }
            CacheMsg::FillDone { acc_bank, .. } => {
                t.filldone_seen = Some(now);
                t.bank_cycles += acc_bank as u64;
            }
            ref other => panic!("core received unexpected {other:?}"),
        }
        self.try_retire(id);
        out
    }

    fn try_retire(&mut self, id: u32) {
        let t = &self.txns[&id];
        let data_ok = t.data_done.is_some();
        let chain_ok = !t.expect_completion || t.completion_seen.is_some();
        let fill_ok = !t.expect_filldone || t.filldone_seen.is_some();
        let notifies_ok = !self.scheme.is_multicast() || t.notifies_seen == self.positions;
        if !(data_ok && chain_ok && fill_ok && notifies_ok) {
            return;
        }
        let t = self.txns.remove(&id).expect("txn present");
        self.locks.borrow_mut().unlock(t.column, t.index);
        // Access latency counts the whole operation — tag-match, data
        // delivery AND replacement — matching the paper's hop-count
        // accounting (Fig. 2: LRU 21 hops vs Fast-LRU 12 hops). Late
        // miss-notification stragglers of a multicast hit do not extend
        // it; they only delay bookkeeping.
        let data = t.data_done.expect("data_ok checked");
        let done = [Some(data), t.completion_seen, t.filldone_seen]
            .into_iter()
            .flatten()
            .max()
            .expect("data present");
        self.completed.push(AccessRecord {
            write: t.write,
            hit_position: t.hit_position,
            latency: done - t.issued_at,
            data_latency: data - t.issued_at,
            bank_cycles: t.bank_cycles,
            mem_cycles: t.mem_cycles,
        });
    }

    /// Debug dump of stuck transactions (used by the system watchdog).
    /// Sorted by id so the dump is deterministic (it ends up in
    /// [`nucanet_noc::SimError::Wedged`], which sweeps serialise).
    pub fn debug_stuck(&self) -> String {
        let mut ids: Vec<u32> = self.txns.keys().copied().collect();
        ids.sort_unstable();
        let mut s = String::new();
        for id in ids {
            let t = &self.txns[&id];
            s.push_str(&format!(
                "txn {id}: col {} idx {} data={:?} notifies={} misses={} \
                 exp_c={} c={:?} exp_f={} f={:?}\n",
                t.column,
                t.index,
                t.data_done,
                t.notifies_seen,
                t.miss_count,
                t.expect_completion,
                t.completion_seen,
                t.expect_filldone,
                t.filldone_seen
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nucanet_noc::NodeId;

    fn ep(n: u32) -> Endpoint {
        Endpoint::at(NodeId(n))
    }

    fn controller(scheme: Scheme) -> CoreController {
        let columns = vec![
            vec![ep(10), ep(11), ep(12), ep(13)],
            vec![ep(20), ep(21), ep(22), ep(23)],
        ];
        CoreController::new(
            scheme,
            vec![ep(1)],
            ep(2),
            columns,
            4,
            SetLocks::shared(2, 2),
        )
    }

    fn acc(column: u16, index: u32, tag: u32) -> PendingAccess {
        PendingAccess {
            column,
            index,
            tag,
            write: false,
        }
    }

    #[test]
    fn admits_multicast_request_to_whole_column() {
        let mut c = controller(Scheme::MulticastFastLru);
        c.push_access(acc(1, 5, 9));
        let out = c.try_admit(100);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, ep(1), "departs from the controller interface");
        assert_eq!(
            out[0].1.dest,
            Dest::multicast(vec![ep(20), ep(21), ep(22), ep(23)])
        );
        assert!(matches!(
            out[0].1.msg,
            CacheMsg::Request {
                index: 5,
                tag: 9,
                ..
            }
        ));
        assert_eq!(c.outstanding(), 1);
    }

    #[test]
    fn admits_unicast_walk_to_mru_bank() {
        let mut c = controller(Scheme::UnicastLru);
        c.push_access(acc(0, 1, 2));
        let out = c.try_admit(0);
        assert_eq!(out[0].1.dest, Dest::unicast(ep(10)));
        assert!(matches!(
            out[0].1.msg,
            CacheMsg::WalkRequest { carry: None, .. }
        ));
    }

    #[test]
    fn same_set_serialises() {
        let mut c = controller(Scheme::UnicastLru);
        c.push_access(acc(0, 1, 2));
        c.push_access(acc(0, 1, 3)); // same set
        let out = c.try_admit(0);
        assert_eq!(out.len(), 1, "second access to the same set must wait");
        assert_eq!(c.queued(), 1);
    }

    #[test]
    fn different_sets_in_one_column_up_to_limit() {
        let mut c = controller(Scheme::UnicastLru);
        c.push_access(acc(0, 1, 2));
        c.push_access(acc(0, 2, 3));
        c.push_access(acc(0, 3, 4)); // exceeds per-column limit of 2
        let out = c.try_admit(0);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn admission_skips_blocked_head() {
        let mut c = controller(Scheme::UnicastLru);
        c.push_access(acc(0, 1, 2));
        c.push_access(acc(0, 1, 3)); // blocked (same set)
        c.push_access(acc(1, 9, 4)); // admissible
        let out = c.try_admit(0);
        assert_eq!(out.len(), 2);
        assert_eq!(c.queued(), 1);
    }

    #[test]
    fn unicast_hit_retires_on_data_when_mru() {
        let mut c = controller(Scheme::UnicastLru);
        c.push_access(acc(0, 1, 2));
        let _ = c.try_admit(0);
        let out = c.handle(
            &CacheMsg::HitData {
                txn: 0,
                position: 0,
                acc_bank: 2,
            },
            30,
        );
        assert!(out.is_empty());
        assert!(c.is_done());
        let rec = c.take_completed();
        assert_eq!(rec.len(), 1);
        assert_eq!(rec[0].latency, 30);
        assert_eq!(rec[0].hit_position, Some(0));
        assert_eq!(rec[0].bank_cycles, 2);
    }

    #[test]
    fn unicast_lru_deep_hit_waits_for_completion() {
        let mut c = controller(Scheme::UnicastLru);
        c.push_access(acc(0, 1, 2));
        let _ = c.try_admit(0);
        c.handle(
            &CacheMsg::HitData {
                txn: 0,
                position: 3,
                acc_bank: 8,
            },
            40,
        );
        assert_eq!(c.outstanding(), 1, "replacement chain still running");
        c.handle(
            &CacheMsg::Completion {
                txn: 0,
                acc_bank: 12,
            },
            90,
        );
        assert!(c.is_done());
        let rec = c.take_completed()[0];
        assert_eq!(rec.latency, 90, "latency spans the replacement chain");
        assert_eq!(rec.data_latency, 40, "data arrived earlier");
    }

    #[test]
    fn unicast_miss_fetches_memory_and_retires_on_fill() {
        let mut c = controller(Scheme::UnicastFastLru);
        c.push_access(acc(0, 1, 2));
        let _ = c.try_admit(0);
        let out = c.handle(
            &CacheMsg::MissNotify {
                txn: 0,
                position: 3,
                chain_started: false,
                acc_bank: 11,
            },
            50,
        );
        assert_eq!(out.len(), 1);
        assert!(matches!(
            out[0].msg,
            CacheMsg::MemFetch {
                column: 0,
                index: 1,
                tag: 2,
                ..
            }
        ));
        assert_eq!(out[0].dest, Dest::unicast(ep(2)));
        c.handle(
            &CacheMsg::FillData {
                txn: 0,
                chain_started: false,
                acc_bank: 3,
                acc_mem: 162,
            },
            260,
        );
        assert!(c.is_done());
        let rec = &c.take_completed()[0];
        assert_eq!(rec.hit_position, None);
        assert_eq!(rec.latency, 260);
        assert_eq!(rec.bank_cycles, 14);
        assert_eq!(rec.mem_cycles, 162);
    }

    #[test]
    fn multicast_waits_for_all_notifies() {
        let mut c = controller(Scheme::MulticastFastLru);
        c.push_access(acc(0, 1, 2));
        let _ = c.try_admit(0);
        // Hit at the MRU bank, but the other three banks still report.
        c.handle(
            &CacheMsg::HitData {
                txn: 0,
                position: 0,
                acc_bank: 2,
            },
            10,
        );
        assert_eq!(c.outstanding(), 1);
        for p in 1..4u8 {
            c.handle(
                &CacheMsg::MissNotify {
                    txn: 0,
                    position: p,
                    chain_started: false,
                    acc_bank: 2,
                },
                12 + p as u64,
            );
        }
        assert!(c.is_done());
        let rec = c.take_completed()[0];
        assert_eq!(
            rec.latency, 10,
            "MRU hit: stragglers do not extend the latency"
        );
        assert_eq!(rec.data_latency, 10);
    }

    #[test]
    fn multicast_full_miss_triggers_single_fetch() {
        let mut c = controller(Scheme::MulticastFastLru);
        c.push_access(acc(0, 1, 2));
        let _ = c.try_admit(0);
        let mut fetches = 0;
        for p in 0..4u8 {
            let out = c.handle(
                &CacheMsg::MissNotify {
                    txn: 0,
                    position: p,
                    chain_started: p == 0,
                    acc_bank: if p == 3 { 7 } else { 2 },
                },
                10,
            );
            fetches += out.len();
        }
        assert_eq!(fetches, 1, "exactly one fetch after all misses");
        // Chain completion + fill still outstanding.
        c.handle(
            &CacheMsg::Completion {
                txn: 0,
                acc_bank: 0,
            },
            60,
        );
        assert_eq!(c.outstanding(), 1);
        c.handle(
            &CacheMsg::FillData {
                txn: 0,
                chain_started: false,
                acc_bank: 3,
                acc_mem: 162,
            },
            200,
        );
        assert!(c.is_done());
        let rec = &c.take_completed()[0];
        assert_eq!(rec.bank_cycles, 7 + 3, "LRU bank tag + MRU install");
    }

    #[test]
    fn multicast_deep_hit_needs_filldone_and_chain() {
        let mut c = controller(Scheme::MulticastFastLru);
        c.push_access(acc(0, 1, 2));
        let _ = c.try_admit(0);
        c.handle(
            &CacheMsg::MissNotify {
                txn: 0,
                position: 0,
                chain_started: true,
                acc_bank: 3,
            },
            8,
        );
        c.handle(
            &CacheMsg::HitData {
                txn: 0,
                position: 2,
                acc_bank: 3,
            },
            12,
        );
        c.handle(
            &CacheMsg::MissNotify {
                txn: 0,
                position: 1,
                chain_started: false,
                acc_bank: 2,
            },
            13,
        );
        c.handle(
            &CacheMsg::MissNotify {
                txn: 0,
                position: 3,
                chain_started: false,
                acc_bank: 2,
            },
            14,
        );
        assert_eq!(c.outstanding(), 1, "chain + MRU fill outstanding");
        c.handle(
            &CacheMsg::Completion {
                txn: 0,
                acc_bank: 0,
            },
            30,
        );
        assert_eq!(c.outstanding(), 1, "MRU fill outstanding");
        c.handle(
            &CacheMsg::FillDone {
                txn: 0,
                acc_bank: 0,
            },
            35,
        );
        assert!(c.is_done());
    }

    #[test]
    fn outstanding_window_caps_admission() {
        let mut c = controller(Scheme::UnicastLru);
        for i in 0..10 {
            c.push_access(acc((i % 2) as u16, i, 1));
        }
        let out = c.try_admit(0);
        assert_eq!(out.len(), 4, "max_outstanding = 4");
    }

    #[test]
    fn timeout_reissues_with_fresh_txn_id() {
        let mut c = controller(Scheme::MulticastFastLru);
        c.set_request_timeout(Some(100), 1);
        c.push_access(acc(0, 1, 2));
        let _ = c.try_admit(0);
        assert_eq!(c.next_expiry(), Some(100));
        assert!(c.expire_stranded(99).is_empty(), "not yet due");
        let out = c.expire_stranded(100);
        assert_eq!(out.len(), 1, "one retry request");
        assert_eq!(c.retries(), 1);
        assert_eq!(c.timeouts(), 0);
        assert!(
            matches!(out[0].1.msg, CacheMsg::Request { txn: 1, .. }),
            "retry uses a fresh txn id"
        );
        // The original id's late replies are dropped, the retry's land.
        assert!(c
            .handle(
                &CacheMsg::HitData {
                    txn: 0,
                    position: 0,
                    acc_bank: 2,
                },
                120,
            )
            .is_empty());
        assert_eq!(c.outstanding(), 1, "stale reply did not retire anything");
        for _ in 0..4 {
            c.handle(
                &CacheMsg::HitData {
                    txn: 1,
                    position: 0,
                    acc_bank: 2,
                },
                150,
            );
        }
        assert!(c.is_done());
        let rec = c.take_completed();
        assert_eq!(rec.len(), 1);
        assert_eq!(rec[0].latency, 50, "latency counts from the retry");
    }

    #[test]
    fn exhausted_retries_drop_the_access_and_unlock() {
        let mut c = controller(Scheme::UnicastLru);
        c.set_request_timeout(Some(10), 0);
        c.push_access(acc(0, 1, 2));
        c.push_access(acc(0, 1, 3)); // same set, blocked behind the first
        let _ = c.try_admit(0);
        assert!(c.expire_stranded(10).is_empty(), "no retries left");
        assert_eq!(c.timeouts(), 1);
        assert_eq!(c.outstanding(), 0);
        let out = c.try_admit(11);
        assert_eq!(out.len(), 1, "dropped access released its set lock");
    }

    #[test]
    fn timeout_disarmed_by_default() {
        let mut c = controller(Scheme::UnicastLru);
        c.push_access(acc(0, 1, 2));
        let _ = c.try_admit(0);
        assert_eq!(c.next_expiry(), None);
        assert!(c.expire_stranded(u64::MAX).is_empty());
    }

    #[test]
    #[should_panic(expected = "unknown txn")]
    fn unknown_txn_panics() {
        let mut c = controller(Scheme::UnicastLru);
        let _ = c.handle(
            &CacheMsg::Completion {
                txn: 7,
                acc_bank: 0,
            },
            0,
        );
    }
}
