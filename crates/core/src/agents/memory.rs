//! Off-chip memory controller agent.
//!
//! Table 1: "Memory latency (pipelined): 130 cycles + 4 cycles per 8B".
//! A 64-byte block therefore takes 162 cycles; the halo designs add a
//! round-trip wire penalty because their memory controller sits in the
//! middle of the die (§4). The memory is pipelined: overlapping fetches
//! do not queue behind each other.

use nucanet_noc::{Dest, Endpoint};

use super::Outgoing;
use crate::msg::CacheMsg;
use crate::scheme::Scheme;

/// The memory controller and off-chip DRAM model.
#[derive(Debug, Clone)]
pub struct MemoryAgent {
    endpoint: Endpoint,
    /// Bank endpoints per column, position order (fill targets).
    banks: Vec<Vec<Endpoint>>,
    scheme: Scheme,
    /// Full service time for one block (fetch or writeback).
    service: u32,
    fetches: u64,
    writebacks: u64,
}

impl MemoryAgent {
    /// Creates the agent.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is empty or ragged-empty.
    pub fn new(
        endpoint: Endpoint,
        banks: Vec<Vec<Endpoint>>,
        scheme: Scheme,
        service: u32,
    ) -> Self {
        assert!(!banks.is_empty(), "memory needs at least one fill column");
        assert!(
            banks.iter().all(|c| !c.is_empty()),
            "columns need at least one bank"
        );
        MemoryAgent {
            endpoint,
            banks,
            scheme,
            service,
            fetches: 0,
            writebacks: 0,
        }
    }

    /// This agent's endpoint.
    pub fn endpoint(&self) -> Endpoint {
        self.endpoint
    }

    /// Block fetches served.
    pub fn fetches(&self) -> u64 {
        self.fetches
    }

    /// Writebacks absorbed.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Zeroes the service counters (warm-reset path); the memory model
    /// itself is stateless between requests.
    pub fn reset(&mut self) {
        self.fetches = 0;
        self.writebacks = 0;
    }

    /// Handles one delivered message.
    ///
    /// # Panics
    ///
    /// Panics on messages the memory can never receive.
    pub fn handle(&mut self, msg: &CacheMsg, now: u64) -> Vec<Outgoing> {
        match *msg {
            CacheMsg::MemFetch {
                txn,
                column,
                index,
                tag,
                write,
                reply,
            } => {
                self.fetches += 1;
                let fin = now + self.service as u64;
                let col = &self.banks[column as usize];
                // Fills land in the MRU bank; static NUCA fills the home
                // bank instead (blocks never move afterwards).
                let target = if self.scheme == Scheme::StaticNuca {
                    col[index as usize % col.len()]
                } else {
                    col[0]
                };
                vec![Outgoing {
                    ready: fin,
                    dest: Dest::unicast(target),
                    msg: CacheMsg::MemReply {
                        txn,
                        index,
                        tag,
                        write,
                        acc_mem: self.service,
                        reply,
                    },
                }]
            }
            CacheMsg::WriteBack { .. } => {
                self.writebacks += 1;
                Vec::new()
            }
            ref other => panic!("memory received unexpected {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nucanet_noc::NodeId;

    fn ep(n: u32) -> Endpoint {
        Endpoint::at(NodeId(n))
    }

    #[test]
    fn fetch_replies_to_the_columns_mru_bank() {
        let mut m = MemoryAgent::new(
            ep(0),
            vec![vec![ep(1)], vec![ep(2)]],
            Scheme::MulticastFastLru,
            162,
        );
        let out = m.handle(
            &CacheMsg::MemFetch {
                txn: 9,
                column: 1,
                index: 3,
                tag: 7,
                write: true,
                reply: Endpoint::default(),
            },
            1_000,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].ready, 1_162);
        assert_eq!(out[0].dest, Dest::unicast(ep(2)));
        assert!(matches!(
            out[0].msg,
            CacheMsg::MemReply {
                txn: 9,
                index: 3,
                tag: 7,
                write: true,
                acc_mem: 162,
                ..
            }
        ));
        assert_eq!(m.fetches(), 1);
    }

    #[test]
    fn memory_is_pipelined() {
        let mut m = MemoryAgent::new(ep(0), vec![vec![ep(1)]], Scheme::MulticastFastLru, 162);
        let a = m.handle(
            &CacheMsg::MemFetch {
                txn: 1,
                column: 0,
                index: 0,
                tag: 0,
                write: false,
                reply: Endpoint::default(),
            },
            10,
        );
        let b = m.handle(
            &CacheMsg::MemFetch {
                txn: 2,
                column: 0,
                index: 1,
                tag: 0,
                write: false,
                reply: Endpoint::default(),
            },
            11,
        );
        assert_eq!(a[0].ready, 172);
        assert_eq!(b[0].ready, 173, "second fetch overlaps, not queues");
    }

    #[test]
    fn writebacks_are_absorbed() {
        let mut m = MemoryAgent::new(ep(0), vec![vec![ep(1)]], Scheme::MulticastFastLru, 162);
        let out = m.handle(
            &CacheMsg::WriteBack {
                txn: 1,
                block: nucanet_cache::Block {
                    tag: 1,
                    dirty: true,
                },
            },
            0,
        );
        assert!(out.is_empty());
        assert_eq!(m.writebacks(), 1);
    }

    #[test]
    #[should_panic(expected = "unexpected")]
    fn unexpected_message_panics() {
        let mut m = MemoryAgent::new(ep(0), vec![vec![ep(1)]], Scheme::MulticastFastLru, 162);
        let _ = m.handle(
            &CacheMsg::Completion {
                txn: 0,
                acc_bank: 0,
            },
            0,
        );
    }
}
