//! Distributed protocol engines.
//!
//! The cache protocol is realised by three kinds of agents attached to
//! network endpoints:
//!
//! * [`bank::BankAgent`] — one per cache bank; owns the bank's frames
//!   and reacts to requests, pushed-down blocks, swaps, and memory
//!   fills per the configured [`crate::Scheme`].
//! * [`memory::MemoryAgent`] — the off-chip memory controller
//!   (130 + 4·(B/8) cycles, pipelined; plus the halo's extra controller
//!   wire).
//! * [`core_ctl::CoreController`] — the cache controller next to the
//!   core: admits transactions (per-bank-set serialisation, bounded
//!   outstanding window), issues unicast walks or multicasts, collects
//!   hit/miss notifications, triggers memory fetches, and retires
//!   transactions into [`crate::metrics::AccessRecord`]s.

pub mod bank;
pub mod core_ctl;
pub mod memory;

use nucanet_noc::Dest;

use crate::msg::CacheMsg;

/// A message an agent wants injected once its service completes.
#[derive(Debug, Clone)]
pub struct Outgoing {
    /// Cycle at which the packet may enter the network.
    pub ready: u64,
    /// Where it goes.
    pub dest: Dest,
    /// Protocol payload (flit count derives from it).
    pub msg: CacheMsg,
}
