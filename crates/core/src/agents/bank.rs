//! Bank agent: one per cache bank.
//!
//! Service times follow Table 1: probe-only operations take the bank's
//! tag-match latency; anything that moves a block takes the tag-match +
//! replacement latency. A bank serves one operation at a time
//! (`busy_until`); queued operations start when the previous finishes.
//!
//! Requests carry the controller interface to respond to (`reply`), so
//! banks are oblivious to how many cores share the cache — the same
//! engine serves the paper's single-core system and the §7 CMP
//! extension.

use std::collections::{HashMap, HashSet};

use nucanet_cache::{Bank, Block};
use nucanet_noc::{Dest, Endpoint};

use super::Outgoing;
use crate::config::BankPlace;
use crate::msg::CacheMsg;
use crate::scheme::Scheme;

/// Static wiring of a bank within its bank set.
#[derive(Debug, Clone)]
pub struct BankCtx {
    /// Scheme in force.
    pub scheme: Scheme,
    /// The memory controller's endpoint.
    pub memory: Endpoint,
    /// Next bank (away from the core), if any.
    pub next: Option<Endpoint>,
    /// Previous bank (toward the core), if any.
    pub prev: Option<Endpoint>,
    /// The MRU bank of this column.
    pub mru: Endpoint,
    /// Whether this is the LRU (last) bank.
    pub is_last: bool,
    /// Banks per column (static NUCA uses it to fold the global set
    /// index into the home bank's local set space).
    pub positions: u8,
}

/// One cache bank and its protocol engine.
#[derive(Debug, Clone)]
pub struct BankAgent {
    place: BankPlace,
    ctx: BankCtx,
    bank: Bank,
    busy_until: u64,
    /// Bank array accesses served (for energy accounting).
    ops: u64,
    /// Multicast only: requests already tag-matched, so that an
    /// [`CacheMsg::EvictedBlock`] that overtook its request (possible
    /// when replication blocks the multicast head) waits its turn.
    seen_requests: HashSet<u32>,
    early_evicted: HashMap<u32, (u32, Block, u32, Endpoint)>,
}

impl BankAgent {
    /// Creates an empty bank of `place.ways × sets` frames.
    pub fn new(place: BankPlace, ctx: BankCtx, sets: usize) -> Self {
        BankAgent {
            bank: Bank::new(place.ways as usize, sets),
            place,
            ctx,
            busy_until: 0,
            ops: 0,
            seen_requests: HashSet::new(),
            early_evicted: HashMap::new(),
        }
    }

    /// The bank's placement record.
    pub fn place(&self) -> &BankPlace {
        &self.place
    }

    /// Mutable access to the underlying frames (warm-up preloading).
    pub fn bank_mut(&mut self) -> &mut Bank {
        &mut self.bank
    }

    /// Read access to the underlying frames (verification).
    pub fn bank(&self) -> &Bank {
        &self.bank
    }

    /// Bank array accesses served so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Empties the bank and clears all protocol state in place
    /// (warm-reset path): afterwards the agent behaves exactly like a
    /// freshly constructed one on the same wiring.
    pub fn reset(&mut self) {
        self.bank.clear();
        self.busy_until = 0;
        self.ops = 0;
        self.seen_requests.clear();
        self.early_evicted.clear();
    }

    fn service(&mut self, now: u64, cycles: u32) -> u64 {
        let start = now.max(self.busy_until);
        let fin = start + cycles as u64;
        self.busy_until = fin;
        self.ops += 1;
        fin
    }

    fn to(&self, dest: Endpoint, ready: u64, msg: CacheMsg) -> Outgoing {
        Outgoing {
            ready,
            dest: Dest::unicast(dest),
            msg,
        }
    }

    /// Handles one delivered message; returns the packets to inject.
    ///
    /// # Panics
    ///
    /// Panics on messages a bank can never receive, or on protocol
    /// invariant violations (e.g. a Fast-LRU MRU fill finding no hole).
    pub fn handle(&mut self, msg: &CacheMsg, now: u64) -> Vec<Outgoing> {
        match *msg {
            CacheMsg::Request {
                txn,
                index,
                tag,
                write,
                reply,
            } => {
                let mut out = self.on_request(txn, index as usize, tag, write, reply, now);
                self.seen_requests.insert(txn);
                if let Some((idx, block, acc, rep)) = self.early_evicted.remove(&txn) {
                    out.extend(self.on_evicted(txn, idx as usize, block, acc, rep, now));
                }
                out
            }
            CacheMsg::WalkRequest {
                txn,
                index,
                tag,
                write,
                carry,
                acc_bank,
                reply,
            } => self.on_walk(txn, index as usize, tag, write, carry, acc_bank, reply, now),
            CacheMsg::EvictedBlock {
                txn,
                index,
                block,
                acc_bank,
                reply,
            } => {
                if self.ctx.scheme.is_multicast() && !self.seen_requests.contains(&txn) {
                    // The block overtook the multicast request; defer.
                    self.early_evicted
                        .insert(txn, (index, block, acc_bank, reply));
                    Vec::new()
                } else {
                    self.on_evicted(txn, index as usize, block, acc_bank, reply, now)
                }
            }
            CacheMsg::MruFill {
                txn,
                index,
                block,
                acc_bank,
                reply,
            } => self.on_mru_fill(txn, index as usize, block, acc_bank, reply, now),
            CacheMsg::SwapUp {
                txn,
                index,
                block,
                acc_bank,
                reply,
            } => self.on_swap_up(txn, index as usize, block, acc_bank, reply, now),
            CacheMsg::SwapBack {
                txn,
                index,
                block,
                acc_bank,
                reply,
            } => self.on_swap_back(txn, index as usize, block, acc_bank, reply, now),
            CacheMsg::MemReply {
                txn,
                index,
                tag,
                write,
                acc_mem,
                reply,
            } => self.on_mem_reply(txn, index as usize, tag, write, acc_mem, reply, now),
            ref other => panic!(
                "bank {:?} (col {}, pos {}) received unexpected {other:?}",
                self.place.endpoint, self.place.column, self.place.position
            ),
        }
    }

    /// Multicast request (tag match happens at every bank concurrently).
    fn on_request(
        &mut self,
        txn: u32,
        index: usize,
        tag: u32,
        write: bool,
        reply: Endpoint,
        now: u64,
    ) -> Vec<Outgoing> {
        let pos = self.place.position;
        let t = self.place.timing;
        if self.ctx.scheme == Scheme::StaticNuca {
            // Home-bank access: no migration, hit or miss right here.
            // The home bank holds the set's full associativity, so the
            // global index folds into the bank's local set space
            // (S-NUCA-2 geometry).
            let local = index / self.ctx.positions as usize;
            let fin = self.service(now, t.tag_match);
            return if self.bank.probe(local, tag) {
                self.bank.touch(local, tag);
                if write {
                    self.bank.mark_dirty(local, tag);
                }
                vec![self.to(
                    reply,
                    fin,
                    CacheMsg::HitData {
                        txn,
                        position: pos,
                        acc_bank: t.tag_match,
                    },
                )]
            } else {
                vec![self.to(
                    reply,
                    fin,
                    CacheMsg::MissNotify {
                        txn,
                        position: pos,
                        chain_started: false,
                        acc_bank: t.tag_match,
                    },
                )]
            };
        }
        if self.bank.probe(index, tag) {
            if pos == 0 {
                let fin = self.service(now, t.tag_match);
                self.bank.touch(index, tag);
                if write {
                    self.bank.mark_dirty(index, tag);
                }
                return vec![self.to(
                    reply,
                    fin,
                    CacheMsg::HitData {
                        txn,
                        position: 0,
                        acc_bank: t.tag_match,
                    },
                )];
            }
            let fin = self.service(now, t.tag_match_replace);
            let mut blk = self.bank.extract(index, tag).expect("probe reported a hit");
            if write {
                blk.dirty = true;
            }
            let hit = self.to(
                reply,
                fin,
                CacheMsg::HitData {
                    txn,
                    position: pos,
                    acc_bank: t.tag_match_replace,
                },
            );
            let mover = match self.ctx.scheme {
                Scheme::MulticastFastLru => self.to(
                    self.ctx.mru,
                    fin,
                    CacheMsg::MruFill {
                        txn,
                        index: index as u32,
                        block: blk,
                        acc_bank: 0,
                        reply,
                    },
                ),
                Scheme::MulticastPromotion => self.to(
                    self.ctx.prev.expect("position > 0 has a previous bank"),
                    fin,
                    CacheMsg::SwapUp {
                        txn,
                        index: index as u32,
                        block: blk,
                        acc_bank: 0,
                        reply,
                    },
                ),
                s => panic!("scheme {s} does not multicast requests"),
            };
            return vec![hit, mover];
        }
        // Miss.
        match self.ctx.scheme {
            Scheme::MulticastPromotion => {
                let fin = self.service(now, t.tag_match);
                vec![self.to(
                    reply,
                    fin,
                    CacheMsg::MissNotify {
                        txn,
                        position: pos,
                        chain_started: false,
                        acc_bank: t.tag_match,
                    },
                )]
            }
            Scheme::MulticastFastLru => {
                if pos == 0 {
                    // Eagerly evict to the next bank (Fig. 3a): the MRU
                    // frame empties while tag-match continues downstream.
                    let fin = self.service(now, t.tag_match_replace);
                    let ev = self.bank.evict_bottom(index);
                    let mut out = Vec::new();
                    let chain_started = match (ev, self.ctx.next) {
                        (Some(v), Some(next)) => {
                            out.push(self.to(
                                next,
                                fin,
                                CacheMsg::EvictedBlock {
                                    txn,
                                    index: index as u32,
                                    block: v,
                                    acc_bank: t.tag_match_replace,
                                    reply,
                                },
                            ));
                            true
                        }
                        (Some(v), None) => {
                            // Single-bank column: the victim leaves the cache.
                            if v.dirty {
                                out.push(self.to(
                                    self.ctx.memory,
                                    fin,
                                    CacheMsg::WriteBack { txn, block: v },
                                ));
                            }
                            false
                        }
                        (None, _) => false,
                    };
                    out.insert(
                        0,
                        self.to(
                            reply,
                            fin,
                            CacheMsg::MissNotify {
                                txn,
                                position: 0,
                                chain_started,
                                acc_bank: t.tag_match_replace,
                            },
                        ),
                    );
                    out
                } else {
                    let fin = self.service(now, t.tag_match);
                    vec![self.to(
                        reply,
                        fin,
                        CacheMsg::MissNotify {
                            txn,
                            position: pos,
                            chain_started: false,
                            acc_bank: t.tag_match,
                        },
                    )]
                }
            }
            s => panic!("scheme {s} does not multicast requests"),
        }
    }

    /// Unicast walk step.
    #[allow(clippy::too_many_arguments)] // mirrors the message fields
    fn on_walk(
        &mut self,
        txn: u32,
        index: usize,
        tag: u32,
        write: bool,
        carry: Option<Block>,
        acc: u32,
        reply: Endpoint,
        now: u64,
    ) -> Vec<Outgoing> {
        let pos = self.place.position;
        let t = self.place.timing;
        let scheme = self.ctx.scheme;
        if self.bank.probe(index, tag) {
            if pos == 0 {
                let fin = self.service(now, t.tag_match);
                self.bank.touch(index, tag);
                if write {
                    self.bank.mark_dirty(index, tag);
                }
                return vec![self.to(
                    reply,
                    fin,
                    CacheMsg::HitData {
                        txn,
                        position: 0,
                        acc_bank: acc + t.tag_match,
                    },
                )];
            }
            let fin = self.service(now, t.tag_match_replace);
            let mut blk = self.bank.extract(index, tag).expect("probe reported a hit");
            if write {
                blk.dirty = true;
            }
            let mut out = vec![self.to(
                reply,
                fin,
                CacheMsg::HitData {
                    txn,
                    position: pos,
                    acc_bank: acc + t.tag_match_replace,
                },
            )];
            match scheme {
                Scheme::UnicastPromotion => out.push(self.to(
                    self.ctx.prev.expect("position > 0 has a previous bank"),
                    fin,
                    CacheMsg::SwapUp {
                        txn,
                        index: index as u32,
                        block: blk,
                        acc_bank: 0,
                        reply,
                    },
                )),
                Scheme::UnicastLru => out.push(self.to(
                    self.ctx.mru,
                    fin,
                    CacheMsg::MruFill {
                        txn,
                        index: index as u32,
                        block: blk,
                        acc_bank: 0,
                        reply,
                    },
                )),
                Scheme::UnicastFastLru => {
                    // The hole left by the departing hit block absorbs
                    // the block pushed down from the previous bank.
                    if let Some(c) = carry {
                        let displaced = self.bank.push_top(index, c);
                        assert!(
                            displaced.is_none(),
                            "Fast-LRU hit bank must have a hole for the carried block"
                        );
                    }
                    out.push(self.to(
                        self.ctx.mru,
                        fin,
                        CacheMsg::MruFill {
                            txn,
                            index: index as u32,
                            block: blk,
                            acc_bank: 0,
                            reply,
                        },
                    ));
                }
                s => panic!("scheme {s} does not walk requests"),
            }
            return out;
        }
        // Miss at this bank.
        match scheme {
            Scheme::UnicastPromotion | Scheme::UnicastLru => {
                let fin = self.service(now, t.tag_match);
                let acc = acc + t.tag_match;
                if let (false, Some(next)) = (self.ctx.is_last, self.ctx.next) {
                    vec![self.to(
                        next,
                        fin,
                        CacheMsg::WalkRequest {
                            txn,
                            index: index as u32,
                            tag,
                            write,
                            carry: None,
                            acc_bank: acc,
                            reply,
                        },
                    )]
                } else {
                    vec![self.to(
                        reply,
                        fin,
                        CacheMsg::MissNotify {
                            txn,
                            position: pos,
                            chain_started: false,
                            acc_bank: acc,
                        },
                    )]
                }
            }
            Scheme::UnicastFastLru => {
                let fin = self.service(now, t.tag_match_replace);
                let acc = acc + t.tag_match_replace;
                // Replacement overlaps the walk: install the carried
                // block, push our own LRU block onward.
                let new_carry = if pos == 0 {
                    self.bank.evict_bottom(index)
                } else if let Some(c) = carry {
                    self.bank.push_top(index, c)
                } else {
                    None
                };
                if let (false, Some(next)) = (self.ctx.is_last, self.ctx.next) {
                    vec![self.to(
                        next,
                        fin,
                        CacheMsg::WalkRequest {
                            txn,
                            index: index as u32,
                            tag,
                            write,
                            carry: new_carry,
                            acc_bank: acc,
                            reply,
                        },
                    )]
                } else {
                    let mut out = vec![self.to(
                        reply,
                        fin,
                        CacheMsg::MissNotify {
                            txn,
                            position: pos,
                            chain_started: false,
                            acc_bank: acc,
                        },
                    )];
                    if let Some(v) = new_carry {
                        if v.dirty {
                            out.push(self.to(
                                self.ctx.memory,
                                fin,
                                CacheMsg::WriteBack { txn, block: v },
                            ));
                        }
                    }
                    out
                }
            }
            s => panic!("scheme {s} does not walk requests"),
        }
    }

    /// A block pushed down from the previous bank.
    fn on_evicted(
        &mut self,
        txn: u32,
        index: usize,
        block: Block,
        acc: u32,
        reply: Endpoint,
        now: u64,
    ) -> Vec<Outgoing> {
        let tmr = self.place.timing.tag_match_replace;
        let fin = self.service(now, tmr);
        let acc = acc + tmr;
        match self.bank.push_top(index, block) {
            None => vec![self.to(reply, fin, CacheMsg::Completion { txn, acc_bank: acc })],
            Some(v) => {
                if let (false, Some(next)) = (self.ctx.is_last, self.ctx.next) {
                    vec![self.to(
                        next,
                        fin,
                        CacheMsg::EvictedBlock {
                            txn,
                            index: index as u32,
                            block: v,
                            acc_bank: acc,
                            reply,
                        },
                    )]
                } else {
                    let mut out = Vec::new();
                    if v.dirty {
                        out.push(self.to(
                            self.ctx.memory,
                            fin,
                            CacheMsg::WriteBack { txn, block: v },
                        ));
                    }
                    out.push(self.to(reply, fin, CacheMsg::Completion { txn, acc_bank: acc }));
                    out
                }
            }
        }
    }

    /// The hit block arriving at the MRU bank.
    fn on_mru_fill(
        &mut self,
        txn: u32,
        index: usize,
        block: Block,
        acc: u32,
        reply: Endpoint,
        now: u64,
    ) -> Vec<Outgoing> {
        assert_eq!(self.place.position, 0, "MruFill must target the MRU bank");
        let tmr = self.place.timing.tag_match_replace;
        let fin = self.service(now, tmr);
        let acc = acc + tmr;
        let displaced = self.bank.push_top(index, block);
        match self.ctx.scheme {
            Scheme::UnicastFastLru | Scheme::MulticastFastLru => {
                assert!(
                    displaced.is_none(),
                    "Fast-LRU: the MRU frame must already be empty when the hit block arrives"
                );
                vec![self.to(reply, fin, CacheMsg::FillDone { txn, acc_bank: acc })]
            }
            Scheme::UnicastLru => match displaced {
                Some(v) => {
                    let next = self.ctx.next.expect("LRU move chain needs a next bank");
                    vec![self.to(
                        next,
                        fin,
                        CacheMsg::EvictedBlock {
                            txn,
                            index: index as u32,
                            block: v,
                            acc_bank: acc,
                            reply,
                        },
                    )]
                }
                None => vec![self.to(reply, fin, CacheMsg::Completion { txn, acc_bank: acc })],
            },
            s => panic!("scheme {s} does not use MruFill"),
        }
    }

    /// Promotion: the hit block ascending into this (closer) bank.
    fn on_swap_up(
        &mut self,
        txn: u32,
        index: usize,
        block: Block,
        acc: u32,
        reply: Endpoint,
        now: u64,
    ) -> Vec<Outgoing> {
        let tmr = self.place.timing.tag_match_replace;
        let fin = self.service(now, tmr);
        let acc = acc + tmr;
        let from = self
            .ctx
            .next
            .expect("SwapUp always comes from the next-farther bank");
        match self.bank.push_top(index, block) {
            Some(v) => vec![self.to(
                from,
                fin,
                CacheMsg::SwapBack {
                    txn,
                    index: index as u32,
                    block: v,
                    acc_bank: acc,
                    reply,
                },
            )],
            // Nothing displaced (a hole absorbed the promoted block):
            // the swap degenerates into a move; replacement is done.
            None => vec![self.to(reply, fin, CacheMsg::Completion { txn, acc_bank: acc })],
        }
    }

    /// Promotion: the displaced block descending back into the hit bank.
    fn on_swap_back(
        &mut self,
        txn: u32,
        index: usize,
        block: Block,
        acc: u32,
        reply: Endpoint,
        now: u64,
    ) -> Vec<Outgoing> {
        let tmr = self.place.timing.tag_match_replace;
        let fin = self.service(now, tmr);
        let displaced = self.bank.push_top(index, block);
        assert!(
            displaced.is_none(),
            "SwapBack must land in the extraction hole"
        );
        vec![self.to(
            reply,
            fin,
            CacheMsg::Completion {
                txn,
                acc_bank: acc + tmr,
            },
        )]
    }

    /// The fetched block arriving from memory at the MRU bank.
    #[allow(clippy::too_many_arguments)] // mirrors the message fields
    fn on_mem_reply(
        &mut self,
        txn: u32,
        index: usize,
        tag: u32,
        write: bool,
        acc_mem: u32,
        reply: Endpoint,
        now: u64,
    ) -> Vec<Outgoing> {
        assert!(
            self.place.position == 0 || self.ctx.scheme == Scheme::StaticNuca,
            "memory fills target the MRU bank (or the home bank under static NUCA)"
        );
        let t = self.place.timing;
        let fin = self.service(now, t.tag_match_replace);
        let index = if self.ctx.scheme == Scheme::StaticNuca {
            index / self.ctx.positions as usize
        } else {
            index
        };
        let ev = self.bank.push_top(index, Block { tag, dirty: write });
        if self.ctx.scheme.is_fast_lru() {
            assert!(
                ev.is_none(),
                "Fast-LRU: the MRU frame was emptied during the walk"
            );
        }
        let mut out = Vec::new();
        // Static NUCA never pushes a victim to another bank: it leaves
        // the cache straight away.
        let next_bank = if self.ctx.scheme.migrates() {
            self.ctx.next
        } else {
            None
        };
        let chain_started = match (ev, next_bank) {
            (Some(v), Some(next)) => {
                out.push(self.to(
                    next,
                    fin,
                    CacheMsg::EvictedBlock {
                        txn,
                        index: index as u32,
                        block: v,
                        acc_bank: t.tag_match_replace,
                        reply,
                    },
                ));
                true
            }
            (Some(v), None) => {
                if v.dirty {
                    out.push(self.to(self.ctx.memory, fin, CacheMsg::WriteBack { txn, block: v }));
                }
                false
            }
            (None, _) => false,
        };
        out.insert(
            0,
            self.to(
                reply,
                fin,
                CacheMsg::FillData {
                    txn,
                    chain_started,
                    acc_bank: t.tag_match_replace,
                    acc_mem,
                },
            ),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nucanet_noc::NodeId;
    use nucanet_timing::BankTiming;

    fn ep(n: u32) -> Endpoint {
        Endpoint::at(NodeId(n))
    }

    /// The controller interface all test requests reply to.
    fn core() -> Endpoint {
        ep(1)
    }

    fn agent(scheme: Scheme, position: u8, is_last: bool, ways: u32) -> BankAgent {
        let place = BankPlace {
            endpoint: ep(10 + position as u32),
            column: 0,
            position,
            ways,
            kb: 64 * ways,
            timing: BankTiming {
                tag_match: 2,
                tag_match_replace: 3,
            },
        };
        let ctx = BankCtx {
            scheme,
            memory: ep(2),
            next: if is_last {
                None
            } else {
                Some(ep(11 + position as u32))
            },
            prev: if position == 0 {
                None
            } else {
                Some(ep(9 + position as u32))
            },
            mru: ep(10),
            is_last,
            positions: 16,
        };
        BankAgent::new(place, ctx, 4)
    }

    fn walk(txn: u32, tag: u32, carry: Option<Block>) -> CacheMsg {
        CacheMsg::WalkRequest {
            txn,
            index: 0,
            tag,
            write: false,
            carry,
            acc_bank: 0,
            reply: core(),
        }
    }

    fn request(txn: u32, tag: u32) -> CacheMsg {
        CacheMsg::Request {
            txn,
            index: 0,
            tag,
            write: false,
            reply: core(),
        }
    }

    #[test]
    fn walk_miss_forwards_with_accumulated_latency() {
        let mut a = agent(Scheme::UnicastLru, 1, false, 1);
        let out = a.handle(&walk(7, 42, None), 100);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].ready, 102, "tag match takes 2 cycles");
        match out[0].msg {
            CacheMsg::WalkRequest {
                txn: 7,
                tag: 42,
                carry: None,
                acc_bank: 2,
                ..
            } => {}
            ref m => panic!("expected forwarded walk, got {m:?}"),
        }
    }

    #[test]
    fn walk_miss_at_last_notifies_the_requesting_interface() {
        let mut a = agent(Scheme::UnicastLru, 15, true, 1);
        let out = a.handle(&walk(7, 42, None), 0);
        assert!(matches!(
            out[0].msg,
            CacheMsg::MissNotify {
                txn: 7,
                position: 15,
                chain_started: false,
                ..
            }
        ));
        assert_eq!(
            out[0].dest,
            Dest::unicast(core()),
            "reply routed to the carried endpoint"
        );
    }

    #[test]
    fn replies_follow_the_carried_endpoint_not_a_fixed_core() {
        // The CMP property: requests with different reply interfaces are
        // answered at those interfaces.
        let mut a = agent(Scheme::MulticastFastLru, 0, false, 1);
        a.bank_mut().push_top(
            0,
            Block {
                tag: 42,
                dirty: false,
            },
        );
        let other = ep(77);
        let out = a.handle(
            &CacheMsg::Request {
                txn: 1,
                index: 0,
                tag: 42,
                write: false,
                reply: other,
            },
            0,
        );
        assert_eq!(out[0].dest, Dest::unicast(other));
    }

    #[test]
    fn unicast_lru_hit_sends_data_and_mru_fill() {
        let mut a = agent(Scheme::UnicastLru, 3, false, 1);
        a.bank_mut().push_top(
            0,
            Block {
                tag: 42,
                dirty: false,
            },
        );
        let out = a.handle(&walk(9, 42, None), 0);
        assert_eq!(out.len(), 2);
        assert!(matches!(
            out[0].msg,
            CacheMsg::HitData {
                txn: 9,
                position: 3,
                ..
            }
        ));
        assert!(matches!(
            out[1].msg,
            CacheMsg::MruFill {
                txn: 9,
                block: Block { tag: 42, .. },
                ..
            }
        ));
        assert_eq!(
            out[1].dest,
            Dest::unicast(ep(10)),
            "hit block goes to the MRU bank"
        );
        assert!(!a.bank().probe(0, 42), "hit block departed");
    }

    #[test]
    fn fast_lru_walk_carries_eviction_chain() {
        // MRU bank misses: evicts its block alongside the request.
        let mut a = agent(Scheme::UnicastFastLru, 0, false, 1);
        a.bank_mut().push_top(
            0,
            Block {
                tag: 5,
                dirty: false,
            },
        );
        let out = a.handle(&walk(1, 42, None), 0);
        assert_eq!(out.len(), 1);
        match &out[0].msg {
            CacheMsg::WalkRequest { carry: Some(b), .. } => assert_eq!(b.tag, 5),
            m => panic!("expected carrying walk, got {m:?}"),
        }
        assert_eq!(a.bank().occupancy(0), 0, "MRU frame now empty");
    }

    #[test]
    fn fast_lru_hit_absorbs_carry_and_moves_hit_block() {
        let mut a = agent(Scheme::UnicastFastLru, 2, false, 1);
        a.bank_mut().push_top(
            0,
            Block {
                tag: 42,
                dirty: false,
            },
        );
        let carry = Some(Block {
            tag: 7,
            dirty: true,
        });
        let out = a.handle(&walk(1, 42, carry), 0);
        assert_eq!(out.len(), 2);
        assert!(a.bank().probe(0, 7), "carried block installed");
        assert!(!a.bank().probe(0, 42), "hit block departed");
        assert!(matches!(out[1].msg, CacheMsg::MruFill { .. }));
    }

    #[test]
    fn fast_lru_last_bank_miss_writes_back_dirty_victim() {
        let mut a = agent(Scheme::UnicastFastLru, 15, true, 1);
        a.bank_mut().push_top(
            0,
            Block {
                tag: 9,
                dirty: true,
            },
        );
        let carry = Some(Block {
            tag: 7,
            dirty: false,
        });
        let out = a.handle(&walk(1, 42, carry), 0);
        assert_eq!(out.len(), 2);
        assert!(matches!(out[0].msg, CacheMsg::MissNotify { .. }));
        assert!(matches!(
            out[1].msg,
            CacheMsg::WriteBack {
                block: Block {
                    tag: 9,
                    dirty: true
                },
                ..
            }
        ));
        assert!(a.bank().probe(0, 7));
    }

    #[test]
    fn multicast_fast_lru_mru_miss_starts_chain() {
        let mut a = agent(Scheme::MulticastFastLru, 0, false, 1);
        a.bank_mut().push_top(
            0,
            Block {
                tag: 5,
                dirty: false,
            },
        );
        let out = a.handle(&request(3, 42), 0);
        assert_eq!(out.len(), 2);
        assert!(matches!(
            out[0].msg,
            CacheMsg::MissNotify {
                position: 0,
                chain_started: true,
                ..
            }
        ));
        assert!(matches!(
            out[1].msg,
            CacheMsg::EvictedBlock {
                block: Block { tag: 5, .. },
                ..
            }
        ));
    }

    #[test]
    fn multicast_fast_lru_cold_mru_miss_has_no_chain() {
        let mut a = agent(Scheme::MulticastFastLru, 0, false, 1);
        let out = a.handle(&request(3, 42), 0);
        assert_eq!(out.len(), 1);
        assert!(matches!(
            out[0].msg,
            CacheMsg::MissNotify {
                position: 0,
                chain_started: false,
                ..
            }
        ));
    }

    #[test]
    fn evicted_block_chain_stops_at_hole() {
        let mut a = agent(Scheme::MulticastFastLru, 2, false, 2);
        a.seen_requests.insert(1);
        // One block + one hole: the push is absorbed.
        a.bank_mut().push_top(
            0,
            Block {
                tag: 9,
                dirty: false,
            },
        );
        let out = a.handle(
            &CacheMsg::EvictedBlock {
                txn: 1,
                index: 0,
                block: Block {
                    tag: 7,
                    dirty: false,
                },
                acc_bank: 0,
                reply: core(),
            },
            0,
        );
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].msg, CacheMsg::Completion { txn: 1, .. }));
    }

    #[test]
    fn evicted_block_at_last_writes_back() {
        let mut a = agent(Scheme::UnicastLru, 15, true, 1);
        a.bank_mut().push_top(
            0,
            Block {
                tag: 9,
                dirty: true,
            },
        );
        let out = a.handle(
            &CacheMsg::EvictedBlock {
                txn: 1,
                index: 0,
                block: Block {
                    tag: 7,
                    dirty: false,
                },
                acc_bank: 0,
                reply: core(),
            },
            0,
        );
        assert_eq!(out.len(), 2);
        assert!(matches!(
            out[0].msg,
            CacheMsg::WriteBack {
                block: Block {
                    tag: 9,
                    dirty: true
                },
                ..
            }
        ));
        assert!(matches!(out[1].msg, CacheMsg::Completion { .. }));
    }

    #[test]
    fn early_evicted_block_waits_for_request() {
        let mut a = agent(Scheme::MulticastFastLru, 2, false, 1);
        a.bank_mut().push_top(
            0,
            Block {
                tag: 42,
                dirty: false,
            },
        );
        // EvictedBlock overtakes the request: must be deferred.
        let out = a.handle(
            &CacheMsg::EvictedBlock {
                txn: 5,
                index: 0,
                block: Block {
                    tag: 7,
                    dirty: false,
                },
                acc_bank: 0,
                reply: core(),
            },
            0,
        );
        assert!(out.is_empty());
        assert!(
            a.bank().probe(0, 42),
            "bank untouched until the request arrives"
        );
        // Now the request arrives: it is a hit; afterwards the deferred
        // block fills the hole.
        let out = a.handle(&request(5, 42), 0);
        assert!(out
            .iter()
            .any(|o| matches!(o.msg, CacheMsg::HitData { .. })));
        assert!(out
            .iter()
            .any(|o| matches!(o.msg, CacheMsg::Completion { .. })));
        assert!(a.bank().probe(0, 7));
        assert!(!a.bank().probe(0, 42));
    }

    #[test]
    fn promotion_swap_roundtrip() {
        // Bank 2 hits; block ascends to bank 1; displaced block returns.
        let mut hitter = agent(Scheme::UnicastPromotion, 2, false, 1);
        hitter.bank_mut().push_top(
            0,
            Block {
                tag: 42,
                dirty: false,
            },
        );
        let out = hitter.handle(&walk(1, 42, None), 0);
        let swap_up = out
            .iter()
            .find(|o| matches!(o.msg, CacheMsg::SwapUp { .. }))
            .unwrap();
        assert_eq!(
            swap_up.dest,
            Dest::unicast(ep(11)),
            "toward the closer bank"
        );

        let mut upper = agent(Scheme::UnicastPromotion, 1, false, 1);
        upper.bank_mut().push_top(
            0,
            Block {
                tag: 8,
                dirty: false,
            },
        );
        let out = upper.handle(&swap_up.msg.clone(), 0);
        assert!(matches!(
            out[0].msg,
            CacheMsg::SwapBack {
                block: Block { tag: 8, .. },
                ..
            }
        ));
        assert!(upper.bank().probe(0, 42));

        let out = hitter.handle(&out[0].msg.clone(), 10);
        assert!(matches!(out[0].msg, CacheMsg::Completion { .. }));
        assert!(hitter.bank().probe(0, 8));
    }

    #[test]
    fn mem_reply_installs_and_chains() {
        let mut a = agent(Scheme::UnicastLru, 0, false, 1);
        a.bank_mut().push_top(
            0,
            Block {
                tag: 3,
                dirty: false,
            },
        );
        let out = a.handle(
            &CacheMsg::MemReply {
                txn: 2,
                index: 0,
                tag: 42,
                write: true,
                acc_mem: 162,
                reply: core(),
            },
            0,
        );
        assert_eq!(out.len(), 2);
        assert!(matches!(
            out[0].msg,
            CacheMsg::FillData {
                txn: 2,
                chain_started: true,
                acc_mem: 162,
                ..
            }
        ));
        assert!(matches!(
            out[1].msg,
            CacheMsg::EvictedBlock {
                block: Block { tag: 3, .. },
                ..
            }
        ));
        assert!(a.bank().probe(0, 42));
        // Write-allocate marks the block dirty.
        assert_eq!(
            a.bank().blocks(0)[0],
            Block {
                tag: 42,
                dirty: true
            }
        );
    }

    #[test]
    fn bank_busy_serialises_back_to_back_operations() {
        let mut a = agent(Scheme::UnicastLru, 1, false, 1);
        let o1 = a.handle(&walk(1, 5, None), 100);
        let o2 = a.handle(&walk(2, 6, None), 100);
        assert_eq!(o1[0].ready, 102);
        assert_eq!(o2[0].ready, 104, "second access waits for the first");
        assert_eq!(a.ops(), 2, "both array accesses counted");
    }

    #[test]
    #[should_panic(expected = "unexpected")]
    fn unexpected_message_panics() {
        let mut a = agent(Scheme::UnicastLru, 1, false, 1);
        let _ = a.handle(
            &CacheMsg::Completion {
                txn: 0,
                acc_bank: 0,
            },
            0,
        );
    }
}
