//! Full-system driver: network + banks + memory + cache controller.

use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::rc::Rc;
use std::sync::{Arc, Mutex};

use nucanet_cache::{AddressMap, BankSetModel, Block};
use nucanet_noc::{
    Endpoint, FaultSchedule, NetEvent, Network, Packet, RoutingTable, SimError, Topology,
};
use nucanet_workload::{L2Access, Trace};

use crate::agents::bank::{BankAgent, BankCtx};
use crate::agents::core_ctl::{CoreController, PendingAccess, SetLocks};
use crate::agents::memory::MemoryAgent;
use crate::agents::Outgoing;
use crate::config::{ConfigError, SystemConfig, SystemLayout};
use crate::metrics::{Metrics, MetricsCapture};
use crate::msg::CacheMsg;

/// Hard ceiling on simulated cycles; hitting it means the protocol or
/// the network livelocked.
const MAX_CYCLES: u64 = 2_000_000_000;

#[derive(Debug)]
struct OutEv {
    when: u64,
    seq: u64,
    src: Endpoint,
    out: Outgoing,
}

impl PartialEq for OutEv {
    fn eq(&self, other: &Self) -> bool {
        (self.when, self.seq) == (other.when, other.seq)
    }
}
impl Eq for OutEv {}
impl PartialOrd for OutEv {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OutEv {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by (when, seq).
        (other.when, other.seq).cmp(&(self.when, self.seq))
    }
}

/// Structural equality between a built machine's configuration and a
/// candidate point: every field that shapes the topology, the routing
/// tables, the bank layout, or the agents must match. `name`, `faults`
/// and `check_invariants` are deliberately excluded — they are per-point
/// decorations re-applied on top of the shared structure (faults degrade
/// a *copy* of the routing table at run time, never the shared one).
///
/// `key.cores` carries the *realised* core count; the candidate's own
/// `cores` field is ignored in favour of the explicit `n_cores`.
fn structurally_eq(key: &SystemConfig, cfg: &SystemConfig, n_cores: u16) -> bool {
    key.cores == n_cores
        && key.topology == cfg.topology
        && key.bank_kb == cfg.bank_kb
        && key.bank_ways == cfg.bank_ways
        && key.columns == cfg.columns
        && key.scheme == cfg.scheme
        && key.router == cfg.router
        && key.mem_base_cycles == cfg.mem_base_cycles
        && key.mem_per_8b_cycles == cfg.mem_per_8b_cycles
        && key.mem_extra_wire == cfg.mem_extra_wire
        && key.core_ports == cfg.core_ports
        && key.max_outstanding == cfg.max_outstanding
        && key.per_column_limit == cfg.per_column_limit
        && key.tech == cfg.tech
        && key.request_timeout == cfg.request_timeout
        && key.request_retries == cfg.request_retries
}

/// The expensive, immutable part of a [`CacheSystem`]: the realised
/// layout, the topology, and the fault-free routing table, built once
/// per distinct structure and shared read-only (the topology and table
/// ride behind [`Arc`]s all the way into the network).
///
/// Produced by [`StructuralCache::get_or_build`]; consumed by
/// [`CacheSystem::with_structure`].
#[derive(Debug, Clone)]
pub struct StructuralEntry {
    /// Normalised configuration this structure was built from: `name`
    /// cleared, `faults`/`check_invariants` stripped, `cores` set to the
    /// realised count. Used as the cache key.
    key: SystemConfig,
    layout: SystemLayout,
    core_ifaces: Vec<Vec<Endpoint>>,
    topo: Arc<Topology>,
    table: Arc<RoutingTable>,
}

impl StructuralEntry {
    /// Builds the structure for `cfg` with `n_cores` cores.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for the same reasons as
    /// [`CacheSystem::try_with_cores`].
    pub fn build(cfg: &SystemConfig, n_cores: u16) -> Result<Self, ConfigError> {
        let (layout, core_ifaces) = cfg.build_cmp_layout(n_cores)?;
        let table = layout
            .routing
            .build(&layout.topo)
            .expect("layout topology matches routing");
        let topo = Arc::new(layout.topo.clone());
        let mut key = cfg.clone();
        key.name = String::new();
        key.faults = None;
        key.check_invariants = false;
        key.cores = n_cores;
        Ok(StructuralEntry {
            key,
            layout,
            core_ifaces,
            topo,
            table: Arc::new(table),
        })
    }

    /// Whether this structure can host the machine `cfg` describes with
    /// `n_cores` cores (see [`CacheSystem::same_machine`] for the
    /// matching rule).
    pub fn matches(&self, cfg: &SystemConfig, n_cores: u16) -> bool {
        structurally_eq(&self.key, cfg, n_cores)
    }

    /// The shared topology.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topo
    }

    /// The shared fault-free routing table.
    pub fn routing_table(&self) -> &Arc<RoutingTable> {
        &self.table
    }
}

/// A thread-safe cache of [`StructuralEntry`]s keyed by the structural
/// fingerprint of a [`SystemConfig`] (every field except `name`,
/// `faults` and `check_invariants`) plus the realised core count.
///
/// Sweep workers share one cache so a thousand points that differ only
/// in workload, seed, label or fault schedule build the topology and
/// routing tables exactly once. Lookups are a linear equality scan —
/// campaigns hold a handful of distinct structures, not thousands —
/// and a build happens under the cache lock, so concurrent workers
/// asking for the same structure block instead of duplicating work.
///
/// Float fields ([`Technology`](nucanet_timing::Technology)) compare
/// with `==`; a NaN parameter would therefore never hit the cache. That
/// degrades to per-point builds, never to a wrong structure.
#[derive(Debug, Default)]
pub struct StructuralCache {
    entries: Mutex<Vec<Arc<StructuralEntry>>>,
}

impl StructuralCache {
    /// An empty cache.
    pub fn new() -> Self {
        StructuralCache::default()
    }

    /// Returns the shared structure for `cfg`/`n_cores`, building and
    /// memoising it on first use.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for the same reasons as
    /// [`CacheSystem::try_with_cores`].
    pub fn get_or_build(
        &self,
        cfg: &SystemConfig,
        n_cores: u16,
    ) -> Result<Arc<StructuralEntry>, ConfigError> {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(e) = entries.iter().find(|e| e.matches(cfg, n_cores)) {
            return Ok(Arc::clone(e));
        }
        let entry = Arc::new(StructuralEntry::build(cfg, n_cores)?);
        entries.push(Arc::clone(&entry));
        Ok(entry)
    }

    /// Number of distinct structures built so far.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether nothing has been built yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The paper's networked cache system, ready to run traces.
pub struct CacheSystem {
    cfg: SystemConfig,
    layout: SystemLayout,
    net: Network<CacheMsg>,
    banks: Vec<BankAgent>,
    bank_by_endpoint: HashMap<Endpoint, usize>,
    memory: MemoryAgent,
    /// One controller per core; single-core systems have exactly one.
    cores: Vec<CoreController>,
    core_of_endpoint: HashMap<Endpoint, usize>,
    /// The bank-set lock table shared by every controller; kept here so
    /// a warm reset can clear it without tearing the controllers down.
    locks: Rc<RefCell<SetLocks>>,
    outputs: BinaryHeap<OutEv>,
    out_seq: u64,
    map: AddressMap,
    measured_cycles: u64,
    capture: MetricsCapture,
}

impl CacheSystem {
    /// Builds the system described by `cfg`, honouring
    /// [`SystemConfig::cores`].
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid or the column count is
    /// not a power of two (the address map needs whole column bits).
    pub fn new(cfg: &SystemConfig) -> Self {
        Self::with_cores(cfg, cfg.cores)
    }

    /// Builds the system with `n_cores` cores sharing the cache (the
    /// paper's §7 CMP extension). Each core gets its own controller and
    /// network attachment; bank-set serialisation is shared.
    ///
    /// # Panics
    ///
    /// Panics on invalid configurations (see [`CacheSystem::new`]) or
    /// when `n_cores` is zero or exceeds the column count — use
    /// [`CacheSystem::try_with_cores`] to get those as typed errors.
    pub fn with_cores(cfg: &SystemConfig, n_cores: u16) -> Self {
        Self::try_with_cores(cfg, n_cores).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible version of [`CacheSystem::with_cores`]: core-count and
    /// geometry problems come back as a [`ConfigError`] instead of a
    /// panic, so callers like the CLI can report them cleanly.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when `n_cores` is zero or exceeds the
    /// column count, or the multi-hub geometry is inconsistent.
    ///
    /// # Panics
    ///
    /// Still panics on invalid configurations that are programming
    /// errors (see [`CacheSystem::new`]).
    pub fn try_with_cores(cfg: &SystemConfig, n_cores: u16) -> Result<Self, ConfigError> {
        // The one-shot path builds its structure privately; no Arc is
        // ever shared, so `assemble` consumes it without cloning.
        Ok(Self::assemble(cfg, StructuralEntry::build(cfg, n_cores)?))
    }

    /// Builds the system on a pre-built shared structure (see
    /// [`StructuralCache`]): the topology and fault-free routing table
    /// are reference-counted into the network instead of rebuilt, so
    /// per-system cost is agent construction only.
    ///
    /// # Panics
    ///
    /// Panics when `entry` was built for a different structure than
    /// `cfg` describes (compare with [`StructuralEntry::matches`]
    /// first), or on the invalid-configuration panics of
    /// [`CacheSystem::new`].
    pub fn with_structure(cfg: &SystemConfig, entry: &Arc<StructuralEntry>) -> Self {
        assert!(
            entry.matches(cfg, cfg.cores),
            "structural entry does not match the requested configuration"
        );
        Self::assemble(cfg, StructuralEntry::clone(entry))
    }

    /// Assembles the mutable machine (network state, agents, locks)
    /// around a structure. `entry.key.cores` is the realised core count.
    fn assemble(cfg: &SystemConfig, entry: StructuralEntry) -> Self {
        let StructuralEntry {
            key,
            layout,
            core_ifaces,
            topo,
            table,
        } = entry;
        let n_cores = key.cores;
        let net = Network::with_shared(topo, table, cfg.router);

        assert!(
            cfg.columns.is_power_of_two(),
            "column count must be a power of two"
        );
        let map = AddressMap::new(6, cfg.columns.trailing_zeros(), 10);
        let sets = map.sets() as usize;
        let positions = cfg.bank_kb.len();
        if cfg.scheme == crate::scheme::Scheme::StaticNuca {
            assert!(
                sets.is_multiple_of(positions),
                "static NUCA needs the bank count to divide the set count; \
                 got {positions} banks for {sets} sets"
            );
            // Static placement sends memory fills and writebacks to
            // arbitrary banks — exactly the flows the simplified mesh's
            // XYX link removal cannot route. This is the paper's point:
            // the domain-specific network only works because D-NUCA's
            // traffic is column-structured.
            assert!(
                !matches!(cfg.topology, crate::config::TopologyChoice::SimplifiedMesh),
                "static NUCA cannot run on the simplified mesh: memory \
                 fills to non-MRU banks are unroutable under XYX"
            );
        }

        let mut banks = Vec::new();
        let mut bank_by_endpoint = HashMap::new();
        for c in 0..cfg.columns as usize {
            let ids = &layout.by_column[c];
            for (pos, &b) in ids.iter().enumerate() {
                let place = layout.banks[b];
                let ctx = BankCtx {
                    scheme: cfg.scheme,
                    memory: layout.memory,
                    next: ids.get(pos + 1).map(|&n| layout.banks[n].endpoint),
                    prev: pos.checked_sub(1).map(|p| layout.banks[ids[p]].endpoint),
                    mru: layout.banks[ids[0]].endpoint,
                    is_last: pos + 1 == ids.len(),
                    positions: positions as u8,
                };
                bank_by_endpoint.insert(place.endpoint, b);
                // Static NUCA folds each set's full associativity into
                // its home bank: same capacity, 16 ways x fewer sets.
                if cfg.scheme == crate::scheme::Scheme::StaticNuca {
                    let mut agent = BankAgent::new(place, ctx, sets / positions);
                    *agent.bank_mut() =
                        nucanet_cache::Bank::new(cfg.total_ways() as usize, sets / positions);
                    banks.push((b, agent));
                } else {
                    banks.push((b, BankAgent::new(place, ctx, sets)));
                }
            }
        }
        banks.sort_by_key(|(b, _)| *b);
        let banks: Vec<BankAgent> = banks.into_iter().map(|(_, a)| a).collect();

        let columns: Vec<Vec<Endpoint>> = layout
            .by_column
            .iter()
            .map(|ids| ids.iter().map(|&b| layout.banks[b].endpoint).collect())
            .collect();
        let memory = MemoryAgent::new(
            layout.memory,
            columns.clone(),
            cfg.scheme,
            cfg.mem_service_cycles(),
        );
        let locks = SetLocks::shared(cfg.columns as usize, cfg.per_column_limit);
        let mut cores = Vec::new();
        let mut core_of_endpoint = HashMap::new();
        for (i, ifaces) in core_ifaces.iter().enumerate() {
            let mut ctl = CoreController::new(
                cfg.scheme,
                ifaces.clone(),
                layout.memory,
                columns.clone(),
                cfg.max_outstanding,
                Rc::clone(&locks),
            );
            // Disjoint txn id spaces so banks can track requests across
            // cores. Partition the u32 space by stride rather than a
            // fixed shift so thousands of cores still get distinct,
            // roomy id ranges.
            let stride = u32::MAX / core_ifaces.len().max(1) as u32;
            ctl.set_txn_base(i as u32 * stride);
            ctl.set_request_timeout(cfg.request_timeout, cfg.request_retries);
            for e in ifaces {
                core_of_endpoint.insert(*e, i);
            }
            cores.push(ctl);
        }

        let mut net = net;
        if let Some(fc) = &cfg.faults {
            net.set_fault_schedule(fc.schedule(layout.topo.link_count()));
        }
        if cfg.check_invariants {
            net.enable_invariant_checker();
        }

        // Record the realised core count so `config()` reflects the
        // built machine even when `n_cores` overrode `cfg.cores`.
        let mut cfg = cfg.clone();
        cfg.cores = n_cores;
        CacheSystem {
            cfg,
            layout,
            net,
            banks,
            bank_by_endpoint,
            memory,
            cores,
            core_of_endpoint,
            locks,
            outputs: BinaryHeap::new(),
            out_seq: 0,
            map,
            measured_cycles: 0,
            capture: MetricsCapture::Full,
        }
    }

    /// Whether this built machine is structurally identical to the one
    /// `cfg` describes — i.e. whether [`CacheSystem::reset_for`] can
    /// reuse it. Everything except `name`, `faults` and
    /// `check_invariants` must match; those three are per-point
    /// decorations the reset re-applies.
    pub fn same_machine(&self, cfg: &SystemConfig) -> bool {
        structurally_eq(&self.cfg, cfg, cfg.cores)
    }

    /// Warm reset: restores this system to the state a fresh
    /// construction from `cfg` would produce, reusing every allocation
    /// (network slabs, event wheel, agent tables, routing-table
    /// storage). Returns `false` — leaving the system untouched — when
    /// `cfg` describes a different machine (see
    /// [`CacheSystem::same_machine`]); the caller must then rebuild.
    ///
    /// The reset is *bit-identity exact*: a reset system produces the
    /// same metrics, delivered packets and final cache contents as a
    /// freshly built one for any subsequent run, including runs with a
    /// fault schedule (a prior point's degraded routing table is
    /// retired to spare storage, never leaked). The capture mode
    /// reverts to [`MetricsCapture::Full`], matching construction.
    ///
    /// Steady-state cost is allocation-free for fault-free,
    /// checker-free points; a fault schedule materialises its event
    /// list and an invariant checker re-allocates its shadow state.
    pub fn reset_for(&mut self, cfg: &SystemConfig) -> bool {
        if !self.same_machine(cfg) {
            return false;
        }
        self.net.reset();
        for b in &mut self.banks {
            b.reset();
        }
        self.memory.reset();
        self.locks.borrow_mut().reset();
        for c in &mut self.cores {
            c.reset();
            c.set_request_timeout(cfg.request_timeout, cfg.request_retries);
        }
        self.outputs.clear();
        self.out_seq = 0;
        self.measured_cycles = 0;
        self.capture = MetricsCapture::Full;
        if let Some(fc) = &cfg.faults {
            self.net
                .set_fault_schedule(fc.schedule(self.layout.topo.link_count()));
        }
        if cfg.check_invariants {
            self.net.enable_invariant_checker();
        }
        // Adopt the point's decorations; `clone_into` reuses the name
        // buffer when capacity allows.
        cfg.name.clone_into(&mut self.cfg.name);
        self.cfg.faults.clone_from(&cfg.faults);
        self.cfg.check_invariants = cfg.check_invariants;
        true
    }

    /// Selects how future runs store per-access measurements: full
    /// record capture (the default) or constant-memory streaming
    /// aggregation. See [`MetricsCapture`].
    pub fn set_metrics_capture(&mut self, capture: MetricsCapture) {
        self.capture = capture;
    }

    /// The currently selected capture mode.
    pub fn metrics_capture(&self) -> MetricsCapture {
        self.capture
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The physical layout.
    pub fn layout(&self) -> &SystemLayout {
        &self.layout
    }

    /// The address map in use.
    pub fn map(&self) -> AddressMap {
        self.map
    }

    /// Enables network event logging (protocol debugging); see
    /// [`nucanet_noc::EventLog`].
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn enable_event_log(&mut self, capacity: usize) {
        self.net.enable_event_log(capacity);
    }

    /// Takes the network event log, disabling further logging.
    pub fn take_event_log(&mut self) -> Option<nucanet_noc::EventLog> {
        self.net.take_event_log()
    }

    /// The network's runtime invariant checker, when
    /// [`SystemConfig::check_invariants`](crate::config::SystemConfig::check_invariants)
    /// enabled it.
    pub fn invariant_checker(&self) -> Option<&nucanet_noc::InvariantChecker> {
        self.net.invariant_checker()
    }

    /// Warm-accesses the cache *functionally* (no timing): contents are
    /// computed with the scheme's replacement policy and loaded straight
    /// into the banks, mirroring the paper's warm-up phase.
    pub fn warm(&mut self, accesses: &[L2Access]) {
        if self.cfg.scheme == crate::scheme::Scheme::StaticNuca {
            // Static placement: warm each home bank's internal LRU set.
            let positions = self.cfg.bank_kb.len();
            for a in accesses {
                let b = self.map.decompose(a.addr);
                let home = b.index as usize % positions;
                let local = b.index as usize / positions;
                let bid = self.layout.by_column[b.column as usize][home];
                let bank = self.banks[bid].bank_mut();
                if bank.probe(local, b.tag) {
                    bank.touch(local, b.tag);
                    if a.write {
                        bank.mark_dirty(local, b.tag);
                    }
                } else {
                    let _ = bank.push_top(
                        local,
                        Block {
                            tag: b.tag,
                            dirty: a.write,
                        },
                    );
                }
            }
            return;
        }
        let sets = self.map.sets() as usize;
        let segments: Vec<usize> = self.cfg.bank_ways.iter().map(|&w| w as usize).collect();
        let mut models: Vec<BankSetModel> = (0..self.cfg.columns)
            .map(|_| BankSetModel::with_segments(segments.clone(), sets, self.cfg.scheme.policy()))
            .collect();
        for a in accesses {
            let b = self.map.decompose(a.addr);
            models[b.column as usize].access(b.index as usize, b.tag, a.write);
        }
        // Split every stack into per-bank segments.
        #[allow(clippy::needless_range_loop)] // parallel indexing into layout
        for c in 0..self.cfg.columns as usize {
            for set in 0..sets {
                let stack = models[c].stack_of(set);
                let mut offset = 0usize;
                for &bid in &self.layout.by_column[c] {
                    let ways_here = self.layout.banks[bid].ways as usize;
                    let seg: Vec<Option<Block>> = stack[offset..offset + ways_here].to_vec();
                    self.banks[bid].bank_mut().load_set(set, &seg);
                    offset += ways_here;
                }
            }
        }
    }

    /// Runs a full trace: functional warm-up, then the timed measured
    /// window. Returns the measurement.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] when the simulation cannot make progress:
    /// a network watchdog trip (e.g. a permanent link fault partitions
    /// the topology), a wedge with outstanding transactions, or the
    /// `MAX_CYCLES` safety bound. The system is left in an undefined
    /// mid-simulation state after an error; discard it.
    pub fn run(&mut self, trace: &Trace) -> Result<Metrics, SimError> {
        self.warm(trace.warmup());
        self.run_timed(trace.measured())
    }

    /// Runs `accesses` through the timed simulation (no warm-up).
    ///
    /// # Errors
    ///
    /// See [`CacheSystem::run`].
    pub fn run_timed(&mut self, accesses: &[L2Access]) -> Result<Metrics, SimError> {
        let start_cycle = self.net.cycle();
        for a in accesses {
            let b = self.map.decompose(a.addr);
            self.cores[0].push_access(PendingAccess {
                column: b.column as u16,
                index: b.index,
                tag: b.tag,
                write: a.write,
            });
        }
        let mut live = self.fresh_live_metrics();
        self.sim_loop(&mut live)?;
        self.measured_cycles = self.net.cycle() - start_cycle;
        // Only core 0 was driven, but fold every core's window so a
        // multi-core system behaves identically to the old path.
        let mut m = live.remove(0);
        for other in &live {
            m.merge(other);
        }
        self.finalize_metrics(&mut m);
        Ok(m)
    }

    /// Runs per-core traces concurrently over the shared cache (CMP).
    /// The caches are warmed with the interleaved warm-up portions;
    /// each returned [`Metrics`] holds one core's access records (the
    /// network/energy counters, which are system-wide, ride on every
    /// entry).
    ///
    /// # Errors
    ///
    /// See [`CacheSystem::run`].
    ///
    /// # Panics
    ///
    /// Panics if `traces.len()` differs from the core count.
    pub fn run_cmp(&mut self, traces: &[Trace]) -> Result<Vec<Metrics>, SimError> {
        assert_eq!(traces.len(), self.cores.len(), "one trace per core");
        // Interleave warm-ups round-robin so every core's working set is
        // resident.
        let mut warm = Vec::new();
        let longest = traces.iter().map(|t| t.warmup().len()).max().unwrap_or(0);
        for k in 0..longest {
            for t in traces {
                if let Some(a) = t.warmup().get(k) {
                    warm.push(*a);
                }
            }
        }
        self.warm(&warm);
        let start_cycle = self.net.cycle();
        for (i, t) in traces.iter().enumerate() {
            for a in t.measured() {
                let b = self.map.decompose(a.addr);
                self.cores[i].push_access(PendingAccess {
                    column: b.column as u16,
                    index: b.index,
                    tag: b.tag,
                    write: a.write,
                });
            }
        }
        let mut live = self.fresh_live_metrics();
        self.sim_loop(&mut live)?;
        self.measured_cycles = self.net.cycle() - start_cycle;
        for m in &mut live {
            self.finalize_metrics(m);
        }
        Ok(live)
    }

    /// Number of cores sharing this cache.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// One empty live [`Metrics`] per core, in the selected capture mode.
    fn fresh_live_metrics(&self) -> Vec<Metrics> {
        (0..self.cores.len())
            .map(|_| Metrics::new(self.capture, self.cfg.bank_kb.len()))
            .collect()
    }

    fn sim_loop(&mut self, live: &mut [Metrics]) -> Result<(), SimError> {
        // Deliveries are moved (not cloned) into this buffer, which keeps
        // its capacity across iterations so the dispatch loop stops
        // allocating once the system reaches steady state.
        let mut inbox = Vec::new();
        loop {
            let now = self.net.cycle();
            if now >= MAX_CYCLES {
                return Err(SimError::CycleLimit { limit: MAX_CYCLES });
            }

            // Dispatch deliveries to agents.
            self.net.drain_all_delivered_into(&mut inbox);
            for d in inbox.drain(..) {
                let outs = if let Some(&i) = self.core_of_endpoint.get(&d.endpoint) {
                    let drops_before = self.cores[i].stale_drops();
                    let outs = self.cores[i].handle(&d.packet.payload, now);
                    if self.cores[i].stale_drops() > drops_before {
                        self.net.log_event(NetEvent::Drop {
                            cycle: now,
                            packet: d.packet.id,
                            node: d.endpoint.node,
                        });
                    }
                    outs
                } else if d.endpoint == self.layout.memory {
                    self.memory.handle(&d.packet.payload, now)
                } else {
                    let &b = self
                        .bank_by_endpoint
                        .get(&d.endpoint)
                        .unwrap_or_else(|| panic!("delivery to unknown endpoint {}", d.endpoint));
                    self.banks[b].handle(&d.packet.payload, now)
                };
                let src = d.endpoint;
                for o in outs {
                    self.schedule(src, o);
                }
            }

            // Cancel and retry requests stranded past the timeout (e.g.
            // by a link fault), then admit new transactions (every core).
            for i in 0..self.cores.len() {
                for (src, o) in self.cores[i].expire_stranded(now) {
                    self.schedule(src, o);
                }
                for (src, o) in self.cores[i].try_admit(now) {
                    self.schedule(src, o);
                }
            }

            // Stream completed accesses into the live metrics so the
            // controllers' completion buffers stay bounded regardless of
            // trace length (the streaming-capture contract).
            for (i, c) in self.cores.iter_mut().enumerate() {
                for r in c.take_completed() {
                    live[i].record(r);
                }
            }

            // Inject everything due.
            while self.outputs.peek().is_some_and(|e| e.when <= now) {
                let e = self.outputs.pop().expect("peeked");
                let flits = e.out.msg.flits();
                self.net
                    .inject(Packet::new(e.src, e.out.dest, flits, e.out.msg));
            }

            // Finished?
            if self.cores.iter().all(CoreController::is_done)
                && self.outputs.is_empty()
                && !self.net.is_busy()
                && self.net.next_event_cycle().is_none()
            {
                break;
            }

            // Advance time.
            if self.net.is_busy() {
                self.net.step()?;
            } else {
                let t1 = self.net.next_event_cycle();
                let t2 = self.outputs.peek().map(|e| e.when);
                // A pending retry deadline is scheduled work too: without
                // it a system idled by a fault would be declared wedged
                // before the timeout path gets a chance to fire.
                let t3 = self
                    .cores
                    .iter()
                    .filter_map(|c| c.next_expiry())
                    .min()
                    .map(|t| t.max(now + 1));
                let next = match [t1, t2, t3].into_iter().flatten().min() {
                    Some(n) => n,
                    None => {
                        return Err(SimError::Wedged {
                            cycle: now,
                            outstanding: self
                                .cores
                                .iter()
                                .map(CoreController::outstanding)
                                .sum::<usize>(),
                            detail: self
                                .cores
                                .iter()
                                .map(CoreController::debug_stuck)
                                .collect::<String>(),
                        });
                    }
                };
                if next > now + 1 {
                    self.net.skip_to(next - 1);
                }
                self.net.step()?;
            }
        }
        Ok(())
    }

    /// Attaches the system-wide counters (network snapshot, cycles, bank
    /// and memory operation counts) to a finished live measurement.
    fn finalize_metrics(&self, m: &mut Metrics) {
        // Bank energy accounting: ops grouped by bank capacity.
        let mut by_kb: Vec<(u32, u64)> = Vec::new();
        for b in &self.banks {
            let kb = b.place().kb;
            match by_kb.iter_mut().find(|(k, _)| *k == kb) {
                Some((_, n)) => *n += b.ops(),
                None => by_kb.push((kb, b.ops())),
            }
        }
        by_kb.sort_unstable_by_key(|&(kb, _)| kb);
        m.net = self.net.stats().clone();
        m.cycles = self.measured_cycles;
        m.bank_ops_by_kb = by_kb;
        m.mem_ops = self.memory.fetches() + self.memory.writebacks();
        // Timeout/retry counters are system-wide like the network stats:
        // they ride on every per-core entry of a CMP measurement.
        m.timed_out_accesses = self.cores.iter().map(CoreController::timeouts).sum();
        m.retried_accesses = self.cores.iter().map(CoreController::retries).sum();
    }

    /// Installs a link [`FaultSchedule`] on the underlying network.
    ///
    /// Replaces any schedule derived from the configuration's
    /// [`crate::config::FaultConfig`]. See [`Network::set_fault_schedule`]
    /// for validation and determinism notes.
    pub fn set_fault_schedule(&mut self, schedule: FaultSchedule) {
        self.net.set_fault_schedule(schedule);
    }

    fn schedule(&mut self, src: Endpoint, out: Outgoing) {
        let seq = self.out_seq;
        self.out_seq += 1;
        self.outputs.push(OutEv {
            when: out.ready,
            seq,
            src,
            out,
        });
    }

    /// The resident blocks of one (column, index) bank set, MRU first,
    /// concatenated across its banks. Used by correctness tests to
    /// compare the timed protocol against the functional model.
    pub fn column_stack(&self, column: u16, index: u32) -> Vec<Block> {
        let mut v = Vec::new();
        for &b in &self.layout.by_column[column as usize] {
            v.extend(self.banks[b].bank().blocks(index as usize));
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Design;
    use crate::scheme::{Scheme, ALL_SCHEMES};
    use nucanet_cache::AccessResult;

    fn addr(map: AddressMap, column: u32, index: u32, tag: u32) -> u32 {
        map.compose(nucanet_cache::BlockAddr { column, index, tag })
    }

    fn access(map: AddressMap, column: u32, index: u32, tag: u32, write: bool) -> L2Access {
        L2Access {
            addr: addr(map, column, index, tag),
            write,
        }
    }

    #[test]
    fn single_access_misses_then_hits() {
        for scheme in ALL_SCHEMES {
            let mut sys = CacheSystem::new(&Design::A.config(scheme));
            let map = sys.map();
            let m = sys.run_timed(&[access(map, 3, 5, 9, false)]).unwrap();
            assert_eq!(m.accesses(), 1, "{scheme}");
            assert_eq!(m.records[0].hit_position, None, "{scheme}: cold miss");
            assert!(
                m.records[0].mem_cycles >= 162,
                "{scheme}: memory on the path"
            );

            let m2 = sys.run_timed(&[access(map, 3, 5, 9, false)]).unwrap();
            assert_eq!(m2.records[0].hit_position, Some(0), "{scheme}: now MRU hit");
            assert!(m2.records[0].mem_cycles == 0, "{scheme}");
            assert!(
                m2.records[0].latency < m.records[0].latency,
                "{scheme}: hits must beat misses"
            );
        }
    }

    #[test]
    fn timed_protocols_match_functional_model() {
        // The central correctness property: after any access sequence,
        // the timed distributed protocol leaves every bank set exactly
        // as the functional position-stack model predicts.
        let map = AddressMap::new(6, 4, 10);
        let mut seqs: Vec<(u32, u32, u32, bool)> = Vec::new();
        let mut x: u64 = 7;
        for _ in 0..160 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let column = (x >> 10) as u32 % 4; // a few columns
            let index = (x >> 20) as u32 % 2;
            let tag = (x >> 30) as u32 % 24; // enough tags to overflow 16 ways
            let write = x.is_multiple_of(3);
            seqs.push((column, index, tag, write));
        }
        for scheme in ALL_SCHEMES {
            let mut sys = CacheSystem::new(&Design::A.config(scheme));
            let mut model: Vec<BankSetModel> = (0..4)
                .map(|_| BankSetModel::new(16, 1024, scheme.policy()))
                .collect();
            let accesses: Vec<L2Access> = seqs
                .iter()
                .map(|&(c, i, t, w)| access(map, c, i, t, w))
                .collect();
            let metrics = sys.run_timed(&accesses).unwrap();

            // Replay on the functional model and compare hit positions.
            let mut expected_hits = Vec::new();
            for &(c, i, t, w) in &seqs {
                match model[c as usize].access(i as usize, t, w) {
                    AccessResult::Hit { position } => expected_hits.push(Some(position)),
                    AccessResult::Miss { .. } => expected_hits.push(None),
                }
            }
            // Note: the timed system may reorder *independent* sets, but
            // per (column,index) order is preserved; with few sets the
            // global hit/miss counts and final state must agree.
            let got_hits = metrics
                .records
                .iter()
                .filter(|r| r.hit_position.is_some())
                .count();
            let want_hits = expected_hits.iter().filter(|h| h.is_some()).count();
            assert_eq!(got_hits, want_hits, "{scheme}: hit count");

            for c in 0..4u32 {
                for i in 0..2u32 {
                    let got: Vec<Block> = sys.column_stack(c as u16, i);
                    let want: Vec<Block> = model[c as usize]
                        .stack_of(i as usize)
                        .iter()
                        .flatten()
                        .copied()
                        .collect();
                    assert_eq!(got, want, "{scheme}: column {c} index {i} end state");
                }
            }
        }
    }

    #[test]
    fn bank_position_maps_to_hit_position() {
        // Fill one set with 3 tags, then hit the third-most recent: it
        // must be found at position 2 and migrate to the MRU bank under
        // LRU-family schemes.
        for scheme in [
            Scheme::UnicastLru,
            Scheme::UnicastFastLru,
            Scheme::MulticastFastLru,
        ] {
            let mut sys = CacheSystem::new(&Design::A.config(scheme));
            let map = sys.map();
            sys.run_timed(&[
                access(map, 0, 0, 1, false),
                access(map, 0, 0, 2, false),
                access(map, 0, 0, 3, false),
            ]).unwrap();
            let m = sys.run_timed(&[access(map, 0, 0, 1, false)]).unwrap();
            assert_eq!(m.records[0].hit_position, Some(2), "{scheme}");
            let stack = sys.column_stack(0, 0);
            assert_eq!(stack[0].tag, 1, "{scheme}: hit block now MRU");
        }
    }

    #[test]
    fn promotion_moves_hit_block_one_position() {
        for scheme in [Scheme::UnicastPromotion, Scheme::MulticastPromotion] {
            let mut sys = CacheSystem::new(&Design::A.config(scheme));
            let map = sys.map();
            sys.run_timed(&[
                access(map, 0, 0, 1, false),
                access(map, 0, 0, 2, false),
                access(map, 0, 0, 3, false),
            ]).unwrap();
            // Stack: 3,2,1. Hit tag 1 at position 2 → swaps to position 1.
            let m = sys.run_timed(&[access(map, 0, 0, 1, false)]).unwrap();
            assert_eq!(m.records[0].hit_position, Some(2), "{scheme}");
            let stack = sys.column_stack(0, 0);
            assert_eq!(
                stack.iter().map(|b| b.tag).collect::<Vec<_>>(),
                vec![3, 1, 2],
                "{scheme}"
            );
        }
    }

    #[test]
    fn dirty_eviction_reaches_memory() {
        let mut sys = CacheSystem::new(&Design::A.config(Scheme::MulticastFastLru));
        let map = sys.map();
        // Write tag 0 (dirty), then push it out with 16 more tags.
        let mut seq = vec![access(map, 0, 0, 0, true)];
        for t in 1..=16u32 {
            seq.push(access(map, 0, 0, t, false));
        }
        sys.run_timed(&seq).unwrap();
        assert_eq!(
            sys.memory.writebacks(),
            1,
            "the dirty victim must be written back"
        );
    }

    #[test]
    fn fast_lru_beats_plain_lru_on_deep_hits() {
        let map = AddressMap::hpca07();
        // Warm a set with 16 tags, then hit the deepest one.
        let mut warm: Vec<L2Access> = (0..16).map(|t| access(map, 0, 0, t, false)).collect();
        warm.reverse(); // tag 15 most recent, tag 0 at the LRU bank
        let run = |scheme: Scheme| {
            let mut sys = CacheSystem::new(&Design::A.config(scheme));
            sys.warm(&warm);
            let m = sys.run_timed(&[access(map, 0, 0, 15, false)]).unwrap();
            assert_eq!(m.records[0].hit_position, Some(15), "{scheme}: deepest hit");
            m.records[0].latency
        };
        let lru = run(Scheme::UnicastLru);
        let fast = run(Scheme::UnicastFastLru);
        let multi = run(Scheme::MulticastFastLru);
        assert!(fast < lru, "Fast-LRU overlaps replacement: {fast} vs {lru}");
        assert!(
            multi < fast,
            "multicast overlaps tag-match: {multi} vs {fast}"
        );
    }

    #[test]
    fn concurrent_independent_sets_all_complete() {
        let mut sys = CacheSystem::new(&Design::A.config(Scheme::MulticastFastLru));
        let map = sys.map();
        let mut seq = Vec::new();
        for i in 0..40u32 {
            seq.push(access(map, i % 16, i / 16, i, false));
        }
        let m = sys.run_timed(&seq).unwrap();
        assert_eq!(m.accesses(), 40);
    }

    #[test]
    fn halo_design_runs_all_schemes() {
        for scheme in ALL_SCHEMES {
            let mut sys = CacheSystem::new(&Design::F.config(scheme));
            let map = sys.map();
            let m = sys.run_timed(&[
                access(map, 2, 1, 5, false),
                access(map, 2, 1, 5, false),
                access(map, 9, 3, 7, true),
            ]).unwrap();
            assert_eq!(m.accesses(), 3, "{scheme}");
            assert_eq!(
                m.records
                    .iter()
                    .filter(|r| r.hit_position.is_some())
                    .count(),
                1
            );
        }
    }

    #[test]
    fn event_log_traces_a_transaction() {
        let mut sys = CacheSystem::new(&Design::A.config(Scheme::MulticastFastLru));
        sys.enable_event_log(4096);
        let map = sys.map();
        sys.run_timed(&[access(map, 3, 1, 5, false)]).unwrap();
        let log = sys.take_event_log().expect("enabled above");
        // A cold miss multicasts a request (16 deliveries), collects 16
        // notifications, fetches memory, fills, forwards — plenty of
        // injections and deliveries must be visible.
        let injects = log
            .events()
            .filter(|e| matches!(e, nucanet_noc::NetEvent::Inject { .. }))
            .count();
        let delivers = log
            .events()
            .filter(|e| matches!(e, nucanet_noc::NetEvent::Deliver { .. }))
            .count();
        assert!(injects >= 19, "saw {injects} injections");
        assert!(delivers >= 19 + 15, "saw {delivers} deliveries");
        let replicas = log
            .events()
            .filter(|e| matches!(e, nucanet_noc::NetEvent::Replicate { .. }))
            .count();
        assert_eq!(replicas, 15, "one split per non-final bank of the column");
    }

    #[test]
    fn warm_preloads_contents() {
        let mut sys = CacheSystem::new(&Design::A.config(Scheme::MulticastFastLru));
        let map = sys.map();
        sys.warm(&[access(map, 1, 2, 3, false)]);
        let m = sys.run_timed(&[access(map, 1, 2, 3, false)]).unwrap();
        assert_eq!(
            m.records[0].hit_position,
            Some(0),
            "warmed block hits at MRU"
        );
    }

    #[test]
    fn static_nuca_serves_from_home_bank() {
        let mut sys = CacheSystem::new(&Design::A.config(Scheme::StaticNuca));
        let map = sys.map();
        // index 5 -> home bank position 5 on a 16-bank column.
        let m = sys.run_timed(&[access(map, 2, 5, 9, false)]).unwrap();
        assert_eq!(m.records[0].hit_position, None, "cold miss");
        let m2 = sys.run_timed(&[access(map, 2, 5, 9, false)]).unwrap();
        assert_eq!(
            m2.records[0].hit_position,
            Some(5),
            "hit stays at the home bank"
        );
        // The block must NOT have migrated to the MRU bank (position 0).
        let mru_id = sys.layout.by_column[2][0];
        assert_eq!(sys.banks[mru_id].bank().occupancy(0), 0);
        let home_id = sys.layout.by_column[2][5];
        assert!(
            sys.banks[home_id].bank().probe(0, 9),
            "resident at the home bank"
        );
    }

    #[test]
    fn static_nuca_keeps_full_associativity_at_the_home_bank() {
        let mut sys = CacheSystem::new(&Design::A.config(Scheme::StaticNuca));
        let map = sys.map();
        // 16 distinct tags fit one set (S-NUCA-2: the home bank holds
        // all 16 ways); the 17th (dirty way evicted) goes to memory.
        let mut seq: Vec<L2Access> = vec![access(map, 0, 3, 0, true)];
        for t in 1..16u32 {
            seq.push(access(map, 0, 3, t, false));
        }
        let m = sys.run_timed(&seq).unwrap();
        assert_eq!(m.accesses(), 16);
        assert_eq!(sys.memory.writebacks(), 0, "all 16 ways fit");
        // Re-touch them all: every one hits at the home bank.
        let m2 = sys.run_timed(&seq).unwrap();
        assert_eq!(m2.hit_rate(), 1.0);
        // The 17th evicts the LRU way (tag 0, dirty).
        sys.run_timed(&[access(map, 0, 3, 99, false)]).unwrap();
        assert_eq!(sys.memory.writebacks(), 1, "dirty LRU way written back");
    }

    #[test]
    fn static_nuca_warm_and_hit_latency_depends_on_home_distance() {
        let mut sys = CacheSystem::new(&Design::A.config(Scheme::StaticNuca));
        let map = sys.map();
        // Warm two blocks whose homes are near (index 0 -> pos 0) and
        // far (index 15 -> pos 15).
        sys.warm(&[access(map, 0, 0, 1, false), access(map, 0, 15, 1, false)]);
        let m = sys.run_timed(&[access(map, 0, 0, 1, false)]).unwrap();
        let near = m.records[0].latency;
        let m = sys.run_timed(&[access(map, 0, 15, 1, false)]).unwrap();
        let far = m.records[0].latency;
        assert!(
            far > near + 10,
            "far home bank must cost more: {near} vs {far}"
        );
    }

    #[test]
    fn dynamic_schemes_beat_static_nuca_on_skewed_reuse() {
        // The D-NUCA premise: migration concentrates hot blocks near the
        // core; static placement averages the distance.
        let map = AddressMap::hpca07();
        // Hot set at index 15 (farthest possible home for static NUCA).
        let seq: Vec<L2Access> = (0..30).map(|k| access(map, 0, 15, k % 4, false)).collect();
        let run = |scheme: Scheme| {
            let mut sys = CacheSystem::new(&Design::A.config(scheme));
            sys.warm(&seq[..8]);
            sys.run_timed(&seq).unwrap().avg_latency()
        };
        let dynamic = run(Scheme::MulticastFastLru);
        let stat = run(Scheme::StaticNuca);
        assert!(dynamic < stat, "fastLRU {dynamic:.1} !< static {stat:.1}");
    }

    #[test]
    fn two_cores_share_the_cache() {
        let mut sys = CacheSystem::with_cores(&Design::A.config(Scheme::MulticastFastLru), 2);
        assert_eq!(sys.core_count(), 2);
        let map = sys.map();
        // Core 0 and core 1 touch disjoint tags of disjoint sets.
        let t0 = nucanet_workload::Trace::new(
            vec![access(map, 0, 0, 1, false), access(map, 1, 0, 2, true)],
            0,
        );
        let t1 = nucanet_workload::Trace::new(
            vec![access(map, 2, 0, 3, false), access(map, 3, 0, 4, false)],
            0,
        );
        let ms = sys.run_cmp(&[t0, t1]).unwrap();
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[0].accesses(), 2);
        assert_eq!(ms[1].accesses(), 2);
        // All four blocks resident afterwards.
        for (c, t) in [(0, 1), (1, 2), (2, 3), (3, 4)] {
            assert!(
                sys.column_stack(c, 0).iter().any(|b| b.tag == t),
                "col {c} tag {t}"
            );
        }
    }

    #[test]
    fn cross_core_same_set_is_serialised_and_conserves_blocks() {
        let mut sys = CacheSystem::with_cores(&Design::A.config(Scheme::MulticastFastLru), 2);
        let map = sys.map();
        // Both cores hammer the same (column 0, index 0) set with
        // disjoint tags; the shared lock table must serialise them.
        let t0 =
            nucanet_workload::Trace::new((0..10).map(|k| access(map, 0, 0, k, false)).collect(), 0);
        let t1 = nucanet_workload::Trace::new(
            (10..20).map(|k| access(map, 0, 0, k, false)).collect(),
            0,
        );
        let ms = sys.run_cmp(&[t0, t1]).unwrap();
        assert_eq!(ms[0].accesses() + ms[1].accesses(), 20);
        let stack = sys.column_stack(0, 0);
        assert_eq!(stack.len(), 16, "16-way set is exactly full");
        let mut tags: Vec<u32> = stack.iter().map(|b| b.tag).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), 16, "no duplicated or lost blocks: {stack:?}");
    }

    #[test]
    fn cmp_runs_on_the_halo() {
        let mut sys = CacheSystem::with_cores(&Design::F.config(Scheme::MulticastFastLru), 4);
        let map = sys.map();
        let traces: Vec<nucanet_workload::Trace> = (0..4u32)
            .map(|i| {
                nucanet_workload::Trace::new(
                    vec![
                        access(map, i * 3, 1, i + 1, false),
                        access(map, i * 3, 1, i + 1, true),
                    ],
                    0,
                )
            })
            .collect();
        let ms = sys.run_cmp(&traces).unwrap();
        for (i, m) in ms.iter().enumerate() {
            assert_eq!(m.accesses(), 2, "core {i}");
            // The second access re-touches the block the first fetched.
            assert!(
                m.records.iter().any(|r| r.hit_position == Some(0)),
                "core {i}"
            );
        }
    }

    #[test]
    fn cmp_contention_slows_shared_hot_sets() {
        // Two cores fighting over one bank set must see higher latency
        // than one core alone issuing the same total work.
        let cfg = Design::A.config(Scheme::MulticastFastLru);
        let map = AddressMap::hpca07();
        let seq: Vec<L2Access> = (0..30).map(|k| access(map, 0, 0, k % 8, false)).collect();

        let mut solo = CacheSystem::new(&cfg);
        solo.warm(&seq[..8]);
        let solo_m = solo.run_timed(&seq).unwrap();

        let mut duo = CacheSystem::with_cores(&cfg, 2);
        duo.warm(&seq[..8]);
        let half: Vec<L2Access> = seq.iter().step_by(2).copied().collect();
        let other: Vec<L2Access> = seq.iter().skip(1).step_by(2).copied().collect();
        let ms = duo.run_cmp(&[
            nucanet_workload::Trace::new(half, 0),
            nucanet_workload::Trace::new(other, 0),
        ]).unwrap();
        let duo_avg = (ms[0].avg_latency() * ms[0].accesses() as f64
            + ms[1].avg_latency() * ms[1].accesses() as f64)
            / 30.0;
        assert!(
            duo_avg >= solo_m.avg_latency() * 0.8,
            "shared hot set cannot be dramatically faster: duo {duo_avg:.1} solo {:.1}",
            solo_m.avg_latency()
        );
    }

    #[test]
    fn breakdown_components_are_positive() {
        let mut sys = CacheSystem::new(&Design::A.config(Scheme::UnicastLru));
        let map = sys.map();
        let mut seq = Vec::new();
        for t in 0..20u32 {
            seq.push(access(map, 0, 0, t % 6, false));
        }
        let m = sys.run_timed(&seq).unwrap();
        let (bank, net, mem) = m.latency_breakdown();
        assert!(bank > 0.0);
        assert!(net > 0.0, "network share must be visible");
        assert!(mem > 0.0, "cold misses hit memory");
        assert!((bank + net + mem - 1.0).abs() < 1e-9);
    }
}
