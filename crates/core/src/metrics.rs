//! Measurement results of a full-system run.
//!
//! Two capture modes are supported (see [`MetricsCapture`]):
//!
//! * **Full** keeps every [`AccessRecord`] in completion order, which the
//!   protocol-equivalence tests need but costs memory linear in the
//!   trace length.
//! * **Streaming** keeps only constant-size aggregates — exact-recovery
//!   latency histograms, running sums, and the per-position hit counts —
//!   so arbitrarily long traces run in bounded memory.
//!
//! Every derived statistic ([`Metrics::avg_latency`],
//! [`Metrics::latency_breakdown`], percentiles, …) is computed from the
//! streaming aggregates, which are maintained in *both* modes, so the
//! two modes produce bit-identical summary numbers for the same run.
//! Partial results from parallel workers combine with [`Metrics::merge`].

use std::collections::BTreeMap;

use nucanet_noc::stats::nearest_rank;
use nucanet_noc::NetStats;
use nucanet_workload::CoreModel;

/// One completed L2 access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessRecord {
    /// Store vs load.
    pub write: bool,
    /// Bank position the request hit, or `None` for a cache miss.
    pub hit_position: Option<u8>,
    /// Cycles from request injection until the whole operation
    /// (tag-match + data delivery + replacement) finished — the paper's
    /// hop-count accounting of Fig. 2.
    pub latency: u64,
    /// Cycles from request injection until the data reached the core.
    pub data_latency: u64,
    /// Bank service cycles on the critical path.
    pub bank_cycles: u64,
    /// Off-chip memory cycles on the critical path (0 for hits).
    pub mem_cycles: u64,
}

/// Whether a run keeps every access record or only streaming aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricsCapture {
    /// Keep every [`AccessRecord`] (memory grows with trace length).
    /// The default, and what the protocol-equivalence tests rely on.
    #[default]
    Full,
    /// Keep only constant-size aggregates; [`Metrics::records`] stays
    /// empty. Use for long traces and parallel sweeps.
    Streaming,
}

/// Number of width-1 buckets [`LatencyHistogram`] keeps before falling
/// back to the exact overflow map.
pub const FINE_LATENCY_BUCKETS: usize = 4096;

/// A latency histogram with *exact* percentile recovery.
///
/// Latencies below [`FINE_LATENCY_BUCKETS`] are counted in width-1
/// buckets; rarer, larger values are counted exactly in a sorted
/// overflow map. Memory is therefore bounded by the number of *distinct*
/// latency values (≤ 4096 + distinct outliers), never by the number of
/// recorded samples, and [`LatencyHistogram::percentile`] returns the
/// same value a sort of all raw samples would.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LatencyHistogram {
    /// Width-1 buckets for values `0..FINE_LATENCY_BUCKETS`, grown on
    /// demand and kept trimmed (the last element is always non-zero).
    fine: Vec<u64>,
    /// Exact counts for values `>= FINE_LATENCY_BUCKETS`.
    overflow: BTreeMap<u64, u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn record(&mut self, value: u64) {
        if (value as usize) < FINE_LATENCY_BUCKETS {
            let i = value as usize;
            if self.fine.len() <= i {
                self.fine.resize(i + 1, 0);
            }
            self.fine[i] += 1;
        } else {
            *self.overflow.entry(value).or_insert(0) += 1;
        }
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Number of distinct values stored outside the fine bucket range —
    /// the only part of the histogram whose footprint can grow, bounded
    /// by distinct values ≥ [`FINE_LATENCY_BUCKETS`], never by sample
    /// count.
    pub fn overflow_len(&self) -> usize {
        self.overflow.len()
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The exact `q`-quantile (0 ≤ `q` ≤ 1) of the recorded samples: the
    /// smallest recorded value `v` such that at least `ceil(q · count)`
    /// samples are ≤ `v`. Returns `None` when empty.
    ///
    /// The rank is computed in integer arithmetic (see
    /// [`nearest_rank`]), so decimal quantiles hit the exact
    /// order-statistic even where `ceil` on the f64 product would round
    /// the wrong way (e.g. `q = 0.07` of 100 samples) and for counts
    /// beyond 2⁵³.
    ///
    /// # Panics
    ///
    /// Panics when `q` is outside `[0, 1]`.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
            return None;
        }
        let target = nearest_rank(q, self.count);
        let mut acc = 0u64;
        for (v, &c) in self.fine.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Some(v as u64);
            }
        }
        for (&v, &c) in &self.overflow {
            acc += c;
            if acc >= target {
                return Some(v);
            }
        }
        Some(self.max)
    }

    /// Folds `other`'s samples into `self`. Equivalent to having
    /// recorded both sample streams into one histogram.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if self.fine.len() < other.fine.len() {
            self.fine.resize(other.fine.len(), 0);
        }
        for (i, &c) in other.fine.iter().enumerate() {
            self.fine[i] += c;
        }
        for (&v, &c) in &other.overflow {
            *self.overflow.entry(v).or_insert(0) += c;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

/// Aggregated results of one simulation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Metrics {
    /// Capture mode this measurement was taken under.
    pub capture: MetricsCapture,
    /// Every measured access in completion order — populated only under
    /// [`MetricsCapture::Full`].
    pub records: Vec<AccessRecord>,
    /// Network statistics snapshot at the end of the run.
    pub net: NetStats,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Bank positions per set (for the hit histogram).
    pub positions: usize,
    /// Bank array accesses, grouped by bank capacity in KB (for energy
    /// accounting), sorted by capacity.
    pub bank_ops_by_kb: Vec<(u32, u64)>,
    /// Off-chip block transfers (fetches + writebacks).
    pub mem_ops: u64,
    /// Accesses cancelled by the request timeout after exhausting their
    /// retries (dropped, not recorded in the latency aggregates).
    pub timed_out_accesses: u64,
    /// Retry attempts issued by the request-timeout path.
    pub retried_accesses: u64,

    // Streaming aggregates, maintained in both capture modes.
    latency: LatencyHistogram,
    hit_latency: LatencyHistogram,
    miss_latency: LatencyHistogram,
    writes: u64,
    data_latency_sum: u64,
    bank_path_sum: u64,
    mem_cycles_sum: u64,
    hits_by_position: Vec<u64>,
}

impl Metrics {
    /// An empty measurement in `capture` mode for a system with
    /// `positions` bank positions per set.
    pub fn new(capture: MetricsCapture, positions: usize) -> Self {
        Metrics {
            capture,
            positions,
            hits_by_position: vec![0; positions.max(1)],
            ..Default::default()
        }
    }

    /// Folds one completed access into the aggregates (and, under
    /// [`MetricsCapture::Full`], the record list).
    pub fn record(&mut self, r: AccessRecord) {
        self.latency.record(r.latency);
        match r.hit_position {
            Some(p) => {
                self.hit_latency.record(r.latency);
                if self.hits_by_position.len() <= p as usize {
                    self.hits_by_position.resize(p as usize + 1, 0);
                }
                self.hits_by_position[p as usize] += 1;
            }
            None => self.miss_latency.record(r.latency),
        }
        if r.write {
            self.writes += 1;
        }
        self.data_latency_sum += r.data_latency;
        self.bank_path_sum += r.bank_cycles.min(r.latency);
        self.mem_cycles_sum += r.mem_cycles;
        if self.capture == MetricsCapture::Full {
            self.records.push(r);
        }
    }

    /// Number of measured accesses.
    pub fn accesses(&self) -> usize {
        self.latency.count() as usize
    }

    /// Number of measured writes.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Cache hit rate over the measured window.
    pub fn hit_rate(&self) -> f64 {
        if self.latency.count() == 0 {
            return 0.0;
        }
        self.hit_latency.count() as f64 / self.latency.count() as f64
    }

    /// Average access latency (Fig. 8a).
    pub fn avg_latency(&self) -> f64 {
        self.latency.mean()
    }

    /// Average data-arrival latency (request → block at the core).
    pub fn avg_data_latency(&self) -> f64 {
        if self.latency.count() == 0 {
            0.0
        } else {
            self.data_latency_sum as f64 / self.latency.count() as f64
        }
    }

    /// Average latency of hits only (Fig. 8b).
    pub fn avg_hit_latency(&self) -> f64 {
        self.hit_latency.mean()
    }

    /// Average latency of misses only (Fig. 8c).
    pub fn avg_miss_latency(&self) -> f64 {
        self.miss_latency.mean()
    }

    /// The full-operation latency histogram (exact percentiles).
    pub fn latency_histogram(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// The hit-only latency histogram.
    pub fn hit_latency_histogram(&self) -> &LatencyHistogram {
        &self.hit_latency
    }

    /// The miss-only latency histogram.
    pub fn miss_latency_histogram(&self) -> &LatencyHistogram {
        &self.miss_latency
    }

    /// Exact `q`-quantile of the access latency, or `None` when nothing
    /// was measured. See [`LatencyHistogram::percentile`].
    pub fn latency_percentile(&self, q: f64) -> Option<u64> {
        self.latency.percentile(q)
    }

    /// Fig. 7's decomposition of the total latency into (bank, network,
    /// memory) fractions, each in [0, 1].
    pub fn latency_breakdown(&self) -> (f64, f64, f64) {
        let total = self.latency.sum();
        if total == 0 {
            return (0.0, 0.0, 0.0);
        }
        let bank_f = self.bank_path_sum as f64 / total as f64;
        let mem_f = self.mem_cycles_sum as f64 / total as f64;
        (bank_f, (1.0 - bank_f - mem_f).max(0.0), mem_f)
    }

    /// Hits per bank position (0 = MRU bank).
    pub fn hits_by_position(&self) -> Vec<u64> {
        let mut h = self.hits_by_position.clone();
        if h.len() < self.positions.max(1) {
            h.resize(self.positions.max(1), 0);
        }
        h
    }

    /// Fraction of hits landing in the MRU bank.
    pub fn mru_concentration(&self) -> f64 {
        let total = self.hit_latency.count();
        if total == 0 {
            0.0
        } else {
            self.hits_by_position.first().copied().unwrap_or(0) as f64 / total as f64
        }
    }

    /// IPC under `core` given the measured average latency.
    pub fn ipc(&self, core: &CoreModel) -> f64 {
        core.ipc(self.avg_latency())
    }

    /// Folds `other` into `self`, as if both measurement windows had
    /// been recorded into one `Metrics`.
    ///
    /// Access-level aggregates (histograms, sums, hit counts) and event
    /// counters (`bank_ops_by_kb`, `mem_ops`, network totals) add;
    /// `cycles` and network peaks take the maximum, treating the inputs
    /// as concurrent windows of one system (per-core partials of a CMP
    /// run, or parallel workers over one partitioned trace).
    ///
    /// The aggregate combination is associative and commutative, so
    /// workers may merge in any order and produce identical summaries;
    /// under [`MetricsCapture::Full`] the concatenation order of
    /// `records` follows the merge order. Merging a streaming metrics
    /// into a full one demotes the result to streaming (the record list
    /// would otherwise be silently incomplete).
    pub fn merge(&mut self, other: &Metrics) {
        match (self.capture, other.capture) {
            (MetricsCapture::Full, MetricsCapture::Full) => {
                self.records.extend_from_slice(&other.records);
            }
            _ => {
                self.capture = MetricsCapture::Streaming;
                self.records.clear();
            }
        }
        self.latency.merge(&other.latency);
        self.hit_latency.merge(&other.hit_latency);
        self.miss_latency.merge(&other.miss_latency);
        self.writes += other.writes;
        self.data_latency_sum += other.data_latency_sum;
        self.bank_path_sum += other.bank_path_sum;
        self.mem_cycles_sum += other.mem_cycles_sum;
        if self.hits_by_position.len() < other.hits_by_position.len() {
            self.hits_by_position.resize(other.hits_by_position.len(), 0);
        }
        for (i, &c) in other.hits_by_position.iter().enumerate() {
            self.hits_by_position[i] += c;
        }
        self.net.merge(&other.net);
        self.cycles = self.cycles.max(other.cycles);
        self.positions = self.positions.max(other.positions);
        for &(kb, n) in &other.bank_ops_by_kb {
            match self.bank_ops_by_kb.iter_mut().find(|(k, _)| *k == kb) {
                Some((_, m)) => *m += n,
                None => self.bank_ops_by_kb.push((kb, n)),
            }
        }
        self.bank_ops_by_kb.sort_unstable_by_key(|&(kb, _)| kb);
        self.mem_ops += other.mem_ops;
        self.timed_out_accesses += other.timed_out_accesses;
        self.retried_accesses += other.retried_accesses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(hit: Option<u8>, latency: u64, bank: u64, mem: u64) -> AccessRecord {
        AccessRecord {
            write: false,
            hit_position: hit,
            latency,
            data_latency: latency,
            bank_cycles: bank,
            mem_cycles: mem,
        }
    }

    fn metrics(records: Vec<AccessRecord>) -> Metrics {
        let mut m = Metrics::new(MetricsCapture::Full, 16);
        m.cycles = 100;
        for r in records {
            m.record(r);
        }
        m
    }

    #[test]
    fn averages_split_by_outcome() {
        let m = metrics(vec![
            rec(Some(0), 10, 2, 0),
            rec(None, 200, 10, 162),
            rec(Some(3), 30, 8, 0),
        ]);
        assert!((m.avg_latency() - 80.0).abs() < 1e-9);
        assert!((m.avg_hit_latency() - 20.0).abs() < 1e-9);
        assert!((m.avg_miss_latency() - 200.0).abs() < 1e-9);
        assert!((m.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn breakdown_sums_to_one() {
        let m = metrics(vec![rec(Some(0), 10, 4, 0), rec(None, 190, 6, 100)]);
        let (b, n, mm) = m.latency_breakdown();
        assert!((b + n + mm - 1.0).abs() < 1e-9);
        assert!((b - 10.0 / 200.0).abs() < 1e-9);
        assert!((mm - 100.0 / 200.0).abs() < 1e-9);
    }

    #[test]
    fn hit_histogram() {
        let m = metrics(vec![
            rec(Some(0), 1, 0, 0),
            rec(Some(0), 1, 0, 0),
            rec(Some(5), 1, 0, 0),
        ]);
        let h = m.hits_by_position();
        assert_eq!(h[0], 2);
        assert_eq!(h[5], 1);
        assert!((m.mru_concentration() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = metrics(vec![]);
        assert_eq!(m.avg_latency(), 0.0);
        assert_eq!(m.hit_rate(), 0.0);
        assert_eq!(m.latency_breakdown(), (0.0, 0.0, 0.0));
        assert_eq!(m.mru_concentration(), 0.0);
        assert_eq!(m.latency_percentile(0.5), None);
    }

    #[test]
    fn streaming_mode_matches_full_mode_summaries() {
        let records = vec![
            rec(Some(0), 10, 2, 0),
            rec(None, 200, 10, 162),
            rec(Some(3), 30, 8, 0),
            rec(Some(1), 17, 3, 0),
            rec(None, 251, 9, 170),
        ];
        let mut full = Metrics::new(MetricsCapture::Full, 16);
        let mut streaming = Metrics::new(MetricsCapture::Streaming, 16);
        for r in &records {
            full.record(*r);
            streaming.record(*r);
        }
        assert_eq!(full.records.len(), records.len());
        assert!(streaming.records.is_empty(), "streaming keeps no records");
        assert_eq!(full.avg_latency(), streaming.avg_latency());
        assert_eq!(full.avg_hit_latency(), streaming.avg_hit_latency());
        assert_eq!(full.avg_miss_latency(), streaming.avg_miss_latency());
        assert_eq!(full.avg_data_latency(), streaming.avg_data_latency());
        assert_eq!(full.latency_breakdown(), streaming.latency_breakdown());
        assert_eq!(full.hits_by_position(), streaming.hits_by_position());
        assert_eq!(
            full.latency_percentile(0.95),
            streaming.latency_percentile(0.95)
        );
    }

    #[test]
    fn histogram_bucket_edges() {
        let mut h = LatencyHistogram::new();
        // Boundary values around the fine/overflow split.
        for v in [
            0,
            1,
            FINE_LATENCY_BUCKETS as u64 - 1,
            FINE_LATENCY_BUCKETS as u64,
            FINE_LATENCY_BUCKETS as u64 + 1,
            1_000_000,
        ] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), 1_000_000);
        assert_eq!(h.percentile(0.0), Some(0));
        assert_eq!(h.percentile(1.0), Some(1_000_000));
        // Sorted samples: 0, 1, 4095, 4096, 4097, 1000000. The median
        // lands on the last fine bucket, q=0.6 on the first overflow
        // value — the exact boundary between the two representations.
        assert_eq!(h.percentile(0.5), Some(FINE_LATENCY_BUCKETS as u64 - 1));
        assert_eq!(h.percentile(0.6), Some(FINE_LATENCY_BUCKETS as u64));
        assert_eq!(h.percentile(0.75), Some(FINE_LATENCY_BUCKETS as u64 + 1));
    }

    #[test]
    fn percentiles_match_exact_order_statistics() {
        // Deterministic pseudo-random sample set, checked against a sort.
        let mut values = Vec::new();
        let mut x: u64 = 0x1234_5678;
        for _ in 0..5_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Mostly small latencies with occasional large outliers,
            // like a real run.
            let v = if x.is_multiple_of(100) {
                5_000 + (x >> 32) % 50_000
            } else {
                (x >> 40) % 600
            };
            values.push(v);
        }
        let mut h = LatencyHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let k = ((q * sorted.len() as f64).ceil() as usize).max(1);
            let exact = sorted[k - 1];
            assert_eq!(h.percentile(q), Some(exact), "q={q}");
        }
        assert_eq!(h.sum(), values.iter().sum::<u64>());
    }

    #[test]
    fn percentile_rank_is_integer_exact() {
        // 100 distinct samples 0..100. The 7th percentile is the 7th
        // order statistic (value 6): ceil(0.07 · 100) = 7 in exact
        // arithmetic, but the f64 product is 7.000000000000001, which
        // `ceil` used to round up to rank 8 (value 7).
        let mut h = LatencyHistogram::new();
        for v in 0..100u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(0.07), Some(6));

        // Every whole-percent quantile matches the rank computed on the
        // sorted raw samples with integer arithmetic.
        let sorted: Vec<u64> = (0..100).collect();
        for pct in 1..=100u64 {
            let q = pct as f64 / 100.0;
            let rank = pct; // ceil(pct/100 · 100) exactly
            assert_eq!(
                h.percentile(q),
                Some(sorted[rank as usize - 1]),
                "q={q}"
            );
        }
    }

    #[test]
    fn merge_is_commutative_and_associative() {
        let parts: Vec<Metrics> = (0..3)
            .map(|k| {
                let mut m = Metrics::new(MetricsCapture::Streaming, 16);
                m.cycles = 100 + k;
                m.mem_ops = k;
                m.bank_ops_by_kb = vec![(64, k + 1), (128 + 32 * k as u32, 7)];
                for i in 0..20u64 {
                    m.record(rec(
                        if i % 3 == 0 { None } else { Some((i % 16) as u8) },
                        10 * k + i,
                        2,
                        if i % 3 == 0 { 162 } else { 0 },
                    ));
                }
                m
            })
            .collect();

        // Commutativity: a+b == b+a.
        let mut ab = parts[0].clone();
        ab.merge(&parts[1]);
        let mut ba = parts[1].clone();
        ba.merge(&parts[0]);
        assert_eq!(ab, ba);

        // Associativity: (a+b)+c == a+(b+c).
        let mut ab_c = ab.clone();
        ab_c.merge(&parts[2]);
        let mut bc = parts[1].clone();
        bc.merge(&parts[2]);
        let mut a_bc = parts[0].clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);

        // The merged aggregate equals recording all streams into one.
        assert_eq!(ab_c.accesses(), 60);
        assert_eq!(ab_c.mem_ops, 3);
    }

    #[test]
    fn merging_streaming_into_full_demotes_capture() {
        let mut full = metrics(vec![rec(Some(0), 10, 2, 0)]);
        let mut streaming = Metrics::new(MetricsCapture::Streaming, 16);
        streaming.record(rec(None, 200, 10, 162));
        full.merge(&streaming);
        assert_eq!(full.capture, MetricsCapture::Streaming);
        assert!(full.records.is_empty());
        assert_eq!(full.accesses(), 2);
        assert!((full.avg_latency() - 105.0).abs() < 1e-9);
    }
}
