//! Measurement results of a full-system run.

use nucanet_noc::NetStats;
use nucanet_workload::CoreModel;

/// One completed L2 access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessRecord {
    /// Store vs load.
    pub write: bool,
    /// Bank position the request hit, or `None` for a cache miss.
    pub hit_position: Option<u8>,
    /// Cycles from request injection until the whole operation
    /// (tag-match + data delivery + replacement) finished — the paper's
    /// hop-count accounting of Fig. 2.
    pub latency: u64,
    /// Cycles from request injection until the data reached the core.
    pub data_latency: u64,
    /// Bank service cycles on the critical path.
    pub bank_cycles: u64,
    /// Off-chip memory cycles on the critical path (0 for hits).
    pub mem_cycles: u64,
}

/// Aggregated results of one simulation.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Every measured access, in completion order.
    pub records: Vec<AccessRecord>,
    /// Network statistics snapshot at the end of the run.
    pub net: NetStats,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Bank positions per set (for the hit histogram).
    pub positions: usize,
    /// Bank array accesses, grouped by bank capacity in KB (for energy
    /// accounting).
    pub bank_ops_by_kb: Vec<(u32, u64)>,
    /// Off-chip block transfers (fetches + writebacks).
    pub mem_ops: u64,
}

impl Metrics {
    /// Number of measured accesses.
    pub fn accesses(&self) -> usize {
        self.records.len()
    }

    /// Cache hit rate over the measured window.
    pub fn hit_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let hits = self
            .records
            .iter()
            .filter(|r| r.hit_position.is_some())
            .count();
        hits as f64 / self.records.len() as f64
    }

    /// Average access latency (Fig. 8a).
    pub fn avg_latency(&self) -> f64 {
        avg(self.records.iter().map(|r| r.latency))
    }

    /// Average data-arrival latency (request → block at the core).
    pub fn avg_data_latency(&self) -> f64 {
        avg(self.records.iter().map(|r| r.data_latency))
    }

    /// Average latency of hits only (Fig. 8b).
    pub fn avg_hit_latency(&self) -> f64 {
        avg(self
            .records
            .iter()
            .filter(|r| r.hit_position.is_some())
            .map(|r| r.latency))
    }

    /// Average latency of misses only (Fig. 8c).
    pub fn avg_miss_latency(&self) -> f64 {
        avg(self
            .records
            .iter()
            .filter(|r| r.hit_position.is_none())
            .map(|r| r.latency))
    }

    /// Fig. 7's decomposition of the total latency into (bank, network,
    /// memory) fractions, each in [0, 1].
    pub fn latency_breakdown(&self) -> (f64, f64, f64) {
        let total: u64 = self.records.iter().map(|r| r.latency).sum();
        if total == 0 {
            return (0.0, 0.0, 0.0);
        }
        let bank: u64 = self
            .records
            .iter()
            .map(|r| r.bank_cycles.min(r.latency))
            .sum();
        let mem: u64 = self.records.iter().map(|r| r.mem_cycles).sum();
        let bank_f = bank as f64 / total as f64;
        let mem_f = mem as f64 / total as f64;
        (bank_f, (1.0 - bank_f - mem_f).max(0.0), mem_f)
    }

    /// Hits per bank position (0 = MRU bank).
    pub fn hits_by_position(&self) -> Vec<u64> {
        let mut h = vec![0u64; self.positions.max(1)];
        for r in &self.records {
            if let Some(p) = r.hit_position {
                h[p as usize] += 1;
            }
        }
        h
    }

    /// Fraction of hits landing in the MRU bank.
    pub fn mru_concentration(&self) -> f64 {
        let h = self.hits_by_position();
        let total: u64 = h.iter().sum();
        if total == 0 {
            0.0
        } else {
            h[0] as f64 / total as f64
        }
    }

    /// IPC under `core` given the measured average latency.
    pub fn ipc(&self, core: &CoreModel) -> f64 {
        core.ipc(self.avg_latency())
    }
}

fn avg(iter: impl Iterator<Item = u64>) -> f64 {
    let mut n = 0u64;
    let mut s = 0u64;
    for v in iter {
        n += 1;
        s += v;
    }
    if n == 0 {
        0.0
    } else {
        s as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(hit: Option<u8>, latency: u64, bank: u64, mem: u64) -> AccessRecord {
        AccessRecord {
            write: false,
            hit_position: hit,
            latency,
            data_latency: latency,
            bank_cycles: bank,
            mem_cycles: mem,
        }
    }

    fn metrics(records: Vec<AccessRecord>) -> Metrics {
        Metrics {
            records,
            net: NetStats::new(0),
            cycles: 100,
            positions: 16,
            bank_ops_by_kb: vec![],
            mem_ops: 0,
        }
    }

    #[test]
    fn averages_split_by_outcome() {
        let m = metrics(vec![
            rec(Some(0), 10, 2, 0),
            rec(None, 200, 10, 162),
            rec(Some(3), 30, 8, 0),
        ]);
        assert!((m.avg_latency() - 80.0).abs() < 1e-9);
        assert!((m.avg_hit_latency() - 20.0).abs() < 1e-9);
        assert!((m.avg_miss_latency() - 200.0).abs() < 1e-9);
        assert!((m.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn breakdown_sums_to_one() {
        let m = metrics(vec![rec(Some(0), 10, 4, 0), rec(None, 190, 6, 100)]);
        let (b, n, mm) = m.latency_breakdown();
        assert!((b + n + mm - 1.0).abs() < 1e-9);
        assert!((b - 10.0 / 200.0).abs() < 1e-9);
        assert!((mm - 100.0 / 200.0).abs() < 1e-9);
    }

    #[test]
    fn hit_histogram() {
        let m = metrics(vec![
            rec(Some(0), 1, 0, 0),
            rec(Some(0), 1, 0, 0),
            rec(Some(5), 1, 0, 0),
        ]);
        let h = m.hits_by_position();
        assert_eq!(h[0], 2);
        assert_eq!(h[5], 1);
        assert!((m.mru_concentration() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = metrics(vec![]);
        assert_eq!(m.avg_latency(), 0.0);
        assert_eq!(m.hit_rate(), 0.0);
        assert_eq!(m.latency_breakdown(), (0.0, 0.0, 0.0));
        assert_eq!(m.mru_concentration(), 0.0);
    }
}
