//! The five replacement/communication schemes of Fig. 8.

use nucanet_cache::ReplacementPolicy;

/// How requests are delivered and how replacement is performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// D-NUCA baseline: sequential bank walk, promotion on hit.
    UnicastPromotion,
    /// Sequential walk; hit block moves to the MRU bank, the displaced
    /// blocks shuffle down *after* the hit is found (Fig. 2a).
    UnicastLru,
    /// Sequential walk with the evicted block riding along, overlapping
    /// replacement with tag-match (Fig. 2b).
    UnicastFastLru,
    /// Concurrent tag-match via multicast, promotion on hit.
    MulticastPromotion,
    /// The paper's best scheme: multicast tag-match + Fast-LRU (Fig. 3).
    MulticastFastLru,
    /// Static NUCA baseline (the paper's reference \[17\]): every set maps to one
    /// fixed bank (`home = index mod positions`); blocks never migrate.
    /// This is the switched-network variant ("S-NUCA-2") — the original
    /// S-NUCA's dedicated wires are what the paper's area analysis
    /// argues against.
    StaticNuca,
}

/// The five schemes of Fig. 8, in the figure's order. [`Scheme::StaticNuca`]
/// is an extra baseline and not part of the paper's comparison.
pub const ALL_SCHEMES: [Scheme; 5] = [
    Scheme::UnicastPromotion,
    Scheme::UnicastLru,
    Scheme::UnicastFastLru,
    Scheme::MulticastPromotion,
    Scheme::MulticastFastLru,
];

impl Scheme {
    /// Whether requests are multicast to all banks of the set.
    pub fn is_multicast(self) -> bool {
        matches!(self, Scheme::MulticastPromotion | Scheme::MulticastFastLru)
    }

    /// Whether replacement overlaps with the tag-match walk.
    pub fn is_fast_lru(self) -> bool {
        matches!(self, Scheme::UnicastFastLru | Scheme::MulticastFastLru)
    }

    /// The functional replacement policy the scheme realises. Static
    /// NUCA keeps LRU order *within* its single home bank.
    pub fn policy(self) -> ReplacementPolicy {
        match self {
            Scheme::UnicastPromotion | Scheme::MulticastPromotion => ReplacementPolicy::Promotion,
            Scheme::UnicastLru => ReplacementPolicy::Lru,
            Scheme::UnicastFastLru | Scheme::MulticastFastLru => ReplacementPolicy::FastLru,
            Scheme::StaticNuca => ReplacementPolicy::Lru,
        }
    }

    /// Whether blocks migrate between banks (false for Static NUCA).
    pub fn migrates(self) -> bool {
        !matches!(self, Scheme::StaticNuca)
    }

    /// Display name matching the paper's figure legends.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::UnicastPromotion => "unicast+promotion",
            Scheme::UnicastLru => "unicast+LRU",
            Scheme::UnicastFastLru => "unicast+fastLRU",
            Scheme::MulticastPromotion => "multicast+promotion",
            Scheme::MulticastFastLru => "multicast+fastLRU",
            Scheme::StaticNuca => "static NUCA",
        }
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_schemes_in_fig8() {
        assert_eq!(ALL_SCHEMES.len(), 5);
        assert!(!ALL_SCHEMES.contains(&Scheme::StaticNuca));
    }

    #[test]
    fn static_nuca_does_not_migrate() {
        assert!(!Scheme::StaticNuca.migrates());
        assert!(Scheme::MulticastFastLru.migrates());
        assert!(!Scheme::StaticNuca.is_multicast());
        assert!(!Scheme::StaticNuca.is_fast_lru());
    }

    #[test]
    fn multicast_flags() {
        assert!(Scheme::MulticastFastLru.is_multicast());
        assert!(Scheme::MulticastPromotion.is_multicast());
        assert!(!Scheme::UnicastLru.is_multicast());
    }

    #[test]
    fn fast_lru_flags() {
        assert!(Scheme::UnicastFastLru.is_fast_lru());
        assert!(Scheme::MulticastFastLru.is_fast_lru());
        assert!(!Scheme::UnicastLru.is_fast_lru());
        assert!(!Scheme::UnicastPromotion.is_fast_lru());
    }

    #[test]
    fn policies_map_correctly() {
        assert_eq!(
            Scheme::UnicastPromotion.policy(),
            ReplacementPolicy::Promotion
        );
        assert_eq!(Scheme::UnicastLru.policy(), ReplacementPolicy::Lru);
        assert_eq!(
            Scheme::MulticastFastLru.policy(),
            ReplacementPolicy::FastLru
        );
    }

    #[test]
    fn names_match_figure_legends() {
        assert_eq!(Scheme::MulticastFastLru.to_string(), "multicast+fastLRU");
        assert_eq!(Scheme::UnicastPromotion.to_string(), "unicast+promotion");
    }
}
