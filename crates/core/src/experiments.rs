//! Canned experiment runners regenerating the paper's tables & figures.
//!
//! Every runner takes an [`ExperimentScale`] so tests can run scaled-down
//! versions of the same code the benchmark harness runs at full size.
//! The simulated window is a statistical sample of the paper's
//! multi-billion-instruction windows; absolute latencies depend on the
//! sample, but the cross-scheme and cross-design *shapes* are what the
//! paper's conclusions rest on.

use nucanet_workload::{BenchmarkProfile, CoreModel, SynthConfig, TraceGenerator, ALL_BENCHMARKS};

use crate::config::{Design, ALL_DESIGNS};
use crate::metrics::Metrics;
use crate::scheme::{Scheme, ALL_SCHEMES};
use crate::sweep::{SweepOutcome, SweepPoint, SweepRunner};
use crate::system::CacheSystem;

/// How large a simulation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentScale {
    /// Functional warm-up accesses.
    pub warmup: usize,
    /// Timed, measured accesses.
    pub measured: usize,
    /// Distinct sets the workload touches.
    pub active_sets: u32,
    /// Workload RNG seed.
    pub seed: u64,
}

impl Default for ExperimentScale {
    fn default() -> Self {
        ExperimentScale {
            warmup: 30_000,
            measured: 8_000,
            active_sets: 256,
            seed: 0xCAFE,
        }
    }
}

impl ExperimentScale {
    /// A tiny scale for unit/integration tests.
    pub fn tiny() -> Self {
        ExperimentScale {
            warmup: 3_000,
            measured: 400,
            active_sets: 64,
            seed: 0xCAFE,
        }
    }
}

/// Runs one (design, scheme, benchmark) cell and returns its metrics
/// plus the modelled IPC.
///
/// # Panics
///
/// Panics when the simulation errors (canned experiments inject no
/// faults, so an error here is a protocol or network bug).
pub fn run_cell(
    design: Design,
    scheme: Scheme,
    profile: &BenchmarkProfile,
    scale: ExperimentScale,
) -> (Metrics, f64) {
    let cfg = design.config(scheme);
    run_config(&cfg, profile, scale)
        .unwrap_or_else(|e| panic!("{design:?}/{scheme}/{}: {e}", profile.name))
}

/// Runs one cell over an explicit configuration — the hook the CLI and
/// harnesses use to toggle knobs [`Design::config`] leaves at their
/// defaults (e.g. `check_invariants`), and to observe errors instead of
/// panicking.
///
/// # Errors
///
/// Propagates the [`nucanet_noc::SimError`] of the run.
pub fn run_config(
    cfg: &crate::config::SystemConfig,
    profile: &BenchmarkProfile,
    scale: ExperimentScale,
) -> Result<(Metrics, f64), nucanet_noc::SimError> {
    let mut gen = TraceGenerator::new(
        *profile,
        SynthConfig {
            active_sets: scale.active_sets,
            seed: scale.seed,
            ..Default::default()
        },
    );
    let trace = gen.generate(scale.warmup, scale.measured);
    let mut sys = CacheSystem::new(cfg);
    let metrics = sys.run(&trace)?;
    let ipc = metrics.ipc(&CoreModel::for_profile(profile));
    Ok((metrics, ipc))
}

/// Builds the [`SweepPoint`] for one (design, scheme, benchmark) cell.
/// Every figure runner below is a fan-out of these, so the serial and
/// parallel paths simulate byte-identical configurations.
pub fn cell_point(
    design: Design,
    scheme: Scheme,
    profile: &BenchmarkProfile,
    scale: ExperimentScale,
) -> SweepPoint {
    SweepPoint {
        label: format!("{design:?}/{scheme}/{}", profile.name).into(),
        config: design.config(scheme).into(),
        profile: *profile,
        scale,
    }
}

/// One bar of Fig. 7: the latency split under Unicast LRU on Design A.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig7Row {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Bank fraction of total latency.
    pub bank: f64,
    /// Network fraction.
    pub network: f64,
    /// Memory fraction.
    pub memory: f64,
}

/// Regenerates Fig. 7 (latency distribution, Unicast LRU, Design A).
pub fn fig7(scale: ExperimentScale) -> Vec<Fig7Row> {
    fig7_parallel(scale, &SweepRunner::with_workers(1))
}

/// [`fig7`] fanned out over `runner`'s workers. Identical output for
/// any worker count (see the [`crate::sweep`] determinism contract).
pub fn fig7_parallel(scale: ExperimentScale, runner: &SweepRunner) -> Vec<Fig7Row> {
    fig7_cells(&runner.run(&fig7_points(scale)))
}

/// The sweep points behind Fig. 7, in [`fig7_cells`] order.
pub fn fig7_points(scale: ExperimentScale) -> Vec<SweepPoint> {
    ALL_BENCHMARKS
        .iter()
        .map(|b| cell_point(Design::A, Scheme::UnicastLru, b, scale))
        .collect()
}

/// Maps [`fig7_points`] outcomes back to figure rows.
pub fn fig7_cells(outcomes: &[SweepOutcome]) -> Vec<Fig7Row> {
    ALL_BENCHMARKS
        .iter()
        .zip(outcomes)
        .map(|(b, o)| {
            let (bank, network, memory) = o.metrics.latency_breakdown();
            Fig7Row {
                benchmark: b.name,
                bank,
                network,
                memory,
            }
        })
        .collect()
}

/// One cell of Fig. 8: latencies + IPC for a (benchmark, scheme) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig8Cell {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Scheme evaluated.
    pub scheme: Scheme,
    /// Average access latency (Fig. 8a).
    pub avg_latency: f64,
    /// Average hit latency (Fig. 8b).
    pub hit_latency: f64,
    /// Average miss latency (Fig. 8c).
    pub miss_latency: f64,
    /// Cache hit rate.
    pub hit_rate: f64,
    /// Modelled IPC.
    pub ipc: f64,
}

/// Regenerates Fig. 8 (all five schemes on the Design A network).
pub fn fig8(scale: ExperimentScale) -> Vec<Fig8Cell> {
    fig8_parallel(scale, &SweepRunner::with_workers(1))
}

/// [`fig8`] fanned out over `runner`'s workers. Identical output for
/// any worker count (see the [`crate::sweep`] determinism contract).
pub fn fig8_parallel(scale: ExperimentScale, runner: &SweepRunner) -> Vec<Fig8Cell> {
    fig8_cells(&runner.run(&fig8_points(scale)))
}

/// The sweep points behind Fig. 8, in [`fig8_cells`] order
/// (benchmark-major, scheme-minor).
pub fn fig8_points(scale: ExperimentScale) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for b in &ALL_BENCHMARKS {
        for scheme in ALL_SCHEMES {
            points.push(cell_point(Design::A, scheme, b, scale));
        }
    }
    points
}

/// Maps [`fig8_points`] outcomes back to figure cells.
pub fn fig8_cells(outcomes: &[SweepOutcome]) -> Vec<Fig8Cell> {
    let keys = ALL_BENCHMARKS
        .iter()
        .flat_map(|b| ALL_SCHEMES.into_iter().map(move |s| (b.name, s)));
    keys.zip(outcomes)
        .map(|((benchmark, scheme), o)| {
            let m: &Metrics = &o.metrics;
            Fig8Cell {
                benchmark,
                scheme,
                avg_latency: m.avg_latency(),
                hit_latency: m.avg_hit_latency(),
                miss_latency: m.avg_miss_latency(),
                hit_rate: m.hit_rate(),
                ipc: o.ipc,
            }
        })
        .collect()
}

/// One bar of Fig. 9: a design's IPC for one benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig9Cell {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Design evaluated (Multicast Fast-LRU everywhere).
    pub design: Design,
    /// Modelled IPC.
    pub ipc: f64,
    /// Average access latency underlying the IPC.
    pub avg_latency: f64,
}

/// Regenerates Fig. 9 (Designs A–F under Multicast Fast-LRU).
pub fn fig9(scale: ExperimentScale) -> Vec<Fig9Cell> {
    fig9_parallel(scale, &SweepRunner::with_workers(1))
}

/// [`fig9`] fanned out over `runner`'s workers. Identical output for
/// any worker count (see the [`crate::sweep`] determinism contract).
pub fn fig9_parallel(scale: ExperimentScale, runner: &SweepRunner) -> Vec<Fig9Cell> {
    fig9_cells(&runner.run(&fig9_points(scale)))
}

/// The sweep points behind Fig. 9, in [`fig9_cells`] order
/// (benchmark-major, design-minor).
pub fn fig9_points(scale: ExperimentScale) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for b in &ALL_BENCHMARKS {
        for design in ALL_DESIGNS {
            points.push(cell_point(design, Scheme::MulticastFastLru, b, scale));
        }
    }
    points
}

/// Maps [`fig9_points`] outcomes back to figure cells.
pub fn fig9_cells(outcomes: &[SweepOutcome]) -> Vec<Fig9Cell> {
    let keys = ALL_BENCHMARKS
        .iter()
        .flat_map(|b| ALL_DESIGNS.into_iter().map(move |d| (b.name, d)));
    keys.zip(outcomes)
        .map(|((benchmark, design), o)| Fig9Cell {
            benchmark,
            design,
            ipc: o.ipc,
            avg_latency: o.metrics.avg_latency(),
        })
        .collect()
}

/// Normalises Fig. 9 cells to Design A per benchmark (the paper's y-axis).
pub fn normalize_fig9(cells: &[Fig9Cell]) -> Vec<(Fig9Cell, f64)> {
    cells
        .iter()
        .map(|c| {
            let base = cells
                .iter()
                .find(|b| b.benchmark == c.benchmark && b.design == Design::A)
                .expect("Design A baseline present");
            (*c, c.ipc / base.ipc)
        })
        .collect()
}

/// Geometric-mean helper for summarising normalised IPCs.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        assert!(v > 0.0, "geomean needs positive values");
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        return 0.0;
    }
    (log_sum / n as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench(name: &str) -> BenchmarkProfile {
        BenchmarkProfile::by_name(name).expect("benchmark exists")
    }

    #[test]
    fn run_cell_produces_metrics() {
        let (m, ipc) = run_cell(
            Design::A,
            Scheme::MulticastFastLru,
            &bench("gcc"),
            ExperimentScale::tiny(),
        );
        assert_eq!(m.accesses(), ExperimentScale::tiny().measured);
        assert!(ipc > 0.0 && ipc < bench("gcc").perfect_l2_ipc);
    }

    #[test]
    fn fig7_network_dominates() {
        // The paper's headline: ~65% network, ~25% bank, ~10% memory.
        let scale = ExperimentScale::tiny();
        let (m, _) = run_cell(Design::A, Scheme::UnicastLru, &bench("gcc"), scale);
        let (bank, network, memory) = m.latency_breakdown();
        assert!(
            network > bank,
            "network share must dominate bank: {network} vs {bank}"
        );
        assert!(network > memory, "network share must dominate memory");
        assert!(network > 0.4, "network {network}");
    }

    #[test]
    fn fast_lru_reduces_latency_vs_lru() {
        let scale = ExperimentScale::tiny();
        let (lru, _) = run_cell(Design::A, Scheme::UnicastLru, &bench("twolf"), scale);
        let (fast, _) = run_cell(Design::A, Scheme::UnicastFastLru, &bench("twolf"), scale);
        assert!(
            fast.avg_latency() < lru.avg_latency(),
            "Fast-LRU {:.1} must beat LRU {:.1}",
            fast.avg_latency(),
            lru.avg_latency()
        );
    }

    #[test]
    fn multicast_fast_lru_is_best_scheme() {
        let scale = ExperimentScale::tiny();
        let (best, _) = run_cell(Design::A, Scheme::MulticastFastLru, &bench("vpr"), scale);
        for other in [
            Scheme::UnicastPromotion,
            Scheme::UnicastLru,
            Scheme::MulticastPromotion,
        ] {
            let (m, _) = run_cell(Design::A, other, &bench("vpr"), scale);
            assert!(
                best.avg_latency() < m.avg_latency(),
                "multicast fastLRU {:.1} vs {other} {:.1}",
                best.avg_latency(),
                m.avg_latency()
            );
        }
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty::<f64>()), 0.0);
    }

    #[test]
    fn normalize_fig9_baseline_is_one() {
        let cells = vec![
            Fig9Cell {
                benchmark: "x",
                design: Design::A,
                ipc: 0.2,
                avg_latency: 50.0,
            },
            Fig9Cell {
                benchmark: "x",
                design: Design::F,
                ipc: 0.25,
                avg_latency: 40.0,
            },
        ];
        let n = normalize_fig9(&cells);
        assert!((n[0].1 - 1.0).abs() < 1e-12);
        assert!((n[1].1 - 1.25).abs() < 1e-12);
    }
}
