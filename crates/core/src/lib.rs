#![warn(missing_docs)]
//! `nucanet` — a networked NUCA L2 cache system co-designed with its
//! on-chip network, reproducing *"A Domain-Specific On-Chip Network
//! Design for Large Scale Cache Systems"* (HPCA 2007).
//!
//! The crate glues the substrates together into the paper's full system:
//!
//! * [`scheme`] — the five replacement/communication schemes evaluated
//!   in Fig. 8: Unicast/Multicast × Promotion/LRU/Fast-LRU.
//! * [`msg`] — the cache-protocol messages that ride the network
//!   (requests, evicted blocks, hit data, notifications, memory traffic)
//!   with their §5 flitization.
//! * [`config`] — system configurations, including Table 3's Designs
//!   A–F, and layout construction (topology + endpoint placement + link
//!   delays from bank geometry).
//! * [`agents`] — the distributed protocol engines: bank agents, the
//!   memory agent, and the core's cache controller with per-bank-set
//!   transaction serialisation.
//! * [`system`] — the full-system driver: trace in, [`metrics::Metrics`]
//!   out (latency, breakdown, hit statistics, network counters).
//! * [`area`] — the Table 4 area analysis (bank/router/link areas, L2
//!   area, chip bounding box) for every design.
//! * [`energy`] — per-run dynamic energy accounting and the on-demand
//!   power-gating estimate (the paper's §7 future work).
//! * [`experiments`] — canned runners regenerating each table and
//!   figure of the paper's evaluation.
//! * [`sweep`] — the parallel experiment engine: fans independent
//!   sweep points over scoped worker threads with bit-identical results
//!   for any worker count, and renders `BENCH_*.json` summaries.
//!
//! # Quickstart
//!
//! ```
//! use nucanet::{Design, Scheme, CacheSystem};
//! use nucanet_workload::{BenchmarkProfile, SynthConfig, TraceGenerator};
//!
//! let cfg = Design::A.config(Scheme::MulticastFastLru);
//! let profile = BenchmarkProfile::by_name("gcc").unwrap();
//! let mut gen = TraceGenerator::new(profile, SynthConfig { active_sets: 64, ..Default::default() });
//! let trace = gen.generate(2_000, 300);
//!
//! let mut sys = CacheSystem::new(&cfg);
//! let metrics = sys.run(&trace).expect("healthy run");
//! assert_eq!(metrics.accesses(), 300);
//! assert!(metrics.avg_latency() > 0.0);
//! ```

pub mod agents;
pub mod area;
pub mod cmpfuzz;
pub mod config;
pub mod energy;
pub mod experiments;
pub mod metrics;
pub mod msg;
pub mod scheme;
pub mod sweep;
pub mod system;

pub use area::{AreaBreakdown, DesignArea};
pub use cmpfuzz::{run_cmp_fuzz, CmpFuzzFailure, CmpFuzzOptions};
pub use config::{ConfigError, Design, FaultConfig, SystemConfig, SystemLayout, TopologyChoice};
pub use energy::EnergyReport;
pub use metrics::{AccessRecord, Metrics};
pub use msg::CacheMsg;
pub use scheme::Scheme;
pub use sweep::{PointError, PointFailure, SimArena, SweepOutcome, SweepPoint, SweepRunner};
pub use system::{CacheSystem, StructuralCache, StructuralEntry};
