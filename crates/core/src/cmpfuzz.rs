//! Differential CMP fuzzing: closed-loop N-core runs must be
//! bit-identical across cycle-kernel thread counts.
//!
//! The network-level harness ([`nucanet_noc::fuzz`]) checks the fast
//! simulator against the golden model. This campaign covers the layer
//! above it — [`CacheSystem::run_cmp`] with 2+ cores on meshes, halos,
//! and multi-hub halos — by running every sampled scenario with a
//! serial and a 4-thread cycle kernel and comparing the per-core
//! [`Metrics`](crate::metrics::Metrics) field for field. Any divergence
//! means the threaded kernel observed a different machine, which the
//! determinism contract forbids.
//!
//! Scenarios are a pure function of `(seed, iteration)`, so a failure
//! replays with `--cmp-iters 1 --seed <reported seed>`.

use nucanet_noc::ALL_STRATEGIES;
use nucanet_workload::{BenchmarkProfile, SynthConfig, Trace, TraceGenerator};

use crate::config::{Design, TopologyChoice};
use crate::scheme::ALL_SCHEMES;
use crate::sweep::derive_seed;
use crate::system::CacheSystem;

/// Options for [`run_cmp_fuzz`].
#[derive(Debug, Clone)]
pub struct CmpFuzzOptions {
    /// Scenarios to run.
    pub iters: u64,
    /// Base seed; iteration `i` collapses to seed `seed + i`, so a
    /// reported failure replays as iteration 0 of its own seed.
    pub seed: u64,
    /// Measured accesses per core per scenario (warm-up is fixed).
    pub accesses: usize,
}

impl Default for CmpFuzzOptions {
    fn default() -> Self {
        CmpFuzzOptions {
            iters: 10,
            seed: 0xC3A,
            accesses: 40,
        }
    }
}

/// A failed CMP scenario, with everything needed to replay it.
#[derive(Debug, Clone)]
pub struct CmpFuzzFailure {
    /// Iteration index within the campaign.
    pub iter: u64,
    /// Collapsed seed: `--cmp-iters 1 --seed <this>` reproduces it.
    pub seed: u64,
    /// Human-readable description of the divergence.
    pub detail: String,
}

/// Runs `opts.iters` sampled CMP scenarios (2–4 cores on a mesh, halo,
/// or 2-hub halo, every non-static scheme, every multicast strategy)
/// with cycle-kernel thread counts 1 and 4, returning the iteration
/// count on success.
///
/// # Errors
///
/// Returns the first [`CmpFuzzFailure`] whose serial and threaded runs
/// diverged (or whose simulation failed outright).
pub fn run_cmp_fuzz(opts: &CmpFuzzOptions) -> Result<u64, CmpFuzzFailure> {
    for iter in 0..opts.iters {
        let seed = opts.seed.wrapping_add(iter);
        run_one(seed, opts.accesses).map_err(|detail| CmpFuzzFailure { iter, seed, detail })?;
    }
    Ok(opts.iters)
}

/// Runs one scenario; `Err` carries the divergence description.
fn run_one(seed: u64, accesses: usize) -> Result<(), String> {
    let draw = |stream: u64| derive_seed(seed, stream);
    let cores = 2 + (draw(0) % 3) as u16; // 2..=4
    let scheme = ALL_SCHEMES[(draw(1) % ALL_SCHEMES.len() as u64) as usize];
    let shape = draw(2) % 3;
    let mut cfg = match shape {
        0 => Design::A.config(scheme),
        1 => Design::F.config(scheme),
        _ => {
            // 2-hub halo carrying Design F's bank sets.
            let mut c = Design::F.config(scheme);
            c.topology = TopologyChoice::MultiHubHalo { hubs: 2 };
            c
        }
    };
    cfg.cores = cores;
    // The multicast replication strategy is a sampled axis too: CMP
    // traffic (column multicasts from the protocol agents) must stay
    // bit-identical across kernels under every strategy.
    cfg.router.strategy = ALL_STRATEGIES[(draw(3) % ALL_STRATEGIES.len() as u64) as usize];
    let profile = BenchmarkProfile::by_name("gcc").expect("gcc profile exists");
    let traces: Vec<Trace> = (0..cores)
        .map(|i| {
            let mut gen = TraceGenerator::new(
                profile,
                SynthConfig {
                    active_sets: 32,
                    seed: draw(100 + i as u64),
                    ..Default::default()
                },
            );
            gen.generate(300, accesses)
        })
        .collect();
    let run = |sim_threads: u32| {
        let mut cfg = cfg.clone();
        cfg.router.sim_threads = sim_threads;
        let mut sys = CacheSystem::new(&cfg);
        sys.run_cmp(&traces)
    };
    let serial = run(1);
    let threaded = run(4);
    match (&serial, &threaded) {
        (Ok(a), Ok(b)) if a == b => Ok(()),
        (Ok(_), Ok(_)) => Err(format!(
            "per-core metrics diverge between sim_threads 1 and 4 \
             ({} cores, {scheme}, shape {shape})",
            cores
        )),
        (Err(e), _) => Err(format!(
            "serial run failed ({cores} cores, {scheme}, shape {shape}): {e}"
        )),
        (_, Err(e)) => Err(format!(
            "threaded run failed ({cores} cores, {scheme}, shape {shape}): {e}"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_campaign_is_clean() {
        let n = run_cmp_fuzz(&CmpFuzzOptions {
            iters: 3,
            seed: 0xC3A,
            accesses: 25,
        })
        .unwrap_or_else(|f| panic!("iter {} (seed {}): {}", f.iter, f.seed, f.detail));
        assert_eq!(n, 3);
    }

    #[test]
    fn scenarios_collapse_to_their_seed() {
        // Iteration i of seed S must behave like iteration 0 of S+i, so
        // reported failures replay in isolation.
        assert!(run_one(0xC3A + 2, 20).is_ok());
    }
}
