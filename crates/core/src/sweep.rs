//! Parallel experiment engine: fan independent simulation points out
//! over OS threads with bit-identical results for any worker count.
//!
//! The paper's evaluation is a grid of configurations (scheme ×
//! topology × bank partition × workload). Every grid point is an
//! independent `(SystemConfig, workload)` simulation, so the sweep is
//! embarrassingly parallel. [`SweepRunner`] runs a list of
//! [`SweepPoint`]s over a [`std::thread::scope`] worker pool with an
//! atomic work queue.
//!
//! # Determinism contract
//!
//! Results are **bit-identical regardless of worker count** because no
//! simulation state is shared between points:
//!
//! * each point's trace generator is seeded solely from its own
//!   [`ExperimentScale::seed`] (plus the benchmark-name hash inside
//!   [`TraceGenerator`]), never from a shared RNG;
//! * each worker constructs its own [`CacheSystem`] from the point's
//!   [`SystemConfig`]; nothing about the simulation reads the thread id,
//!   the claim order, or the clock;
//! * outcomes are written into a slot indexed by the point's input
//!   position, so the returned `Vec` order is the input order.
//!
//! Only the wall-clock fields ([`SweepOutcome::wall`]) vary from run to
//! run. Callers who want decorrelated workloads across points can derive
//! per-point seeds with [`derive_seed`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use nucanet_workload::{BenchmarkProfile, CoreModel, SynthConfig, TraceGenerator};

use crate::config::{Design, SystemConfig, TopologyChoice};
use crate::experiments::ExperimentScale;
use crate::metrics::{Metrics, MetricsCapture};
use crate::scheme::Scheme;
use crate::system::CacheSystem;

/// One independent simulation of the sweep grid.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Human-readable point name (used in reports and JSON output).
    pub label: String,
    /// The full system configuration to simulate.
    pub config: SystemConfig,
    /// The synthetic workload profile driving the run.
    pub profile: BenchmarkProfile,
    /// Simulation scale, including the point's RNG seed.
    pub scale: ExperimentScale,
}

impl SweepPoint {
    /// Runs this point to completion in `capture` mode.
    pub fn run(&self, capture: MetricsCapture) -> SweepOutcome {
        let start = Instant::now();
        let mut gen = TraceGenerator::new(
            self.profile,
            SynthConfig {
                active_sets: self.scale.active_sets,
                seed: self.scale.seed,
                ..Default::default()
            },
        );
        let trace = gen.generate(self.scale.warmup, self.scale.measured);
        let mut sys = CacheSystem::new(&self.config);
        sys.set_metrics_capture(capture);
        let metrics = sys.run(&trace);
        let ipc = metrics.ipc(&CoreModel::for_profile(&self.profile));
        SweepOutcome {
            label: self.label.clone(),
            metrics,
            ipc,
            wall: start.elapsed(),
        }
    }
}

/// The completed measurement of one [`SweepPoint`].
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// The point's label, copied through for reporting.
    pub label: String,
    /// Full measurement of the run.
    pub metrics: Metrics,
    /// Modelled IPC under the point's benchmark core model.
    pub ipc: f64,
    /// Wall-clock time this point took (host-dependent; excluded from
    /// the determinism contract).
    pub wall: Duration,
}

/// Derives an independent per-point seed from a base seed, so sweep
/// points that should be statistically decorrelated get distinct RNG
/// streams while staying reproducible (SplitMix64 of `base + index`).
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base
        .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Parallel sweep executor. See the module docs for the determinism
/// contract.
#[derive(Debug, Clone)]
pub struct SweepRunner {
    workers: usize,
    capture: MetricsCapture,
}

impl Default for SweepRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepRunner {
    /// A runner using every available core and streaming metrics
    /// capture (the constant-memory mode sweeps should use).
    pub fn new() -> Self {
        SweepRunner {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            capture: MetricsCapture::Streaming,
        }
    }

    /// A runner with an explicit worker count (`0` is clamped to 1).
    pub fn with_workers(workers: usize) -> Self {
        SweepRunner {
            workers: workers.max(1),
            ..Self::new()
        }
    }

    /// Sets the metrics capture mode for every point.
    pub fn capture(mut self, capture: MetricsCapture) -> Self {
        self.capture = capture;
        self
    }

    /// The worker count this runner will use.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every point and returns outcomes in input order.
    ///
    /// Points are claimed from an atomic queue, so long points do not
    /// convoy behind short ones; results are independent of the claim
    /// order (see the module docs).
    ///
    /// # Panics
    ///
    /// Panics if any point's simulation panics (the panic is propagated
    /// at scope join).
    pub fn run(&self, points: &[SweepPoint]) -> Vec<SweepOutcome> {
        if points.is_empty() {
            return Vec::new();
        }
        let workers = self.workers.min(points.len());
        if workers == 1 {
            return points.iter().map(|p| p.run(self.capture)).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<SweepOutcome>>> =
            points.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(point) = points.get(i) else { break };
                    let outcome = point.run(self.capture);
                    *slots[i].lock().expect("slot lock poisoned") = Some(outcome);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("slot lock poisoned")
                    .expect("every claimed point stores an outcome")
            })
            .collect()
    }
}

/// Builds the capacity-scaling sweep the `sweep` binary and the CLI
/// share: mesh vs halo under Multicast Fast-LRU as the column length
/// grows (64 KB banks, 16 columns; 4 MB → 32 MB total capacity).
pub fn capacity_points(profile: BenchmarkProfile, scale: ExperimentScale) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for banks_per_set in [4usize, 8, 16, 32] {
        for topology in [TopologyChoice::Mesh, TopologyChoice::Halo] {
            points.push(SweepPoint {
                label: capacity_label(topology, banks_per_set),
                config: capacity_config(topology, banks_per_set),
                profile,
                scale,
            });
        }
    }
    points
}

fn capacity_label(topology: TopologyChoice, banks_per_set: usize) -> String {
    format!(
        "{} ({} MB)",
        match topology {
            TopologyChoice::Mesh => "16xN mesh",
            TopologyChoice::SimplifiedMesh => "16xN simplified mesh",
            TopologyChoice::Halo => "N-spike halo",
        },
        banks_per_set * 16 * 64 / 1024
    )
}

/// One configuration of the capacity sweep: `banks_per_set` 64 KB banks
/// per column on the given topology, Multicast Fast-LRU everywhere.
pub fn capacity_config(topology: TopologyChoice, banks_per_set: usize) -> SystemConfig {
    let mut cfg = Design::A.config(Scheme::MulticastFastLru);
    cfg.topology = topology;
    cfg.bank_kb = vec![64; banks_per_set];
    cfg.bank_ways = vec![1; banks_per_set];
    cfg.core_ports = if topology == TopologyChoice::Halo {
        4
    } else {
        1
    };
    cfg.mem_extra_wire = if topology == TopologyChoice::Halo {
        // The controller sits mid-die; the off-chip wire grows with the
        // spike run (Design E uses 16 cycles at 16 banks).
        banks_per_set as u32
    } else {
        0
    };
    cfg.name = capacity_label(topology, banks_per_set);
    cfg
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".into()
    }
}

/// Renders sweep outcomes as the machine-readable `BENCH_*.json`
/// document (schema `nucanet/sweep-v1`): per point the configuration
/// identity, wall time, simulated cycles, hit rate, mean latency and
/// exact p50/p95/p99 latency percentiles, and modelled IPC.
pub fn render_json(name: &str, workers: usize, points: &[SweepPoint], outcomes: &[SweepOutcome]) -> String {
    assert_eq!(points.len(), outcomes.len(), "one outcome per point");
    let total_wall: Duration = outcomes.iter().map(|o| o.wall).sum();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"nucanet/sweep-v1\",\n");
    out.push_str(&format!("  \"name\": \"{}\",\n", json_escape(name)));
    out.push_str(&format!("  \"workers\": {workers},\n"));
    out.push_str(&format!(
        "  \"cpu_time_ms\": {},\n",
        total_wall.as_millis()
    ));
    out.push_str("  \"points\": [\n");
    for (i, (p, o)) in points.iter().zip(outcomes).enumerate() {
        let m = &o.metrics;
        out.push_str("    {\n");
        out.push_str(&format!(
            "      \"label\": \"{}\",\n",
            json_escape(&o.label)
        ));
        out.push_str(&format!(
            "      \"config\": \"{}\",\n",
            json_escape(&p.config.name)
        ));
        out.push_str(&format!("      \"scheme\": \"{}\",\n", p.config.scheme.name()));
        out.push_str(&format!(
            "      \"topology\": \"{:?}\",\n",
            p.config.topology
        ));
        out.push_str(&format!(
            "      \"banks_per_set\": {},\n",
            p.config.bank_kb.len()
        ));
        out.push_str(&format!("      \"columns\": {},\n", p.config.columns));
        out.push_str(&format!(
            "      \"capacity_kb\": {},\n",
            p.config.capacity_bytes() / 1024
        ));
        out.push_str(&format!(
            "      \"benchmark\": \"{}\",\n",
            json_escape(p.profile.name)
        ));
        out.push_str(&format!("      \"warmup\": {},\n", p.scale.warmup));
        out.push_str(&format!("      \"measured\": {},\n", p.scale.measured));
        out.push_str(&format!("      \"seed\": {},\n", p.scale.seed));
        out.push_str(&format!("      \"wall_ms\": {},\n", o.wall.as_millis()));
        out.push_str(&format!("      \"sim_cycles\": {},\n", m.cycles));
        out.push_str(&format!("      \"accesses\": {},\n", m.accesses()));
        out.push_str(&format!(
            "      \"hit_rate\": {},\n",
            json_f64(m.hit_rate())
        ));
        out.push_str(&format!(
            "      \"avg_latency\": {},\n",
            json_f64(m.avg_latency())
        ));
        for (key, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
            match m.latency_percentile(q) {
                Some(v) => out.push_str(&format!("      \"{key}\": {v},\n")),
                None => out.push_str(&format!("      \"{key}\": null,\n")),
            }
        }
        out.push_str(&format!("      \"ipc\": {}\n", json_f64(o.ipc)));
        out.push_str(if i + 1 == outcomes.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_points(n: usize) -> Vec<SweepPoint> {
        let profiles = ["gcc", "twolf", "vpr", "mcf"];
        (0..n)
            .map(|i| {
                let profile =
                    BenchmarkProfile::by_name(profiles[i % profiles.len()]).expect("profile");
                let scheme = if i % 2 == 0 {
                    Scheme::MulticastFastLru
                } else {
                    Scheme::UnicastLru
                };
                let scale = ExperimentScale {
                    warmup: 600,
                    measured: 120,
                    active_sets: 32,
                    seed: derive_seed(0xCAFE, i as u64),
                };
                SweepPoint {
                    label: format!("point-{i}"),
                    config: Design::A.config(scheme),
                    profile,
                    scale,
                }
            })
            .collect()
    }

    #[test]
    fn outcomes_keep_input_order() {
        let points = tiny_points(4);
        let outcomes = SweepRunner::with_workers(3).run(&points);
        let labels: Vec<&str> = outcomes.iter().map(|o| o.label.as_str()).collect();
        assert_eq!(labels, ["point-0", "point-1", "point-2", "point-3"]);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let points = tiny_points(8);
        let serial = SweepRunner::with_workers(1).run(&points);
        let parallel = SweepRunner::with_workers(4).run(&points);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.metrics, p.metrics, "{}", s.label);
            assert_eq!(s.ipc, p.ipc, "{}", s.label);
        }
    }

    #[test]
    fn streaming_capture_keeps_no_records() {
        let points = tiny_points(2);
        let outcomes = SweepRunner::with_workers(2)
            .capture(MetricsCapture::Streaming)
            .run(&points);
        for o in &outcomes {
            assert!(o.metrics.records.is_empty());
            assert_eq!(o.metrics.accesses(), 120);
            assert!(o.metrics.avg_latency() > 0.0);
        }
    }

    #[test]
    fn derive_seed_is_injective_enough() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(derive_seed(0xCAFE, i)));
        }
        assert_eq!(derive_seed(1, 2), derive_seed(1, 2));
        assert_ne!(derive_seed(1, 2), derive_seed(2, 2));
    }

    #[test]
    fn capacity_points_cover_both_topologies() {
        let profile = BenchmarkProfile::by_name("twolf").expect("twolf");
        let points = capacity_points(profile, ExperimentScale::tiny());
        assert_eq!(points.len(), 8);
        assert!(points
            .iter()
            .any(|p| p.config.topology == TopologyChoice::Halo));
        assert!(points
            .iter()
            .any(|p| p.config.topology == TopologyChoice::Mesh));
    }

    #[test]
    fn json_is_well_formed_enough() {
        let points = tiny_points(2);
        let outcomes = SweepRunner::with_workers(2).run(&points);
        let json = render_json("unit", 2, &points, &outcomes);
        assert!(json.contains("\"schema\": \"nucanet/sweep-v1\""));
        assert!(json.contains("\"label\": \"point-0\""));
        assert!(json.contains("\"p95\":"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
