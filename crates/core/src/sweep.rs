//! Parallel experiment engine: fan independent simulation points out
//! over OS threads with bit-identical results for any worker count.
//!
//! The paper's evaluation is a grid of configurations (scheme ×
//! topology × bank partition × workload). Every grid point is an
//! independent `(SystemConfig, workload)` simulation, so the sweep is
//! embarrassingly parallel. [`SweepRunner`] runs a list of
//! [`SweepPoint`]s over a [`std::thread::scope`] worker pool with an
//! atomic work queue.
//!
//! # Determinism contract
//!
//! Results are **bit-identical regardless of worker count** because no
//! simulation state is shared between points:
//!
//! * each point's trace generator is seeded solely from its own
//!   [`ExperimentScale::seed`] (plus the benchmark-name hash inside
//!   [`TraceGenerator`]), never from a shared RNG;
//! * each worker constructs its own [`CacheSystem`] from the point's
//!   [`SystemConfig`]; nothing about the simulation reads the thread id,
//!   the claim order, or the clock;
//! * outcomes are written into a slot indexed by the point's input
//!   position, so the returned `Vec` order is the input order.
//!
//! Only the wall-clock fields ([`SweepOutcome::wall`]) vary from run to
//! run. Callers who want decorrelated workloads across points can derive
//! per-point seeds with [`derive_seed`].
//!
//! # Warm evaluation
//!
//! By default the runner amortises construction across points on two
//! levels, and both are covered by the same contract — warm results are
//! bit-identical to fresh ones:
//!
//! * a shared [`StructuralCache`] builds each distinct topology +
//!   routing table once; points that differ only in workload, seed,
//!   label or fault schedule reuse the `Arc`-shared structure;
//! * each worker owns a [`SimArena`] that keeps the previous point's
//!   simulator carcass and trace buffers alive, reviving them with
//!   [`CacheSystem::reset_for`] instead of reconstructing, so a
//!   steady-state fault-free point allocates nothing.
//!
//! [`SweepRunner::reuse`]`(false)` restores the fresh-construction path
//! (the benchmark harness uses it as the warm path's baseline).
//!
//! Points may themselves run a multi-threaded cycle kernel
//! ([`nucanet_noc::RouterParams::sim_threads`]). Since the kernel is
//! bit-identical for every thread count, this composes freely with the
//! sweep's own parallelism; the runner only *budgets* the two levels
//! against each other, clamping its worker count so `workers ×
//! sim_threads` does not oversubscribe the host (oversubscription
//! cannot change results, it just thrashes the scheduler).

use std::fmt;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use nucanet_noc::SimError;
use nucanet_workload::{BenchmarkProfile, CoreModel, SynthConfig, Trace, TraceGenerator};

use crate::config::{Design, SystemConfig, TopologyChoice};
use crate::experiments::ExperimentScale;
use crate::metrics::{Metrics, MetricsCapture};
use crate::scheme::Scheme;
use crate::system::{CacheSystem, StructuralCache};

/// One independent simulation of the sweep grid.
///
/// The label and configuration sit behind [`Arc`]s: a grid built by
/// fanning one base configuration out over seeds shares the bytes
/// instead of cloning them per point, and [`SweepPoint::try_run`] only
/// clones the configuration when it actually rewrites a field (the
/// fault-schedule seed). Use [`Arc::make_mut`] to edit a point's
/// configuration in place after construction.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Human-readable point name (used in reports and JSON output).
    pub label: Arc<str>,
    /// The full system configuration to simulate.
    pub config: Arc<SystemConfig>,
    /// The synthetic workload profile driving the run.
    pub profile: BenchmarkProfile,
    /// Simulation scale, including the point's RNG seed.
    pub scale: ExperimentScale,
}

/// Stream index mixed into [`derive_seed`] when a sweep point derives
/// its fault-schedule seed, keeping the fault stream decorrelated from
/// the trace stream that uses the raw point seed.
const FAULT_SEED_STREAM: u64 = 0xFA17;

/// Stream index mixed into [`derive_seed`] for the per-core traces of a
/// CMP point (core 0 keeps the raw point seed so single-core points are
/// byte-for-byte unchanged).
const CORE_SEED_STREAM: u64 = 0xC04E;

impl SweepPoint {
    /// Runs this point to completion in `capture` mode.
    ///
    /// # Panics
    ///
    /// Panics when the simulation fails (see [`SweepPoint::try_run`] for
    /// the error-isolating variant).
    pub fn run(&self, capture: MetricsCapture) -> SweepOutcome {
        self.try_run(capture)
            .unwrap_or_else(|f| panic!("sweep point '{}' failed: {}", f.label, f.error))
    }

    /// Runs this point, reporting simulation failure as a structured
    /// [`PointFailure`] instead of aborting.
    ///
    /// When the point's configuration carries a
    /// [`crate::config::FaultConfig`], its seed is re-derived from the
    /// point's own RNG stream ([`ExperimentScale::seed`], with the
    /// configured seed mixed in as the stream index), so fault-injected
    /// sweeps stay bit-identical regardless of worker count.
    pub fn try_run(&self, capture: MetricsCapture) -> Result<SweepOutcome, PointFailure> {
        let start = Instant::now();
        let n_cores = self.config.cores.max(1);
        let mut traces: Vec<Trace> = Vec::with_capacity(n_cores as usize);
        for i in 0..n_cores {
            let mut gen = TraceGenerator::new(self.profile, self.trace_config(i));
            traces.push(gen.generate(self.scale.warmup, self.scale.measured));
        }
        // Copy-on-write: fault-free points run straight off the shared
        // `Arc`; only a fault-carrying point pays for a clone, because
        // its schedule seed is rewritten per point.
        let seeded;
        let cfg: &SystemConfig = match self.config.faults {
            Some(_) => {
                seeded = self.fault_seeded_config();
                &seeded
            }
            None => &self.config,
        };
        let sim = catch_unwind(AssertUnwindSafe(|| {
            let mut sys = CacheSystem::new(cfg);
            sys.set_metrics_capture(capture);
            run_traces(&mut sys, &traces)
        }));
        self.finish(start, sim)
    }

    /// The synthetic-workload configuration of core `core`. Core 0
    /// keeps the raw point seed so single-core points are unchanged;
    /// later cores get decorrelated derived streams.
    fn trace_config(&self, core: u16) -> SynthConfig {
        let seed = if core == 0 {
            self.scale.seed
        } else {
            derive_seed(self.scale.seed, CORE_SEED_STREAM.wrapping_add(core as u64))
        };
        SynthConfig {
            active_sets: self.scale.active_sets,
            seed,
            ..Default::default()
        }
    }

    /// Clone of the shared configuration with the fault seed re-derived
    /// from the point's own stream.
    fn fault_seeded_config(&self) -> SystemConfig {
        let mut cfg = (*self.config).clone();
        let fc = cfg.faults.as_mut().expect("caller checked faults exist");
        fc.seed = derive_seed(self.scale.seed, FAULT_SEED_STREAM.wrapping_add(fc.seed));
        cfg
    }

    /// Wraps a finished simulation into the point's outcome or failure.
    fn finish(
        &self,
        start: Instant,
        sim: std::thread::Result<Result<Metrics, SimError>>,
    ) -> Result<SweepOutcome, PointFailure> {
        let error = match sim {
            Ok(Ok(metrics)) => {
                let ipc = metrics.ipc(&CoreModel::for_profile(&self.profile));
                return Ok(SweepOutcome {
                    label: Arc::clone(&self.label),
                    metrics,
                    ipc,
                    wall: start.elapsed(),
                });
            }
            Ok(Err(e)) => PointError::Sim(e),
            Err(payload) => PointError::Panic(panic_message(payload.as_ref())),
        };
        Err(PointFailure {
            label: Arc::clone(&self.label),
            error,
            wall: start.elapsed(),
        })
    }
}

/// Runs a ready system (fresh or warm-reset) over the point's traces;
/// CMP per-core results merge into the point aggregate.
fn run_traces(sys: &mut CacheSystem, traces: &[Trace]) -> Result<Metrics, SimError> {
    if traces.len() == 1 {
        sys.run(&traces[0])
    } else {
        // Closed-loop CMP point: every core drives its own trace.
        sys.run_cmp(traces).map(|per_core| {
            let mut it = per_core.into_iter();
            let mut merged = it.next().expect("at least one core");
            for m in it {
                merged.merge(&m);
            }
            merged
        })
    }
}

/// Reusable per-worker simulation state for warm sweeps: one
/// [`CacheSystem`] carcass revived between points via
/// [`CacheSystem::reset_for`], plus per-core trace generators and trace
/// buffers refilled in place. After the first point on a given
/// structure, a fault-free point runs without allocating (enforced by
/// `tests/alloc_free_sweep.rs`).
///
/// Warm results are bit-identical to [`SweepPoint::try_run`]'s fresh
/// construction for every point — the reset contract is covered by the
/// warm-vs-fresh sweep campaign and the `fuzz --warm-iters` mode.
#[derive(Default)]
pub struct SimArena {
    sys: Option<CacheSystem>,
    gens: Vec<TraceGenerator>,
    traces: Vec<Trace>,
}

impl SimArena {
    /// An empty arena; the first point populates it.
    pub fn new() -> Self {
        SimArena::default()
    }

    /// Runs `point` on this arena, reviving the previous point's
    /// simulator when the machine is structurally identical (see
    /// [`CacheSystem::same_machine`]) and rebuilding through
    /// `structures` otherwise. Failure semantics match
    /// [`SweepPoint::try_run`]; after a failed point the carcass is
    /// discarded (an errored simulation is mid-flight state, not a
    /// reusable machine).
    pub fn run_point(
        &mut self,
        point: &SweepPoint,
        capture: MetricsCapture,
        structures: &StructuralCache,
    ) -> Result<SweepOutcome, PointFailure> {
        let start = Instant::now();
        let n_cores = point.config.cores.max(1) as usize;
        for i in 0..n_cores {
            let syn = point.trace_config(i as u16);
            match self.gens.get_mut(i) {
                Some(gen) => gen.reset_for(point.profile, syn),
                None => self.gens.push(TraceGenerator::new(point.profile, syn)),
            }
            match self.traces.get_mut(i) {
                Some(t) => {
                    self.gens[i].generate_into(t, point.scale.warmup, point.scale.measured);
                }
                None => self
                    .traces
                    .push(self.gens[i].generate(point.scale.warmup, point.scale.measured)),
            }
        }
        let seeded;
        let cfg: &SystemConfig = match point.config.faults {
            Some(_) => {
                seeded = point.fault_seeded_config();
                &seeded
            }
            None => &point.config,
        };
        let traces = &self.traces[..n_cores];
        let slot = &mut self.sys;
        let sim = catch_unwind(AssertUnwindSafe(|| {
            let mut sys = match slot.take().filter(|s| s.same_machine(cfg)) {
                Some(mut s) => {
                    let revived = s.reset_for(cfg);
                    debug_assert!(revived, "same_machine implies reset_for succeeds");
                    s
                }
                None => {
                    let entry = structures
                        .get_or_build(cfg, cfg.cores)
                        .unwrap_or_else(|e| panic!("{e}"));
                    CacheSystem::with_structure(cfg, &entry)
                }
            };
            sys.set_metrics_capture(capture);
            let result = run_traces(&mut sys, traces);
            if result.is_ok() {
                *slot = Some(sys);
            }
            result
        }));
        point.finish(start, sim)
    }
}

/// Extracts the human-readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Why one sweep point failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PointError {
    /// The simulation surfaced a structured error (watchdog, wedge,
    /// cycle ceiling).
    Sim(SimError),
    /// The point panicked; the payload message is preserved.
    Panic(String),
}

impl PointError {
    /// Short machine-readable kind tag used in the JSON report.
    pub fn kind(&self) -> &'static str {
        match self {
            PointError::Sim(SimError::Watchdog { .. }) => "watchdog",
            PointError::Sim(SimError::CycleLimit { .. }) => "cycle_limit",
            PointError::Sim(SimError::Wedged { .. }) => "wedged",
            PointError::Sim(SimError::Invariant(_)) => "invariant",
            PointError::Panic(_) => "panic",
        }
    }
}

impl fmt::Display for PointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PointError::Sim(e) => write!(f, "{e}"),
            PointError::Panic(msg) => write!(f, "panic: {msg}"),
        }
    }
}

impl std::error::Error for PointError {}

/// The failure record of one [`SweepPoint`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointFailure {
    /// The point's label, shared through for reporting.
    pub label: Arc<str>,
    /// What went wrong.
    pub error: PointError,
    /// Wall-clock time spent before the failure (host-dependent).
    pub wall: Duration,
}

/// The completed measurement of one [`SweepPoint`].
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// The point's label, shared through for reporting.
    pub label: Arc<str>,
    /// Full measurement of the run.
    pub metrics: Metrics,
    /// Modelled IPC under the point's benchmark core model.
    pub ipc: f64,
    /// Wall-clock time this point took (host-dependent; excluded from
    /// the determinism contract).
    pub wall: Duration,
}

/// Derives an independent per-point seed from a base seed, so sweep
/// points that should be statistically decorrelated get distinct RNG
/// streams while staying reproducible (SplitMix64 of `base + index`).
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base
        .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Parallel sweep executor. See the module docs for the determinism
/// contract.
///
/// ```
/// use nucanet::experiments::ExperimentScale;
/// use nucanet::sweep::{capacity_points, SweepRunner};
/// use nucanet_workload::BenchmarkProfile;
///
/// let scale = ExperimentScale {
///     warmup: 300,
///     measured: 30,
///     active_sets: 16,
///     seed: 7,
/// };
/// let points = capacity_points(BenchmarkProfile::by_name("art").unwrap(), scale);
/// let two = SweepRunner::with_workers(2).run(&points[..2]);
/// let one = SweepRunner::with_workers(1).run(&points[..2]);
/// // Outcomes arrive in input order and, wall time aside, are
/// // bit-identical for any worker count.
/// assert_eq!(two.len(), 2);
/// for (a, b) in one.iter().zip(&two) {
///     assert_eq!(a.label, b.label);
///     assert_eq!(a.metrics, b.metrics);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct SweepRunner {
    workers: usize,
    capture: MetricsCapture,
    reuse: bool,
}

impl Default for SweepRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepRunner {
    /// A runner using every available core and streaming metrics
    /// capture (the constant-memory mode sweeps should use).
    pub fn new() -> Self {
        SweepRunner {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            capture: MetricsCapture::Streaming,
            reuse: true,
        }
    }

    /// A runner with an explicit worker count (`0` is clamped to 1).
    pub fn with_workers(workers: usize) -> Self {
        SweepRunner {
            workers: workers.max(1),
            ..Self::new()
        }
    }

    /// Sets the metrics capture mode for every point.
    pub fn capture(mut self, capture: MetricsCapture) -> Self {
        self.capture = capture;
        self
    }

    /// Toggles warm evaluation (on by default): whether workers keep a
    /// [`SimArena`] so consecutive points on the same structure reuse
    /// the simulator instead of reconstructing it. Bit-identical either
    /// way; `false` exists as the benchmark baseline and a debugging
    /// escape hatch.
    pub fn reuse(mut self, reuse: bool) -> Self {
        self.reuse = reuse;
        self
    }

    /// The worker count this runner will use.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every point and returns outcomes in input order.
    ///
    /// Points are claimed from an atomic queue, so long points do not
    /// convoy behind short ones; results are independent of the claim
    /// order (see the module docs).
    ///
    /// # Panics
    ///
    /// Panics on the first failed point. Use [`SweepRunner::try_run`]
    /// when one bad point must not kill the rest of the sweep.
    pub fn run(&self, points: &[SweepPoint]) -> Vec<SweepOutcome> {
        self.try_run(points)
            .into_iter()
            .map(|r| {
                r.unwrap_or_else(|f| panic!("sweep point '{}' failed: {}", f.label, f.error))
            })
            .collect()
    }

    /// Runs every point, isolating failures: a point that returns a
    /// [`nucanet_noc::SimError`] or panics is reported as a
    /// [`PointFailure`] in its input-order slot while every other point
    /// still runs to completion. Successful outcomes are bit-identical
    /// to [`SweepRunner::run`]'s for any worker count.
    pub fn try_run(&self, points: &[SweepPoint]) -> Vec<Result<SweepOutcome, PointFailure>> {
        if points.is_empty() {
            return Vec::new();
        }
        let sim_threads = points.iter().map(point_sim_threads).max().unwrap_or(1);
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let workers = budget_workers(self.workers, sim_threads, cores).min(points.len());
        let structures = StructuralCache::new();
        if workers == 1 {
            let mut arena = self.reuse.then(SimArena::new);
            return points
                .iter()
                .map(|p| run_one(p, self.capture, arena.as_mut(), &structures))
                .collect();
        }
        let next = AtomicUsize::new(0);
        type Slot = Mutex<Option<Result<SweepOutcome, PointFailure>>>;
        let slots: Vec<Slot> = points.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    // Arenas are per worker: the carcass holds `Rc`
                    // state and never crosses threads; only the
                    // structural cache is shared.
                    let mut arena = self.reuse.then(SimArena::new);
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(point) = points.get(i) else { break };
                        let result = run_one(point, self.capture, arena.as_mut(), &structures);
                        *slots[i].lock().expect("slot lock poisoned") = Some(result);
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("slot lock poisoned")
                    .expect("every claimed point stores a result")
            })
            .collect()
    }
}

/// One point through the warm arena when reuse is on, or the fresh
/// construction path when it is off.
fn run_one(
    point: &SweepPoint,
    capture: MetricsCapture,
    arena: Option<&mut SimArena>,
    structures: &StructuralCache,
) -> Result<SweepOutcome, PointFailure> {
    match arena {
        Some(a) => a.run_point(point, capture, structures),
        None => point.try_run(capture),
    }
}

/// Cycle-kernel threads one point's network will use, resolving the
/// `0` = auto-detect setting the way `Network::new` does.
fn point_sim_threads(p: &SweepPoint) -> usize {
    match p.config.router.sim_threads {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        t => t as usize,
    }
}

/// Sweep workers to actually spawn: the configured count, clamped so
/// `workers × sim_threads` stays within the host's `cores` when points
/// run a multi-threaded cycle kernel. Purely a scheduling decision —
/// results are bit-identical for any worker count (module docs).
fn budget_workers(configured: usize, sim_threads: usize, cores: usize) -> usize {
    if sim_threads <= 1 {
        configured
    } else {
        configured.min((cores / sim_threads).max(1))
    }
}

/// Builds the capacity-scaling sweep the `sweep` binary and the CLI
/// share: mesh vs halo under Multicast Fast-LRU as the column length
/// grows (64 KB banks, 16 columns; 4 MB → 32 MB total capacity).
pub fn capacity_points(profile: BenchmarkProfile, scale: ExperimentScale) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for banks_per_set in [4usize, 8, 16, 32] {
        for topology in [TopologyChoice::Mesh, TopologyChoice::Halo] {
            points.push(SweepPoint {
                label: capacity_label(topology, banks_per_set).into(),
                config: capacity_config(topology, banks_per_set).into(),
                profile,
                scale,
            });
        }
    }
    points
}

fn capacity_label(topology: TopologyChoice, banks_per_set: usize) -> String {
    format!(
        "{} ({} MB)",
        match topology {
            TopologyChoice::Mesh => "16xN mesh",
            TopologyChoice::SimplifiedMesh => "16xN simplified mesh",
            TopologyChoice::Halo => "N-spike halo",
            TopologyChoice::MultiHubHalo { .. } => "multi-hub halo",
        },
        banks_per_set * 16 * 64 / 1024
    )
}

/// One configuration of the capacity sweep: `banks_per_set` 64 KB banks
/// per column on the given topology, Multicast Fast-LRU everywhere.
pub fn capacity_config(topology: TopologyChoice, banks_per_set: usize) -> SystemConfig {
    let mut cfg = Design::A.config(Scheme::MulticastFastLru);
    cfg.topology = topology;
    cfg.bank_kb = vec![64; banks_per_set];
    cfg.bank_ways = vec![1; banks_per_set];
    cfg.core_ports = if topology == TopologyChoice::Halo {
        4
    } else {
        1
    };
    cfg.mem_extra_wire = if topology == TopologyChoice::Halo {
        // The controller sits mid-die; the off-chip wire grows with the
        // spike run (Design E uses 16 cycles at 16 banks).
        banks_per_set as u32
    } else {
        0
    };
    cfg.name = capacity_label(topology, banks_per_set);
    cfg
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".into()
    }
}

/// Renders sweep outcomes as the machine-readable `BENCH_*.json`
/// document (schema `nucanet/sweep-v2`): per point the configuration
/// identity, wall time, simulated cycles, hit rate, mean latency and
/// exact p50/p95/p99 latency percentiles, modelled IPC, and the fault /
/// degradation counters. Equivalent to [`render_json_results`] with
/// every point successful.
pub fn render_json(
    name: &str,
    workers: usize,
    points: &[SweepPoint],
    outcomes: &[SweepOutcome],
) -> String {
    let results: Vec<Result<SweepOutcome, PointFailure>> =
        outcomes.iter().cloned().map(Ok).collect();
    render_json_results(name, workers, points, &results)
}

/// Renders a fault-isolating sweep ([`SweepRunner::try_run`]) as schema
/// `nucanet/sweep-v2`. Failed points keep their configuration identity
/// and carry an `"error"` object (`kind` + `message`) instead of the
/// measurement fields; the document header reports the failure count
/// under `"errors"` and sets `"degraded"` when any point failed.
pub fn render_json_results(
    name: &str,
    workers: usize,
    points: &[SweepPoint],
    results: &[Result<SweepOutcome, PointFailure>],
) -> String {
    assert_eq!(points.len(), results.len(), "one result per point");
    let total_wall: Duration = results
        .iter()
        .map(|r| match r {
            Ok(o) => o.wall,
            Err(f) => f.wall,
        })
        .sum();
    let errors = results.iter().filter(|r| r.is_err()).count();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"nucanet/sweep-v2\",\n");
    out.push_str(&format!("  \"name\": \"{}\",\n", json_escape(name)));
    out.push_str(&format!("  \"workers\": {workers},\n"));
    out.push_str(&format!(
        "  \"cpu_time_ms\": {},\n",
        total_wall.as_millis()
    ));
    out.push_str(&format!("  \"errors\": {errors},\n"));
    out.push_str(&format!("  \"degraded\": {},\n", errors > 0));
    out.push_str("  \"points\": [\n");
    for (i, (p, r)) in points.iter().zip(results).enumerate() {
        out.push_str("    {\n");
        let label = match r {
            Ok(o) => &o.label,
            Err(f) => &f.label,
        };
        out.push_str(&format!("      \"label\": \"{}\",\n", json_escape(label)));
        out.push_str(&format!(
            "      \"config\": \"{}\",\n",
            json_escape(&p.config.name)
        ));
        out.push_str(&format!("      \"scheme\": \"{}\",\n", p.config.scheme.name()));
        out.push_str(&format!(
            "      \"topology\": \"{:?}\",\n",
            p.config.topology
        ));
        out.push_str(&format!(
            "      \"banks_per_set\": {},\n",
            p.config.bank_kb.len()
        ));
        out.push_str(&format!("      \"columns\": {},\n", p.config.columns));
        out.push_str(&format!(
            "      \"capacity_kb\": {},\n",
            p.config.capacity_bytes() / 1024
        ));
        out.push_str(&format!(
            "      \"benchmark\": \"{}\",\n",
            json_escape(p.profile.name)
        ));
        out.push_str(&format!("      \"warmup\": {},\n", p.scale.warmup));
        out.push_str(&format!("      \"measured\": {},\n", p.scale.measured));
        out.push_str(&format!("      \"seed\": {},\n", p.scale.seed));
        match r {
            Ok(o) => {
                let m = &o.metrics;
                out.push_str(&format!("      \"wall_ms\": {},\n", o.wall.as_millis()));
                out.push_str(&format!("      \"sim_cycles\": {},\n", m.cycles));
                out.push_str(&format!("      \"accesses\": {},\n", m.accesses()));
                out.push_str(&format!(
                    "      \"hit_rate\": {},\n",
                    json_f64(m.hit_rate())
                ));
                out.push_str(&format!(
                    "      \"avg_latency\": {},\n",
                    json_f64(m.avg_latency())
                ));
                for (key, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
                    match m.latency_percentile(q) {
                        Some(v) => out.push_str(&format!("      \"{key}\": {v},\n")),
                        None => out.push_str(&format!("      \"{key}\": null,\n")),
                    }
                }
                out.push_str(&format!(
                    "      \"link_down_events\": {},\n",
                    m.net.link_down_events
                ));
                out.push_str(&format!(
                    "      \"packets_rerouted\": {},\n",
                    m.net.packets_rerouted
                ));
                out.push_str(&format!(
                    "      \"retried_accesses\": {},\n",
                    m.retried_accesses
                ));
                out.push_str(&format!(
                    "      \"timed_out_accesses\": {},\n",
                    m.timed_out_accesses
                ));
                out.push_str(&format!("      \"ipc\": {}\n", json_f64(o.ipc)));
            }
            Err(f) => {
                out.push_str(&format!("      \"wall_ms\": {},\n", f.wall.as_millis()));
                out.push_str("      \"error\": {\n");
                out.push_str(&format!(
                    "        \"kind\": \"{}\",\n",
                    f.error.kind()
                ));
                out.push_str(&format!(
                    "        \"message\": \"{}\"\n",
                    json_escape(&f.error.to_string())
                ));
                out.push_str("      }\n");
            }
        }
        out.push_str(if i + 1 == results.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

/// Writes `contents` to `path` atomically: the bytes go to a temporary
/// sibling file (same directory, so the rename cannot cross file
/// systems) which is then renamed over the target. A crash mid-write
/// leaves either the old file or the new one, never a truncated mix.
pub fn write_atomically(path: &Path, contents: &str) -> io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => Path::new(&tmp_name).to_path_buf(),
    };
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_points(n: usize) -> Vec<SweepPoint> {
        let profiles = ["gcc", "twolf", "vpr", "mcf"];
        (0..n)
            .map(|i| {
                let profile =
                    BenchmarkProfile::by_name(profiles[i % profiles.len()]).expect("profile");
                let scheme = if i % 2 == 0 {
                    Scheme::MulticastFastLru
                } else {
                    Scheme::UnicastLru
                };
                let scale = ExperimentScale {
                    warmup: 600,
                    measured: 120,
                    active_sets: 32,
                    seed: derive_seed(0xCAFE, i as u64),
                };
                SweepPoint {
                    label: format!("point-{i}").into(),
                    config: Design::A.config(scheme).into(),
                    profile,
                    scale,
                }
            })
            .collect()
    }

    #[test]
    fn outcomes_keep_input_order() {
        let points = tiny_points(4);
        let outcomes = SweepRunner::with_workers(3).run(&points);
        let labels: Vec<&str> = outcomes.iter().map(|o| &*o.label).collect();
        assert_eq!(labels, ["point-0", "point-1", "point-2", "point-3"]);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let points = tiny_points(8);
        let serial = SweepRunner::with_workers(1).run(&points);
        let parallel = SweepRunner::with_workers(4).run(&points);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.metrics, p.metrics, "{}", s.label);
            assert_eq!(s.ipc, p.ipc, "{}", s.label);
        }
    }

    #[test]
    fn worker_budget_respects_sim_threads() {
        // Serial kernels: the sweep keeps whatever was configured.
        assert_eq!(budget_workers(8, 1, 4), 8);
        // Threaded kernels share the cores: 16 cores / 4 sim threads
        // leaves room for 4 sweep workers.
        assert_eq!(budget_workers(8, 4, 16), 4);
        // Never below one worker, even on a starved host.
        assert_eq!(budget_workers(8, 4, 2), 1);
        assert_eq!(budget_workers(1, 8, 1), 1);
    }

    #[test]
    fn sim_threaded_points_match_serial_points() {
        // The same grid with a 2-thread cycle kernel must produce
        // bit-identical metrics: the kernel's determinism contract,
        // checked through the whole cache system.
        let serial = SweepRunner::with_workers(2).run(&tiny_points(3));
        let mut points = tiny_points(3);
        for p in &mut points {
            Arc::make_mut(&mut p.config).router.sim_threads = 2;
        }
        let threaded = SweepRunner::with_workers(2).run(&points);
        for (s, t) in serial.iter().zip(&threaded) {
            assert_eq!(s.metrics, t.metrics, "{}", s.label);
            assert_eq!(s.ipc, t.ipc, "{}", s.label);
        }
    }

    #[test]
    fn streaming_capture_keeps_no_records() {
        let points = tiny_points(2);
        let outcomes = SweepRunner::with_workers(2)
            .capture(MetricsCapture::Streaming)
            .run(&points);
        for o in &outcomes {
            assert!(o.metrics.records.is_empty());
            assert_eq!(o.metrics.accesses(), 120);
            assert!(o.metrics.avg_latency() > 0.0);
        }
    }

    #[test]
    fn derive_seed_is_injective_enough() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(derive_seed(0xCAFE, i)));
        }
        assert_eq!(derive_seed(1, 2), derive_seed(1, 2));
        assert_ne!(derive_seed(1, 2), derive_seed(2, 2));
    }

    #[test]
    fn capacity_points_cover_both_topologies() {
        let profile = BenchmarkProfile::by_name("twolf").expect("twolf");
        let points = capacity_points(profile, ExperimentScale::tiny());
        assert_eq!(points.len(), 8);
        assert!(points
            .iter()
            .any(|p| p.config.topology == TopologyChoice::Halo));
        assert!(points
            .iter()
            .any(|p| p.config.topology == TopologyChoice::Mesh));
    }

    #[test]
    fn json_is_well_formed_enough() {
        let points = tiny_points(2);
        let outcomes = SweepRunner::with_workers(2).run(&points);
        let json = render_json("unit", 2, &points, &outcomes);
        assert!(json.contains("\"schema\": \"nucanet/sweep-v2\""));
        assert!(json.contains("\"label\": \"point-0\""));
        assert!(json.contains("\"p95\":"));
        assert!(json.contains("\"errors\": 0"));
        assert!(json.contains("\"degraded\": false"));
        assert!(json.contains("\"packets_rerouted\": 0"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    /// A point whose network is cut by a permanent link fault at cycle 0.
    /// XY routing cannot detour, so the point must end in a watchdog
    /// error.
    fn cut_point(label: &str) -> SweepPoint {
        let mut cfg = Design::A.config(Scheme::MulticastFastLru);
        cfg.router.watchdog_cycles = 2_000;
        let layout = cfg.build_layout();
        // The vertical link leaving the column-0 MRU bank: every
        // multicast to column 0 must cross it.
        let n = layout.topo.node_at(0, 0);
        let r = layout.topo.router(n);
        let p = r
            .port_by_label(nucanet_noc::PortLabel::YPlus)
            .expect("mesh corner has a Y+ port");
        let link = r.ports[p.0 as usize].out_link.expect("port has a link");
        cfg.faults = Some(crate::config::FaultConfig::permanent(link, 0));
        SweepPoint {
            label: label.into(),
            config: cfg.into(),
            profile: BenchmarkProfile::by_name("gcc").expect("profile"),
            scale: ExperimentScale {
                warmup: 600,
                measured: 200,
                active_sets: 64,
                seed: 0xCAFE,
            },
        }
    }

    #[test]
    fn faulted_point_fails_alone_and_the_sweep_completes() {
        let mut points = tiny_points(3);
        points.insert(1, cut_point("cut"));
        let results = SweepRunner::with_workers(2).try_run(&points);
        assert_eq!(results.len(), 4);
        match &results[1] {
            Err(PointFailure {
                label,
                error: PointError::Sim(SimError::Watchdog { blocked_heads, .. }),
                ..
            }) => {
                assert_eq!(&**label, "cut");
                assert!(*blocked_heads >= 1, "the cut head is visible");
            }
            other => panic!("expected a watchdog failure, got {other:?}"),
        }
        for (i, r) in results.iter().enumerate() {
            if i != 1 {
                let o = r.as_ref().expect("healthy points complete");
                assert!(o.metrics.accesses() > 0);
            }
        }
        let json = render_json_results("unit", 2, &points, &results);
        assert!(json.contains("\"errors\": 1"));
        assert!(json.contains("\"degraded\": true"));
        assert!(json.contains("\"kind\": \"watchdog\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn run_panics_on_a_failed_point() {
        let p = cut_point("cut");
        let err = p
            .try_run(MetricsCapture::Streaming)
            .expect_err("the cut point must fail");
        assert_eq!(err.error.kind(), "watchdog");
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _ = SweepRunner::with_workers(1).run(std::slice::from_ref(&p));
        }));
        assert!(caught.is_err(), "run() propagates the failure as a panic");
    }

    #[test]
    fn fault_seed_follows_the_point_stream() {
        // Same point, same seed → identical structured failure; the
        // derived fault seed must not depend on anything outside the
        // point (wall time is excluded from the contract).
        let a = cut_point("cut")
            .try_run(MetricsCapture::Streaming)
            .expect_err("cut point fails");
        let b = cut_point("cut")
            .try_run(MetricsCapture::Streaming)
            .expect_err("cut point fails");
        assert_eq!(a.error, b.error);
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join(format!("nucanet-sweep-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("BENCH_unit.json");
        write_atomically(&path, "first").expect("first write");
        write_atomically(&path, "second").expect("overwrite");
        assert_eq!(std::fs::read_to_string(&path).expect("readable"), "second");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("dir listing")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "no temp files remain: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
