//! Cache-protocol messages and their flitization (§5 of the paper).
//!
//! A flit is 128 bits; a request or notification fits in one flit; any
//! packet carrying a 64-byte block (write request, replacement,
//! memory fill, hit-data forwarding) is five flits.
//!
//! Messages carry two bookkeeping accumulators used only for the Fig. 7
//! latency decomposition: `acc_bank` sums the bank service cycles on the
//! critical path of the transaction, `acc_mem` the off-chip memory
//! cycles. A real implementation would not ship these; the simulator
//! uses them so the network share can be computed as
//! `total − bank − memory` exactly as the paper plots it.

use nucanet_cache::Block;
use nucanet_noc::packet::flits_for_bytes;
use nucanet_noc::Endpoint;

/// Protocol payloads carried by the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMsg {
    /// Core → all banks of a set (multicast schemes). One flit for
    /// reads, five for writes (the store data travels along). `reply`
    /// names the controller interface all responses return to, so
    /// several cores can share the cache (the paper's §7 CMP direction).
    Request {
        /// Transaction id (unique per outstanding access).
        txn: u32,
        /// Set index within the column.
        index: u32,
        /// Block tag to match.
        tag: u32,
        /// Store (`true`) or load (`false`).
        write: bool,
        /// Controller interface the responses return to.
        reply: Endpoint,
    },
    /// Core → bank 0 → bank 1 → … (unicast schemes). Fast-LRU attaches
    /// the previous bank's evicted block (`carry`), making the packet a
    /// block transfer.
    WalkRequest {
        /// Transaction id.
        txn: u32,
        /// Set index within the column.
        index: u32,
        /// Block tag to match.
        tag: u32,
        /// Store (`true`) or load (`false`).
        write: bool,
        /// Fast-LRU: the upstream bank's evicted block riding along.
        carry: Option<Block>,
        /// Bank service cycles accumulated so far (Fig. 7 accounting).
        acc_bank: u32,
        /// Controller interface the responses return to.
        reply: Endpoint,
    },
    /// Hit bank → core: the requested block (or store acknowledgement).
    HitData {
        /// Transaction id.
        txn: u32,
        /// Stack position (0 = MRU bank) the hit was found at.
        position: u8,
        /// Bank service cycles on the critical path.
        acc_bank: u32,
    },
    /// MRU bank → core after a memory fill: the new block forwarded.
    FillData {
        /// Transaction id.
        txn: u32,
        /// Whether installing the fill displaced a block and started a
        /// push-down chain (a `Completion` will follow).
        chain_started: bool,
        /// Bank service cycles on the critical path.
        acc_bank: u32,
        /// Off-chip memory cycles on the critical path.
        acc_mem: u32,
    },
    /// Bank → core: tag mismatch at `position`. For multicast Fast-LRU
    /// the MRU bank's notification also says whether it started the
    /// eager eviction chain (`chain_started`).
    MissNotify {
        /// Transaction id.
        txn: u32,
        /// Stack position (0 = MRU bank) reporting the miss.
        position: u8,
        /// Whether the MRU bank eagerly started the eviction chain.
        chain_started: bool,
        /// Bank service cycles on the critical path.
        acc_bank: u32,
    },
    /// Chain-stop bank → core: the push-down chain finished. Carries
    /// the bank cycles the chain accumulated (Fig. 7 accounting).
    Completion {
        /// Transaction id.
        txn: u32,
        /// Bank service cycles the chain accumulated.
        acc_bank: u32,
    },
    /// MRU bank → core: the hit block arrived in the MRU frame.
    FillDone {
        /// Transaction id.
        txn: u32,
        /// Bank service cycles on the critical path.
        acc_bank: u32,
    },
    /// Bank k → bank k+1: block pushed one position away from the core.
    EvictedBlock {
        /// Transaction id.
        txn: u32,
        /// Set index within the column.
        index: u32,
        /// The block descending the stack.
        block: Block,
        /// Bank service cycles accumulated by the chain so far.
        acc_bank: u32,
        /// Controller interface the chain's `Completion` returns to.
        reply: Endpoint,
    },
    /// Hit bank → MRU bank: the hit block moving into the empty frame.
    MruFill {
        /// Transaction id.
        txn: u32,
        /// Set index within the column.
        index: u32,
        /// The hit block ascending to the MRU frame.
        block: Block,
        /// Bank service cycles accumulated so far.
        acc_bank: u32,
        /// Controller interface the `FillDone` returns to.
        reply: Endpoint,
    },
    /// Promotion: hit bank → next-closer bank (the hit block ascends).
    SwapUp {
        /// Transaction id.
        txn: u32,
        /// Set index within the column.
        index: u32,
        /// The hit block moving one position toward the core.
        block: Block,
        /// Bank service cycles accumulated so far.
        acc_bank: u32,
        /// Controller interface the swap's `Completion` returns to.
        reply: Endpoint,
    },
    /// Promotion: next-closer bank → hit bank (the displaced block).
    SwapBack {
        /// Transaction id.
        txn: u32,
        /// Set index within the column.
        index: u32,
        /// The displaced block descending into the extraction hole.
        block: Block,
        /// Bank service cycles accumulated so far.
        acc_bank: u32,
        /// Controller interface the swap's `Completion` returns to.
        reply: Endpoint,
    },
    /// Core → memory: fetch a block after a cache miss.
    MemFetch {
        /// Transaction id.
        txn: u32,
        /// Column whose MRU bank receives the fill.
        column: u16,
        /// Set index within the column.
        index: u32,
        /// Block tag to fetch.
        tag: u32,
        /// Store (`true`) — the fill installs dirty.
        write: bool,
        /// Controller interface the `FillData` returns to.
        reply: Endpoint,
    },
    /// Memory → MRU bank: the fetched block.
    MemReply {
        /// Transaction id.
        txn: u32,
        /// Set index within the column.
        index: u32,
        /// Tag of the fetched block.
        tag: u32,
        /// Store (`true`) — the fill installs dirty.
        write: bool,
        /// Off-chip memory cycles spent serving the fetch.
        acc_mem: u32,
        /// Controller interface the `FillData` returns to.
        reply: Endpoint,
    },
    /// LRU bank → memory: dirty victim leaving the cache.
    WriteBack {
        /// Transaction id.
        txn: u32,
        /// The dirty victim block.
        block: Block,
    },
}

impl CacheMsg {
    /// Packet length in flits per §5's flitization.
    pub fn flits(&self) -> u32 {
        let block = flits_for_bytes(64);
        let short = flits_for_bytes(0);
        match self {
            CacheMsg::Request { write, .. } => {
                if *write {
                    block
                } else {
                    short
                }
            }
            CacheMsg::WalkRequest { write, carry, .. } => {
                if *write || carry.is_some() {
                    block
                } else {
                    short
                }
            }
            // Read hits/fills forward the whole block to the core; write
            // acknowledgements would be short, but the paper forwards
            // data uniformly, so we keep the block size (conservative).
            CacheMsg::HitData { .. } | CacheMsg::FillData { .. } => block,
            CacheMsg::MissNotify { .. }
            | CacheMsg::Completion { .. }
            | CacheMsg::FillDone { .. }
            | CacheMsg::MemFetch { .. } => short,
            CacheMsg::EvictedBlock { .. }
            | CacheMsg::MruFill { .. }
            | CacheMsg::SwapUp { .. }
            | CacheMsg::SwapBack { .. }
            | CacheMsg::MemReply { .. }
            | CacheMsg::WriteBack { .. } => block,
        }
    }

    /// The transaction this message belongs to.
    pub fn txn(&self) -> u32 {
        match *self {
            CacheMsg::Request { txn, .. }
            | CacheMsg::WalkRequest { txn, .. }
            | CacheMsg::HitData { txn, .. }
            | CacheMsg::FillData { txn, .. }
            | CacheMsg::MissNotify { txn, .. }
            | CacheMsg::Completion { txn, .. }
            | CacheMsg::FillDone { txn, .. }
            | CacheMsg::EvictedBlock { txn, .. }
            | CacheMsg::MruFill { txn, .. }
            | CacheMsg::SwapUp { txn, .. }
            | CacheMsg::SwapBack { txn, .. }
            | CacheMsg::MemFetch { txn, .. }
            | CacheMsg::MemReply { txn, .. }
            | CacheMsg::WriteBack { txn, .. } => txn,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk() -> Block {
        Block {
            tag: 3,
            dirty: false,
        }
    }

    #[test]
    fn read_request_is_one_flit() {
        let m = CacheMsg::Request {
            txn: 0,
            index: 0,
            tag: 0,
            write: false,
            reply: Endpoint::default(),
        };
        assert_eq!(m.flits(), 1);
    }

    #[test]
    fn write_request_carries_data() {
        let m = CacheMsg::Request {
            txn: 0,
            index: 0,
            tag: 0,
            write: true,
            reply: Endpoint::default(),
        };
        assert_eq!(m.flits(), 5);
    }

    #[test]
    fn walk_request_grows_when_carrying() {
        let bare = CacheMsg::WalkRequest {
            txn: 0,
            index: 0,
            tag: 0,
            write: false,
            carry: None,
            acc_bank: 0,
            reply: Endpoint::default(),
        };
        let carrying = CacheMsg::WalkRequest {
            txn: 0,
            index: 0,
            tag: 0,
            write: false,
            carry: Some(blk()),
            acc_bank: 0,
            reply: Endpoint::default(),
        };
        assert_eq!(bare.flits(), 1);
        assert_eq!(carrying.flits(), 5);
    }

    #[test]
    fn block_transfers_are_five_flits() {
        for m in [
            CacheMsg::EvictedBlock {
                txn: 0,
                index: 0,
                block: blk(),
                acc_bank: 0,
                reply: Endpoint::default(),
            },
            CacheMsg::MruFill {
                txn: 0,
                index: 0,
                block: blk(),
                acc_bank: 0,
                reply: Endpoint::default(),
            },
            CacheMsg::SwapUp {
                txn: 0,
                index: 0,
                block: blk(),
                acc_bank: 0,
                reply: Endpoint::default(),
            },
            CacheMsg::SwapBack {
                txn: 0,
                index: 0,
                block: blk(),
                acc_bank: 0,
                reply: Endpoint::default(),
            },
            CacheMsg::MemReply {
                txn: 0,
                index: 0,
                tag: 0,
                write: false,
                acc_mem: 0,
                reply: Endpoint::default(),
            },
            CacheMsg::WriteBack {
                txn: 0,
                block: blk(),
            },
            CacheMsg::HitData {
                txn: 0,
                position: 0,
                acc_bank: 0,
            },
        ] {
            assert_eq!(m.flits(), 5, "{m:?}");
        }
    }

    #[test]
    fn notifications_are_one_flit() {
        for m in [
            CacheMsg::MissNotify {
                txn: 0,
                position: 3,
                chain_started: false,
                acc_bank: 0,
            },
            CacheMsg::Completion {
                txn: 0,
                acc_bank: 0,
            },
            CacheMsg::FillDone {
                txn: 0,
                acc_bank: 0,
            },
            CacheMsg::MemFetch {
                txn: 0,
                column: 0,
                index: 0,
                tag: 0,
                write: false,
                reply: Endpoint::default(),
            },
        ] {
            assert_eq!(m.flits(), 1, "{m:?}");
        }
    }

    #[test]
    fn txn_accessor() {
        assert_eq!(
            CacheMsg::Completion {
                txn: 42,
                acc_bank: 0
            }
            .txn(),
            42
        );
        assert_eq!(
            CacheMsg::WriteBack {
                txn: 7,
                block: blk()
            }
            .txn(),
            7
        );
    }
}
