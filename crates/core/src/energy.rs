//! Per-run dynamic energy accounting — the paper's §7 future work
//! ("energy consumption analysis of the networked cache systems"), plus
//! the *on-demand power control* study (turning off a subset of the
//! cache) the authors say they are developing.
//!
//! Energy is assembled from the per-event models in
//! [`nucanet_timing::energy`] and the event counts a simulation already
//! collects: flits per link (with geometric link lengths), router
//! traversals, bank array accesses by capacity, and off-chip transfers.

use nucanet_timing::{BankModel, EnergyModel};

use crate::config::{Design, SystemConfig};
use crate::metrics::Metrics;
use crate::scheme::Scheme;

/// Dynamic energy of one simulation run, in picojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Link switching energy.
    pub link_pj: f64,
    /// Router buffer + crossbar energy.
    pub router_pj: f64,
    /// Bank array access energy.
    pub bank_pj: f64,
    /// Off-chip transfer energy.
    pub memory_pj: f64,
    /// Measured accesses the energy is attributed to.
    pub accesses: u64,
}

impl EnergyReport {
    /// Total dynamic energy in pJ.
    pub fn total_pj(&self) -> f64 {
        self.link_pj + self.router_pj + self.bank_pj + self.memory_pj
    }

    /// Average dynamic energy per L2 access, in pJ.
    pub fn per_access_pj(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.total_pj() / self.accesses as f64
        }
    }

    /// Network (link + router) share of the total, in [0, 1].
    pub fn network_share(&self) -> f64 {
        let t = self.total_pj();
        if t == 0.0 {
            0.0
        } else {
            (self.link_pj + self.router_pj) / t
        }
    }
}

/// Computes the energy of a finished run.
///
/// Link lengths come from the same tile geometry the area model uses:
/// a link spans the larger of its endpoint tiles.
pub fn energy_of_run(cfg: &SystemConfig, metrics: &Metrics) -> EnergyReport {
    let em = EnergyModel::new(&cfg.tech);
    let layout = cfg.build_layout();

    // Tile side per node (bank footprint; hub/core nodes count as zero).
    let side_of: Vec<f64> = (0..layout.topo.len())
        .map(|n| {
            layout
                .banks
                .iter()
                .find(|b| b.endpoint.node.0 as usize == n)
                .map(|b| BankModel::new(b.kb).area_mm2().sqrt())
                .unwrap_or(0.0)
        })
        .collect();

    let mut link_pj = 0.0;
    let mut hops: u64 = 0;
    for (i, l) in layout.topo.links().iter().enumerate() {
        let flits = metrics.net.flits_per_link.get(i).copied().unwrap_or(0);
        if flits == 0 {
            continue;
        }
        let len = side_of[l.src.0 as usize]
            .max(side_of[l.dst.0 as usize])
            .max(0.5);
        link_pj += flits as f64 * em.link_pj(len);
        hops += flits;
    }
    // Every link traversal enters a router; ejected flits traverse the
    // final router's crossbar too.
    let router_pj = (hops + metrics.net.flits_ejected) as f64 * em.router_pj();

    let bank_pj: f64 = metrics
        .bank_ops_by_kb
        .iter()
        .map(|&(kb, n)| n as f64 * em.bank_pj(kb))
        .sum();
    let memory_pj = metrics.mem_ops as f64 * em.memory_pj();

    EnergyReport {
        link_pj,
        router_pj,
        bank_pj,
        memory_pj,
        accesses: metrics.accesses() as u64,
    }
}

/// On-demand power control (§7): model powering off the `off_per_column`
/// farthest banks of every bank set. Returns the retained fraction of
/// (dynamic-energy-relevant) capacity and the leakage saving, which is
/// proportional to the powered-off silicon area.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GatingEstimate {
    /// Ways still powered per set.
    pub ways_on: u32,
    /// Fraction of bank silicon still powered, in [0, 1].
    pub area_on_fraction: f64,
    /// Fraction of leakage power saved, in [0, 1].
    pub leakage_saved: f64,
}

/// Estimates the effect of turning off the farthest `off_positions`
/// banks of each column of `design`.
///
/// # Panics
///
/// Panics if `off_positions` is not smaller than the column length.
pub fn gating_estimate(design: Design, off_positions: usize) -> GatingEstimate {
    let cfg = design.config(Scheme::MulticastFastLru);
    assert!(
        off_positions < cfg.bank_kb.len(),
        "cannot power off every bank of a column"
    );
    let keep = cfg.bank_kb.len() - off_positions;
    let ways_on: u32 = cfg.bank_ways[..keep].iter().sum();
    let area = |kbs: &[u32]| -> f64 { kbs.iter().map(|&kb| BankModel::new(kb).area_mm2()).sum() };
    let total = area(&cfg.bank_kb);
    let on = area(&cfg.bank_kb[..keep]);
    GatingEstimate {
        ways_on,
        area_on_fraction: on / total,
        leakage_saved: 1.0 - on / total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{run_cell, ExperimentScale};
    use nucanet_workload::BenchmarkProfile;

    fn report(design: Design) -> EnergyReport {
        let profile = BenchmarkProfile::by_name("twolf").expect("twolf exists");
        let (m, _) = run_cell(
            design,
            Scheme::MulticastFastLru,
            &profile,
            ExperimentScale::tiny(),
        );
        energy_of_run(&design.config(Scheme::MulticastFastLru), &m)
    }

    #[test]
    fn energy_components_are_positive() {
        let r = report(Design::A);
        assert!(r.link_pj > 0.0);
        assert!(r.router_pj > 0.0);
        assert!(r.bank_pj > 0.0);
        assert!(r.memory_pj > 0.0);
        assert!(r.per_access_pj() > 0.0);
        assert!((0.0..=1.0).contains(&r.network_share()));
    }

    #[test]
    fn halo_spends_less_network_energy_than_mesh() {
        // Shorter paths (1-hop MRU banks) mean fewer link/router events.
        let a = report(Design::A);
        let f = report(Design::F);
        assert!(
            f.link_pj + f.router_pj < a.link_pj + a.router_pj,
            "F network {:.0} pJ !< A network {:.0} pJ",
            f.link_pj + f.router_pj,
            a.link_pj + a.router_pj
        );
    }

    #[test]
    fn memory_energy_scales_with_misses() {
        let profile = BenchmarkProfile::by_name("applu").expect("applu exists");
        let scale = ExperimentScale::tiny();
        let (m_stream, _) = run_cell(Design::A, Scheme::MulticastFastLru, &profile, scale);
        let hot = BenchmarkProfile::by_name("art").expect("art exists");
        let (m_hot, _) = run_cell(Design::A, Scheme::MulticastFastLru, &hot, scale);
        let cfg = Design::A.config(Scheme::MulticastFastLru);
        let e_stream = energy_of_run(&cfg, &m_stream);
        let e_hot = energy_of_run(&cfg, &m_hot);
        assert!(
            e_stream.memory_pj > e_hot.memory_pj,
            "streaming must hit memory more"
        );
    }

    #[test]
    fn gating_saves_leakage_proportionally() {
        let g = gating_estimate(Design::A, 8);
        assert_eq!(g.ways_on, 8);
        assert!(
            (g.area_on_fraction - 0.5).abs() < 1e-9,
            "uniform banks halve"
        );
        assert!((g.leakage_saved - 0.5).abs() < 1e-9);

        // Non-uniform F: turning off the single 512 KB bank saves the
        // most silicon per bank.
        let f = gating_estimate(Design::F, 1);
        assert_eq!(f.ways_on, 8);
        assert!(f.leakage_saved > 0.4, "the 512 KB bank dominates: {f:?}");
    }

    #[test]
    #[should_panic(expected = "cannot power off every bank")]
    fn gating_everything_panics() {
        let _ = gating_estimate(Design::C, 4);
    }
}
