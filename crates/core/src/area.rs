//! Area analysis of the network designs (Table 4 of the paper).
//!
//! Banks come from the Cacti-style model, routers from the analytic
//! buffer + crossbar model, links from width × length with length set by
//! the tile they span. The chip bounding box is computed geometrically:
//! meshes tile rows of banks (row height set by that row's bank size),
//! halos place a 4 mm × 4 mm core in the centre with spikes radiating
//! outward, so the die side is twice the core half plus the spike run —
//! which is what makes Design E's die mostly empty and Design F's
//! compact.

use nucanet_noc::TopologyKind;
use nucanet_timing::{BankModel, LinkAreaModel, RouterAreaModel, Technology};

use crate::config::Design;
use crate::scheme::Scheme;

/// Core die edge assumed by the paper for halo layouts (4 mm × 4 mm).
const CORE_SIDE_MM: f64 = 4.0;

/// Component areas of one design, in mm².
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaBreakdown {
    /// Total bank (SRAM) area.
    pub bank_mm2: f64,
    /// Total router area.
    pub router_mm2: f64,
    /// Total link area.
    pub link_mm2: f64,
}

impl AreaBreakdown {
    /// Total L2 area (banks + routers + links).
    pub fn l2_mm2(&self) -> f64 {
        self.bank_mm2 + self.router_mm2 + self.link_mm2
    }

    /// (bank, router, link) shares of the L2 area, each in [0, 1].
    pub fn shares(&self) -> (f64, f64, f64) {
        let t = self.l2_mm2();
        (self.bank_mm2 / t, self.router_mm2 / t, self.link_mm2 / t)
    }

    /// Fraction of the L2 area spent on the interconnect.
    pub fn network_share(&self) -> f64 {
        (self.router_mm2 + self.link_mm2) / self.l2_mm2()
    }
}

/// Full area result for one design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignArea {
    /// Which design.
    pub design: Design,
    /// Component areas.
    pub breakdown: AreaBreakdown,
    /// Minimal rectangular die containing the L2 (and, for halos, the
    /// central core), in mm².
    pub chip_mm2: f64,
}

/// Analyses one design's area (Table 4 row).
pub fn analyze(design: Design) -> DesignArea {
    let cfg = design.config(Scheme::MulticastFastLru);
    let tech = &cfg.tech;
    let layout = cfg.build_layout();
    let router_model = RouterAreaModel::new(
        tech,
        cfg.router.vcs_per_port as u32,
        cfg.router.vc_depth as u32,
    );
    let link_model = LinkAreaModel::new(tech);

    // Per-position bank models (one per row / spike slot).
    let bank_models: Vec<BankModel> = cfg.bank_kb.iter().map(|&kb| BankModel::new(kb)).collect();
    let positions = bank_models.len();

    let bank_mm2: f64 = layout
        .banks
        .iter()
        .map(|b| BankModel::new(b.kb).area_mm2())
        .sum();

    // Router area from actual port counts.
    let mut router_mm2 = 0.0;
    let mut router_area_of: Vec<f64> = Vec::with_capacity(layout.topo.len());
    for r in layout.topo.routers() {
        let a = router_model.area_mm2(r.in_ports(), r.out_ports());
        router_area_of.push(a);
        router_mm2 += a;
    }

    // Tile side per node: bank footprint + its router.
    let tile_side = |node: nucanet_noc::NodeId| -> f64 {
        let bank_area = layout
            .banks
            .iter()
            .find(|b| b.endpoint.node == node)
            .map(|b| BankModel::new(b.kb).area_mm2())
            .unwrap_or(0.0);
        (bank_area + router_area_of[node.0 as usize]).sqrt()
    };

    let link_mm2: f64 = layout
        .topo
        .links()
        .iter()
        .map(|l| link_model.area_mm2(tile_side(l.src).max(tile_side(l.dst)), false))
        .sum();

    let breakdown = AreaBreakdown {
        bank_mm2,
        router_mm2,
        link_mm2,
    };

    // Chip bounding box.
    let chip_mm2 = match layout.topo.kind() {
        TopologyKind::Mesh { cols, rows } | TopologyKind::SimplifiedMesh { cols, rows } => {
            // Row pitch: that row's bank + the row's largest router +
            // one bidirectional link strip.
            let strip = link_model.width_mm(true);
            let mut widths = Vec::with_capacity(rows as usize);
            let mut height = 0.0;
            #[allow(clippy::needless_range_loop)] // r also indexes the grid
            for r in 0..rows as usize {
                let mut max_router = 0.0f64;
                for c in 0..cols as usize {
                    let n = layout.topo.node_at(c as u16, r as u16);
                    max_router = max_router.max(router_area_of[n.0 as usize]);
                }
                let pitch = (bank_models[r].area_mm2() + max_router).sqrt() + strip;
                widths.push(pitch * cols as f64);
                height += pitch;
            }
            widths.iter().cloned().fold(0.0, f64::max) * height
        }
        TopologyKind::Halo { .. } | TopologyKind::MultiHubHalo { .. } => {
            // Spikes radiate from the central core; die side = core +
            // two spike runs. Multi-hub halos use the same per-hub
            // footprint estimate (Table 3 only covers single hubs).
            let spike_router = router_area_of.get(1).copied().unwrap_or(0.0);
            let run: f64 = (0..positions)
                .map(|p| (bank_models[p].area_mm2() + spike_router).sqrt())
                .sum();
            let side = CORE_SIDE_MM / 2.0 + run;
            (2.0 * side) * (2.0 * side)
        }
    };

    DesignArea {
        design,
        breakdown,
        chip_mm2,
    }
}

/// Area of the core die block (used in halo accounting).
pub fn core_area_mm2(_tech: &Technology) -> f64 {
    CORE_SIDE_MM * CORE_SIDE_MM
}

/// Unused die area of a design (chip minus L2 minus, for halos, the
/// core block). Meshes tile densely, so this is near zero for them.
pub fn unused_area_mm2(a: &DesignArea) -> f64 {
    let core = match a.design {
        Design::E | Design::F => CORE_SIDE_MM * CORE_SIDE_MM,
        _ => 0.0,
    };
    (a.chip_mm2 - a.breakdown.l2_mm2() - core).max(0.0)
}

/// Convenience: analysis of the Table 4 designs (A, B, E, F).
pub fn table4() -> Vec<DesignArea> {
    [Design::A, Design::B, Design::E, Design::F]
        .iter()
        .map(|&d| analyze(d))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_a_network_share_is_about_half() {
        // "Design A uses almost 52% of the cache area for the network."
        let a = analyze(Design::A);
        let share = a.breakdown.network_share();
        assert!((0.40..0.60).contains(&share), "network share {share}");
    }

    #[test]
    fn design_a_total_matches_paper_scale() {
        // Paper: 567.70 mm². Our models land in the same range.
        let a = analyze(Design::A);
        let l2 = a.breakdown.l2_mm2();
        assert!((480.0..620.0).contains(&l2), "L2 area {l2}");
    }

    #[test]
    fn simplified_mesh_is_smaller() {
        let a = analyze(Design::A);
        let b = analyze(Design::B);
        assert!(b.breakdown.l2_mm2() < a.breakdown.l2_mm2());
        assert!(
            b.breakdown.router_mm2 < a.breakdown.router_mm2 * 0.6,
            "3-port routers shrink"
        );
        assert!(b.breakdown.link_mm2 < a.breakdown.link_mm2, "fewer links");
        assert_eq!(a.breakdown.bank_mm2, b.breakdown.bank_mm2, "same banks");
    }

    #[test]
    fn halo_uniform_wastes_die() {
        // Design E: the L2 uses only about a quarter of the die.
        let e = analyze(Design::E);
        let occupancy = e.breakdown.l2_mm2() / e.chip_mm2;
        assert!(
            occupancy < 0.45,
            "Design E should waste most of its die, got {occupancy}"
        );
        assert!(unused_area_mm2(&e) > 500.0);
    }

    #[test]
    fn design_f_is_most_compact() {
        // Paper (abstract): Design F "uses only 23% of the
        // interconnection area" of Design A; its L2 is 312/568 ≈ 55%.
        let a = analyze(Design::A);
        let f = analyze(Design::F);
        let net_a = a.breakdown.router_mm2 + a.breakdown.link_mm2;
        let net_f = f.breakdown.router_mm2 + f.breakdown.link_mm2;
        let net_ratio = net_f / net_a;
        assert!(
            (0.10..0.40).contains(&net_ratio),
            "F/A interconnect ratio {net_ratio}"
        );
        let l2_ratio = f.breakdown.l2_mm2() / a.breakdown.l2_mm2();
        assert!((0.40..0.70).contains(&l2_ratio), "F/A L2 ratio {l2_ratio}");
        assert!(
            f.chip_mm2 < analyze(Design::E).chip_mm2 / 2.0,
            "F die much smaller than E"
        );
    }

    #[test]
    fn bank_share_grows_from_a_to_f() {
        // Table 4's bank column: 47.8% → 58.4% → 67.5% → 78.7%. Our
        // models put B and E nearly level, so allow a small slack
        // between adjacent designs while requiring the overall trend.
        let shares: Vec<f64> = table4().iter().map(|d| d.breakdown.shares().0).collect();
        for w in shares.windows(2) {
            assert!(
                w[1] > w[0] - 0.02,
                "bank share must grow along A,B,E,F: {shares:?}"
            );
        }
        assert!(shares[3] > shares[0] + 0.2, "F far above A: {shares:?}");
    }

    #[test]
    fn design_f_uses_few_routers() {
        let f = analyze(Design::F);
        let (_, router_share, _) = f.breakdown.shares();
        assert!(router_share < 0.12, "F router share {router_share}");
    }

    #[test]
    fn table4_has_four_rows() {
        assert_eq!(table4().len(), 4);
    }

    #[test]
    fn chip_at_least_l2() {
        for d in table4() {
            assert!(d.chip_mm2 >= d.breakdown.l2_mm2() * 0.95, "{:?}", d.design);
        }
    }
}
