//! System configurations and physical layout construction.
//!
//! [`Design`] enumerates Table 3's six configurations; every design is a
//! 16 MB L2 of 16 bank sets (columns/spikes) with 16 ways each, and all
//! run any [`Scheme`]. Link delays come from bank geometry via the
//! Cacti/wire models (Table 1's 1/2/2/3 cycles per tile).

use nucanet_noc::{
    Endpoint, FaultEvent, FaultSchedule, LinkId, RouterParams, RoutingSpec, Topology,
};
use nucanet_timing::{BankModel, BankTiming, Technology};

use crate::scheme::Scheme;

/// Topology family of a design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologyChoice {
    /// Full 2D mesh with XY routing (Design A).
    Mesh,
    /// Simplified mesh (first/last-row horizontal links only) with XYX
    /// routing (Designs B, C, D).
    SimplifiedMesh,
    /// Halo: hub + spikes, shortest-path routing (Designs E, F).
    Halo,
    /// Multi-hub halo: a ring of `hubs` hubs, each carrying an equal
    /// share of the bank sets as spikes; shortest-path routing. The
    /// giant-scale CMP direction of §7 — cores spread across hubs.
    MultiHubHalo {
        /// Number of hubs on the ring; must divide the column count.
        hubs: u16,
    },
}

/// A configuration the layout builder cannot realise, reported instead
/// of panicking so the CLI can surface it as a normal error message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// CMP mode needs at least one core.
    ZeroCores,
    /// More cores than the topology has attachment points.
    TooManyCores {
        /// Requested core count.
        cores: u16,
        /// Maximum the topology supports (its column count).
        limit: u16,
    },
    /// A multi-hub halo needs the hubs to share the bank sets evenly.
    HubsDontDivideColumns {
        /// Configured hub count.
        hubs: u16,
        /// Configured column count.
        columns: u16,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroCores => write!(f, "need at least one core"),
            ConfigError::TooManyCores { cores, limit } => write!(
                f,
                "{cores} cores exceed the {limit} attachment points of this topology"
            ),
            ConfigError::HubsDontDivideColumns { hubs, columns } => write!(
                f,
                "{hubs} hubs cannot evenly share {columns} bank sets"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Full system configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Human-readable name ("Design A", …).
    pub name: String,
    /// Topology family.
    pub topology: TopologyChoice,
    /// Bank capacity (KB) per position along a column/spike, MRU first.
    pub bank_kb: Vec<u32>,
    /// Ways per bank position (64 KB per way).
    pub bank_ways: Vec<u32>,
    /// Number of bank sets (columns or spikes).
    pub columns: u16,
    /// Replacement/communication scheme.
    pub scheme: Scheme,
    /// Router microarchitecture. Also carries the host-side
    /// [`RouterParams::sim_threads`] knob (cycle-kernel threads); any
    /// value simulates the same machine bit-identically, and the sweep
    /// runner budgets it against its own worker count.
    pub router: RouterParams,
    /// Off-chip memory: base latency in cycles (130 in Table 1).
    pub mem_base_cycles: u32,
    /// Off-chip memory: cycles per 8 bytes transferred (4 in Table 1).
    pub mem_per_8b_cycles: u32,
    /// Extra wire delay (each way) between the memory controller and
    /// the off-chip interface — 16 cycles for Design E, 9 for Design F,
    /// 0 for meshes where the controller sits at the die edge.
    pub mem_extra_wire: u32,
    /// Number of network interfaces the cache controller exposes. The
    /// paper's halo assumes "the cache controller can support multiple
    /// ports/interfaces to the networked cache" (§4); meshes use one.
    pub core_ports: u16,
    /// Number of cores sharing the cache (the paper's §7 CMP
    /// direction). 1 is the paper's single-core machine;
    /// [`crate::CacheSystem::new`] honours this, giving every core its
    /// own controller and network attachment, and the sweep engine runs
    /// the closed-loop CMP mode with per-core derived traces.
    pub cores: u16,
    /// Maximum concurrently outstanding transactions at the core.
    pub max_outstanding: usize,
    /// Maximum concurrent transactions per bank set (the paper's 2-entry
    /// spike queue).
    pub per_column_limit: u8,
    /// Technology node.
    pub tech: Technology,
    /// Cancel-and-retry deadline for an in-flight request, in cycles
    /// since admission. `None` (the default) waits forever and leaves
    /// stranded traffic to the network watchdog.
    pub request_timeout: Option<u64>,
    /// Retries granted to a timed-out request before it is dropped and
    /// counted as timed out. Only meaningful with `request_timeout`.
    pub request_retries: u8,
    /// Optional link-fault injection, applied when the system is built.
    pub faults: Option<FaultConfig>,
    /// Enable the network's runtime invariant checker (see
    /// `nucanet_noc::check`). Off by default: the checker audits every
    /// cycle and is meant for debugging and CI smoke runs, not for
    /// performance sweeps.
    pub check_invariants: bool,
}

/// Link-fault injection settings for a [`SystemConfig`].
///
/// The resulting [`FaultSchedule`] is a pure function of this struct and
/// the topology's link count, so runs are reproducible from the
/// configuration alone. Sweep points override [`FaultConfig::seed`] with
/// a value derived from their own RNG stream, keeping fault-injected
/// sweeps bit-identical across worker counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultConfig {
    /// Seed for the randomly placed faults.
    pub seed: u64,
    /// Number of seeded-random link-down events.
    pub random_faults: u32,
    /// Half-open cycle window the random faults fall in.
    pub window: (u64, u64),
    /// When set, every random fault heals this many cycles after it
    /// strikes; `None` makes random faults permanent.
    pub repair_after: Option<u64>,
    /// Explicit events (targeted tests), merged with the random ones.
    pub events: Vec<FaultEvent>,
}

impl FaultConfig {
    /// `count` random faults in `window`, healing after `repair_after`.
    pub fn random(count: u32, window: (u64, u64), repair_after: Option<u64>) -> Self {
        FaultConfig {
            seed: 0,
            random_faults: count,
            window,
            repair_after,
            events: Vec::new(),
        }
    }

    /// A single permanent failure of `link` at `cycle`.
    pub fn permanent(link: LinkId, cycle: u64) -> Self {
        FaultConfig {
            seed: 0,
            random_faults: 0,
            window: (0, 1),
            repair_after: None,
            events: vec![FaultEvent {
                cycle,
                link,
                up: false,
            }],
        }
    }

    /// Materialises the schedule for a topology with `link_count` links.
    pub fn schedule(&self, link_count: usize) -> FaultSchedule {
        let mut events = self.events.clone();
        if self.random_faults > 0 {
            let random = FaultSchedule::random(
                self.seed,
                link_count,
                self.random_faults,
                self.window,
                self.repair_after,
            );
            events.extend_from_slice(random.events());
        }
        FaultSchedule::new(events)
    }
}

/// Table 3's six network designs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Design {
    /// 16×16 mesh, uniform 64 KB banks.
    A,
    /// 16×16 simplified mesh, uniform 64 KB banks.
    B,
    /// 16×4 simplified mesh, uniform 256 KB banks.
    C,
    /// 16×5 simplified mesh, non-uniform banks (64/64/128/256/512 KB).
    D,
    /// 16-spike halo of length 16, uniform 64 KB banks.
    E,
    /// 16-spike halo of length 5, non-uniform banks.
    F,
}

/// All designs in Table 3 order.
pub const ALL_DESIGNS: [Design; 6] = [
    Design::A,
    Design::B,
    Design::C,
    Design::D,
    Design::E,
    Design::F,
];

const NON_UNIFORM_KB: [u32; 5] = [64, 64, 128, 256, 512];

impl Design {
    /// Builds the configuration of this design under `scheme`.
    pub fn config(self, scheme: Scheme) -> SystemConfig {
        let (topology, bank_kb): (TopologyChoice, Vec<u32>) = match self {
            Design::A => (TopologyChoice::Mesh, vec![64; 16]),
            Design::B => (TopologyChoice::SimplifiedMesh, vec![64; 16]),
            Design::C => (TopologyChoice::SimplifiedMesh, vec![256; 4]),
            Design::D => (TopologyChoice::SimplifiedMesh, NON_UNIFORM_KB.to_vec()),
            Design::E => (TopologyChoice::Halo, vec![64; 16]),
            Design::F => (TopologyChoice::Halo, NON_UNIFORM_KB.to_vec()),
        };
        let mem_extra_wire = match self {
            Design::E => 16,
            Design::F => 9,
            _ => 0,
        };
        let core_ports = if matches!(topology, TopologyChoice::Halo) {
            4
        } else {
            1
        };
        SystemConfig {
            name: format!("Design {self:?}"),
            topology,
            bank_ways: bank_kb.iter().map(|kb| kb / 64).collect(),
            bank_kb,
            columns: 16,
            scheme,
            router: RouterParams::hpca07(),
            mem_base_cycles: 130,
            mem_per_8b_cycles: 4,
            mem_extra_wire,
            core_ports,
            cores: 1,
            max_outstanding: 4,
            per_column_limit: 2,
            tech: Technology::hpca07_65nm(),
            request_timeout: None,
            request_retries: 0,
            faults: None,
            check_invariants: false,
        }
    }

    /// Table 3's "Interconnection Network" column.
    pub fn interconnect_description(self) -> &'static str {
        match self {
            Design::A => "16 x 16 mesh",
            Design::B => "16 x 16 simplified mesh",
            Design::C => "16 x 4 simplified mesh",
            Design::D => "16 x 5 simplified mesh",
            Design::E => "16-spike halo (length of spike=16)",
            Design::F => "16-spike halo (length of spike=5)",
        }
    }

    /// Table 3's "Bank Size" column.
    pub fn bank_description(self) -> &'static str {
        match self {
            Design::A | Design::B | Design::E => "uniform (64KB)",
            Design::C => "uniform (256KB)",
            Design::D | Design::F => "non-uniform",
        }
    }
}

/// Where one bank lives in the built system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankPlace {
    /// Network attachment.
    pub endpoint: Endpoint,
    /// Bank set (column/spike) this bank belongs to.
    pub column: u16,
    /// Position within the set, 0 = MRU (closest to the core).
    pub position: u8,
    /// Ways held by this bank.
    pub ways: u32,
    /// Capacity in KB.
    pub kb: u32,
    /// Access latencies (Table 1).
    pub timing: BankTiming,
}

/// The physical realisation of a [`SystemConfig`].
#[derive(Debug, Clone)]
pub struct SystemLayout {
    /// Network topology with all endpoints attached.
    pub topo: Topology,
    /// Routing algorithm to run on it.
    pub routing: RoutingSpec,
    /// The core / cache-controller endpoint (first interface).
    pub core: Endpoint,
    /// All cache-controller interfaces (≥ 1; column `c` replies to
    /// interface `c % core_ports.len()`).
    pub core_ports: Vec<Endpoint>,
    /// The memory-controller endpoint.
    pub memory: Endpoint,
    /// All banks, indexed by bank id.
    pub banks: Vec<BankPlace>,
    /// `by_column[c]` = bank ids of column `c` in position order.
    pub by_column: Vec<Vec<usize>>,
}

impl SystemConfig {
    /// Builds a layout with `n_cores` independent cache-controller
    /// attachment points — the paper's §7 CMP direction. Returns the
    /// layout plus each core's interface list.
    ///
    /// Meshes spread the cores across the top row; halos give each core
    /// its own hub slot (memory moves to the slot after them); multi-hub
    /// halos deal the cores round-robin across the hub ring.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when `n_cores` is zero or exceeds the
    /// column count, or when a multi-hub geometry is inconsistent.
    pub fn build_cmp_layout(
        &self,
        n_cores: u16,
    ) -> Result<(SystemLayout, Vec<Vec<Endpoint>>), ConfigError> {
        if n_cores == 0 {
            return Err(ConfigError::ZeroCores);
        }
        if n_cores > self.columns {
            return Err(ConfigError::TooManyCores {
                cores: n_cores,
                limit: self.columns,
            });
        }
        self.check_geometry()?;
        if n_cores == 1 {
            let layout = self.build_layout();
            let ifaces = vec![layout.core_ports.clone()];
            return Ok((layout, ifaces));
        }
        match self.topology {
            TopologyChoice::Mesh | TopologyChoice::SimplifiedMesh => {
                let mut layout = self.build_layout();
                // Core 0 keeps the single-core position; additional
                // cores spread over the top row.
                let mut ifaces = vec![vec![layout.core]];
                for i in 1..n_cores {
                    let col = ((2 * i as u32 + 1) * self.columns as u32 / (2 * n_cores as u32))
                        .min(self.columns as u32 - 1) as u16;
                    let node = layout.topo.node_at(col, 0);
                    let slot = layout.topo.add_local_slot(node);
                    ifaces.push(vec![Endpoint { node, slot }]);
                }
                layout.core_ports = ifaces.iter().flatten().copied().collect();
                Ok((layout, ifaces))
            }
            TopologyChoice::Halo | TopologyChoice::MultiHubHalo { .. } => {
                // One hub slot per core; reuse the core_ports slots and
                // grow them if there are more cores than ports.
                let mut cfg = self.clone();
                cfg.core_ports = cfg.core_ports.max(n_cores);
                let layout = cfg.build_layout();
                let ifaces = (0..n_cores)
                    .map(|i| vec![layout.core_ports[i as usize]])
                    .collect();
                Ok((layout, ifaces))
            }
        }
    }

    /// Geometry checks that are configuration errors rather than bugs
    /// (a multi-hub halo whose hubs cannot share the columns evenly).
    fn check_geometry(&self) -> Result<(), ConfigError> {
        if let TopologyChoice::MultiHubHalo { hubs } = self.topology {
            if hubs == 0 || !(self.columns).is_multiple_of(hubs) {
                return Err(ConfigError::HubsDontDivideColumns {
                    hubs,
                    columns: self.columns,
                });
            }
        }
        Ok(())
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics when the geometry is inconsistent (no banks, mismatched
    /// way list, zero columns).
    pub fn validate(&self) {
        assert!(
            !self.bank_kb.is_empty(),
            "need at least one bank per column"
        );
        assert_eq!(
            self.bank_kb.len(),
            self.bank_ways.len(),
            "bank_kb/bank_ways mismatch"
        );
        assert!(self.columns >= 1, "need at least one column");
        for (kb, w) in self.bank_kb.iter().zip(&self.bank_ways) {
            assert_eq!(kb / 64, *w, "ways must be capacity / 64KB");
            assert!(*w >= 1, "bank must hold at least one way");
        }
        assert!(
            self.core_ports >= 1,
            "the controller needs at least one interface"
        );
        assert!(self.cores >= 1, "need at least one core");
        self.router.validate();
    }

    /// Total associativity of one bank set.
    pub fn total_ways(&self) -> u32 {
        self.bank_ways.iter().sum()
    }

    /// Total L2 capacity in bytes (ways × columns × 64 KB).
    pub fn capacity_bytes(&self) -> u64 {
        self.total_ways() as u64 * self.columns as u64 * 64 * 1024
    }

    /// Off-chip service time for one block (fetch or writeback):
    /// base + per-8B transfer + the round-trip controller wire.
    pub fn mem_service_cycles(&self) -> u32 {
        self.mem_base_cycles + self.mem_per_8b_cycles * (64 / 8) + 2 * self.mem_extra_wire
    }

    /// Builds the physical layout: topology, endpoint placement, and
    /// geometry-derived link delays.
    pub fn build_layout(&self) -> SystemLayout {
        self.validate();
        let positions = self.bank_kb.len() as u16;
        let models: Vec<BankModel> = self.bank_kb.iter().map(|&kb| BankModel::new(kb)).collect();
        let wire_cycles: Vec<u32> = models
            .iter()
            .map(|m| m.tile_wire_cycles(&self.tech).max(1))
            .collect();
        let timings: Vec<BankTiming> = models.iter().map(|m| m.timing_at(&self.tech)).collect();

        match self.topology {
            TopologyChoice::Mesh | TopologyChoice::SimplifiedMesh => {
                // Columns are bank sets; row r holds position r. The
                // horizontal pitch is set by the widest bank of the
                // column (the paper uses the 512 KB delay for Design D).
                let h_delay = *wire_cycles.iter().max().expect("at least one bank");
                let col_gaps = vec![h_delay; self.columns as usize - 1];
                // Vertical gap r→r+1 spans the larger adjacent tile.
                let row_gaps: Vec<u32> = (0..positions - 1)
                    .map(|r| wire_cycles[r as usize].max(wire_cycles[r as usize + 1]))
                    .collect();
                let mut topo = if self.topology == TopologyChoice::Mesh {
                    Topology::mesh(self.columns, positions, &col_gaps, &row_gaps)
                } else {
                    Topology::simplified_mesh(self.columns, positions, &col_gaps, &row_gaps)
                };
                // Core at the centre of the top row, memory at the
                // centre of the bottom row (§5).
                let core_node = topo.node_at(self.columns / 2 - 1, 0);
                let mem_node = topo.node_at(self.columns / 2, positions - 1);
                let core_slot = topo.add_local_slot(core_node);
                let mem_slot = topo.add_local_slot(mem_node);
                let mut banks = Vec::new();
                let mut by_column = vec![Vec::new(); self.columns as usize];
                for c in 0..self.columns {
                    for p in 0..positions {
                        by_column[c as usize].push(banks.len());
                        banks.push(BankPlace {
                            endpoint: Endpoint::at(topo.node_at(c, p)),
                            column: c,
                            position: p as u8,
                            ways: self.bank_ways[p as usize],
                            kb: self.bank_kb[p as usize],
                            timing: timings[p as usize],
                        });
                    }
                }
                let core = Endpoint {
                    node: core_node,
                    slot: core_slot,
                };
                SystemLayout {
                    routing: if self.topology == TopologyChoice::Mesh {
                        RoutingSpec::Xy
                    } else {
                        RoutingSpec::Xyx
                    },
                    topo,
                    core,
                    core_ports: vec![core],
                    memory: Endpoint {
                        node: mem_node,
                        slot: mem_slot,
                    },
                    banks,
                    by_column,
                }
            }
            TopologyChoice::Halo => {
                // Spike link j spans bank j's tile. The hub exposes one
                // local slot per controller interface plus the memory
                // controller's slot.
                let topo =
                    Topology::halo(self.columns, positions, &wire_cycles, self.core_ports + 1);
                let hub = nucanet_noc::NodeId(0);
                let mut banks = Vec::new();
                let mut by_column = vec![Vec::new(); self.columns as usize];
                for s in 0..self.columns {
                    for p in 0..positions {
                        by_column[s as usize].push(banks.len());
                        banks.push(BankPlace {
                            endpoint: Endpoint::at(topo.spike_node(s, p)),
                            column: s,
                            position: p as u8,
                            ways: self.bank_ways[p as usize],
                            kb: self.bank_kb[p as usize],
                            timing: timings[p as usize],
                        });
                    }
                }
                SystemLayout {
                    routing: RoutingSpec::ShortestPath,
                    topo,
                    core: Endpoint { node: hub, slot: 0 },
                    core_ports: (0..self.core_ports)
                        .map(|s| Endpoint { node: hub, slot: s })
                        .collect(),
                    memory: Endpoint {
                        node: hub,
                        slot: self.core_ports,
                    },
                    banks,
                    by_column,
                }
            }
            TopologyChoice::MultiHubHalo { hubs } => {
                // Hubs share the bank sets evenly; controller interface
                // `i` sits on hub `i % hubs` so CMP cores spread over
                // the ring. The ring link spans the widest tile, like a
                // mesh's horizontal pitch. Memory stays on hub 0.
                self.check_geometry()
                    .unwrap_or_else(|e| panic!("invalid multi-hub geometry: {e}"));
                let spikes_per_hub = self.columns / hubs;
                let ring_delay = *wire_cycles.iter().max().expect("at least one bank");
                let per_hub = self.core_ports.div_ceil(hubs);
                // Every hub carries the same slot count; the last slot
                // on hub 0 is the memory controller's.
                let slots_per_hub = per_hub + 1;
                let topo = Topology::multi_hub_halo(
                    hubs,
                    spikes_per_hub,
                    positions,
                    &wire_cycles,
                    ring_delay,
                    slots_per_hub,
                );
                let mut banks = Vec::new();
                let mut by_column = vec![Vec::new(); self.columns as usize];
                for h in 0..hubs {
                    for s in 0..spikes_per_hub {
                        let c = (h * spikes_per_hub + s) as usize;
                        for p in 0..positions {
                            by_column[c].push(banks.len());
                            banks.push(BankPlace {
                                endpoint: Endpoint::at(topo.hub_spike_node(h, s, p)),
                                column: c as u16,
                                position: p as u8,
                                ways: self.bank_ways[p as usize],
                                kb: self.bank_kb[p as usize],
                                timing: timings[p as usize],
                            });
                        }
                    }
                }
                let core_ports: Vec<Endpoint> = (0..self.core_ports)
                    .map(|i| Endpoint {
                        node: topo.hub_node(i % hubs),
                        slot: i / hubs,
                    })
                    .collect();
                SystemLayout {
                    routing: RoutingSpec::ShortestPath,
                    core: core_ports[0],
                    memory: Endpoint {
                        node: topo.hub_node(0),
                        slot: slots_per_hub - 1,
                    },
                    topo,
                    core_ports,
                    banks,
                    by_column,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_designs_are_16mb_16way() {
        for d in ALL_DESIGNS {
            let cfg = d.config(Scheme::MulticastFastLru);
            cfg.validate();
            assert_eq!(cfg.total_ways(), 16, "{d:?}");
            assert_eq!(cfg.capacity_bytes(), 16 << 20, "{d:?}");
        }
    }

    #[test]
    fn design_a_layout_shape() {
        let l = Design::A.config(Scheme::UnicastLru).build_layout();
        assert_eq!(l.banks.len(), 256);
        assert_eq!(l.by_column.len(), 16);
        assert_eq!(l.by_column[0].len(), 16);
        assert_eq!(l.routing, RoutingSpec::Xy);
        // Core at (7,0), memory at (8,15).
        assert_eq!(l.core.node, l.topo.node_at(7, 0));
        assert_eq!(l.memory.node, l.topo.node_at(8, 15));
        assert_eq!(l.core.slot, 1, "core shares a router with a bank");
    }

    #[test]
    fn design_b_uses_xyx_on_simplified_mesh() {
        let l = Design::B.config(Scheme::MulticastFastLru).build_layout();
        assert_eq!(l.routing, RoutingSpec::Xyx);
        assert!(matches!(
            l.topo.kind(),
            nucanet_noc::TopologyKind::SimplifiedMesh { cols: 16, rows: 16 }
        ));
    }

    #[test]
    fn design_c_has_four_large_banks_per_column() {
        let cfg = Design::C.config(Scheme::MulticastFastLru);
        assert_eq!(cfg.bank_kb, vec![256; 4]);
        assert_eq!(cfg.bank_ways, vec![4; 4]);
        let l = cfg.build_layout();
        assert_eq!(l.banks.len(), 64);
        // 256 KB banks: Table 1 says 4-cycle tag match, 2-cycle wire.
        assert_eq!(l.banks[0].timing.tag_match, 4);
    }

    #[test]
    fn design_d_non_uniform_delays() {
        let cfg = Design::D.config(Scheme::MulticastFastLru);
        let l = cfg.build_layout();
        assert_eq!(cfg.bank_kb, vec![64, 64, 128, 256, 512]);
        // Horizontal pitch is the widest bank's (512 KB → 3 cycles), as
        // in the paper.
        let n00 = l.topo.node_at(0, 0);
        let r = l.topo.router(n00);
        let p = r.port_by_label(nucanet_noc::PortLabel::XPlus).unwrap();
        let link = l.topo.link(r.ports[p.0 as usize].out_link.unwrap());
        assert_eq!(link.delay, 3);
        // First vertical gap spans two 64 KB tiles → 1 cycle.
        let pv = r.port_by_label(nucanet_noc::PortLabel::YPlus).unwrap();
        let lv = l.topo.link(r.ports[pv.0 as usize].out_link.unwrap());
        assert_eq!(lv.delay, 1);
    }

    #[test]
    fn design_e_halo_layout() {
        let l = Design::E.config(Scheme::MulticastFastLru).build_layout();
        assert_eq!(l.routing, RoutingSpec::ShortestPath);
        assert_eq!(l.banks.len(), 256);
        assert_eq!(
            l.core.node, l.memory.node,
            "core and memory both at the hub"
        );
        assert_ne!(l.core.slot, l.memory.slot);
        assert_eq!(
            l.core_ports.len(),
            4,
            "halo controller exposes four interfaces"
        );
        assert!(l.core_ports.iter().all(|e| e.slot != l.memory.slot));
    }

    #[test]
    fn design_f_memory_penalty() {
        let e = Design::E.config(Scheme::MulticastFastLru);
        let f = Design::F.config(Scheme::MulticastFastLru);
        let a = Design::A.config(Scheme::MulticastFastLru);
        assert_eq!(e.mem_extra_wire, 16);
        assert_eq!(f.mem_extra_wire, 9);
        assert_eq!(a.mem_extra_wire, 0);
        // 130 + 32 transfer + round-trip wire.
        assert_eq!(a.mem_service_cycles(), 162);
        assert_eq!(f.mem_service_cycles(), 162 + 18);
    }

    #[test]
    fn table3_descriptions() {
        assert_eq!(Design::A.interconnect_description(), "16 x 16 mesh");
        assert_eq!(Design::F.bank_description(), "non-uniform");
    }

    #[test]
    fn layouts_route_core_to_every_bank() {
        for d in ALL_DESIGNS {
            let l = d.config(Scheme::MulticastFastLru).build_layout();
            let table = l.routing.build(&l.topo).unwrap();
            for b in &l.banks {
                assert!(
                    table.is_routable(l.core.node, b.endpoint.node),
                    "{d:?} core→bank"
                );
                assert!(
                    table.is_routable(b.endpoint.node, l.core.node),
                    "{d:?} bank→core"
                );
            }
            assert!(
                table.is_routable(l.core.node, l.memory.node),
                "{d:?} core→mem"
            );
            assert!(
                table.is_routable(l.memory.node, l.core.node),
                "{d:?} mem→core"
            );
            // Memory must reach every MRU bank (fills) and be reachable
            // from every LRU bank (writebacks).
            for c in 0..16usize {
                let mru = &l.banks[l.by_column[c][0]];
                let lru = &l.banks[*l.by_column[c].last().unwrap()];
                assert!(
                    table.is_routable(l.memory.node, mru.endpoint.node),
                    "{d:?} mem→MRU"
                );
                assert!(
                    table.is_routable(lru.endpoint.node, l.memory.node),
                    "{d:?} LRU→mem"
                );
            }
        }
    }

    #[test]
    fn fault_config_schedule_is_pure() {
        let mut fc = FaultConfig::random(3, (10, 500), Some(40));
        fc.seed = 0xF00D;
        fc.events.push(FaultEvent {
            cycle: 7,
            link: LinkId(2),
            up: false,
        });
        let a = fc.schedule(24);
        let b = fc.schedule(24);
        assert_eq!(a, b);
        assert_eq!(a.len(), 7, "explicit event + 3 faults + 3 repairs");
        assert_eq!(a.events()[0].cycle, 7, "explicit event merged in order");
        let mut other = fc.clone();
        other.seed = 0xBEEF;
        assert_ne!(a, other.schedule(24));
    }

    #[test]
    fn fault_config_permanent_is_single_event() {
        let s = FaultConfig::permanent(LinkId(5), 100).schedule(24);
        assert_eq!(s.len(), 1);
        assert!(!s.events()[0].up);
    }

    #[test]
    #[should_panic(expected = "ways must be capacity")]
    fn inconsistent_ways_panic() {
        let mut cfg = Design::A.config(Scheme::UnicastLru);
        cfg.bank_ways[3] = 2;
        cfg.validate();
    }
}
