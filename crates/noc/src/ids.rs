//! Strongly typed identifiers for network entities.

use std::fmt;

/// Identifies one router in a [`crate::Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

/// Identifies one unidirectional link in a [`crate::Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LinkId(pub u32);

/// Index of a port within one router's port array.
///
/// Wide enough (`u16`) for a multi-hub halo hub carrying hundreds of
/// spike ports; topology constructors reject routers that would
/// overflow it instead of silently aliasing ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PortId(pub u16);

/// A network attachment point: a local slot of a router.
///
/// Routers may expose several local slots (e.g. the mesh router the core
/// is attached to carries both a cache bank and the cache controller).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Endpoint {
    /// The router the endpoint hangs off.
    pub node: NodeId,
    /// Which of the router's local slots (0-based).
    pub slot: u16,
}

impl Endpoint {
    /// Endpoint at `node`'s first (usually only) local slot.
    pub fn at(node: NodeId) -> Self {
        Endpoint { node, slot: 0 }
    }
}

/// Grid coordinate of a mesh router. Row 0 is the top row (where the
/// core attaches in the paper's layouts); column 0 is the left edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Coord {
    /// Column (x), 0-based from the left.
    pub col: u16,
    /// Row (y), 0-based from the top.
    pub row: u16,
}

impl Coord {
    /// Manhattan distance between two coordinates.
    pub fn manhattan(self, other: Coord) -> u32 {
        let dc = (self.col as i32 - other.col as i32).unsigned_abs();
        let dr = (self.row as i32 - other.row as i32).unsigned_abs();
        dc + dr
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.node, self.slot)
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.col, self.row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_distance() {
        let a = Coord { col: 1, row: 2 };
        let b = Coord { col: 4, row: 0 };
        assert_eq!(a.manhattan(b), 5);
        assert_eq!(b.manhattan(a), 5);
        assert_eq!(a.manhattan(a), 0);
    }

    #[test]
    fn endpoint_at_uses_slot_zero() {
        let e = Endpoint::at(NodeId(7));
        assert_eq!(
            e,
            Endpoint {
                node: NodeId(7),
                slot: 0
            }
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(
            Endpoint {
                node: NodeId(3),
                slot: 1
            }
            .to_string(),
            "n3.1"
        );
        assert_eq!(Coord { col: 2, row: 5 }.to_string(), "(2, 5)");
    }

    #[test]
    fn ids_are_ordered() {
        assert!(NodeId(1) < NodeId(2));
        assert!(LinkId(0) < LinkId(9));
        assert!(PortId(1) < PortId(3));
    }
}
