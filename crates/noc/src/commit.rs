//! The sharded commit phase of the two-phase cycle kernel.
//!
//! After the compute phase has recorded per-router [`RouterIntent`]s,
//! the commit phase applies them. Since the SoA refactor every router's
//! microarchitectural state is a contiguous range of the
//! [`NetSlabs`] arrays, so a *run* of committable routers can be
//! applied by several workers at once: worker `w` owns worklist
//! positions `w, w + T, w + 2T, …` of the run and writes **only its own
//! routers' slab ranges** through a [`SlabPtrs`] view.
//!
//! Everything a commit does that is *not* own-router slab state — flit
//! handoff onto a link, credit return upstream, local ejection,
//! multicast replica bookkeeping, replica-reservation release — is not
//! applied by the worker. It is recorded as an [`Effect`] in the
//! worker's private mailbox, tagged with the run position that produced
//! it, and the caller merges all mailboxes *in worklist order* after
//! the workers finish. The merge performs the global writes (event
//! wheel, delivered queue, statistics, invariant-checker hooks, event
//! log, the `reserved` bitmap) in exactly the sequence the serial
//! kernel would have produced, which is what keeps the sharded commit
//! bit-identical for every thread count.
//!
//! The same `apply_*` functions also serve the serial fallback (one
//! mailbox, merged after each router), so there is a single
//! implementation of "apply a winner" for the serial kernel, the serial
//! commit, and the sharded commit to drift apart from.

use std::collections::VecDeque;

use crate::ids::{LinkId, NodeId};
use crate::packet::{FlitQueue, FlitRef, PacketId};
use crate::params::RouterParams;
use crate::router::{NetSlabs, OutRoute, RouterIntent, Split};
use crate::strategy::MulticastStrategy;
use crate::topology::Topology;

/// One cross-router (or global) side effect recorded by a commit
/// worker, to be applied by the caller during the deterministic merge.
///
/// Workers never drop the last `Arc` of a packet: every flit popped
/// from a slab buffer moves into an effect (even a non-tail ejection
/// carries its flit), so the final drop — and any access to the `P`
/// payload — happens on the merging thread.
#[derive(Debug)]
pub(crate) enum Effect<P> {
    /// A flit left on `link` toward downstream VC `vc`, arriving at
    /// cycle `when`. Merge bumps the link statistics and wire
    /// occupancy, fires the checker's link-send hook for heads, and
    /// schedules the arrival.
    Arrive {
        /// Arrival cycle at the downstream router.
        when: u64,
        /// The link traversed.
        link: LinkId,
        /// Downstream VC index.
        vc: u8,
        /// The flit on the wire.
        flit: FlitRef<P>,
    },
    /// A credit returns to the upstream side of `link`, VC `vc`, at
    /// cycle `when`.
    Credit {
        /// Cycle the upstream router sees the credit.
        when: u64,
        /// The link whose upstream output regains a buffer slot.
        link: LinkId,
        /// VC index within the link.
        vc: u8,
    },
    /// A flit was handed to the local sink. Merge bumps ejection
    /// statistics, fires the checker hook, and — when the flit is a
    /// tail — records the delivery.
    Eject {
        /// The ejected flit (tail-ness and endpoint derive from it).
        flit: FlitRef<P>,
    },
    /// A replica flit copy was created — written into a reserved
    /// replica VC (hybrid/tree splits) or peeled straight off to the
    /// local sink (path passing delivery). Invariant-checker
    /// bookkeeping only; the copy itself is own-router slab state (or a
    /// paired [`Effect::Eject`]) and already happened.
    ReplicaCopy {
        /// The packet whose flit was copied.
        packet: PacketId,
    },
    /// A replica VC's tail left: the remote reservation on the VC's
    /// input link must be released so the upstream router can allocate
    /// it again.
    Release {
        /// Router whose input port held the replica VC.
        node: NodeId,
        /// The input port.
        port: u8,
        /// The VC index.
        vc: u8,
    },
}

/// A commit worker's effect queue: `(run position, effect)` in
/// generation order. Reused across cycles, so it stops allocating once
/// warm.
pub(crate) type Mailbox<P> = VecDeque<(u32, Effect<P>)>;

/// Field-level raw-pointer view over [`NetSlabs`], handed to commit
/// workers. A `&mut NetSlabs` cannot be shared across workers without
/// aliasing; disjoint raw-pointer writes can.
///
/// # Safety contract
///
/// Every `unsafe` accessor takes a slot index the caller derived from a
/// router id it *owns* for the duration of the parallel region: workers
/// own disjoint routers, and each router's slots form a contiguous,
/// non-overlapping range (see [`NetSlabs`]). The underlying `NetSlabs`
/// is exclusively borrowed for as long as any view exists.
pub(crate) struct SlabPtrs<P> {
    port_base: *const u32,
    vcs: usize,
    buf: *mut FlitQueue<P>,
    occ: *mut u32,
    buffered: *mut u32,
    route: *mut Option<OutRoute>,
    split: *mut Option<Split>,
    replica_role: *mut bool,
    out_owner: *mut bool,
    out_credits: *mut u8,
    is_local: *const bool,
    rr_in: *mut u8,
    out_rr: *mut u8,
}

impl<P> SlabPtrs<P> {
    /// Captures a view. The `&mut` borrow proves exclusive access at
    /// creation; the caller keeps it exclusive for the view's lifetime.
    pub fn new(s: &mut NetSlabs<P>) -> Self {
        SlabPtrs {
            port_base: s.port_base.as_ptr(),
            vcs: s.vcs,
            buf: s.buf.as_mut_ptr(),
            occ: s.occ.as_mut_ptr(),
            buffered: s.buffered.as_mut_ptr(),
            route: s.route.as_mut_ptr(),
            split: s.split.as_mut_ptr(),
            replica_role: s.replica_role.as_mut_ptr(),
            out_owner: s.out_owner.as_mut_ptr(),
            out_credits: s.out_credits.as_mut_ptr(),
            is_local: s.is_local.as_ptr(),
            rr_in: s.rr_in.as_mut_ptr(),
            out_rr: s.out_rr.as_mut_ptr(),
        }
    }

    /// Global port slot of `(r, p)`; see [`NetSlabs::port_slot`].
    ///
    /// # Safety
    ///
    /// `r` must be a valid router id (and `p` one of its ports).
    #[inline]
    unsafe fn port_slot(&self, r: usize, p: usize) -> usize {
        unsafe { *self.port_base.add(r) as usize + p }
    }

    /// Global VC slot of `(r, p, v)`; see [`NetSlabs::vc_slot`].
    ///
    /// # Safety
    ///
    /// As [`SlabPtrs::port_slot`], with `v < vcs`.
    #[inline]
    unsafe fn vc_slot(&self, r: usize, p: usize, v: usize) -> usize {
        unsafe { self.port_slot(r, p) * self.vcs + v }
    }
}

/// Applies one committed intent: exactly the own-router slab writes, in
/// the same order, that the serial kernel would have performed at this
/// worklist turn, with every global write recorded into `mb` for the
/// ordered merge. Mirrors the serial route-install + switch-traversal
/// sequence, decision for decision.
///
/// # Safety
///
/// The caller must own router `idx` (no other thread reads or writes
/// any of its slab slots while this runs), and `s` must view a live,
/// exclusively borrowed [`NetSlabs`] for the topology `topo`.
#[allow(clippy::too_many_arguments)] // the serial kernel's turn context, spelled out
pub(crate) unsafe fn apply_intent<P>(
    s: &SlabPtrs<P>,
    topo: &Topology,
    params: &RouterParams,
    cycle: u64,
    idx: u32,
    intent: &RouterIntent,
    pos: u32,
    mb: &mut Mailbox<P>,
) {
    let node = NodeId(idx);
    let ri = idx as usize;
    // SAFETY (all blocks below): slots derive from router `ri`, which
    // the caller owns; see the function-level contract.
    unsafe {
        for rt in &intent.routes {
            let slot = s.vc_slot(ri, rt.port as usize, rt.vc as usize);
            *s.route.add(slot) = Some(rt.route);
            if !rt.route.eject {
                let oslot = s.vc_slot(ri, rt.route.port as usize, rt.route.vc as usize);
                *s.out_owner.add(oslot) = true;
            }
        }
        for &(o, rr) in &intent.rr_out {
            *s.out_rr.add(s.port_slot(ri, o as usize)) = rr;
        }
        for &(p, v) in &intent.winners {
            apply_winner(s, topo, params, cycle, node, p as usize, v as usize, pos, mb);
        }
    }
}

/// Moves one switch-allocation winner's flit out of input VC `(p, v)`
/// of `node`: the slab half of the serial kernel's traversal. Global
/// consequences (link departure, credit return, ejection, replica copy
/// accounting, reservation release) go into `mb` instead of being
/// applied, preserving their exact serial order for the merge.
///
/// # Safety
///
/// As [`apply_intent`]: the caller owns `node` and `s` views an
/// exclusively borrowed [`NetSlabs`].
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn apply_winner<P>(
    s: &SlabPtrs<P>,
    topo: &Topology,
    params: &RouterParams,
    cycle: u64,
    node: NodeId,
    p: usize,
    v: usize,
    pos: u32,
    mb: &mut Mailbox<P>,
) {
    let ri = node.0 as usize;
    // SAFETY: every slot below belongs to router `ri` (the replica VC
    // of a multicast split is an input VC of the *same* router); the
    // caller owns the router.
    unsafe {
        let ps = s.port_slot(ri, p);
        let slot = ps * s.vcs + v;
        let route = (*s.route.add(slot)).expect("winner must be routed");
        let split = *s.split.add(slot);
        let flit = (*s.buf.add(slot))
            .pop_front()
            .expect("winner must have a flit");
        *s.occ.add(slot) -= 1;
        *s.buffered.add(ri) -= 1;
        let is_tail = flit.is_tail();
        let via_link = !*s.is_local.add(ps) && !*s.replica_role.add(slot);

        // Replica copy (multicast split): the clone's destination range
        // depends on the strategy. Hybrid clones eject here — they keep
        // `dest_idx` and close their range at `resume` (= dest_idx + 1)
        // — while the primary resumes at `resume`. Tree is the mirror
        // image: the primary keeps the near group `[dest_idx, resume)`
        // and the clone carries the far group `[resume, dest_hi)`.
        if let Some(sp) = split {
            let rslot = s.vc_slot(ri, sp.port as usize, sp.vc as usize);
            let mut copy = flit.clone();
            match params.strategy {
                MulticastStrategy::Tree => copy.dest_idx = sp.resume,
                _ => copy.dest_hi = sp.resume,
            }
            (*s.buf.add(rslot)).push_back(copy);
            *s.occ.add(rslot) += 1;
            *s.buffered.add(ri) += 1;
            mb.push_back((pos, Effect::ReplicaCopy { packet: flit.pkt.id }));
        }

        let mut out = flit;
        if let Some(sp) = split {
            match params.strategy {
                MulticastStrategy::Tree => out.dest_hi = sp.resume,
                // The continuing copy heads to the next endpoint.
                _ => out.dest_idx = sp.resume,
            }
        }

        if route.eject {
            mb.push_back((pos, Effect::Eject { flit: out }));
        } else {
            // Passing delivery: the worm's current target lives on
            // this router but further endpoints remain — peel a copy
            // off to the local sink and forward the worm re-aimed at
            // the next endpoint. No replication storage: the copy goes
            // straight from the crossbar to ejection. This is path
            // multicast's only mechanism, and tree multicast's fallback
            // when an ejection router has no free replica VC to fork
            // into (hybrid never routes onward past a local target
            // without splitting first).
            if !matches!(params.strategy, MulticastStrategy::Hybrid)
                && out.target().node == node
                && out.has_more_targets()
            {
                mb.push_back((pos, Effect::ReplicaCopy { packet: out.pkt.id }));
                mb.push_back((pos, Effect::Eject { flit: out.clone() }));
                out.dest_idx += 1;
            }
            let link = topo.router(node).ports[route.port as usize]
                .out_link
                .expect("net route must have a link");
            let oslot = s.vc_slot(ri, route.port as usize, route.vc as usize);
            let credits = &mut *s.out_credits.add(oslot);
            assert!(*credits > 0, "sent without credit");
            *credits -= 1;
            let delay = topo.link(link).delay + (params.router_stages - 1);
            let when = cycle + u64::from(delay.max(1));
            mb.push_back((
                pos,
                Effect::Arrive {
                    when,
                    link,
                    vc: route.vc,
                    flit: out,
                },
            ));
        }

        // Credit return for flits that arrived over our input link.
        if via_link {
            if let Some(in_link) = topo.router(node).ports[p].in_link {
                mb.push_back((
                    pos,
                    Effect::Credit {
                        when: cycle + u64::from(params.credit_delay),
                        link: in_link,
                        vc: v as u8,
                    },
                ));
            }
        }

        if is_tail {
            let was_replica = *s.replica_role.add(slot);
            if !route.eject {
                let oslot = s.vc_slot(ri, route.port as usize, route.vc as usize);
                *s.out_owner.add(oslot) = false;
            }
            *s.route.add(slot) = None;
            *s.split.add(slot) = None;
            if was_replica {
                *s.replica_role.add(slot) = false;
                mb.push_back((
                    pos,
                    Effect::Release {
                        node,
                        port: p as u8,
                        vc: v as u8,
                    },
                ));
            }
        }

        *s.rr_in.add(ps) = (v as u8 + 1) % s.vcs.max(1) as u8;
    }
}

/// One sharded commit run, shared by every pool worker: the run slice
/// of the worklist, the intents to apply, and per-worker mailboxes.
pub(crate) struct CommitJob<'a, P> {
    /// Raw slab view; workers write disjoint router ranges through it.
    pub slabs: SlabPtrs<P>,
    /// Topology (read-only).
    pub topo: &'a Topology,
    /// Router parameters (read-only).
    pub params: &'a RouterParams,
    /// All per-router intents, indexed by router id.
    pub intents: *const RouterIntent,
    /// The run: worklist positions `[lo, hi)`, all valid to commit.
    pub run: &'a [u32],
    /// Current simulation cycle.
    pub cycle: u64,
    /// Per-worker mailboxes (worker `w` touches only slot `w`).
    pub mailboxes: *mut Mailbox<P>,
    /// Worker count = the ownership stride over run positions.
    pub stride: usize,
}

/// Type-erased pool entry point for the sharded commit; see the SAFETY
/// note at the dispatch site in `Network::commit_run`.
pub(crate) unsafe fn commit_shim<P>(data: *const (), worker: usize) {
    // SAFETY: `data` points at the caller's `CommitJob`, which
    // `SimPool::run` keeps alive until every worker finished.
    let job = unsafe { &*data.cast::<CommitJob<'_, P>>() };
    // SAFETY: each worker dereferences only its own mailbox slot.
    let mb = unsafe { &mut *job.mailboxes.add(worker) };
    debug_assert!(mb.is_empty(), "mailbox not drained by the last merge");
    let mut pos = worker;
    while pos < job.run.len() {
        let idx = job.run[pos];
        // SAFETY: static round-robin ownership — position `pos` is
        // claimed by exactly worker `pos % stride`, so router `idx`'s
        // slab ranges and intent are touched by this worker alone.
        unsafe {
            let intent = &*job.intents.add(idx as usize);
            apply_intent(
                &job.slabs,
                job.topo,
                job.params,
                job.cycle,
                idx,
                intent,
                pos as u32,
                mb,
            );
        }
        pos += job.stride;
    }
}
