//! A deliberately simple store-and-forward reference simulator.
//!
//! The fast simulator in [`crate::network`] is a wormhole network with
//! single-cycle routers, credit flow control, hybrid multicast
//! replication, and an allocation-free cycle kernel — lots of machinery
//! that buys speed and fidelity but can hide bugs. [`GoldenSim`] is the
//! differential-testing counterweight: packets move **whole** (no
//! flit-level pipelining), one hop per wake-up, with **no contention**
//! (every link has infinite capacity) — so short that it is obviously
//! correct. It shares the fast simulator's routing tables, topology,
//! and fault semantics (masked-table rebuild on every link state
//! change, heads waiting in place when a fault cuts every route).
//!
//! What carries over between the two models — and what the fuzz
//! harness in [`crate::fuzz`] compares — is the **delivered-packet
//! multiset**: which `(packet, endpoint)` pairs get delivered. Delivery
//! *cycles* differ by design (store-and-forward is slower), and
//! per-endpoint delivery *order* is contention-dependent, so order is
//! checked as a determinism property of the fast simulator instead
//! (two runs must agree bit-for-bit; see `docs/TESTING.md`).

use crate::error::SimError;
use crate::faults::FaultSchedule;
use crate::ids::Endpoint;
use crate::packet::PacketId;
use crate::routing::RoutingTable;
use crate::strategy::MulticastStrategy;
use crate::topology::Topology;

/// A packet for the reference simulator: pure header, no payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldenPacket {
    /// Identifier to match against the fast simulator's assignment.
    pub id: PacketId,
    /// Source endpoint.
    pub src: Endpoint,
    /// Destination endpoints, in visiting order.
    pub dests: Vec<Endpoint>,
    /// Length in flits (serialization delay per hop).
    pub flits: u32,
    /// Cycle the packet enters the network.
    pub inject_at: u64,
}

/// One delivery produced by the reference simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct GoldenDelivery {
    /// Which packet.
    pub id: PacketId,
    /// Which endpoint received its copy.
    pub endpoint: Endpoint,
    /// Cycle of delivery (store-and-forward timing; not comparable to
    /// the fast simulator's cycles).
    pub cycle: u64,
}

/// One live packet copy. Hybrid and path multicast keep a single copy
/// per packet walking the destination list in order (`lo` advances,
/// `hi` stays at the list length); tree multicast forks additional
/// copies at branch routers, each owning a disjoint `lo .. hi` slice.
#[derive(Debug)]
struct PkState {
    /// Index into the caller's packet slice.
    pk: usize,
    node: crate::ids::NodeId,
    ready_at: u64,
    /// Next destination-list index this copy still has to reach.
    lo: usize,
    /// Exclusive end of the destination range this copy serves.
    hi: usize,
    done: bool,
}

/// Store-and-forward, contention-free reference simulator over the
/// same topology, routing table, and fault schedule as the fast
/// simulator.
#[derive(Debug)]
pub struct GoldenSim {
    topo: Topology,
    table: RoutingTable,
    faults: FaultSchedule,
    link_up: Vec<bool>,
    strategy: MulticastStrategy,
}

impl GoldenSim {
    /// Builds a reference simulator over `topo` with `table`, using the
    /// default (hybrid) multicast strategy.
    pub fn new(topo: Topology, table: RoutingTable) -> Self {
        let n_links = topo.link_count();
        GoldenSim {
            topo,
            table,
            faults: FaultSchedule::default(),
            link_up: vec![true; n_links],
            strategy: MulticastStrategy::default(),
        }
    }

    /// Selects the multicast strategy whose delivery semantics to
    /// mirror. Hybrid and path both visit a packet's endpoints serially
    /// in list order, so they share one reference walk; tree multicast
    /// forks copies at branch routers so divergent destination groups
    /// progress concurrently. The delivered multiset is the same either
    /// way — strategy affects timing and which faults strand which
    /// endpoints.
    pub fn set_strategy(&mut self, strategy: MulticastStrategy) {
        self.strategy = strategy;
    }

    /// Installs a fault schedule (same semantics as
    /// [`crate::Network::set_fault_schedule`]).
    ///
    /// # Panics
    ///
    /// Panics when an event names a link the topology does not have.
    pub fn set_fault_schedule(&mut self, schedule: FaultSchedule) {
        for e in schedule.events() {
            assert!(
                (e.link.0 as usize) < self.topo.link_count(),
                "fault schedule names nonexistent link {:?}",
                e.link
            );
        }
        self.faults = schedule;
    }

    /// Applies fault events due at `now`; returns the cursor after the
    /// last applied event. Mirrors the fast simulator: no-op events are
    /// skipped, and any state change rebuilds a masked routing table.
    fn apply_faults(&mut self, cursor: usize, now: u64) -> usize {
        let mut cursor = cursor;
        let mut changed = false;
        while let Some(&ev) = self.faults.events().get(cursor) {
            if ev.cycle > now {
                break;
            }
            cursor += 1;
            let slot = ev.link.0 as usize;
            if self.link_up[slot] == ev.up {
                continue;
            }
            self.link_up[slot] = ev.up;
            changed = true;
        }
        if changed {
            self.table = self
                .table
                .spec()
                .build_masked(&self.topo, &self.link_up)
                .expect("the spec already built a table for this topology");
        }
        cursor
    }

    /// Runs `packets` to completion and returns every delivery.
    ///
    /// One action per wake-up: a packet copy at its current target's
    /// router delivers (and re-arms for the next endpoint one cycle
    /// later); otherwise it takes one hop, arriving `link delay +
    /// flits` cycles later (store-and-forward serialization). Under the
    /// tree strategy, a copy about to hop first forks off the suffix of
    /// its destination range that diverges from that hop (next stop on
    /// a different output port, or local to this router); the fork
    /// wakes here one cycle later and progresses independently. A copy
    /// whose next hop is cut by a fault waits in place for a repair.
    ///
    /// # Errors
    ///
    /// [`SimError::CycleLimit`] past `max_cycles`;
    /// [`SimError::Wedged`] when packets are stranded with no route and
    /// no future fault event can ever restore one.
    pub fn run(
        &mut self,
        packets: &[GoldenPacket],
        max_cycles: u64,
    ) -> Result<Vec<GoldenDelivery>, SimError> {
        let tree = matches!(self.strategy, MulticastStrategy::Tree);
        let mut live: Vec<PkState> = packets
            .iter()
            .enumerate()
            .map(|(i, p)| {
                assert!(!p.dests.is_empty(), "packet without destinations");
                PkState {
                    pk: i,
                    node: p.src.node,
                    ready_at: p.inject_at,
                    lo: 0,
                    hi: p.dests.len(),
                    done: false,
                }
            })
            .collect();
        let mut out = Vec::new();
        // Tree forks created this wake-up; appended after the sweep so
        // the iteration order stays stable.
        let mut forks: Vec<PkState> = Vec::new();
        let mut cursor = 0usize;
        let mut now = 0u64;
        loop {
            if live.iter().all(|p| p.done) {
                return Ok(out);
            }
            if now > max_cycles {
                return Err(SimError::CycleLimit { limit: max_cycles });
            }
            cursor = self.apply_faults(cursor, now);
            let mut blocked = 0usize;
            for p in live.iter_mut() {
                if p.done || p.ready_at > now {
                    continue;
                }
                let pk = &packets[p.pk];
                let target = pk.dests[p.lo];
                if target.node == p.node {
                    out.push(GoldenDelivery {
                        id: pk.id,
                        endpoint: target,
                        cycle: now,
                    });
                    p.lo += 1;
                    if p.lo == p.hi {
                        p.done = true;
                    } else {
                        p.ready_at = now + 1;
                    }
                } else if let Some(port) = self.table.next_hop(p.node, target.node) {
                    if tree {
                        // Longest prefix of the range that shares this
                        // hop rides along; the divergent suffix forks
                        // off and routes from here on its own — but
                        // only when this router can actually reach it
                        // (XYX turn limits can make a divergent
                        // endpoint unroutable from the branch point).
                        // Otherwise the copy carries the whole range
                        // and serializes through the endpoint chain,
                        // exactly like the fast simulator's fallback.
                        let mut k = p.lo + 1;
                        while k < p.hi {
                            let e = pk.dests[k];
                            if e.node == p.node
                                || self.table.next_hop(p.node, e.node) != Some(port)
                            {
                                break;
                            }
                            k += 1;
                        }
                        if k < p.hi {
                            let e = pk.dests[k];
                            if e.node == p.node || self.table.next_hop(p.node, e.node).is_some() {
                                forks.push(PkState {
                                    pk: p.pk,
                                    node: p.node,
                                    ready_at: now + 1,
                                    lo: k,
                                    hi: p.hi,
                                    done: false,
                                });
                                p.hi = k;
                            }
                        }
                    }
                    let link = self.topo.router(p.node).ports[port.0 as usize]
                        .out_link
                        .expect("routed port must have a link");
                    let l = self.topo.link(link);
                    p.node = l.dst;
                    p.ready_at = now + u64::from(l.delay) + u64::from(pk.flits);
                } else {
                    blocked += 1;
                }
            }
            live.append(&mut forks);
            // Advance to the next cycle anything can change. Blocked
            // packets can only move on a fault event.
            let next_fault = self.faults.events().get(cursor).map(|e| e.cycle.max(now + 1));
            let next_ready = live
                .iter()
                .filter(|p| !p.done && p.ready_at > now)
                .map(|p| p.ready_at)
                .min();
            now = match (blocked > 0, next_fault, next_ready) {
                (true, Some(f), r) => f.min(r.unwrap_or(u64::MAX)),
                (true, None, _) => {
                    return Err(SimError::Wedged {
                        cycle: now,
                        outstanding: blocked,
                        detail: "packets stranded with no route and no future repair".into(),
                    });
                }
                (false, f, r) => match (f, r) {
                    (Some(f), Some(r)) => f.min(r),
                    (Some(f), None) => f,
                    (None, Some(r)) => r,
                    (None, None) => now + 1, // re-armed deliveries handled above
                },
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{LinkId, NodeId};
    use crate::routing::RoutingSpec;

    fn mesh_sim(cols: u16, rows: u16) -> GoldenSim {
        let topo = Topology::mesh(cols, rows, &vec![1; cols as usize - 1], &vec![1; rows as usize - 1]);
        let table = RoutingSpec::Xy.build(&topo).unwrap();
        GoldenSim::new(topo, table)
    }

    fn ep(sim: &GoldenSim, col: u16, row: u16) -> Endpoint {
        Endpoint::at(sim.topo.node_at(col, row))
    }

    #[test]
    fn unicast_delivers_once() {
        let mut sim = mesh_sim(4, 4);
        let p = GoldenPacket {
            id: PacketId(0),
            src: ep(&sim, 0, 0),
            dests: vec![ep(&sim, 3, 2)],
            flits: 5,
            inject_at: 0,
        };
        let got = sim.run(std::slice::from_ref(&p), 10_000).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].endpoint, p.dests[0]);
        // 5 hops × (1 delay + 5 flits) = 30 cycles store-and-forward.
        assert_eq!(got[0].cycle, 30);
    }

    #[test]
    fn multicast_visits_every_endpoint_once() {
        let mut sim = mesh_sim(4, 4);
        let dests: Vec<Endpoint> = (0..4).map(|r| ep(&sim, 2, r)).collect();
        let p = GoldenPacket {
            id: PacketId(3),
            src: ep(&sim, 0, 0),
            dests: dests.clone(),
            flits: 1,
            inject_at: 5,
        };
        let got = sim.run(&[p], 10_000).unwrap();
        assert_eq!(got.len(), 4);
        let mut seen: Vec<Endpoint> = got.iter().map(|d| d.endpoint).collect();
        seen.sort();
        let mut want = dests;
        want.sort();
        assert_eq!(seen, want);
    }

    #[test]
    fn tree_multicast_forks_and_still_delivers_every_endpoint_once() {
        // Destinations in different columns: XY paths share the first
        // eastward hop and then diverge, so the tree actually branches
        // (a single-column chain never would — every hop is shared).
        let make = || {
            let sim = mesh_sim(4, 4);
            GoldenPacket {
                id: PacketId(7),
                src: ep(&sim, 0, 0),
                dests: vec![ep(&sim, 3, 1), ep(&sim, 1, 3)],
                flits: 5,
                inject_at: 0,
            }
        };
        let mut serial = mesh_sim(4, 4);
        serial.set_strategy(MulticastStrategy::Path);
        let base = serial.run(&[make()], 10_000).unwrap();

        let mut sim = mesh_sim(4, 4);
        sim.set_strategy(MulticastStrategy::Tree);
        let got = sim.run(&[make()], 10_000).unwrap();
        assert_eq!(got.len(), 2);
        let mut seen: Vec<Endpoint> = got.iter().map(|d| d.endpoint).collect();
        seen.sort();
        let mut want: Vec<Endpoint> = make().dests;
        want.sort();
        assert_eq!(seen, want, "same delivered multiset as the serial walk");
        // Forked copies progress concurrently, so the slowest endpoint
        // finishes strictly earlier than under the serial visitation.
        let last_tree = got.iter().map(|d| d.cycle).max().unwrap();
        let last_serial = base.iter().map(|d| d.cycle).max().unwrap();
        assert!(
            last_tree < last_serial,
            "tree {last_tree} vs serial {last_serial}"
        );
    }

    #[test]
    fn transient_fault_delays_but_delivers() {
        // 2x1 mesh: one forward link; fail it before injection, repair
        // at cycle 50 — the packet must wait and then arrive.
        let topo = Topology::mesh(2, 1, &[1], &[]);
        let table = RoutingSpec::Xy.build(&topo).unwrap();
        let fwd = (0..topo.link_count() as u32)
            .map(LinkId)
            .find(|&l| topo.link(l).src == NodeId(0))
            .unwrap();
        let mut sim = GoldenSim::new(topo, table);
        sim.set_fault_schedule(FaultSchedule::transient(fwd, 0, 50));
        let p = GoldenPacket {
            id: PacketId(0),
            src: Endpoint::at(NodeId(0)),
            dests: vec![Endpoint::at(NodeId(1))],
            flits: 1,
            inject_at: 1,
        };
        let got = sim.run(&[p], 10_000).unwrap();
        assert_eq!(got.len(), 1);
        assert!(got[0].cycle >= 50, "delivered at {}", got[0].cycle);
    }

    #[test]
    fn permanent_partition_reports_wedged() {
        let topo = Topology::mesh(2, 1, &[1], &[]);
        let table = RoutingSpec::Xy.build(&topo).unwrap();
        let fwd = (0..topo.link_count() as u32)
            .map(LinkId)
            .find(|&l| topo.link(l).src == NodeId(0))
            .unwrap();
        let mut sim = GoldenSim::new(topo, table);
        sim.set_fault_schedule(FaultSchedule::permanent(fwd, 0));
        let p = GoldenPacket {
            id: PacketId(0),
            src: Endpoint::at(NodeId(0)),
            dests: vec![Endpoint::at(NodeId(1))],
            flits: 1,
            inject_at: 1,
        };
        let err = sim.run(&[p], 10_000).unwrap_err();
        assert!(matches!(err, SimError::Wedged { .. }), "{err}");
    }

    #[test]
    fn cycle_limit_is_enforced() {
        let mut sim = mesh_sim(2, 2);
        let p = GoldenPacket {
            id: PacketId(0),
            src: ep(&sim, 0, 0),
            dests: vec![ep(&sim, 1, 1)],
            flits: 1,
            inject_at: 100,
        };
        let err = sim.run(&[p], 10).unwrap_err();
        assert_eq!(err, SimError::CycleLimit { limit: 10 });
    }
}
