//! A deliberately simple store-and-forward reference simulator.
//!
//! The fast simulator in [`crate::network`] is a wormhole network with
//! single-cycle routers, credit flow control, hybrid multicast
//! replication, and an allocation-free cycle kernel — lots of machinery
//! that buys speed and fidelity but can hide bugs. [`GoldenSim`] is the
//! differential-testing counterweight: packets move **whole** (no
//! flit-level pipelining), one hop per wake-up, with **no contention**
//! (every link has infinite capacity) — so short that it is obviously
//! correct. It shares the fast simulator's routing tables, topology,
//! and fault semantics (masked-table rebuild on every link state
//! change, heads waiting in place when a fault cuts every route).
//!
//! What carries over between the two models — and what the fuzz
//! harness in [`crate::fuzz`] compares — is the **delivered-packet
//! multiset**: which `(packet, endpoint)` pairs get delivered. Delivery
//! *cycles* differ by design (store-and-forward is slower), and
//! per-endpoint delivery *order* is contention-dependent, so order is
//! checked as a determinism property of the fast simulator instead
//! (two runs must agree bit-for-bit; see `docs/TESTING.md`).

use crate::error::SimError;
use crate::faults::FaultSchedule;
use crate::ids::Endpoint;
use crate::packet::PacketId;
use crate::routing::RoutingTable;
use crate::topology::Topology;

/// A packet for the reference simulator: pure header, no payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldenPacket {
    /// Identifier to match against the fast simulator's assignment.
    pub id: PacketId,
    /// Source endpoint.
    pub src: Endpoint,
    /// Destination endpoints, in visiting order.
    pub dests: Vec<Endpoint>,
    /// Length in flits (serialization delay per hop).
    pub flits: u32,
    /// Cycle the packet enters the network.
    pub inject_at: u64,
}

/// One delivery produced by the reference simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct GoldenDelivery {
    /// Which packet.
    pub id: PacketId,
    /// Which endpoint received its copy.
    pub endpoint: Endpoint,
    /// Cycle of delivery (store-and-forward timing; not comparable to
    /// the fast simulator's cycles).
    pub cycle: u64,
}

#[derive(Debug)]
struct PkState {
    node: crate::ids::NodeId,
    ready_at: u64,
    dest_i: usize,
    done: bool,
}

/// Store-and-forward, contention-free reference simulator over the
/// same topology, routing table, and fault schedule as the fast
/// simulator.
#[derive(Debug)]
pub struct GoldenSim {
    topo: Topology,
    table: RoutingTable,
    faults: FaultSchedule,
    link_up: Vec<bool>,
}

impl GoldenSim {
    /// Builds a reference simulator over `topo` with `table`.
    pub fn new(topo: Topology, table: RoutingTable) -> Self {
        let n_links = topo.link_count();
        GoldenSim {
            topo,
            table,
            faults: FaultSchedule::default(),
            link_up: vec![true; n_links],
        }
    }

    /// Installs a fault schedule (same semantics as
    /// [`crate::Network::set_fault_schedule`]).
    ///
    /// # Panics
    ///
    /// Panics when an event names a link the topology does not have.
    pub fn set_fault_schedule(&mut self, schedule: FaultSchedule) {
        for e in schedule.events() {
            assert!(
                (e.link.0 as usize) < self.topo.link_count(),
                "fault schedule names nonexistent link {:?}",
                e.link
            );
        }
        self.faults = schedule;
    }

    /// Applies fault events due at `now`; returns the cursor after the
    /// last applied event. Mirrors the fast simulator: no-op events are
    /// skipped, and any state change rebuilds a masked routing table.
    fn apply_faults(&mut self, cursor: usize, now: u64) -> usize {
        let mut cursor = cursor;
        let mut changed = false;
        while let Some(&ev) = self.faults.events().get(cursor) {
            if ev.cycle > now {
                break;
            }
            cursor += 1;
            let slot = ev.link.0 as usize;
            if self.link_up[slot] == ev.up {
                continue;
            }
            self.link_up[slot] = ev.up;
            changed = true;
        }
        if changed {
            self.table = self
                .table
                .spec()
                .build_masked(&self.topo, &self.link_up)
                .expect("the spec already built a table for this topology");
        }
        cursor
    }

    /// Runs `packets` to completion and returns every delivery.
    ///
    /// One action per wake-up: a packet at its current target's router
    /// delivers (and re-arms for the next endpoint one cycle later);
    /// otherwise it takes one hop, arriving `link delay + flits` cycles
    /// later (store-and-forward serialization). A packet whose next hop
    /// is cut by a fault waits in place for a repair.
    ///
    /// # Errors
    ///
    /// [`SimError::CycleLimit`] past `max_cycles`;
    /// [`SimError::Wedged`] when packets are stranded with no route and
    /// no future fault event can ever restore one.
    pub fn run(
        &mut self,
        packets: &[GoldenPacket],
        max_cycles: u64,
    ) -> Result<Vec<GoldenDelivery>, SimError> {
        let mut live: Vec<PkState> = packets
            .iter()
            .map(|p| {
                assert!(!p.dests.is_empty(), "packet without destinations");
                PkState {
                    node: p.src.node,
                    ready_at: p.inject_at,
                    dest_i: 0,
                    done: false,
                }
            })
            .collect();
        let mut out = Vec::new();
        let mut cursor = 0usize;
        let mut now = 0u64;
        loop {
            if live.iter().all(|p| p.done) {
                return Ok(out);
            }
            if now > max_cycles {
                return Err(SimError::CycleLimit { limit: max_cycles });
            }
            cursor = self.apply_faults(cursor, now);
            let mut blocked = 0usize;
            for (i, p) in live.iter_mut().enumerate() {
                if p.done || p.ready_at > now {
                    continue;
                }
                let pk = &packets[i];
                let target = pk.dests[p.dest_i];
                if target.node == p.node {
                    out.push(GoldenDelivery {
                        id: pk.id,
                        endpoint: target,
                        cycle: now,
                    });
                    p.dest_i += 1;
                    if p.dest_i == pk.dests.len() {
                        p.done = true;
                    } else {
                        p.ready_at = now + 1;
                    }
                } else if let Some(port) = self.table.next_hop(p.node, target.node) {
                    let link = self.topo.router(p.node).ports[port.0 as usize]
                        .out_link
                        .expect("routed port must have a link");
                    let l = self.topo.link(link);
                    p.node = l.dst;
                    p.ready_at = now + u64::from(l.delay) + u64::from(pk.flits);
                } else {
                    blocked += 1;
                }
            }
            // Advance to the next cycle anything can change. Blocked
            // packets can only move on a fault event.
            let next_fault = self.faults.events().get(cursor).map(|e| e.cycle.max(now + 1));
            let next_ready = live
                .iter()
                .filter(|p| !p.done && p.ready_at > now)
                .map(|p| p.ready_at)
                .min();
            now = match (blocked > 0, next_fault, next_ready) {
                (true, Some(f), r) => f.min(r.unwrap_or(u64::MAX)),
                (true, None, _) => {
                    return Err(SimError::Wedged {
                        cycle: now,
                        outstanding: blocked,
                        detail: "packets stranded with no route and no future repair".into(),
                    });
                }
                (false, f, r) => match (f, r) {
                    (Some(f), Some(r)) => f.min(r),
                    (Some(f), None) => f,
                    (None, Some(r)) => r,
                    (None, None) => now + 1, // re-armed deliveries handled above
                },
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{LinkId, NodeId};
    use crate::routing::RoutingSpec;

    fn mesh_sim(cols: u16, rows: u16) -> GoldenSim {
        let topo = Topology::mesh(cols, rows, &vec![1; cols as usize - 1], &vec![1; rows as usize - 1]);
        let table = RoutingSpec::Xy.build(&topo).unwrap();
        GoldenSim::new(topo, table)
    }

    fn ep(sim: &GoldenSim, col: u16, row: u16) -> Endpoint {
        Endpoint::at(sim.topo.node_at(col, row))
    }

    #[test]
    fn unicast_delivers_once() {
        let mut sim = mesh_sim(4, 4);
        let p = GoldenPacket {
            id: PacketId(0),
            src: ep(&sim, 0, 0),
            dests: vec![ep(&sim, 3, 2)],
            flits: 5,
            inject_at: 0,
        };
        let got = sim.run(std::slice::from_ref(&p), 10_000).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].endpoint, p.dests[0]);
        // 5 hops × (1 delay + 5 flits) = 30 cycles store-and-forward.
        assert_eq!(got[0].cycle, 30);
    }

    #[test]
    fn multicast_visits_every_endpoint_once() {
        let mut sim = mesh_sim(4, 4);
        let dests: Vec<Endpoint> = (0..4).map(|r| ep(&sim, 2, r)).collect();
        let p = GoldenPacket {
            id: PacketId(3),
            src: ep(&sim, 0, 0),
            dests: dests.clone(),
            flits: 1,
            inject_at: 5,
        };
        let got = sim.run(&[p], 10_000).unwrap();
        assert_eq!(got.len(), 4);
        let mut seen: Vec<Endpoint> = got.iter().map(|d| d.endpoint).collect();
        seen.sort();
        let mut want = dests;
        want.sort();
        assert_eq!(seen, want);
    }

    #[test]
    fn transient_fault_delays_but_delivers() {
        // 2x1 mesh: one forward link; fail it before injection, repair
        // at cycle 50 — the packet must wait and then arrive.
        let topo = Topology::mesh(2, 1, &[1], &[]);
        let table = RoutingSpec::Xy.build(&topo).unwrap();
        let fwd = (0..topo.link_count() as u32)
            .map(LinkId)
            .find(|&l| topo.link(l).src == NodeId(0))
            .unwrap();
        let mut sim = GoldenSim::new(topo, table);
        sim.set_fault_schedule(FaultSchedule::transient(fwd, 0, 50));
        let p = GoldenPacket {
            id: PacketId(0),
            src: Endpoint::at(NodeId(0)),
            dests: vec![Endpoint::at(NodeId(1))],
            flits: 1,
            inject_at: 1,
        };
        let got = sim.run(&[p], 10_000).unwrap();
        assert_eq!(got.len(), 1);
        assert!(got[0].cycle >= 50, "delivered at {}", got[0].cycle);
    }

    #[test]
    fn permanent_partition_reports_wedged() {
        let topo = Topology::mesh(2, 1, &[1], &[]);
        let table = RoutingSpec::Xy.build(&topo).unwrap();
        let fwd = (0..topo.link_count() as u32)
            .map(LinkId)
            .find(|&l| topo.link(l).src == NodeId(0))
            .unwrap();
        let mut sim = GoldenSim::new(topo, table);
        sim.set_fault_schedule(FaultSchedule::permanent(fwd, 0));
        let p = GoldenPacket {
            id: PacketId(0),
            src: Endpoint::at(NodeId(0)),
            dests: vec![Endpoint::at(NodeId(1))],
            flits: 1,
            inject_at: 1,
        };
        let err = sim.run(&[p], 10_000).unwrap_err();
        assert!(matches!(err, SimError::Wedged { .. }), "{err}");
    }

    #[test]
    fn cycle_limit_is_enforced() {
        let mut sim = mesh_sim(2, 2);
        let p = GoldenPacket {
            id: PacketId(0),
            src: ep(&sim, 0, 0),
            dests: vec![ep(&sim, 1, 1)],
            flits: 1,
            inject_at: 100,
        };
        let err = sim.run(&[p], 10).unwrap_err();
        assert_eq!(err, SimError::CycleLimit { limit: 10 });
    }
}
