//! Router configuration parameters (Table 1 of the paper).

use crate::strategy::MulticastStrategy;

/// Wormhole router parameters shared by every router in a network.
///
/// The defaults reproduce Table 1 of the paper: 4 virtual channels per
/// physical channel, 4-flit buffers, single-cycle routers, and a
/// one-cycle credit return.
///
/// ```
/// use nucanet_noc::RouterParams;
/// let p = RouterParams::default();
/// assert_eq!(p.vcs_per_port, 4);
/// assert_eq!(p.vc_depth, 4);
/// assert_eq!(p.router_stages, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RouterParams {
    /// Virtual channels per physical channel.
    pub vcs_per_port: u8,
    /// Flit-buffer depth per virtual channel.
    pub vc_depth: u8,
    /// Cycles for a credit to travel back upstream.
    pub credit_delay: u32,
    /// Router traversal stages. `1` models the paper's single-cycle
    /// router (lookahead routing + buffer bypassing + speculative switch
    /// allocation + arbitration precomputation); larger values model a
    /// conventional pipelined router for ablation studies.
    pub router_stages: u32,
    /// Cycles of no forward progress after which [`crate::Network::step`]
    /// returns [`crate::SimError::Watchdog`], treating the network as
    /// deadlocked. The clock restarts whenever a fault-schedule event
    /// applies, so transient outages shorter than this recover; set it
    /// above the longest expected outage when injecting faults.
    pub watchdog_cycles: u64,
    /// Worker threads for the two-phase cycle kernel. `1` (the default)
    /// runs the classic serial kernel; `0` means auto-detect
    /// ([`std::thread::available_parallelism`]). Results are
    /// bit-identical for every value: the compute phase is read-only
    /// over shared state, and the sharded commit phase routes every
    /// cross-router effect through per-worker mailboxes that the main
    /// thread merges in sorted worklist order — exactly the order the
    /// serial kernel visits routers — so this is purely a wall-clock
    /// knob.
    pub sim_threads: u32,
    /// How multicast packets replicate (see [`crate::strategy`]). The
    /// default is the paper's hybrid replication; tree and path are the
    /// comparison points from the multicast-NoC design space.
    pub strategy: MulticastStrategy,
}

impl RouterParams {
    /// Paper configuration (single-cycle router, Table 1 buffers).
    pub fn hpca07() -> Self {
        RouterParams {
            vcs_per_port: 4,
            vc_depth: 4,
            credit_delay: 1,
            router_stages: 1,
            watchdog_cycles: 200_000,
            sim_threads: 1,
            strategy: MulticastStrategy::Hybrid,
        }
    }

    /// A conventional pipelined router with `stages` cycles per hop,
    /// otherwise identical. Used as the ablation baseline.
    pub fn pipelined(stages: u32) -> Self {
        assert!(stages >= 1, "a router needs at least one stage");
        RouterParams {
            router_stages: stages,
            ..Self::hpca07()
        }
    }

    /// Validates the invariants other modules rely on.
    ///
    /// # Panics
    ///
    /// Panics if any field is zero where that is meaningless.
    pub fn validate(&self) {
        assert!(self.vcs_per_port >= 1, "need at least one VC per port");
        assert!(self.vc_depth >= 1, "need at least a one-flit buffer");
        assert!(self.router_stages >= 1, "need at least one router stage");
        assert!(
            self.credit_delay >= 1,
            "credits cannot return in zero cycles"
        );
    }
}

impl Default for RouterParams {
    fn default() -> Self {
        RouterParams::hpca07()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let p = RouterParams::default();
        assert_eq!(p.vcs_per_port, 4);
        assert_eq!(p.vc_depth, 4);
        assert_eq!(p.credit_delay, 1);
        assert_eq!(p.router_stages, 1);
        assert_eq!(p.sim_threads, 1, "serial kernel by default");
        assert_eq!(
            p.strategy,
            MulticastStrategy::Hybrid,
            "the paper's replication scheme by default"
        );
    }

    #[test]
    fn pipelined_changes_only_stages() {
        let p = RouterParams::pipelined(4);
        assert_eq!(p.router_stages, 4);
        assert_eq!(p.vcs_per_port, RouterParams::hpca07().vcs_per_port);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn zero_stage_pipelined_panics() {
        let _ = RouterParams::pipelined(0);
    }

    #[test]
    fn validate_accepts_default() {
        RouterParams::default().validate();
    }

    #[test]
    #[should_panic(expected = "at least one VC")]
    fn validate_rejects_zero_vcs() {
        RouterParams {
            vcs_per_port: 0,
            ..RouterParams::hpca07()
        }
        .validate();
    }
}
