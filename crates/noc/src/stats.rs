//! Network statistics collected during simulation.

/// Counters the [`crate::Network`] maintains while stepping.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Cycles the network has been stepped (including skipped idle
    /// cycles via fast-forward).
    pub cycles: u64,
    /// Packets accepted by `inject`.
    pub packets_injected: u64,
    /// Packet deliveries (a multicast packet counts once per endpoint).
    pub packets_delivered: u64,
    /// Flits that traversed each link, indexed by `LinkId`.
    pub flits_per_link: Vec<u64>,
    /// Flits handed to local sinks.
    pub flits_ejected: u64,
    /// Sum over deliveries of (delivery cycle − injection cycle).
    pub total_packet_latency: u64,
    /// Successful multicast replica creations.
    pub replications: u64,
    /// Cycles a multicast head spent blocked because no free VC of a
    /// different input port was available for replication (the paper's
    /// "blocking rarely happens" claim is checked against this).
    pub replication_blocked_cycles: u64,
    /// Packet-latency histogram: bucket `i` counts deliveries with
    /// latency in `[10·i, 10·i+10)` cycles; the last bucket is open.
    pub latency_buckets: Vec<u64>,
    /// Highest number of flits simultaneously buffered in any single
    /// input VC observed during the run.
    pub peak_vc_occupancy: u8,
    /// Link-down events applied from the fault schedule.
    pub link_down_events: u64,
    /// Link-up (repair) events applied from the fault schedule.
    pub link_up_events: u64,
    /// Route allocations that deviated from the fault-free routing table
    /// because of an active fault (one count per packet per router).
    pub packets_rerouted: u64,
    /// Cycles head flits spent waiting with no route to their next
    /// endpoint (a fault cut every path the algorithm would use).
    pub route_blocked_cycles: u64,
}

/// Number of histogram buckets in [`NetStats::latency_buckets`].
pub const LATENCY_BUCKETS: usize = 16;

impl NetStats {
    /// Creates zeroed statistics for a network with `n_links` links.
    pub fn new(n_links: usize) -> Self {
        NetStats {
            flits_per_link: vec![0; n_links],
            latency_buckets: vec![0; LATENCY_BUCKETS],
            ..Default::default()
        }
    }

    /// Zeroes every counter in place, keeping the per-link and
    /// histogram vector allocations. After `reset`, the statistics
    /// compare equal to `NetStats::new(n_links)` — the warm-reset path
    /// relies on this to stay allocation-free across sweep points.
    pub fn reset(&mut self) {
        let NetStats {
            cycles,
            packets_injected,
            packets_delivered,
            flits_per_link,
            flits_ejected,
            total_packet_latency,
            replications,
            replication_blocked_cycles,
            latency_buckets,
            peak_vc_occupancy,
            link_down_events,
            link_up_events,
            packets_rerouted,
            route_blocked_cycles,
        } = self;
        *cycles = 0;
        *packets_injected = 0;
        *packets_delivered = 0;
        flits_per_link.fill(0);
        *flits_ejected = 0;
        *total_packet_latency = 0;
        *replications = 0;
        *replication_blocked_cycles = 0;
        latency_buckets.fill(0);
        *peak_vc_occupancy = 0;
        *link_down_events = 0;
        *link_up_events = 0;
        *packets_rerouted = 0;
        *route_blocked_cycles = 0;
    }

    /// Records one delivery into the latency histogram.
    pub(crate) fn record_latency(&mut self, latency: u64) {
        let b = ((latency / 10) as usize).min(LATENCY_BUCKETS - 1);
        self.latency_buckets[b] += 1;
    }

    /// Latency below which `quantile` (0..=1) of packets completed,
    /// resolved to bucket granularity (10 cycles). `None` when nothing
    /// was delivered.
    pub fn latency_quantile(&self, quantile: f64) -> Option<u64> {
        assert!(
            (0.0..=1.0).contains(&quantile),
            "quantile must be in [0, 1]"
        );
        let total: u64 = self.latency_buckets.iter().sum();
        if total == 0 {
            return None;
        }
        let target = nearest_rank(quantile, total);
        let mut acc = 0;
        for (i, &c) in self.latency_buckets.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Some(10 * (i as u64 + 1));
            }
        }
        Some(10 * LATENCY_BUCKETS as u64)
    }

    /// Average end-to-end packet latency in cycles, or 0.0 when nothing
    /// was delivered.
    pub fn avg_packet_latency(&self) -> f64 {
        if self.packets_delivered == 0 {
            0.0
        } else {
            self.total_packet_latency as f64 / self.packets_delivered as f64
        }
    }

    /// Fraction of links that carried zero flits.
    pub fn unused_link_fraction(&self) -> f64 {
        if self.flits_per_link.is_empty() {
            return 0.0;
        }
        let unused = self.flits_per_link.iter().filter(|&&f| f == 0).count();
        unused as f64 / self.flits_per_link.len() as f64
    }

    /// Folds `other` into `self`, treating the two as statistics of
    /// concurrent windows of one system: traffic counters and histograms
    /// add, while `cycles` and `peak_vc_occupancy` take the maximum.
    /// The combination is associative and commutative, so partial
    /// snapshots from parallel workers may merge in any order.
    pub fn merge(&mut self, other: &NetStats) {
        self.cycles = self.cycles.max(other.cycles);
        self.packets_injected += other.packets_injected;
        self.packets_delivered += other.packets_delivered;
        if self.flits_per_link.len() < other.flits_per_link.len() {
            self.flits_per_link.resize(other.flits_per_link.len(), 0);
        }
        for (i, &f) in other.flits_per_link.iter().enumerate() {
            self.flits_per_link[i] += f;
        }
        self.flits_ejected += other.flits_ejected;
        self.total_packet_latency += other.total_packet_latency;
        self.replications += other.replications;
        self.replication_blocked_cycles += other.replication_blocked_cycles;
        if self.latency_buckets.len() < other.latency_buckets.len() {
            self.latency_buckets.resize(other.latency_buckets.len(), 0);
        }
        for (i, &c) in other.latency_buckets.iter().enumerate() {
            self.latency_buckets[i] += c;
        }
        self.peak_vc_occupancy = self.peak_vc_occupancy.max(other.peak_vc_occupancy);
        self.link_down_events += other.link_down_events;
        self.link_up_events += other.link_up_events;
        self.packets_rerouted += other.packets_rerouted;
        self.route_blocked_cycles += other.route_blocked_cycles;
    }

    /// Links currently down under the fault schedule (down events minus
    /// repairs). Additive merging keeps this meaningful across windows.
    pub fn faults_active(&self) -> u64 {
        self.link_down_events.saturating_sub(self.link_up_events)
    }

    /// Total flits × links traversed — the simulated-work measure the
    /// throughput benchmark reports per wall-clock second.
    pub fn total_flit_hops(&self) -> u64 {
        self.flits_per_link.iter().sum()
    }

    /// Mean flits per cycle per link (network load).
    pub fn mean_link_load(&self) -> f64 {
        if self.cycles == 0 || self.flits_per_link.is_empty() {
            return 0.0;
        }
        self.total_flit_hops() as f64 / (self.cycles as f64 * self.flits_per_link.len() as f64)
    }
}

/// Nearest-rank index (1-based) for quantile `q` over `count` samples:
/// `ceil(q·count)`, clamped to `[1, count]`; `0` when `count` is zero.
///
/// The rank is computed in integer arithmetic: `q` is snapped once to a
/// parts-per-billion integer (which represents every decimal quantile —
/// 0.5, 0.95, 0.999, … — exactly), then multiplied out in 128-bit
/// integers. A plain `(q * count as f64).ceil()` can misrank at bucket
/// edges: `0.07_f64 * 100.0` rounds up to `7.000…001`, so its ceiling
/// claims rank 8 where the 7th-smallest sample is the true answer.
///
/// # Panics
///
/// Panics when `q` is outside `[0, 1]`.
pub fn nearest_rank(q: f64, count: u64) -> u64 {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    if count == 0 {
        return 0;
    }
    const PPB: u128 = 1_000_000_000;
    let scaled = (q * PPB as f64).round() as u128;
    let rank = (count as u128 * scaled).div_ceil(PPB) as u64;
    rank.clamp(1, count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_is_exact_at_bucket_edges() {
        // The f64 formulation got these wrong: 0.07 * 100 = 7.000…001.
        assert_eq!(nearest_rank(0.07, 100), 7);
        assert_eq!(nearest_rank(0.95, 20), 19);
        assert_eq!(nearest_rank(0.95, 5000), 4750);
        // Exactly-representable quantiles behave as expected.
        assert_eq!(nearest_rank(0.5, 6), 3);
        assert_eq!(nearest_rank(0.75, 6), 5);
        // Clamping and edge quantiles.
        assert_eq!(nearest_rank(0.0, 10), 1);
        assert_eq!(nearest_rank(1.0, 10), 10);
        assert_eq!(nearest_rank(0.5, 0), 0);
        // Counts far beyond f64's 2^53 integer range stay exact.
        assert_eq!(nearest_rank(0.5, u64::MAX), u64::MAX / 2 + 1);
        assert_eq!(nearest_rank(1.0, u64::MAX), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn nearest_rank_rejects_out_of_range() {
        let _ = nearest_rank(1.5, 10);
    }

    #[test]
    fn zeroed_on_new() {
        let s = NetStats::new(5);
        assert_eq!(s.flits_per_link, vec![0; 5]);
        assert_eq!(s.avg_packet_latency(), 0.0);
        assert_eq!(s.mean_link_load(), 0.0);
    }

    #[test]
    fn avg_latency() {
        let s = NetStats {
            packets_delivered: 4,
            total_packet_latency: 100,
            ..NetStats::new(0)
        };
        assert!((s.avg_packet_latency() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn unused_fraction() {
        let s = NetStats {
            flits_per_link: vec![0, 3, 0, 1],
            ..Default::default()
        };
        assert!((s.unused_link_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mean_load() {
        let s = NetStats {
            cycles: 10,
            flits_per_link: vec![5, 15],
            ..Default::default()
        };
        assert!((s.mean_link_load() - 1.0).abs() < 1e-12);
        assert_eq!(s.total_flit_hops(), 20);
    }

    #[test]
    fn latency_histogram_buckets() {
        let mut s = NetStats::new(0);
        s.record_latency(0);
        s.record_latency(9);
        s.record_latency(10);
        s.record_latency(500);
        assert_eq!(s.latency_buckets[0], 2);
        assert_eq!(s.latency_buckets[1], 1);
        assert_eq!(s.latency_buckets[LATENCY_BUCKETS - 1], 1);
    }

    #[test]
    fn latency_quantiles() {
        let mut s = NetStats::new(0);
        for l in [5u64, 5, 5, 25, 95] {
            s.record_latency(l);
        }
        assert_eq!(s.latency_quantile(0.5), Some(10));
        assert_eq!(s.latency_quantile(0.8), Some(30));
        assert_eq!(s.latency_quantile(1.0), Some(100));
        assert_eq!(NetStats::new(0).latency_quantile(0.5), None);
    }

    #[test]
    fn merge_combines_windows() {
        let mut a = NetStats::new(2);
        a.cycles = 100;
        a.packets_injected = 3;
        a.packets_delivered = 3;
        a.flits_per_link = vec![5, 0];
        a.record_latency(12);
        a.peak_vc_occupancy = 2;
        let mut b = NetStats::new(2);
        b.cycles = 80;
        b.packets_injected = 2;
        b.packets_delivered = 1;
        b.flits_per_link = vec![1, 7];
        b.record_latency(33);
        b.peak_vc_occupancy = 4;

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must be commutative");
        assert_eq!(ab.cycles, 100);
        assert_eq!(ab.packets_injected, 5);
        assert_eq!(ab.flits_per_link, vec![6, 7]);
        assert_eq!(ab.peak_vc_occupancy, 4);
        assert_eq!(ab.latency_buckets[1] + ab.latency_buckets[3], 2);
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn bad_quantile_panics() {
        let mut s = NetStats::new(0);
        s.record_latency(1);
        let _ = s.latency_quantile(1.5);
    }
}
