//! Runtime invariant checking for the cycle kernel.
//!
//! The fast simulator earns its speed with bookkeeping shortcuts — the
//! split borrow, the calendar queue, hybrid replica flits that bypass
//! credit flow control — and every one of them is a place a future
//! refactor can go silently wrong. The [`InvariantChecker`] is a
//! pluggable sanitizer: when enabled on a [`crate::Network`], every
//! [`crate::Network::step`] re-derives the properties the paper's
//! design depends on from first principles and compares them against
//! the kernel's own state:
//!
//! * **Flit conservation** — every flit copy ever created (injected or
//!   replicated) is buffered in some VC, on some wire, or ejected.
//! * **Credit accounting** — per (link, VC): upstream credits plus
//!   flits and credits on the wire plus the downstream buffer occupancy
//!   equal `vc_depth`; replica flits, which are written locally and
//!   never consume upstream credits, are excluded. The wire terms are
//!   recounted from the event wheel, independently of the kernel's
//!   `inflight` array, which is cross-checked too.
//! * **Wormhole order** — flits eject at each (packet, destination) in
//!   strict `0, 1, …, flits-1` sequence; packets never interleave.
//! * **Exactly-once multicast** — whatever the replication strategy
//!   (hybrid splits, tree forks, or path passing deliveries), exactly
//!   one copy arrives per destination-list slot: no duplicates, and
//!   (checked at quiescence) no starved endpoint.
//! * **Replication budget** — the active [`crate::strategy`] model
//!   predicts exactly how many replica copies a packet costs
//!   (`flits × (n_dests − 1)` for all three strategies); the running
//!   count may never overshoot it and must land on it by quiescence.
//! * **Channel enumeration** — within each routed segment, head flits
//!   cross strictly increasing channel numbers under the total order
//!   from [`crate::deadlock`] (the paper's Fig. 5(b) argument). The
//!   order is recomputed when a fault rebuilds the routing table, and
//!   per-segment history resets so hops taken under different tables
//!   are never compared. (Only segments are checked: a multicast
//!   split starts a fresh segment, since the concatenated path is not
//!   in general a routed path of the table.)
//!
//! Violations are recorded as typed [`InvariantViolation`]s with the
//! most recent entries of the network's event log attached, and the
//! first one surfaces from `Network::step` as
//! [`crate::SimError::Invariant`].
//!
//! The checker is `None` by default; the disabled path costs one
//! pointer-sized branch per hook and keeps the kernel allocation-free
//! (see `tests/alloc_free_step.rs`).

use std::collections::BTreeMap;
use std::fmt;

use crate::evlog::{EventLog, NetEvent};
use crate::ids::{Endpoint, LinkId};
use crate::packet::PacketId;
use crate::strategy::MulticastStrategy;

/// Violations retained with full detail; later ones only increment
/// [`InvariantChecker::total_violations`].
const MAX_VIOLATIONS: usize = 32;

/// How many trailing event-log entries a violation report carries.
const RECENT_EVENTS: usize = 32;

/// One violated invariant, with enough state to diagnose it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvariantKind {
    /// Created flit copies do not equal buffered + on-wire + ejected.
    FlitConservation {
        /// Flit copies created so far (injection + replication).
        created: u64,
        /// Flits buffered across all input VCs.
        buffered: u64,
        /// Flits on the wire (recounted from the event wheel).
        on_wire: u64,
        /// Flits handed to local sinks.
        ejected: u64,
    },
    /// Per-(link, VC) credit conservation failed.
    CreditAccounting {
        /// The link whose VC is inconsistent.
        link: LinkId,
        /// VC index within the link.
        vc: u8,
        /// Upstream sender-side credits.
        credits: u8,
        /// Flits on the wire toward the downstream buffer.
        wire_flits: u32,
        /// Credits on the wire back upstream.
        wire_credits: u32,
        /// Downstream buffer occupancy counted against credits
        /// (zero while the VC holds locally written replica flits).
        buffered: u32,
        /// The buffer depth all of the above must sum to.
        vc_depth: u8,
    },
    /// The kernel's `inflight` array disagrees with a recount of the
    /// event wheel's scheduled arrivals.
    InflightDrift {
        /// The affected link.
        link: LinkId,
        /// VC index within the link.
        vc: u8,
        /// What the kernel's counter says.
        tracked: u32,
        /// What the event wheel actually holds.
        recounted: u32,
    },
    /// A flit ejected out of wormhole order at a destination.
    FlitOrder {
        /// The packet involved.
        packet: PacketId,
        /// Destination endpoint where order broke.
        endpoint: Endpoint,
        /// The sequence number that should have ejected next.
        expected_seq: u32,
        /// The sequence number that actually ejected.
        got_seq: u32,
    },
    /// A destination-list slot received more than one tail.
    DuplicateDelivery {
        /// The packet involved.
        packet: PacketId,
        /// The endpoint delivered to more than once.
        endpoint: Endpoint,
        /// Tail copies seen so far (> 1).
        copies: u32,
    },
    /// A flit ejected at an endpoint that is not the destination-list
    /// slot it claims to serve.
    UnexpectedEndpoint {
        /// The packet involved.
        packet: PacketId,
        /// Where the flit actually ejected.
        endpoint: Endpoint,
        /// The destination-list index the flit carried.
        dest_idx: u32,
    },
    /// At quiescence, a tracked packet left a destination without its
    /// delivery (a starved multicast endpoint or a lost packet).
    MissingDelivery {
        /// The packet involved.
        packet: PacketId,
        /// The endpoint that never received its copy.
        endpoint: Endpoint,
        /// Flits that did eject there before traffic stopped.
        flits_seen: u32,
    },
    /// A packet's replica-copy count disagrees with what the active
    /// multicast strategy predicts. Every strategy — hybrid splits,
    /// tree forks, path passing deliveries — creates exactly
    /// `flits × (n_dests − 1)` copies per fully delivered packet, so
    /// this fires while running when the count overshoots and at
    /// quiescence when it lands anywhere else.
    ReplicaCount {
        /// The packet involved.
        packet: PacketId,
        /// Replica copies created for it so far.
        copies: u64,
        /// What the strategy model predicts for full delivery.
        expected: u64,
    },
    /// A head flit crossed a channel whose enumeration rank does not
    /// exceed the previous hop's within the same routed segment.
    ChannelOrder {
        /// The packet involved.
        packet: PacketId,
        /// The offending link.
        link: LinkId,
        /// Rank of the previous hop's channel.
        prev_rank: u32,
        /// Rank of this hop's channel (must be greater).
        rank: u32,
    },
}

impl fmt::Display for InvariantKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantKind::FlitConservation {
                created,
                buffered,
                on_wire,
                ejected,
            } => write!(
                f,
                "flit conservation: created {created} != buffered {buffered} + \
                 on-wire {on_wire} + ejected {ejected}"
            ),
            InvariantKind::CreditAccounting {
                link,
                vc,
                credits,
                wire_flits,
                wire_credits,
                buffered,
                vc_depth,
            } => write!(
                f,
                "credit accounting on {link:?} vc {vc}: credits {credits} + wire flits \
                 {wire_flits} + wire credits {wire_credits} + buffered {buffered} != \
                 vc_depth {vc_depth}"
            ),
            InvariantKind::InflightDrift {
                link,
                vc,
                tracked,
                recounted,
            } => write!(
                f,
                "inflight drift on {link:?} vc {vc}: kernel tracks {tracked}, \
                 wheel holds {recounted}"
            ),
            InvariantKind::FlitOrder {
                packet,
                endpoint,
                expected_seq,
                got_seq,
            } => write!(
                f,
                "wormhole order broken: {packet:?} at {endpoint} ejected seq {got_seq}, \
                 expected {expected_seq}"
            ),
            InvariantKind::DuplicateDelivery {
                packet,
                endpoint,
                copies,
            } => write!(
                f,
                "duplicate delivery: {packet:?} delivered {copies} copies to {endpoint}"
            ),
            InvariantKind::UnexpectedEndpoint {
                packet,
                endpoint,
                dest_idx,
            } => write!(
                f,
                "unexpected endpoint: {packet:?} ejected at {endpoint} for dest slot {dest_idx}"
            ),
            InvariantKind::MissingDelivery {
                packet,
                endpoint,
                flits_seen,
            } => write!(
                f,
                "missing delivery: {packet:?} never completed at {endpoint} \
                 ({flits_seen} flits seen)"
            ),
            InvariantKind::ReplicaCount {
                packet,
                copies,
                expected,
            } => write!(
                f,
                "replica count: {packet:?} created {copies} copies, strategy \
                 predicts {expected}"
            ),
            InvariantKind::ChannelOrder {
                packet,
                link,
                prev_rank,
                rank,
            } => write!(
                f,
                "channel enumeration broken: {packet:?} crossed {link:?} rank {rank} \
                 after rank {prev_rank}"
            ),
        }
    }
}

/// A violated invariant with the cycle it was detected at and the tail
/// of the network's event log for causal context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Cycle at which the checker caught the violation.
    pub cycle: u64,
    /// What went wrong.
    pub kind: InvariantKind,
    /// The most recent event-log entries (oldest first) at detection
    /// time; empty when logging was disabled.
    pub recent: Vec<NetEvent>,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}: {}", self.cycle, self.kind)?;
        if !self.recent.is_empty() {
            write!(f, " (last {} events logged)", self.recent.len())?;
        }
        Ok(())
    }
}

/// Per-packet tracking state, one entry per in-flight packet; dropped
/// once the packet's deliveries check out at network quiescence.
#[derive(Debug)]
struct PacketTrack {
    flits: u32,
    dests: Vec<Endpoint>,
    /// Next expected ejected sequence number per destination slot.
    next_seq: Vec<u32>,
    /// Tail copies delivered per destination slot (must end at 1).
    tails: Vec<u32>,
    /// Replica flit copies created for this packet so far.
    copies: u64,
    /// What the strategy model predicts for full delivery
    /// (`flits × (n_dests − 1)` under every current strategy).
    copy_limit: u64,
}

/// Pluggable per-cycle invariant checker (see the module docs).
///
/// Owned as an `Option` by [`crate::Network`]; construct it via
/// [`crate::Network::enable_invariant_checker`].
#[derive(Debug, Default)]
pub struct InvariantChecker {
    /// Channel total order of the current routing table, when one
    /// exists; `None` disables per-hop rank checks.
    enumeration: Option<Vec<u32>>,
    /// The multicast strategy whose replication expectations apply.
    strategy: MulticastStrategy,
    /// Flit copies created so far (injected flits + replica writes).
    created: u64,
    packets: BTreeMap<PacketId, PacketTrack>,
    /// Channel rank of the last link a head crossed, keyed by
    /// (packet, destination-list index) — i.e. per routed segment.
    last_rank: BTreeMap<(PacketId, u32), u32>,
    /// Per-slot wire recounts, refilled from the event wheel each audit.
    wire_flits: Vec<u32>,
    wire_credits: Vec<u32>,
    /// Kinds detected this cycle, sealed into violations at step end.
    found: Vec<InvariantKind>,
    violations: Vec<InvariantViolation>,
    total_violations: u64,
    audits: u64,
}

impl InvariantChecker {
    /// Creates a checker with the given channel enumeration (from
    /// [`crate::deadlock::ChannelDependencyGraph::enumeration`]) and
    /// the multicast strategy whose replication counts to expect.
    pub(crate) fn new(enumeration: Option<Vec<u32>>, strategy: MulticastStrategy) -> Self {
        InvariantChecker {
            enumeration,
            strategy,
            ..Default::default()
        }
    }

    fn record(&mut self, kind: InvariantKind) {
        self.total_violations += 1;
        if self.found.len() + self.violations.len() < MAX_VIOLATIONS {
            self.found.push(kind);
        }
    }

    /// Registers an injected packet.
    pub(crate) fn on_inject(&mut self, id: PacketId, flits: u32, dests: &[Endpoint]) {
        self.created += u64::from(flits);
        self.packets.insert(
            id,
            PacketTrack {
                flits,
                dests: dests.to_vec(),
                next_seq: vec![0; dests.len()],
                tails: vec![0; dests.len()],
                copies: 0,
                copy_limit: self.strategy.model().replica_copies(flits, dests.len()),
            },
        );
    }

    /// Registers one replica flit copy and checks the running count
    /// against the strategy model's prediction for the packet.
    pub(crate) fn on_replica_copy(&mut self, id: PacketId) {
        self.created += 1;
        let Some(track) = self.packets.get_mut(&id) else {
            // Injected before the checker was enabled; count the copy
            // for conservation, but there is no prediction to check.
            return;
        };
        track.copies += 1;
        let (copies, limit) = (track.copies, track.copy_limit);
        if copies > limit {
            self.record(InvariantKind::ReplicaCount {
                packet: id,
                copies,
                expected: limit,
            });
        }
    }

    /// Checks one ejected flit for wormhole order, destination
    /// membership, and duplicate tails.
    pub(crate) fn on_eject(
        &mut self,
        id: PacketId,
        seq: u32,
        dest_idx: u32,
        endpoint: Endpoint,
        is_tail: bool,
    ) {
        let Some(track) = self.packets.get_mut(&id) else {
            // Injected before the checker was enabled; nothing to say.
            return;
        };
        let slot = dest_idx as usize;
        if track.dests.get(slot) != Some(&endpoint) {
            self.record(InvariantKind::UnexpectedEndpoint {
                packet: id,
                endpoint,
                dest_idx,
            });
            return;
        }
        let track = self.packets.get_mut(&id).expect("present above");
        let expected = track.next_seq[slot] % track.flits;
        if seq != expected {
            let kind = InvariantKind::FlitOrder {
                packet: id,
                endpoint,
                expected_seq: expected,
                got_seq: seq,
            };
            self.record(kind);
        }
        let track = self.packets.get_mut(&id).expect("present above");
        track.next_seq[slot] += 1;
        if is_tail {
            track.tails[slot] += 1;
            let copies = track.tails[slot];
            if copies > 1 {
                self.record(InvariantKind::DuplicateDelivery {
                    packet: id,
                    endpoint,
                    copies,
                });
            }
        }
    }

    /// Checks a head flit's link crossing against the channel total
    /// order, per routed segment.
    pub(crate) fn on_link_send(&mut self, id: PacketId, dest_idx: u32, link: LinkId) {
        let Some(order) = &self.enumeration else {
            return;
        };
        let rank = order[link.0 as usize];
        let key = (id, dest_idx);
        if let Some(prev) = self.last_rank.insert(key, rank) {
            if prev >= rank {
                self.record(InvariantKind::ChannelOrder {
                    packet: id,
                    link,
                    prev_rank: prev,
                    rank,
                });
            }
        }
    }

    /// A fault rebuilt the routing table: adopt its (re-derived)
    /// enumeration and forget per-segment hop history so hops under
    /// different tables are never compared.
    pub(crate) fn on_table_rebuilt(&mut self, enumeration: Option<Vec<u32>>) {
        self.enumeration = enumeration;
        self.last_rank.clear();
    }

    /// Resets the per-slot wire recount buffers for a new audit.
    pub(crate) fn begin_wire(&mut self, slots: usize) {
        self.audits += 1;
        self.wire_flits.clear();
        self.wire_flits.resize(slots, 0);
        self.wire_credits.clear();
        self.wire_credits.resize(slots, 0);
    }

    /// Counts one scheduled flit arrival on `slot`.
    pub(crate) fn wire_flit(&mut self, slot: usize) {
        self.wire_flits[slot] += 1;
    }

    /// Counts one scheduled credit return on `slot`.
    pub(crate) fn wire_credit(&mut self, slot: usize) {
        self.wire_credits[slot] += 1;
    }

    /// Total flits on the wire per the recount.
    pub(crate) fn wire_flit_total(&self) -> u64 {
        self.wire_flits.iter().map(|&f| u64::from(f)).sum()
    }

    /// Audits one (link, VC) slot's credit conservation.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn check_slot(
        &mut self,
        link: LinkId,
        vc: u8,
        slot: usize,
        credits: u8,
        buffered: u32,
        replica: bool,
        inflight: u32,
        vc_depth: u8,
    ) {
        let wire_flits = self.wire_flits[slot];
        let wire_credits = self.wire_credits[slot];
        if wire_flits != inflight {
            self.record(InvariantKind::InflightDrift {
                link,
                vc,
                tracked: inflight,
                recounted: wire_flits,
            });
        }
        // Replica flits were written locally without consuming upstream
        // credits, so they are invisible to this equation.
        let counted = if replica { 0 } else { buffered };
        let sum = u32::from(credits) + wire_flits + wire_credits + counted;
        if sum != u32::from(vc_depth) {
            self.record(InvariantKind::CreditAccounting {
                link,
                vc,
                credits,
                wire_flits,
                wire_credits,
                buffered: counted,
                vc_depth,
            });
        }
    }

    /// Audits global flit conservation; `on_wire` comes from the wheel
    /// recount of the same audit.
    pub(crate) fn check_conservation(&mut self, buffered: u64, ejected: u64) {
        let on_wire = self.wire_flit_total();
        if self.created != buffered + on_wire + ejected {
            self.record(InvariantKind::FlitConservation {
                created: self.created,
                buffered,
                on_wire,
                ejected,
            });
        }
    }

    /// At network quiescence every tracked packet must have delivered
    /// exactly one full copy per destination slot; tracking state is
    /// then dropped, bounding the checker's memory by the in-flight
    /// packet count.
    pub(crate) fn audit_quiescent(&mut self) {
        let packets = std::mem::take(&mut self.packets);
        for (id, track) in &packets {
            for (slot, &endpoint) in track.dests.iter().enumerate() {
                if track.tails[slot] != 1 || track.next_seq[slot] != track.flits {
                    self.record(InvariantKind::MissingDelivery {
                        packet: *id,
                        endpoint,
                        flits_seen: track.next_seq[slot],
                    });
                }
            }
            // A fully delivered packet must have cost exactly the
            // copies its strategy predicts — no more, no fewer.
            if track.copies != track.copy_limit {
                self.record(InvariantKind::ReplicaCount {
                    packet: *id,
                    copies: track.copies,
                    expected: track.copy_limit,
                });
            }
        }
        self.last_rank.clear();
    }

    /// Seals this cycle's findings into [`InvariantViolation`]s,
    /// attaching the tail of the event log.
    pub(crate) fn seal(&mut self, cycle: u64, evlog: Option<&EventLog>) {
        if self.found.is_empty() {
            return;
        }
        let recent: Vec<NetEvent> = evlog.map(|l| l.recent(RECENT_EVENTS)).unwrap_or_default();
        for kind in self.found.drain(..) {
            self.violations.push(InvariantViolation {
                cycle,
                kind,
                recent: recent.clone(),
            });
        }
    }

    /// Violations recorded so far (bounded; see
    /// [`InvariantChecker::total_violations`] for the unbounded count).
    pub fn violations(&self) -> &[InvariantViolation] {
        &self.violations
    }

    /// Total violations detected, including any past the retention cap.
    pub fn total_violations(&self) -> u64 {
        self.total_violations
    }

    /// Per-cycle audits performed.
    pub fn audits(&self) -> u64 {
        self.audits
    }

    /// Packets currently tracked (in flight since the last quiescent
    /// audit).
    pub fn tracked_packets(&self) -> usize {
        self.packets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;

    fn ep(n: u32) -> Endpoint {
        Endpoint::at(NodeId(n))
    }

    #[test]
    fn clean_unicast_life_cycle_records_nothing() {
        let mut c = InvariantChecker::new(None, MulticastStrategy::Hybrid);
        c.on_inject(PacketId(0), 2, &[ep(3)]);
        c.on_eject(PacketId(0), 0, 0, ep(3), false);
        c.on_eject(PacketId(0), 1, 0, ep(3), true);
        c.check_conservation(0, 2);
        c.audit_quiescent();
        c.seal(9, None);
        assert!(c.violations().is_empty());
        assert_eq!(c.total_violations(), 0);
        assert_eq!(c.tracked_packets(), 0);
    }

    #[test]
    fn out_of_order_eject_is_flagged() {
        let mut c = InvariantChecker::new(None, MulticastStrategy::Hybrid);
        c.on_inject(PacketId(1), 3, &[ep(2)]);
        c.on_eject(PacketId(1), 1, 0, ep(2), false);
        c.seal(5, None);
        assert!(matches!(
            c.violations()[0].kind,
            InvariantKind::FlitOrder {
                expected_seq: 0,
                got_seq: 1,
                ..
            }
        ));
        assert_eq!(c.violations()[0].cycle, 5);
    }

    #[test]
    fn duplicate_tail_is_flagged() {
        let mut c = InvariantChecker::new(None, MulticastStrategy::Hybrid);
        c.on_inject(PacketId(2), 1, &[ep(4)]);
        c.on_eject(PacketId(2), 0, 0, ep(4), true);
        c.on_eject(PacketId(2), 0, 0, ep(4), true);
        c.seal(1, None);
        let dup = c
            .violations()
            .iter()
            .any(|v| matches!(v.kind, InvariantKind::DuplicateDelivery { copies: 2, .. }));
        assert!(dup, "{:?}", c.violations());
    }

    #[test]
    fn missing_delivery_caught_at_quiescence() {
        let mut c = InvariantChecker::new(None, MulticastStrategy::Hybrid);
        c.on_inject(PacketId(3), 1, &[ep(1), ep(5)]);
        c.on_eject(PacketId(3), 0, 0, ep(1), true);
        c.audit_quiescent();
        c.seal(7, None);
        assert!(matches!(
            c.violations()[0].kind,
            InvariantKind::MissingDelivery { flits_seen: 0, .. }
        ));
    }

    #[test]
    fn conservation_mismatch_is_flagged() {
        let mut c = InvariantChecker::new(None, MulticastStrategy::Hybrid);
        c.on_inject(PacketId(4), 5, &[ep(1)]);
        c.begin_wire(4);
        c.wire_flit(0);
        c.check_conservation(1, 2); // 5 created, 1 buffered + 1 wire + 2 ejected
        c.seal(3, None);
        assert!(matches!(
            c.violations()[0].kind,
            InvariantKind::FlitConservation {
                created: 5,
                buffered: 1,
                on_wire: 1,
                ejected: 2,
            }
        ));
    }

    #[test]
    fn channel_rank_must_increase_within_a_segment() {
        let mut c = InvariantChecker::new(Some(vec![0, 2, 1]), MulticastStrategy::Hybrid);
        c.on_inject(PacketId(5), 1, &[ep(9)]);
        c.on_link_send(PacketId(5), 0, LinkId(1)); // rank 2
        c.on_link_send(PacketId(5), 0, LinkId(2)); // rank 1 < 2: violation
        c.on_link_send(PacketId(5), 1, LinkId(2)); // fresh segment: fine
        c.seal(2, None);
        assert_eq!(c.violations().len(), 1);
        assert!(matches!(
            c.violations()[0].kind,
            InvariantKind::ChannelOrder {
                prev_rank: 2,
                rank: 1,
                ..
            }
        ));
    }

    #[test]
    fn table_rebuild_resets_segment_history() {
        let mut c = InvariantChecker::new(Some(vec![5, 0]), MulticastStrategy::Hybrid);
        c.on_link_send(PacketId(6), 0, LinkId(0)); // rank 5
        c.on_table_rebuilt(Some(vec![5, 0]));
        c.on_link_send(PacketId(6), 0, LinkId(1)); // rank 0, but fresh history
        c.seal(1, None);
        assert!(c.violations().is_empty());
    }

    #[test]
    fn credit_slot_mismatch_and_drift() {
        let mut c = InvariantChecker::new(None, MulticastStrategy::Hybrid);
        c.begin_wire(2);
        c.wire_flit(0);
        // Slot 0: kernel claims 0 inflight but the wheel holds 1 → drift,
        // and 3 credits + 1 wire flit + 1 buffered = 5 != 4 → accounting.
        c.check_slot(LinkId(0), 0, 0, 3, 1, false, 0, 4);
        // Slot 1: replica flits excluded → 4 + 0 + 0 + (replica) = 4. OK.
        c.check_slot(LinkId(0), 1, 1, 4, 3, true, 0, 4);
        c.seal(2, None);
        assert_eq!(c.violations().len(), 2);
        assert!(matches!(
            c.violations()[0].kind,
            InvariantKind::InflightDrift { tracked: 0, recounted: 1, .. }
        ));
        assert!(matches!(
            c.violations()[1].kind,
            InvariantKind::CreditAccounting { .. }
        ));
    }

    #[test]
    fn replica_overshoot_is_flagged_while_running() {
        // Hybrid: 2 flits to 2 endpoints budgets 2 × (2−1) = 2 copies.
        let mut c = InvariantChecker::new(None, MulticastStrategy::Hybrid);
        c.on_inject(PacketId(8), 2, &[ep(1), ep(2)]);
        c.on_replica_copy(PacketId(8));
        c.on_replica_copy(PacketId(8));
        c.seal(1, None);
        assert!(c.violations().is_empty(), "{:?}", c.violations());
        c.on_replica_copy(PacketId(8)); // third copy overshoots
        c.seal(2, None);
        assert!(matches!(
            c.violations()[0].kind,
            InvariantKind::ReplicaCount {
                copies: 3,
                expected: 2,
                ..
            }
        ));
    }

    #[test]
    fn replica_shortfall_is_caught_at_quiescence() {
        // Path multicast still owes one passing copy per extra
        // destination; a fully delivered packet with none is wrong.
        let mut c = InvariantChecker::new(None, MulticastStrategy::Path);
        c.on_inject(PacketId(9), 1, &[ep(1), ep(2)]);
        c.on_eject(PacketId(9), 0, 0, ep(1), true);
        c.on_eject(PacketId(9), 0, 1, ep(2), true);
        c.audit_quiescent();
        c.seal(3, None);
        assert!(matches!(
            c.violations()[0].kind,
            InvariantKind::ReplicaCount {
                copies: 0,
                expected: 1,
                ..
            }
        ));
    }

    #[test]
    fn untracked_replica_copy_only_counts_conservation() {
        let mut c = InvariantChecker::new(None, MulticastStrategy::Tree);
        c.on_replica_copy(PacketId(99)); // injected pre-enable
        c.check_conservation(1, 0);
        c.seal(1, None);
        assert!(c.violations().is_empty(), "{:?}", c.violations());
    }

    #[test]
    fn violations_attach_recent_events() {
        let mut log = EventLog::new(8);
        log.push(NetEvent::ReplicaBlocked {
            cycle: 1,
            node: NodeId(0),
        });
        let mut c = InvariantChecker::new(None, MulticastStrategy::Hybrid);
        c.on_inject(PacketId(7), 1, &[ep(1)]);
        c.on_eject(PacketId(7), 0, 0, ep(2), true); // wrong endpoint
        c.seal(4, Some(&log));
        assert_eq!(c.violations().len(), 1);
        assert_eq!(c.violations()[0].recent.len(), 1);
        let shown = c.violations()[0].to_string();
        assert!(shown.contains("unexpected endpoint"), "{shown}");
        assert!(shown.contains("events logged"), "{shown}");
    }

    #[test]
    fn retention_is_bounded_but_total_counts_on() {
        let mut c = InvariantChecker::new(None, MulticastStrategy::Hybrid);
        for i in 0..100u64 {
            c.on_eject(PacketId(50), 0, 0, ep(1), true);
            c.on_inject(PacketId(50), 1, &[ep(2)]);
            c.on_eject(PacketId(50), 0, 0, ep(1), true); // unexpected endpoint
            c.seal(i, None);
        }
        assert!(c.violations().len() <= MAX_VIOLATIONS);
        assert!(c.total_violations() >= 100);
    }
}
