//! Per-router microarchitectural state.
//!
//! Each router has one *input unit* per port (a set of virtual channels
//! with flit FIFOs) and one *output unit* per port (per-VC ownership and
//! credit state mirroring the downstream input buffer). Local ports act
//! as injection queues on the input side and ejection sinks on the
//! output side.
//!
//! Multicast replication follows §3.1 of the paper: when a path-multicast
//! head must both eject locally and continue, the router reserves a free
//! VC of a *different* input physical channel and copies each flit into
//! it as the primary flit traverses the switch. The replica VC then
//! competes for the ejection port like any other input VC. No dedicated
//! multicast buffers exist; when no VC is free the packet blocks.

use std::collections::VecDeque;

use crate::packet::FlitRef;

/// Where an input VC's current packet is headed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct OutRoute {
    /// Output port index at this router.
    pub port: u8,
    /// Downstream VC index (unused for ejection).
    pub vc: u8,
    /// True when `port` is a local slot (ejection).
    pub eject: bool,
}

/// Multicast split state on a primary input VC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Split {
    /// Input port holding the replica VC.
    pub port: u8,
    /// Replica VC index within that port.
    pub vc: u8,
}

/// One virtual channel of an input unit.
#[derive(Debug)]
pub(crate) struct InputVc<P> {
    pub buf: VecDeque<FlitRef<P>>,
    /// Allocated output for the packet currently traversing this VC.
    pub route: Option<OutRoute>,
    /// Multicast replication target, when this VC carries a primary
    /// multicast stream that still has further endpoints.
    pub split: Option<Split>,
    /// True while this VC stores locally written replica flits. Such
    /// flits did not arrive over the link, so ejecting them returns no
    /// upstream credit.
    pub replica_role: bool,
}

impl<P> InputVc<P> {
    /// Creates an idle VC with its flit buffer pre-sized to `depth`:
    /// credit flow control bounds network VCs to `depth` flits, so a
    /// pre-sized buffer never reallocates in steady state. (Local
    /// injection queues may still grow past `depth` — they are
    /// unbounded source queues filled by `inject`, outside the cycle
    /// kernel.)
    pub fn new(depth: u8) -> Self {
        InputVc {
            buf: VecDeque::with_capacity(depth as usize),
            route: None,
            split: None,
            replica_role: false,
        }
    }

    /// A VC is free for replica reservation when it is completely idle.
    pub fn is_free(&self) -> bool {
        self.buf.is_empty() && self.route.is_none() && !self.replica_role
    }
}

/// Input unit of one port.
#[derive(Debug)]
pub(crate) struct InputPort<P> {
    pub vcs: Vec<InputVc<P>>,
    /// Local ports hold injection queues (unbounded source queues).
    pub is_local: bool,
    /// Flits received over the link; the replica selector prefers the
    /// least-utilised physical channel (§3.1).
    pub util: u64,
}

/// Sender-side state for one VC of an outgoing link.
#[derive(Debug, Clone, Copy)]
pub(crate) struct OutVcState {
    /// Allocated to a packet (set at head, cleared at tail).
    pub owner: bool,
    /// Free downstream buffer slots we may still consume.
    pub credits: u8,
}

/// Output unit of one port.
#[derive(Debug)]
pub(crate) struct OutputPort {
    /// Per-VC sender-side state; present only for ports with an
    /// outgoing link (local ejection sinks need none).
    pub vcs: Vec<OutVcState>,
    /// Round-robin pointer over input ports for switch allocation.
    pub rr: u8,
}

/// Full microarchitectural state of one router.
#[derive(Debug)]
pub(crate) struct RouterState<P> {
    pub inputs: Vec<InputPort<P>>,
    pub outputs: Vec<OutputPort>,
    /// Round-robin pointer over VCs, per input port.
    pub rr_in: Vec<u8>,
}

/// Reusable per-cycle temporaries for the router loop, owned by the
/// network so the cycle kernel never allocates in steady state. Every
/// buffer is sized once (to the widest router) and *cleared*, not
/// reallocated, between routers.
#[derive(Debug)]
pub(crate) struct RouterScratch {
    /// Phase A result: the VC each input port nominates, `None` when
    /// the port has nothing sendable. Only `[..n_ports]` is meaningful
    /// for the router being processed.
    pub nominee: Vec<Option<u8>>,
    /// Input ports requesting the output port currently arbitrated
    /// (ascending order, rebuilt per output).
    pub requesting: Vec<u8>,
    /// Switch-allocation winners of the current router: `(input port,
    /// input VC)` pairs, in output-port order.
    pub winners: Vec<(u8, u8)>,
    /// This cycle's sorted router worklist; swapped with the network's
    /// pending list so both keep their capacity across cycles.
    pub work: Vec<u32>,
}

impl RouterScratch {
    /// Builds scratch buffers for routers with up to `max_ports` ports.
    pub fn for_max_ports(max_ports: usize) -> Self {
        RouterScratch {
            nominee: vec![None; max_ports],
            requesting: Vec::with_capacity(max_ports),
            winners: Vec::with_capacity(max_ports),
            work: Vec::new(),
        }
    }
}

/// One route / VC-allocation decision computed for an input VC during
/// the parallel compute phase of the two-phase cycle kernel.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RouteIntent {
    /// Input port of the VC being routed.
    pub port: u8,
    /// Input VC index within that port.
    pub vc: u8,
    /// The route to install. `eject == false` implies an ownership claim
    /// on the named output VC at commit time.
    pub route: OutRoute,
    /// The allocation deviates from the fault-free table (commit bumps
    /// `packets_rerouted`).
    pub rerouted: bool,
}

/// Everything one router decided during the compute phase, to be applied
/// verbatim — or discarded — by the serial commit pass. All buffers are
/// cleared and reused across cycles, never reallocated in steady state.
#[derive(Debug, Default)]
pub(crate) struct RouterIntent {
    /// Routes (and implied output-VC claims) for unrouted VC fronts.
    pub routes: Vec<RouteIntent>,
    /// New output-side round-robin pointers: `(output port, pointer)`.
    pub rr_out: Vec<(u8, u8)>,
    /// Switch-allocation winners `(input port, input VC)` in output-port
    /// order, exactly as the serial kernel would have produced them.
    pub winners: Vec<(u8, u8)>,
    /// Heads that found every path cut by a fault this cycle (commit
    /// adds this to `route_blocked_cycles`).
    pub route_blocked: u32,
}

impl RouterIntent {
    /// Empties the intent for reuse without dropping buffer capacity.
    pub fn clear(&mut self) {
        self.routes.clear();
        self.rr_out.clear();
        self.winners.clear();
        self.route_blocked = 0;
    }
}

/// Per-worker temporaries of the compute phase — the read-only analogue
/// of [`RouterScratch`]. Each compute worker owns one, so workers never
/// share mutable buffers.
#[derive(Debug)]
pub(crate) struct ComputeScratch {
    /// Phase A nominations (see [`RouterScratch::nominee`]).
    pub nominee: Vec<Option<u8>>,
    /// Requesting ports for the output currently arbitrated.
    pub requesting: Vec<u8>,
}

impl ComputeScratch {
    /// Builds scratch sized for routers with up to `max_ports` ports.
    pub fn for_max_ports(max_ports: usize) -> Self {
        ComputeScratch {
            nominee: vec![None; max_ports],
            requesting: Vec::with_capacity(max_ports),
        }
    }
}

impl<P> Default for RouterState<P> {
    fn default() -> Self {
        RouterState {
            inputs: Vec::new(),
            outputs: Vec::new(),
            rr_in: Vec::new(),
        }
    }
}

impl<P> RouterState<P> {
    /// Builds state for a router with the given port shapes.
    pub fn build(ports: &[(bool, bool)], vcs_per_port: u8, vc_depth: u8) -> Self {
        // ports: (is_local, has_out_link)
        let inputs = ports
            .iter()
            .map(|&(is_local, _)| InputPort {
                vcs: (0..vcs_per_port).map(|_| InputVc::new(vc_depth)).collect(),
                is_local,
                util: 0,
            })
            .collect();
        let outputs = ports
            .iter()
            .map(|&(_, has_link)| OutputPort {
                vcs: if has_link {
                    (0..vcs_per_port)
                        .map(|_| OutVcState {
                            owner: false,
                            credits: vc_depth,
                        })
                        .collect()
                } else {
                    Vec::new()
                },
                rr: 0,
            })
            .collect();
        RouterState {
            inputs,
            outputs,
            rr_in: vec![0; ports.len()],
        }
    }

    /// Whether any input VC holds flits (router must stay scheduled).
    pub fn has_work(&self) -> bool {
        self.inputs
            .iter()
            .any(|p| p.vcs.iter().any(|v| !v.buf.is_empty()))
    }

    /// Total buffered flits (diagnostics).
    pub fn buffered_flits(&self) -> usize {
        self.inputs
            .iter()
            .map(|p| p.vcs.iter().map(|v| v.buf.len()).sum::<usize>())
            .sum()
    }

    /// Input VCs holding flits but no allocated route — heads waiting on
    /// routing, e.g. cut off by a link fault (diagnostics).
    pub fn blocked_heads(&self) -> usize {
        self.inputs
            .iter()
            .flat_map(|p| p.vcs.iter())
            .filter(|v| !v.buf.is_empty() && v.route.is_none())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_shapes_ports() {
        let r: RouterState<()> = RouterState::build(&[(true, false), (false, true)], 4, 4);
        assert_eq!(r.inputs.len(), 2);
        assert!(r.inputs[0].is_local);
        assert!(!r.inputs[1].is_local);
        assert_eq!(r.inputs[1].vcs.len(), 4);
        assert!(
            r.outputs[0].vcs.is_empty(),
            "local output has no credit state"
        );
        assert_eq!(r.outputs[1].vcs.len(), 4);
        assert_eq!(r.outputs[1].vcs[0].credits, 4);
        assert!(!r.has_work());
        assert_eq!(r.buffered_flits(), 0);
    }

    #[test]
    fn fresh_vc_is_free() {
        let vc: InputVc<()> = InputVc::new(4);
        assert!(vc.is_free());
    }

    #[test]
    fn vc_with_route_is_not_free() {
        let mut vc: InputVc<()> = InputVc::new(4);
        vc.route = Some(OutRoute {
            port: 1,
            vc: 0,
            eject: false,
        });
        assert!(!vc.is_free());
    }

    #[test]
    fn replica_role_vc_is_not_free() {
        let mut vc: InputVc<()> = InputVc::new(4);
        vc.replica_role = true;
        assert!(!vc.is_free());
    }
}
