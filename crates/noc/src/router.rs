//! Router microarchitectural state, stored structure-of-arrays.
//!
//! Each router has one *input unit* per port (a set of virtual channels
//! with flit FIFOs) and one *output unit* per port (per-VC ownership and
//! credit state mirroring the downstream input buffer). Local ports act
//! as injection queues on the input side and ejection sinks on the
//! output side.
//!
//! Since the SoA refactor the per-router structs are gone: every field
//! lives in one flat slab (`NetSlabs`) indexed by a global *port slot*
//! (`port_base[router] + port`) or *VC slot* (`port_slot * vcs + vc`).
//! The hot cycle kernel — serial, compute phase, and sharded commit —
//! walks contiguous arrays instead of chasing one heap box per router,
//! and the parallel phases can hand out disjoint raw-pointer views per
//! worker without per-router snapshot copies.
//!
//! Multicast replication follows §3.1 of the paper: when a path-multicast
//! head must both eject locally and continue, the router reserves a free
//! VC of a *different* input physical channel and copies each flit into
//! it as the primary flit traverses the switch. The replica VC then
//! competes for the ejection port like any other input VC. No dedicated
//! multicast buffers exist; when no VC is free the packet blocks.

use crate::packet::FlitQueue;
use crate::topology::{PortLabel, Topology};

/// Where an input VC's current packet is headed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct OutRoute {
    /// Output port index at this router.
    pub port: u8,
    /// Downstream VC index (unused for ejection).
    pub vc: u8,
    /// True when `port` is a local slot (ejection).
    pub eject: bool,
}

/// Multicast split state on a primary input VC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Split {
    /// Input port holding the replica VC.
    pub port: u8,
    /// Replica VC index within that port.
    pub vc: u8,
    /// Destination-list index where the split divides the worm's range:
    /// under hybrid replication the clone ejects here and the primary
    /// resumes at `resume` (always `dest_idx + 1`); under tree
    /// replication the primary keeps `dest_idx .. resume` and the clone
    /// carries `resume .. dest_hi` onward.
    pub resume: u32,
}

/// Structure-of-arrays storage for every router's microarchitectural
/// state.
///
/// # Layout
///
/// `port_base` is a prefix sum over router port counts: router `r` owns
/// global ports `port_base[r] .. port_base[r + 1]`, and every port has
/// exactly `vcs` virtual channels, so
///
/// * **port slot** of `(r, p)` = `port_base[r] + p`, indexing the
///   per-port arrays (`is_local`, `has_out`, `util`, `rr_in`, `out_rr`);
/// * **VC slot** of `(r, p, v)` = `port_slot * vcs + v`, indexing the
///   per-VC arrays (`buf`, `route`, `split`, `replica_role` on the
///   input side; `out_owner`, `out_credits` on the output side).
///
/// A router's entire state is therefore one contiguous range per array,
/// which is what lets the cycle kernel's compute phase read a true
/// shared snapshot and the sharded commit phase write disjoint ranges
/// from different workers.
#[derive(Debug)]
pub(crate) struct NetSlabs<P> {
    /// Prefix sum of port counts; `port_base.len() == n_routers + 1`.
    pub port_base: Vec<u32>,
    /// Virtual channels per port (uniform across the network).
    pub vcs: usize,
    // ---- input side, indexed by VC slot ----
    /// Flit FIFO of each input VC, stored as run-length entries
    /// ([`FlitQueue`]): a worm streaming through the VC occupies one
    /// entry, not one per flit.
    pub buf: Vec<FlitQueue<P>>,
    /// Flit count of each input VC — a dense mirror of
    /// `buf[slot].len()`. The per-cycle scans (route allocation,
    /// sendability, watchdog diagnostics) reject empty VCs from this
    /// 4-byte-per-slot array instead of striding across the much larger
    /// [`FlitQueue`] structs; every `buf` mutation site updates it in
    /// the same statement.
    pub occ: Vec<u32>,
    /// Allocated output for the packet currently traversing each VC.
    pub route: Vec<Option<OutRoute>>,
    /// Multicast replication target, when a VC carries a primary
    /// multicast stream that still has further endpoints.
    pub split: Vec<Option<Split>>,
    /// True while a VC stores locally written replica flits. Such flits
    /// did not arrive over the link, so ejecting them returns no
    /// upstream credit.
    pub replica_role: Vec<bool>,
    // ---- output side, indexed by VC slot (valid iff `has_out`) ----
    /// Output VC allocated to a packet (set at head, cleared at tail).
    pub out_owner: Vec<bool>,
    /// Free downstream buffer slots we may still consume.
    pub out_credits: Vec<u8>,
    // ---- per port, indexed by port slot ----
    /// Local ports hold injection queues (unbounded source queues).
    pub is_local: Vec<bool>,
    /// Whether the port has an outgoing link (local ejection sinks have
    /// no sender-side credit state). Consulted when seeding credits and
    /// by structural tests; the kernel itself reads routes instead.
    #[allow(dead_code)]
    pub has_out: Vec<bool>,
    /// Flits received over the link; the replica selector prefers the
    /// least-utilised physical channel (§3.1).
    pub util: Vec<u64>,
    /// Round-robin pointer over VCs (switch-allocation phase A).
    pub rr_in: Vec<u8>,
    /// Round-robin pointer over input ports (switch-allocation phase B),
    /// one per output port.
    pub out_rr: Vec<u8>,
    // ---- per router ----
    /// Total buffered flits per router (`sum of occ over vc_range`),
    /// making the has-work re-schedule test O(1) instead of a scan.
    pub buffered: Vec<u32>,
}

// Manual impl: `mem::take` during the router loop needs a default, and
// `derive(Default)` would demand `P: Default`.
impl<P> Default for NetSlabs<P> {
    fn default() -> Self {
        NetSlabs {
            port_base: Vec::new(),
            vcs: 0,
            buf: Vec::new(),
            occ: Vec::new(),
            route: Vec::new(),
            split: Vec::new(),
            replica_role: Vec::new(),
            out_owner: Vec::new(),
            out_credits: Vec::new(),
            is_local: Vec::new(),
            has_out: Vec::new(),
            util: Vec::new(),
            rr_in: Vec::new(),
            out_rr: Vec::new(),
            buffered: Vec::new(),
        }
    }
}

impl<P> NetSlabs<P> {
    /// Builds the slabs for `topo` with `vcs_per_port` VCs of depth
    /// `vc_depth` on every port. Network VC buffers are pre-sized to
    /// `vc_depth`: credit flow control bounds them to that many flits,
    /// so they never reallocate in steady state. (Local injection
    /// queues may still grow past the depth — they are unbounded source
    /// queues filled by `inject`, outside the cycle kernel.)
    pub fn build(topo: &Topology, vcs_per_port: u8, vc_depth: u8) -> Self {
        let vcs = vcs_per_port as usize;
        let mut port_base = Vec::with_capacity(topo.len() + 1);
        let mut total_ports = 0u32;
        port_base.push(0);
        for (ri, r) in topo.routers().iter().enumerate() {
            // The cycle kernel packs per-router port indices into `u8`
            // fields (`RouteTarget`, round-robin state); a wider router
            // must fail loudly here rather than alias ports. Topology
            // and routing-table construction (`PortId` is `u16`) handle
            // wider routers fine — only simulation has this cap.
            assert!(
                r.ports.len() <= u8::MAX as usize,
                "router {ri} has {} ports; the cycle kernel supports at most {}",
                r.ports.len(),
                u8::MAX
            );
            total_ports += r.ports.len() as u32;
            port_base.push(total_ports);
        }
        let n_ports = total_ports as usize;
        let n_slots = n_ports * vcs;
        let mut is_local = Vec::with_capacity(n_ports);
        let mut has_out = Vec::with_capacity(n_ports);
        for r in topo.routers() {
            for p in &r.ports {
                is_local.push(matches!(p.label, PortLabel::Local(_)));
                has_out.push(p.out_link.is_some());
            }
        }
        let mut out_credits = vec![0u8; n_slots];
        for (ps, &h) in has_out.iter().enumerate() {
            if h {
                out_credits[ps * vcs..(ps + 1) * vcs].fill(vc_depth);
            }
        }
        NetSlabs {
            port_base,
            vcs,
            buf: (0..n_slots)
                .map(|_| FlitQueue::with_capacity(vc_depth as usize))
                .collect(),
            occ: vec![0; n_slots],
            route: vec![None; n_slots],
            split: vec![None; n_slots],
            replica_role: vec![false; n_slots],
            out_owner: vec![false; n_slots],
            out_credits,
            is_local,
            has_out,
            util: vec![0; n_ports],
            rr_in: vec![0; n_ports],
            out_rr: vec![0; n_ports],
            buffered: vec![0; topo.len()],
        }
    }

    /// Restores the just-built state in place: every VC FIFO emptied
    /// (capacity kept), routes/splits/replica roles cleared, output
    /// credits re-seeded to `vc_depth` on ports with an outgoing link,
    /// utilisation and round-robin pointers zeroed. The structural
    /// arrays (`port_base`, `vcs`, `is_local`, `has_out`) are untouched.
    /// `vc_depth` must match the depth the slabs were built with; the
    /// warm-reset path relies on this doing zero allocations.
    pub fn reset(&mut self, vc_depth: u8) {
        for b in &mut self.buf {
            b.clear();
        }
        self.occ.fill(0);
        self.buffered.fill(0);
        self.route.fill(None);
        self.split.fill(None);
        self.replica_role.fill(false);
        self.out_owner.fill(false);
        let vcs = self.vcs;
        for (ps, &h) in self.has_out.iter().enumerate() {
            self.out_credits[ps * vcs..(ps + 1) * vcs].fill(if h { vc_depth } else { 0 });
        }
        self.util.fill(0);
        self.rr_in.fill(0);
        self.out_rr.fill(0);
    }

    /// Number of routers.
    #[inline]
    pub fn n_routers(&self) -> usize {
        self.port_base.len().saturating_sub(1)
    }

    /// Number of ports of router `r`.
    #[inline]
    pub fn n_ports(&self, r: usize) -> usize {
        (self.port_base[r + 1] - self.port_base[r]) as usize
    }

    /// Global port slot of `(r, p)`.
    #[inline]
    pub fn port_slot(&self, r: usize, p: usize) -> usize {
        self.port_base[r] as usize + p
    }

    /// Global VC slot of `(r, p, v)`.
    #[inline]
    pub fn vc_slot(&self, r: usize, p: usize, v: usize) -> usize {
        self.port_slot(r, p) * self.vcs + v
    }

    /// The contiguous VC-slot range owned by router `r`. The kernel's
    /// has-work test reads the O(1) `buffered` counter instead; shard
    /// layout tests still assert range contiguity through this.
    #[allow(dead_code)]
    #[inline]
    pub fn vc_range(&self, r: usize) -> std::ops::Range<usize> {
        let lo = self.port_base[r] as usize * self.vcs;
        let hi = self.port_base[r + 1] as usize * self.vcs;
        lo..hi
    }

    /// An input VC is free for replica reservation when it is completely
    /// idle.
    #[inline]
    pub fn vc_is_free(&self, slot: usize) -> bool {
        self.occ[slot] == 0 && self.route[slot].is_none() && !self.replica_role[slot]
    }

    /// Whether any input VC of router `r` holds flits (the router must
    /// stay scheduled).
    #[inline]
    pub fn has_work(&self, r: usize) -> bool {
        self.buffered[r] > 0
    }

    /// Total buffered flits across the network (diagnostics).
    pub fn buffered_flits_total(&self) -> u64 {
        self.buffered.iter().map(|&n| u64::from(n)).sum()
    }

    /// Input VCs holding flits but no allocated route — heads waiting on
    /// routing, e.g. cut off by a link fault (diagnostics).
    pub fn blocked_heads_total(&self) -> usize {
        (0..self.occ.len())
            .filter(|&s| self.occ[s] > 0 && self.route[s].is_none())
            .count()
    }
}

/// Reusable per-cycle temporaries for the router loop, owned by the
/// network so the cycle kernel never allocates in steady state. Every
/// buffer is sized once (to the widest router) and *cleared*, not
/// reallocated, between routers.
#[derive(Debug)]
pub(crate) struct RouterScratch {
    /// Phase A result: `(input port, nominated VC, requested output
    /// port)` per nominating port, in ascending port order. Dense so
    /// phase B visits only nominating ports.
    pub nominated: Vec<(u8, u8, u8)>,
    /// Input ports requesting the output port currently arbitrated
    /// (ascending order, rebuilt per output).
    pub requesting: Vec<u8>,
    /// Switch-allocation winners of the current router: `(input port,
    /// input VC)` pairs, in output-port order.
    pub winners: Vec<(u8, u8)>,
    /// This cycle's sorted router worklist; swapped with the network's
    /// pending list so both keep their capacity across cycles.
    pub work: Vec<u32>,
}

impl RouterScratch {
    /// Builds scratch buffers for routers with up to `max_ports` ports.
    pub fn for_max_ports(max_ports: usize) -> Self {
        RouterScratch {
            nominated: Vec::with_capacity(max_ports),
            requesting: Vec::with_capacity(max_ports),
            winners: Vec::with_capacity(max_ports),
            work: Vec::new(),
        }
    }
}

/// One route / VC-allocation decision computed for an input VC during
/// the parallel compute phase of the two-phase cycle kernel.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RouteIntent {
    /// Input port of the VC being routed.
    pub port: u8,
    /// Input VC index within that port.
    pub vc: u8,
    /// The route to install. `eject == false` implies an ownership claim
    /// on the named output VC at commit time.
    pub route: OutRoute,
    /// The allocation deviates from the fault-free table (commit bumps
    /// `packets_rerouted`).
    pub rerouted: bool,
}

/// Everything one router decided during the compute phase, to be applied
/// verbatim — or discarded — by the commit pass. All buffers are
/// cleared and reused across cycles, never reallocated in steady state.
#[derive(Debug, Default)]
pub(crate) struct RouterIntent {
    /// Routes (and implied output-VC claims) for unrouted VC fronts.
    pub routes: Vec<RouteIntent>,
    /// New output-side round-robin pointers: `(output port, pointer)`.
    pub rr_out: Vec<(u8, u8)>,
    /// Switch-allocation winners `(input port, input VC)` in output-port
    /// order, exactly as the serial kernel would have produced them.
    pub winners: Vec<(u8, u8)>,
    /// Heads that found every path cut by a fault this cycle (commit
    /// adds this to `route_blocked_cycles`).
    pub route_blocked: u32,
    /// Remote-reservation slots (`link.0 * vcs + vc`) this intent's
    /// winners will release when they commit (a replica VC's tail
    /// leaving). Predicted exactly during compute — winners apply
    /// unconditionally — so the commit pre-scan can mark them dirty
    /// *before* the run executes and invalidate any later intent whose
    /// snapshot covered one of these slots, just as the serial commit
    /// would have.
    pub releases: Vec<u32>,
}

impl RouterIntent {
    /// An intent pre-sized for a router with up to `ports` ports and
    /// `vcs` VCs per port, so no buffer ever grows during simulation:
    /// at most one route per input VC, and one winner / round-robin
    /// update / release per port.
    pub fn for_ports(ports: usize, vcs: usize) -> Self {
        RouterIntent {
            routes: Vec::with_capacity(ports * vcs),
            rr_out: Vec::with_capacity(ports),
            winners: Vec::with_capacity(ports),
            route_blocked: 0,
            releases: Vec::with_capacity(ports),
        }
    }

    /// Empties the intent for reuse without dropping buffer capacity.
    pub fn clear(&mut self) {
        self.routes.clear();
        self.rr_out.clear();
        self.winners.clear();
        self.route_blocked = 0;
        self.releases.clear();
    }
}

/// Per-worker temporaries of the compute phase — the read-only analogue
/// of [`RouterScratch`]. Each compute worker owns one, so workers never
/// share mutable buffers.
#[derive(Debug)]
pub(crate) struct ComputeScratch {
    /// Phase A nominations (see [`RouterScratch::nominee`]).
    pub nominee: Vec<Option<u8>>,
    /// Requesting ports for the output currently arbitrated.
    pub requesting: Vec<u8>,
}

impl ComputeScratch {
    /// Builds scratch sized for routers with up to `max_ports` ports.
    pub fn for_max_ports(max_ports: usize) -> Self {
        ComputeScratch {
            nominee: vec![None; max_ports],
            requesting: Vec::with_capacity(max_ports),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::RoutingSpec;

    #[test]
    fn build_shapes_ports() {
        // 2×1 mesh: each router has one local port and one link port.
        let topo = Topology::mesh(2, 1, &[1], &[]);
        let _ = RoutingSpec::Xy.build(&topo).unwrap();
        let s: NetSlabs<()> = NetSlabs::build(&topo, 4, 4);
        assert_eq!(s.n_routers(), 2);
        assert_eq!(s.n_ports(0), 2);
        let local = (0..s.n_ports(0))
            .find(|&p| s.is_local[s.port_slot(0, p)])
            .expect("router 0 has a local port");
        let link = (0..s.n_ports(0))
            .find(|&p| !s.is_local[s.port_slot(0, p)])
            .expect("router 0 has a link port");
        assert!(
            !s.has_out[s.port_slot(0, local)] || s.out_credits[s.vc_slot(0, local, 0)] == 4,
            "local ports without an out-link carry no credit state"
        );
        assert!(s.has_out[s.port_slot(0, link)]);
        assert_eq!(s.out_credits[s.vc_slot(0, link, 0)], 4);
        assert_eq!(s.vcs, 4);
        assert!(!s.has_work(0));
        assert_eq!(s.buffered_flits_total(), 0);
    }

    #[test]
    fn slots_are_contiguous_per_router() {
        let topo = Topology::mesh(3, 3, &[1; 2], &[1; 2]);
        let s: NetSlabs<()> = NetSlabs::build(&topo, 4, 4);
        for r in 0..s.n_routers() {
            let range = s.vc_range(r);
            assert_eq!(range.start, s.vc_slot(r, 0, 0));
            assert_eq!(range.end - range.start, s.n_ports(r) * s.vcs);
        }
        // Ranges tile the slab exactly.
        assert_eq!(s.vc_range(s.n_routers() - 1).end, s.buf.len());
    }

    #[test]
    fn fresh_vc_is_free() {
        let topo = Topology::mesh(2, 1, &[1], &[]);
        let s: NetSlabs<()> = NetSlabs::build(&topo, 4, 4);
        assert!(s.vc_is_free(s.vc_slot(0, 0, 0)));
    }

    #[test]
    fn vc_with_route_is_not_free() {
        let topo = Topology::mesh(2, 1, &[1], &[]);
        let mut s: NetSlabs<()> = NetSlabs::build(&topo, 4, 4);
        let slot = s.vc_slot(0, 0, 0);
        s.route[slot] = Some(OutRoute {
            port: 1,
            vc: 0,
            eject: false,
        });
        assert!(!s.vc_is_free(slot));
        assert_eq!(s.blocked_heads_total(), 0, "no flit buffered yet");
    }

    #[test]
    fn replica_role_vc_is_not_free() {
        let topo = Topology::mesh(2, 1, &[1], &[]);
        let mut s: NetSlabs<()> = NetSlabs::build(&topo, 4, 4);
        let slot = s.vc_slot(1, 0, 2);
        s.replica_role[slot] = true;
        assert!(!s.vc_is_free(slot));
    }
}
