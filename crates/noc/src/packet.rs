//! Packets, destinations, and flitization.
//!
//! The cache network delivers packetized data (§5 of the paper): a flit
//! is 128 bits; a read request or notification fits in one flit; a packet
//! carrying a 64-byte block (plus address and wormhole overhead) is five
//! flits.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::ids::Endpoint;

/// Flit width in bits (Table 1).
pub const FLIT_BITS: u32 = 128;
/// Block size carried by data packets, in bytes (Table 1).
pub const BLOCK_BYTES: u32 = 64;
/// Per-packet overhead: type (2 b), size (7 b), routing (8 b),
/// communication type (1 b) — §5 of the paper — plus the 32-bit address.
pub const OVERHEAD_BITS: u32 = 2 + 7 + 8 + 1 + 32;

/// Number of flits for a packet carrying `data_bytes` of payload.
///
/// ```
/// use nucanet_noc::packet::flits_for_bytes;
/// assert_eq!(flits_for_bytes(0), 1);  // request / notification
/// assert_eq!(flits_for_bytes(64), 5); // block transfer
/// ```
pub fn flits_for_bytes(data_bytes: u32) -> u32 {
    let bits = OVERHEAD_BITS + 8 * data_bytes;
    bits.div_ceil(FLIT_BITS).max(1)
}

/// Unique identifier assigned to each injected packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PacketId(pub u64);

/// Where a packet is going.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Dest {
    /// Ordinary one-destination wormhole packet.
    Unicast(Endpoint),
    /// Path multicast: the packet visits the endpoints **in order**,
    /// leaving a replica at each (the paper's column multicast used for
    /// concurrent tag-match). Consecutive endpoints must lie further
    /// along the routing path.
    ///
    /// The endpoint list is reference-counted so a protocol agent that
    /// multicasts down the same column repeatedly (the common case)
    /// shares one allocation across every packet: cloning a `Dest` —
    /// and replicating flits inside the network — never copies the
    /// list. The count is atomic (`Arc`) because the sharded commit
    /// phase of the cycle kernel clones and drops flit references from
    /// several worker threads at once.
    Multicast(Arc<[Endpoint]>),
}

impl Dest {
    /// Convenience constructor for a unicast destination.
    pub fn unicast(e: Endpoint) -> Self {
        Dest::Unicast(e)
    }

    /// Convenience constructor for a path multicast.
    ///
    /// # Panics
    ///
    /// Panics if `path` is empty.
    pub fn multicast(path: Vec<Endpoint>) -> Self {
        Self::multicast_shared(path.into())
    }

    /// Path multicast over an already-shared endpoint list: repeated
    /// senders keep one list alive and `Arc::clone` it per packet.
    ///
    /// # Panics
    ///
    /// Panics if `path` is empty.
    pub fn multicast_shared(path: Arc<[Endpoint]>) -> Self {
        assert!(
            !path.is_empty(),
            "multicast destination list cannot be empty"
        );
        Dest::Multicast(path)
    }

    /// The endpoints of this destination, in visiting order.
    pub fn endpoints(&self) -> &[Endpoint] {
        match self {
            Dest::Unicast(e) => std::slice::from_ref(e),
            Dest::Multicast(v) => v,
        }
    }

    /// Whether this packet needs multicast replication support.
    pub fn is_multicast(&self) -> bool {
        matches!(self, Dest::Multicast(v) if v.len() > 1)
    }
}

/// An injected packet. `P` is the protocol payload type carried opaquely
/// by the network (the cache system uses its message enum).
#[derive(Debug, Clone, PartialEq)]
pub struct Packet<P> {
    /// Identifier, assigned by [`crate::Network::inject`].
    pub id: PacketId,
    /// Source endpoint.
    pub src: Endpoint,
    /// Destination(s).
    pub dest: Dest,
    /// Length in flits (use [`flits_for_bytes`]).
    pub flits: u32,
    /// Cycle the packet entered the source queue; stamped by `inject`.
    pub injected_at: u64,
    /// Protocol payload.
    pub payload: P,
}

impl<P> Packet<P> {
    /// Creates a packet ready for [`crate::Network::inject`].
    ///
    /// # Panics
    ///
    /// Panics if `flits` is zero.
    pub fn new(src: Endpoint, dest: Dest, flits: u32, payload: P) -> Self {
        assert!(flits >= 1, "a packet is at least one flit");
        Packet {
            id: PacketId(0),
            src,
            dest,
            flits,
            injected_at: 0,
            payload,
        }
    }
}

/// One flit in flight. Flits of a packet share the packet body via
/// `Arc`: flits of one packet live in several routers at once, and the
/// sharded commit phase clones and drops them from different worker
/// threads, so the count must be atomic.
#[derive(Debug)]
pub(crate) struct FlitRef<P> {
    pub pkt: Arc<Packet<P>>,
    /// Position within the packet: 0 = head, `flits - 1` = tail.
    pub seq: u32,
    /// Index into `pkt.dest.endpoints()` of the next endpoint this copy
    /// still has to reach.
    pub dest_idx: u32,
    /// Exclusive end of the destination-list range this copy serves:
    /// the copy covers endpoints `dest_idx .. dest_hi`. Injected flits
    /// cover the whole list; tree-based multicast truncates ranges at
    /// each fork, while hybrid and path replication keep the full range
    /// on the continuing copy (their copies peel one endpoint at a
    /// time, advancing `dest_idx` instead).
    pub dest_hi: u32,
}

// Manual impl: `P` itself need not be `Clone` — flits share the packet
// body through the `Arc`.
impl<P> Clone for FlitRef<P> {
    fn clone(&self) -> Self {
        FlitRef {
            pkt: Arc::clone(&self.pkt),
            seq: self.seq,
            dest_idx: self.dest_idx,
            dest_hi: self.dest_hi,
        }
    }
}

impl<P> FlitRef<P> {
    pub fn is_head(&self) -> bool {
        self.seq == 0
    }

    pub fn is_tail(&self) -> bool {
        self.seq + 1 == self.pkt.flits
    }

    /// The endpoint this copy is currently heading to.
    pub fn target(&self) -> Endpoint {
        self.pkt.dest.endpoints()[self.dest_idx as usize]
    }

    /// Whether further endpoints remain after [`FlitRef::target`]
    /// within this copy's destination range.
    pub fn has_more_targets(&self) -> bool {
        self.dest_idx + 1 < self.dest_hi
    }
}

/// A run of consecutive flits of one packet copy buffered in a VC:
/// sequence numbers `seq_lo .. seq_hi`, all serving the destination
/// range `dest_idx .. dest_hi`. One `Arc` bump covers the whole run, so
/// injecting an N-flit packet, or a worm streaming through a VC,
/// touches the packet's reference count once instead of N times — and a
/// VC FIFO holds one entry per *worm*, not one per flit.
#[derive(Debug)]
struct FlitRun<P> {
    pkt: Arc<Packet<P>>,
    /// First sequence number of the run.
    seq_lo: u32,
    /// One past the last sequence number of the run.
    seq_hi: u32,
    /// Destination range served by every flit in the run (see
    /// [`FlitRef::dest_idx`] / [`FlitRef::dest_hi`]).
    dest_idx: u32,
    dest_hi: u32,
}

/// Borrowed view of the first flit of a [`FlitQueue`] — the run-length
/// analogue of `VecDeque::front()` returning `&FlitRef`. Field and
/// method names mirror [`FlitRef`] so call sites read identically.
#[derive(Debug)]
pub(crate) struct FlitFront<'a, P> {
    pub pkt: &'a Arc<Packet<P>>,
    pub seq: u32,
    pub dest_idx: u32,
    pub dest_hi: u32,
}

impl<P> FlitFront<'_, P> {
    pub fn is_head(&self) -> bool {
        self.seq == 0
    }

    pub fn is_tail(&self) -> bool {
        self.seq + 1 == self.pkt.flits
    }

    /// The endpoint this copy is currently heading to.
    pub fn target(&self) -> Endpoint {
        self.pkt.dest.endpoints()[self.dest_idx as usize]
    }

    /// Whether further endpoints remain after [`FlitFront::target`]
    /// within this copy's destination range.
    pub fn has_more_targets(&self) -> bool {
        self.dest_idx + 1 < self.dest_hi
    }
}

/// A virtual-channel flit FIFO stored as run-length entries.
///
/// Semantically identical to a `VecDeque<FlitRef<P>>` (the differential
/// test below pits the two against each other over random operation
/// sequences), but consecutive flits of one packet copy share a single
/// [`FlitRun`] entry: pushing the next flit of the worm at the back
/// bumps `seq_hi`, popping the front bumps `seq_lo`, and only the run
/// boundaries clone or drop the packet `Arc`. Wormhole traffic — where
/// a 5-flit packet streams through each VC head-to-tail — thus costs
/// O(1) queue entries and two `Arc` operations per VC instead of
/// O(flits) of each.
#[derive(Debug)]
pub(crate) struct FlitQueue<P> {
    runs: VecDeque<FlitRun<P>>,
    /// Total buffered flits (sum of run lengths), kept incrementally so
    /// `len()` stays O(1) for occupancy checks and credit accounting.
    len: usize,
}

// Manual impl: `derive(Default)` would demand `P: Default`.
impl<P> Default for FlitQueue<P> {
    fn default() -> Self {
        FlitQueue {
            runs: VecDeque::new(),
            len: 0,
        }
    }
}

impl<P> FlitQueue<P> {
    /// A queue pre-sized for `flits` buffered flits. Every run holds at
    /// least one flit, so `flits` runs can never be exceeded while the
    /// queue stays within that occupancy — credit flow control bounds
    /// network VCs exactly so, keeping steady-state stepping
    /// allocation-free.
    pub fn with_capacity(flits: usize) -> Self {
        FlitQueue {
            runs: VecDeque::with_capacity(flits),
            len: 0,
        }
    }

    /// Buffered flits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no flits are buffered. The cycle kernel reads the dense
    /// `NetSlabs::occ` mirror instead; kept for API parity with the
    /// flat deque this replaced (and the differential test).
    #[allow(dead_code)]
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Empties the queue, keeping the run buffer's capacity.
    pub fn clear(&mut self) {
        self.runs.clear();
        self.len = 0;
    }

    /// Appends one flit, extending the back run when it is the worm's
    /// next flit (same packet copy, consecutive sequence number, same
    /// destination range) — the steady-state path for a packet
    /// streaming into a VC, which then drops the incoming `Arc` instead
    /// of storing a new entry.
    pub fn push_back(&mut self, flit: FlitRef<P>) {
        if let Some(back) = self.runs.back_mut() {
            if back.seq_hi == flit.seq
                && back.dest_idx == flit.dest_idx
                && back.dest_hi == flit.dest_hi
                && Arc::ptr_eq(&back.pkt, &flit.pkt)
            {
                back.seq_hi += 1;
                self.len += 1;
                return;
            }
        }
        self.runs.push_back(FlitRun {
            pkt: flit.pkt,
            seq_lo: flit.seq,
            seq_hi: flit.seq + 1,
            dest_idx: flit.dest_idx,
            dest_hi: flit.dest_hi,
        });
        self.len += 1;
    }

    /// Appends the whole flit range `seq_lo .. seq_hi` of `pkt` in one
    /// entry — the injection path, which previously pushed `flits`
    /// individual entries with an `Arc` bump each.
    pub fn push_run(&mut self, pkt: Arc<Packet<P>>, seq_lo: u32, seq_hi: u32, dest_hi: u32) {
        debug_assert!(seq_lo < seq_hi);
        self.runs.push_back(FlitRun {
            pkt,
            seq_lo,
            seq_hi,
            dest_idx: 0,
            dest_hi,
        });
        self.len += (seq_hi - seq_lo) as usize;
    }

    /// Removes and returns the first flit. Only the run's last flit
    /// moves the `Arc` out; earlier flits clone it (one atomic bump,
    /// same as the per-flit layout's pop + later drop).
    pub fn pop_front(&mut self) -> Option<FlitRef<P>> {
        let run = self.runs.front_mut()?;
        let seq = run.seq_lo;
        let flit = if run.seq_lo + 1 == run.seq_hi {
            let run = self.runs.pop_front().expect("front exists");
            FlitRef {
                pkt: run.pkt,
                seq,
                dest_idx: run.dest_idx,
                dest_hi: run.dest_hi,
            }
        } else {
            run.seq_lo += 1;
            FlitRef {
                pkt: Arc::clone(&run.pkt),
                seq,
                dest_idx: run.dest_idx,
                dest_hi: run.dest_hi,
            }
        };
        self.len -= 1;
        Some(flit)
    }

    /// Borrowed view of the first flit, if any.
    #[inline]
    pub fn front(&self) -> Option<FlitFront<'_, P>> {
        self.runs.front().map(|run| FlitFront {
            pkt: &run.pkt,
            seq: run.seq_lo,
            dest_idx: run.dest_idx,
            dest_hi: run.dest_hi,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;

    #[test]
    fn request_packet_is_one_flit() {
        // 50 overhead bits alone fit into one 128-bit flit.
        assert_eq!(flits_for_bytes(0), 1);
    }

    #[test]
    fn block_packet_is_five_flits() {
        // 64 B data + 32 b address + 18 b overhead = 562 bits -> 5 flits.
        assert_eq!(flits_for_bytes(BLOCK_BYTES), 5);
    }

    #[test]
    fn small_write_fits_fewer_flits() {
        assert_eq!(flits_for_bytes(8), 1);
        assert_eq!(flits_for_bytes(16), 2);
    }

    #[test]
    fn dest_endpoints_order_preserved() {
        let a = Endpoint::at(NodeId(1));
        let b = Endpoint::at(NodeId(2));
        let d = Dest::multicast(vec![a, b]);
        assert_eq!(d.endpoints(), &[a, b]);
        assert!(d.is_multicast());
        assert!(!Dest::unicast(a).is_multicast());
        // A single-destination "multicast" needs no replication.
        assert!(!Dest::multicast(vec![a]).is_multicast());
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn empty_multicast_panics() {
        let _ = Dest::multicast(vec![]);
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_flit_packet_panics() {
        let _ = Packet::new(
            Endpoint::at(NodeId(0)),
            Dest::unicast(Endpoint::at(NodeId(1))),
            0,
            (),
        );
    }

    #[test]
    fn flit_queue_coalesces_worm_pushes() {
        let pkt = Arc::new(Packet::new(
            Endpoint::at(NodeId(0)),
            Dest::unicast(Endpoint::at(NodeId(1))),
            5,
            (),
        ));
        let mut q: FlitQueue<()> = FlitQueue::with_capacity(8);
        for seq in 0..5 {
            q.push_back(FlitRef {
                pkt: Arc::clone(&pkt),
                seq,
                dest_idx: 0,
                dest_hi: 1,
            });
        }
        assert_eq!(q.len(), 5);
        // The whole worm coalesced into one run: exactly two strong
        // counts — ours and the queue's.
        assert_eq!(Arc::strong_count(&pkt), 2);
        let front = q.front().expect("non-empty");
        assert!(front.is_head() && !front.is_tail());
        for seq in 0..5 {
            let f = q.pop_front().expect("flit buffered");
            assert_eq!(f.seq, seq);
            assert!(Arc::ptr_eq(&f.pkt, &pkt));
        }
        assert!(q.is_empty() && q.front().is_none());
        assert_eq!(Arc::strong_count(&pkt), 1);
    }

    #[test]
    fn flit_queue_push_run_is_one_entry() {
        let pkt = Arc::new(Packet::new(
            Endpoint::at(NodeId(0)),
            Dest::multicast(vec![Endpoint::at(NodeId(1)), Endpoint::at(NodeId(2))]),
            3,
            (),
        ));
        let mut q: FlitQueue<()> = FlitQueue::with_capacity(4);
        q.push_run(Arc::clone(&pkt), 0, 3, 2);
        assert_eq!(q.len(), 3);
        assert_eq!(Arc::strong_count(&pkt), 2);
        let f = q.pop_front().expect("head");
        assert!(f.is_head());
        assert_eq!((f.dest_idx, f.dest_hi), (0, 2));
        assert!(f.has_more_targets());
    }

    /// Differential test: the run-length [`FlitQueue`] against a flat
    /// one-`FlitRef`-per-flit `VecDeque` reference, over seeded random
    /// operation sequences that mimic the kernel's access pattern —
    /// worms streaming in flit by flit (coalescible), whole-packet
    /// injection runs, interleaved packets, multicast replica copies
    /// with truncated destination ranges (split slicing), pops, and
    /// resets. Every observable (length, front view, popped flits,
    /// `Arc` identity) must agree at every step.
    #[test]
    fn flit_queue_matches_flat_deque_differentially() {
        fn pkt_of(flits: u32, dests: u32) -> Arc<Packet<()>> {
            let dest = if dests <= 1 {
                Dest::unicast(Endpoint::at(NodeId(1)))
            } else {
                Dest::multicast((1..=dests).map(|i| Endpoint::at(NodeId(i))).collect())
            };
            Arc::new(Packet::new(Endpoint::at(NodeId(0)), dest, flits, ()))
        }
        let pool: Vec<Arc<Packet<()>>> = vec![
            pkt_of(1, 1),
            pkt_of(5, 1),
            pkt_of(3, 4),
            pkt_of(5, 8),
            pkt_of(2, 2),
        ];
        let mut x: u64 = 0x5EED_F00D_CAFE_0001;
        let mut rng = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 16
        };
        let mut q: FlitQueue<()> = FlitQueue::with_capacity(4);
        let mut reference: VecDeque<FlitRef<()>> = VecDeque::new();
        // In-flight worm cursor: (pool index, next seq, dest range), so
        // a stretch of pushes extends one worm — the coalescible case.
        let mut worm: Option<(usize, u32, u32, u32)> = None;
        for _ in 0..20_000 {
            match rng() % 10 {
                // Push the worm's next flit (start one when idle).
                0..=4 => {
                    let (pi, seq, dlo, dhi) = match worm {
                        Some(w) if w.1 < pool[w.0].flits => w,
                        _ => {
                            let pi = (rng() % pool.len() as u64) as usize;
                            let n_eps = pool[pi].dest.endpoints().len() as u32;
                            // Random sub-range of the destination list:
                            // replica copies carry truncated ranges.
                            let dlo = rng() as u32 % n_eps;
                            let dhi = dlo + 1 + (rng() as u32 % (n_eps - dlo));
                            (pi, 0, dlo, dhi)
                        }
                    };
                    let flit = FlitRef {
                        pkt: Arc::clone(&pool[pi]),
                        seq,
                        dest_idx: dlo,
                        dest_hi: dhi,
                    };
                    q.push_back(flit.clone());
                    reference.push_back(flit);
                    worm = Some((pi, seq + 1, dlo, dhi));
                }
                // Inject a whole packet as one run.
                5 => {
                    let pi = (rng() % pool.len() as u64) as usize;
                    let pkt = &pool[pi];
                    let dest_hi = pkt.dest.endpoints().len() as u32;
                    q.push_run(Arc::clone(pkt), 0, pkt.flits, dest_hi);
                    for seq in 0..pkt.flits {
                        reference.push_back(FlitRef {
                            pkt: Arc::clone(pkt),
                            seq,
                            dest_idx: 0,
                            dest_hi,
                        });
                    }
                    worm = None;
                }
                // Pop (sometimes several — drain the front run past its
                // boundary).
                6..=8 => {
                    for _ in 0..=(rng() % 3) {
                        let got = q.pop_front();
                        let want = reference.pop_front();
                        match (&got, &want) {
                            (None, None) => {}
                            (Some(g), Some(w)) => {
                                assert!(Arc::ptr_eq(&g.pkt, &w.pkt));
                                assert_eq!(
                                    (g.seq, g.dest_idx, g.dest_hi),
                                    (w.seq, w.dest_idx, w.dest_hi)
                                );
                            }
                            _ => panic!("pop disagreement: {got:?} vs {want:?}"),
                        }
                    }
                }
                // Rare reset (the warm-reset path).
                _ => {
                    if rng() % 50 == 0 {
                        q.clear();
                        reference.clear();
                        worm = None;
                    }
                }
            }
            assert_eq!(q.len(), reference.len());
            assert_eq!(q.is_empty(), reference.is_empty());
            match (q.front(), reference.front()) {
                (None, None) => {}
                (Some(g), Some(w)) => {
                    assert!(Arc::ptr_eq(g.pkt, &w.pkt));
                    assert_eq!(
                        (g.seq, g.dest_idx, g.dest_hi),
                        (w.seq, w.dest_idx, w.dest_hi)
                    );
                    assert_eq!(g.is_head(), w.is_head());
                    assert_eq!(g.is_tail(), w.is_tail());
                }
                (g, w) => panic!("front disagreement: {g:?} vs {w:?}"),
            }
        }
    }

    #[test]
    fn flitref_head_tail() {
        let pkt = Arc::new(Packet::new(
            Endpoint::at(NodeId(0)),
            Dest::unicast(Endpoint::at(NodeId(1))),
            3,
            (),
        ));
        let head = FlitRef {
            pkt: Arc::clone(&pkt),
            seq: 0,
            dest_idx: 0,
            dest_hi: 1,
        };
        let mid = FlitRef {
            pkt: Arc::clone(&pkt),
            seq: 1,
            dest_idx: 0,
            dest_hi: 1,
        };
        let tail = FlitRef {
            pkt,
            seq: 2,
            dest_idx: 0,
            dest_hi: 1,
        };
        assert!(head.is_head() && !head.is_tail());
        assert!(!mid.is_head() && !mid.is_tail());
        assert!(!tail.is_head() && tail.is_tail());
        assert!(!head.has_more_targets());
    }
}
