//! Packets, destinations, and flitization.
//!
//! The cache network delivers packetized data (§5 of the paper): a flit
//! is 128 bits; a read request or notification fits in one flit; a packet
//! carrying a 64-byte block (plus address and wormhole overhead) is five
//! flits.

use std::sync::Arc;

use crate::ids::Endpoint;

/// Flit width in bits (Table 1).
pub const FLIT_BITS: u32 = 128;
/// Block size carried by data packets, in bytes (Table 1).
pub const BLOCK_BYTES: u32 = 64;
/// Per-packet overhead: type (2 b), size (7 b), routing (8 b),
/// communication type (1 b) — §5 of the paper — plus the 32-bit address.
pub const OVERHEAD_BITS: u32 = 2 + 7 + 8 + 1 + 32;

/// Number of flits for a packet carrying `data_bytes` of payload.
///
/// ```
/// use nucanet_noc::packet::flits_for_bytes;
/// assert_eq!(flits_for_bytes(0), 1);  // request / notification
/// assert_eq!(flits_for_bytes(64), 5); // block transfer
/// ```
pub fn flits_for_bytes(data_bytes: u32) -> u32 {
    let bits = OVERHEAD_BITS + 8 * data_bytes;
    bits.div_ceil(FLIT_BITS).max(1)
}

/// Unique identifier assigned to each injected packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PacketId(pub u64);

/// Where a packet is going.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Dest {
    /// Ordinary one-destination wormhole packet.
    Unicast(Endpoint),
    /// Path multicast: the packet visits the endpoints **in order**,
    /// leaving a replica at each (the paper's column multicast used for
    /// concurrent tag-match). Consecutive endpoints must lie further
    /// along the routing path.
    ///
    /// The endpoint list is reference-counted so a protocol agent that
    /// multicasts down the same column repeatedly (the common case)
    /// shares one allocation across every packet: cloning a `Dest` —
    /// and replicating flits inside the network — never copies the
    /// list. The count is atomic (`Arc`) because the sharded commit
    /// phase of the cycle kernel clones and drops flit references from
    /// several worker threads at once.
    Multicast(Arc<[Endpoint]>),
}

impl Dest {
    /// Convenience constructor for a unicast destination.
    pub fn unicast(e: Endpoint) -> Self {
        Dest::Unicast(e)
    }

    /// Convenience constructor for a path multicast.
    ///
    /// # Panics
    ///
    /// Panics if `path` is empty.
    pub fn multicast(path: Vec<Endpoint>) -> Self {
        Self::multicast_shared(path.into())
    }

    /// Path multicast over an already-shared endpoint list: repeated
    /// senders keep one list alive and `Arc::clone` it per packet.
    ///
    /// # Panics
    ///
    /// Panics if `path` is empty.
    pub fn multicast_shared(path: Arc<[Endpoint]>) -> Self {
        assert!(
            !path.is_empty(),
            "multicast destination list cannot be empty"
        );
        Dest::Multicast(path)
    }

    /// The endpoints of this destination, in visiting order.
    pub fn endpoints(&self) -> &[Endpoint] {
        match self {
            Dest::Unicast(e) => std::slice::from_ref(e),
            Dest::Multicast(v) => v,
        }
    }

    /// Whether this packet needs multicast replication support.
    pub fn is_multicast(&self) -> bool {
        matches!(self, Dest::Multicast(v) if v.len() > 1)
    }
}

/// An injected packet. `P` is the protocol payload type carried opaquely
/// by the network (the cache system uses its message enum).
#[derive(Debug, Clone, PartialEq)]
pub struct Packet<P> {
    /// Identifier, assigned by [`crate::Network::inject`].
    pub id: PacketId,
    /// Source endpoint.
    pub src: Endpoint,
    /// Destination(s).
    pub dest: Dest,
    /// Length in flits (use [`flits_for_bytes`]).
    pub flits: u32,
    /// Cycle the packet entered the source queue; stamped by `inject`.
    pub injected_at: u64,
    /// Protocol payload.
    pub payload: P,
}

impl<P> Packet<P> {
    /// Creates a packet ready for [`crate::Network::inject`].
    ///
    /// # Panics
    ///
    /// Panics if `flits` is zero.
    pub fn new(src: Endpoint, dest: Dest, flits: u32, payload: P) -> Self {
        assert!(flits >= 1, "a packet is at least one flit");
        Packet {
            id: PacketId(0),
            src,
            dest,
            flits,
            injected_at: 0,
            payload,
        }
    }
}

/// One flit in flight. Flits of a packet share the packet body via
/// `Arc`: flits of one packet live in several routers at once, and the
/// sharded commit phase clones and drops them from different worker
/// threads, so the count must be atomic.
#[derive(Debug)]
pub(crate) struct FlitRef<P> {
    pub pkt: Arc<Packet<P>>,
    /// Position within the packet: 0 = head, `flits - 1` = tail.
    pub seq: u32,
    /// Index into `pkt.dest.endpoints()` of the next endpoint this copy
    /// still has to reach.
    pub dest_idx: u32,
    /// Exclusive end of the destination-list range this copy serves:
    /// the copy covers endpoints `dest_idx .. dest_hi`. Injected flits
    /// cover the whole list; tree-based multicast truncates ranges at
    /// each fork, while hybrid and path replication keep the full range
    /// on the continuing copy (their copies peel one endpoint at a
    /// time, advancing `dest_idx` instead).
    pub dest_hi: u32,
}

// Manual impl: `P` itself need not be `Clone` — flits share the packet
// body through the `Arc`.
impl<P> Clone for FlitRef<P> {
    fn clone(&self) -> Self {
        FlitRef {
            pkt: Arc::clone(&self.pkt),
            seq: self.seq,
            dest_idx: self.dest_idx,
            dest_hi: self.dest_hi,
        }
    }
}

impl<P> FlitRef<P> {
    pub fn is_head(&self) -> bool {
        self.seq == 0
    }

    pub fn is_tail(&self) -> bool {
        self.seq + 1 == self.pkt.flits
    }

    /// The endpoint this copy is currently heading to.
    pub fn target(&self) -> Endpoint {
        self.pkt.dest.endpoints()[self.dest_idx as usize]
    }

    /// Whether further endpoints remain after [`FlitRef::target`]
    /// within this copy's destination range.
    pub fn has_more_targets(&self) -> bool {
        self.dest_idx + 1 < self.dest_hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;

    #[test]
    fn request_packet_is_one_flit() {
        // 50 overhead bits alone fit into one 128-bit flit.
        assert_eq!(flits_for_bytes(0), 1);
    }

    #[test]
    fn block_packet_is_five_flits() {
        // 64 B data + 32 b address + 18 b overhead = 562 bits -> 5 flits.
        assert_eq!(flits_for_bytes(BLOCK_BYTES), 5);
    }

    #[test]
    fn small_write_fits_fewer_flits() {
        assert_eq!(flits_for_bytes(8), 1);
        assert_eq!(flits_for_bytes(16), 2);
    }

    #[test]
    fn dest_endpoints_order_preserved() {
        let a = Endpoint::at(NodeId(1));
        let b = Endpoint::at(NodeId(2));
        let d = Dest::multicast(vec![a, b]);
        assert_eq!(d.endpoints(), &[a, b]);
        assert!(d.is_multicast());
        assert!(!Dest::unicast(a).is_multicast());
        // A single-destination "multicast" needs no replication.
        assert!(!Dest::multicast(vec![a]).is_multicast());
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn empty_multicast_panics() {
        let _ = Dest::multicast(vec![]);
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_flit_packet_panics() {
        let _ = Packet::new(
            Endpoint::at(NodeId(0)),
            Dest::unicast(Endpoint::at(NodeId(1))),
            0,
            (),
        );
    }

    #[test]
    fn flitref_head_tail() {
        let pkt = Arc::new(Packet::new(
            Endpoint::at(NodeId(0)),
            Dest::unicast(Endpoint::at(NodeId(1))),
            3,
            (),
        ));
        let head = FlitRef {
            pkt: Arc::clone(&pkt),
            seq: 0,
            dest_idx: 0,
            dest_hi: 1,
        };
        let mid = FlitRef {
            pkt: Arc::clone(&pkt),
            seq: 1,
            dest_idx: 0,
            dest_hi: 1,
        };
        let tail = FlitRef {
            pkt,
            seq: 2,
            dest_idx: 0,
            dest_hi: 1,
        };
        assert!(head.is_head() && !head.is_tail());
        assert!(!mid.is_head() && !mid.is_tail());
        assert!(!tail.is_head() && tail.is_tail());
        assert!(!head.has_more_targets());
    }
}
