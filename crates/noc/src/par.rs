//! A tiny persistent worker pool for the two-phase cycle kernel.
//!
//! The compute phase of [`crate::Network::step`] runs once per simulated
//! cycle, which at steady state is a few microseconds of work. Spawning
//! OS threads per cycle (even via `std::thread::scope`) costs more than
//! the phase itself, so the network keeps one [`SimPool`] alive across
//! cycles and re-dispatches the same type-erased job to it every cycle.
//! No external crates: the pool is a `Mutex`/`Condvar` park bench plus
//! three atomics (vendored-only policy, same as the sweep engine).
//!
//! # Dispatch protocol
//!
//! Publishing a job stores the job cell, then bumps the `seq` counter
//! (release) and notifies the condvar *after* taking the mutex, so a
//! worker either observes the new `seq` before parking or is already
//! inside `Condvar::wait` and receives the wakeup — the classic
//! lost-wakeup-free handoff. Workers spin briefly (with
//! [`std::thread::yield_now`], so oversubscribed or single-core hosts
//! degrade to scheduling, not busy-burn) before parking.
//!
//! [`SimPool::run`] executes the job on the calling thread as worker 0
//! and blocks until every spawned worker finished, so jobs may safely
//! borrow the caller's stack (the raw `data` pointer never outlives the
//! call).

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A type-erased job: `f(data, worker_index)`. The shim function is
/// monomorphized by the caller and knows the concrete type behind
/// `data`.
#[derive(Clone, Copy)]
struct Job {
    f: unsafe fn(*const (), usize),
    data: *const (),
}

// SAFETY: the pointer is only dereferenced through `f`, which the
// caller guarantees is safe to run from multiple threads at once on
// this `data` (see `SimPool::run`). The pool itself never reads it.
unsafe impl Send for Job {}

struct Shared {
    /// Monotone job counter; a change publishes a new job (or shutdown).
    seq: AtomicU64,
    /// Spawned workers still running the current job.
    remaining: AtomicUsize,
    shutdown: AtomicBool,
    /// A worker's job invocation panicked (the panic is re-raised on
    /// the dispatching thread so it cannot pass silently, and
    /// `remaining` still reaches zero so `run` never hangs).
    panicked: AtomicBool,
    job: Mutex<Option<Job>>,
    park: Condvar,
}

/// Persistent pool of `threads - 1` spawned workers; the dispatching
/// thread acts as worker 0.
pub(crate) struct SimPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
}

impl SimPool {
    /// Creates a pool that runs jobs on `threads` threads total
    /// (including the caller). `threads` must be at least 2 — a
    /// one-thread "pool" is the caller alone, which needs no pool.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 2, "a pool needs at least one spawned worker");
        let shared = Arc::new(Shared {
            seq: AtomicU64::new(0),
            remaining: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            panicked: AtomicBool::new(false),
            job: Mutex::new(None),
            park: Condvar::new(),
        });
        let handles = (1..threads)
            .map(|worker| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("nucanet-sim-{worker}"))
                    .spawn(move || worker_loop(&shared, worker))
                    .expect("spawning a sim worker thread")
            })
            .collect();
        SimPool {
            shared,
            handles,
            threads,
        }
    }

    /// Total threads this pool runs jobs on (spawned workers + caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(data, worker)` once per thread (worker indices
    /// `0..threads`), executing worker 0 on the calling thread, and
    /// returns when every invocation finished.
    ///
    /// # Safety
    ///
    /// `f(data, w)` must be safe to run concurrently from `threads`
    /// threads with distinct `w`, and `data` must stay valid for the
    /// whole call (it does: `run` blocks until all workers are done).
    pub unsafe fn run(&self, f: unsafe fn(*const (), usize), data: *const ()) {
        let spawned = self.handles.len();
        debug_assert!(spawned > 0);
        self.shared.remaining.store(spawned, Ordering::Relaxed);
        {
            let mut slot = self.shared.job.lock().expect("sim pool mutex");
            *slot = Some(Job { f, data });
            self.shared.seq.fetch_add(1, Ordering::Release);
        }
        self.shared.park.notify_all();
        // Worker 0: the calling thread. Catch a panic so we still wait
        // for the spawned workers before unwinding — they borrow `data`
        // from this stack frame.
        // SAFETY: forwarded from the caller's contract.
        let r0 = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe { f(data, 0) }));
        // Wait for the spawned workers. Spin with yields: the job is
        // microseconds long, and yielding keeps single-core hosts live.
        while self.shared.remaining.load(Ordering::Acquire) != 0 {
            std::hint::spin_loop();
            std::thread::yield_now();
        }
        if let Err(payload) = r0 {
            std::panic::resume_unwind(payload);
        }
        assert!(
            !self.shared.panicked.swap(false, Ordering::Relaxed),
            "a sim worker thread panicked"
        );
    }
}

impl Drop for SimPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        {
            let _guard = self.shared.job.lock().expect("sim pool mutex");
            self.shared.seq.fetch_add(1, Ordering::Release);
        }
        self.shared.park.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, worker: usize) {
    let mut last_seq = 0u64;
    loop {
        // Brief spin before parking: back-to-back cycles re-dispatch
        // within microseconds, and a parked thread costs a syscall to
        // wake. `yield_now` keeps this fair when cores are scarce.
        let mut seq = shared.seq.load(Ordering::Acquire);
        let mut spins = 0u32;
        while seq == last_seq && spins < 64 {
            std::hint::spin_loop();
            std::thread::yield_now();
            spins += 1;
            seq = shared.seq.load(Ordering::Acquire);
        }
        if seq == last_seq {
            let mut guard = shared.job.lock().expect("sim pool mutex");
            loop {
                seq = shared.seq.load(Ordering::Acquire);
                if seq != last_seq {
                    break;
                }
                guard = shared.park.wait(guard).expect("sim pool condvar");
            }
        }
        last_seq = seq;
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        let job = shared
            .job
            .lock()
            .expect("sim pool mutex")
            .expect("a published seq always carries a job");
        // SAFETY: `SimPool::run` keeps `data` alive until `remaining`
        // reaches zero, which happens only after this call returns.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {
            (job.f)(job.data, worker)
        }));
        if r.is_err() {
            shared.panicked.store(true, Ordering::Relaxed);
        }
        shared.remaining.fetch_sub(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_every_worker_and_survives_reuse() {
        let pool = SimPool::new(4);
        assert_eq!(pool.threads(), 4);
        struct Data {
            hits: [AtomicUsize; 4],
        }
        unsafe fn shim(data: *const (), worker: usize) {
            // SAFETY: `data` points at the `Data` on the caller's stack,
            // alive for the whole `run` call; each worker touches only
            // its own slot.
            let d = unsafe { &*(data as *const Data) };
            d.hits[worker].fetch_add(1, Ordering::Relaxed);
        }
        let data = Data {
            hits: [
                AtomicUsize::new(0),
                AtomicUsize::new(0),
                AtomicUsize::new(0),
                AtomicUsize::new(0),
            ],
        };
        for round in 1..=5usize {
            // SAFETY: `shim` only does disjoint atomic writes.
            unsafe { pool.run(shim, (&raw const data).cast()) };
            for h in &data.hits {
                assert_eq!(h.load(Ordering::Relaxed), round);
            }
        }
    }

    #[test]
    fn drop_joins_workers() {
        let pool = SimPool::new(2);
        drop(pool); // must not hang
    }

    #[test]
    #[should_panic(expected = "at least one spawned worker")]
    fn rejects_single_thread_pool() {
        let _ = SimPool::new(1);
    }
}
