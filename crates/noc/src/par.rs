//! A tiny persistent worker pool for the two-phase cycle kernel.
//!
//! The compute phase of [`crate::Network::step`] runs once per simulated
//! cycle, which at steady state is a few microseconds of work. Spawning
//! OS threads per cycle (even via `std::thread::scope`) costs more than
//! the phase itself, so the network keeps one [`SimPool`] alive across
//! cycles and re-dispatches the same type-erased job to it every cycle.
//! No external crates: the pool is an epoch barrier built from atomics
//! plus `std::thread::park` (vendored-only policy, same as the sweep
//! engine).
//!
//! # Dispatch protocol (epoch barrier)
//!
//! The job cell is a plain `UnsafeCell` written only by the dispatching
//! thread while every worker is provably idle (`run` returns only after
//! `remaining` hits zero, and each worker decrements `remaining` with a
//! release store *after* its last read of the cell). Publishing a cycle
//! is therefore just: store `remaining`, write the cell, bump the
//! `epoch` counter. At steady state — workers still inside their spin
//! window from the previous cycle — that is two uncontended atomic
//! writes and zero syscalls, replacing the old `Mutex` + `Condvar`
//! `notify_all` handoff whose per-cycle lock and wakeup syscalls
//! dominated small-worklist configs.
//!
//! # Why no wakeup is ever lost
//!
//! A worker that exhausts its spin window declares intent to sleep by
//! storing its `sleeping` flag with `SeqCst`, then re-loads `epoch`
//! (`SeqCst`) and only calls [`std::thread::park`] if it is unchanged.
//! The publisher bumps `epoch` with `SeqCst` and then loads each
//! `sleeping` flag (`SeqCst`), unparking every worker whose flag is
//! set. Because all four accesses are `SeqCst`, they interleave in one
//! total order, and the classic Dekker store-load argument applies: if
//! the worker's `epoch` re-load missed the bump, its `sleeping` store
//! precedes the bump in that order, so the publisher's later flag load
//! must see it and unpark. If instead the publisher's flag load missed
//! the store, the bump precedes the store, so the worker's re-load sees
//! the new epoch and never parks. A worker already committed to
//! `park()` when `unpark` arrives is released by the park token, which
//! `unpark` sets even when the target is not yet (or no longer) parked;
//! a stale token from a previous cycle at worst turns one `park` into
//! an immediate return, and the re-check loop parks again. Spurious
//! wakeups fall out of the same re-check.
//!
//! [`SimPool::run`] executes the job on the calling thread as worker 0
//! and blocks until every spawned worker finished, so jobs may safely
//! borrow the caller's stack (the raw `data` pointer never outlives the
//! call). It also accrues the pool's dispatch overhead — everything
//! `run` spends outside the caller's own job invocation — into a
//! cumulative [`SimPool::dispatch_ns`] counter, which the network's
//! adaptive kernel switch reads to price a parallel cycle against a
//! serial one.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::{JoinHandle, Thread};
use std::time::Instant;

/// A type-erased job: `f(data, worker_index)`. The shim function is
/// monomorphized by the caller and knows the concrete type behind
/// `data`.
#[derive(Clone, Copy)]
struct Job {
    f: unsafe fn(*const (), usize),
    data: *const (),
}

// SAFETY: the pointer is only dereferenced through `f`, which the
// caller guarantees is safe to run from multiple threads at once on
// this `data` (see `SimPool::run`). The pool itself never reads it.
unsafe impl Send for Job {}

/// Placeholder job for the cell before the first publish; never run
/// (workers read the cell only after observing an epoch bump, which
/// happens only after a real job is written).
unsafe fn never_run(_data: *const (), _worker: usize) {
    unreachable!("job cell read before first publish");
}

/// Per-spawned-worker parking state.
struct WorkerSlot {
    /// Set (SeqCst) by the worker just before it re-checks the epoch
    /// and parks; cleared when it wakes. The publisher unparks every
    /// worker whose flag it observes set after bumping the epoch.
    sleeping: AtomicBool,
    /// The worker's thread handle, registered by the worker itself as
    /// its first action; a set `sleeping` flag implies this is set.
    thread: OnceLock<Thread>,
}

struct Shared {
    /// Monotone cycle counter; a bump publishes the job cell (or
    /// shutdown).
    epoch: AtomicU64,
    /// Spawned workers still running the current job.
    remaining: AtomicUsize,
    shutdown: AtomicBool,
    /// A worker's job invocation panicked (the panic is re-raised on
    /// the dispatching thread so it cannot pass silently, and
    /// `remaining` still reaches zero so `run` never hangs).
    panicked: AtomicBool,
    /// Written only by the dispatcher while all workers are idle; read
    /// by workers only after an epoch bump (release/acquire through
    /// `epoch` orders the accesses — see the module docs).
    job: UnsafeCell<Job>,
    slots: Box<[WorkerSlot]>,
}

// SAFETY: the `UnsafeCell` is the only non-Sync field; the epoch
// protocol above guarantees writes to it never race with reads.
unsafe impl Sync for Shared {}

/// Spin iterations before a worker declares intent to sleep. Each
/// iteration yields, so scarce-core hosts degrade to scheduling, not
/// busy-burn; back-to-back cycles re-dispatch well inside the window.
const SPIN_ITERS: u32 = 64;

/// Persistent pool of `threads - 1` spawned workers; the dispatching
/// thread acts as worker 0.
pub(crate) struct SimPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
    /// Cumulative nanoseconds `run` spent on dispatch overhead: publish
    /// plus waiting for the spawned workers' tail, i.e. total `run`
    /// time minus the caller's own job invocation.
    dispatch_ns: AtomicU64,
}

impl SimPool {
    /// Creates a pool that runs jobs on `threads` threads total
    /// (including the caller). `threads` must be at least 2 — a
    /// one-thread "pool" is the caller alone, which needs no pool.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 2, "a pool needs at least one spawned worker");
        let shared = Arc::new(Shared {
            epoch: AtomicU64::new(0),
            remaining: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            panicked: AtomicBool::new(false),
            job: UnsafeCell::new(Job {
                f: never_run,
                data: std::ptr::null(),
            }),
            slots: (1..threads)
                .map(|_| WorkerSlot {
                    sleeping: AtomicBool::new(false),
                    thread: OnceLock::new(),
                })
                .collect(),
        });
        let handles = (1..threads)
            .map(|worker| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("nucanet-sim-{worker}"))
                    .spawn(move || worker_loop(&shared, worker))
                    .expect("spawning a sim worker thread")
            })
            .collect();
        SimPool {
            shared,
            handles,
            threads,
            dispatch_ns: AtomicU64::new(0),
        }
    }

    /// Total threads this pool runs jobs on (spawned workers + caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Cumulative dispatch overhead across every `run` call so far:
    /// the time spent publishing jobs and waiting out the spawned
    /// workers' tail, excluding the caller's own job invocation. The
    /// adaptive kernel switch differences this across cycles to price
    /// a pool dispatch on the current host.
    pub fn dispatch_ns(&self) -> u64 {
        self.dispatch_ns.load(Ordering::Relaxed)
    }

    /// Runs `f(data, worker)` once per thread (worker indices
    /// `0..threads`), executing worker 0 on the calling thread, and
    /// returns when every invocation finished.
    ///
    /// # Safety
    ///
    /// `f(data, w)` must be safe to run concurrently from `threads`
    /// threads with distinct `w`, and `data` must stay valid for the
    /// whole call (it does: `run` blocks until all workers are done).
    pub unsafe fn run(&self, f: unsafe fn(*const (), usize), data: *const ()) {
        let spawned = self.handles.len();
        debug_assert!(spawned > 0);
        let t_start = Instant::now();
        self.shared.remaining.store(spawned, Ordering::Relaxed);
        // SAFETY: every worker is idle here — the previous `run`
        // returned only after `remaining` reached zero, and each
        // worker's decrement is a release store sequenced after its
        // last read of the cell, so this write cannot race.
        unsafe {
            *self.shared.job.get() = Job { f, data };
        }
        // SeqCst: the bump is both the release of the job-cell write
        // and one half of the Dekker store-load pair with the workers'
        // `sleeping` flags (module docs).
        self.shared.epoch.fetch_add(1, Ordering::SeqCst);
        for slot in self.shared.slots.iter() {
            if slot.sleeping.load(Ordering::SeqCst) {
                slot.thread
                    .get()
                    .expect("a sleeping worker has registered its handle")
                    .unpark();
            }
        }
        // Worker 0: the calling thread. Catch a panic so we still wait
        // for the spawned workers before unwinding — they borrow `data`
        // from this stack frame.
        let t_job = Instant::now();
        // SAFETY: forwarded from the caller's contract.
        let r0 = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe { f(data, 0) }));
        let job_ns = t_job.elapsed().as_nanos() as u64;
        // Wait for the spawned workers. Spin with yields: the job is
        // microseconds long, and yielding keeps single-core hosts live.
        while self.shared.remaining.load(Ordering::Acquire) != 0 {
            std::hint::spin_loop();
            std::thread::yield_now();
        }
        let total_ns = t_start.elapsed().as_nanos() as u64;
        self.dispatch_ns
            .fetch_add(total_ns.saturating_sub(job_ns), Ordering::Relaxed);
        if let Err(payload) = r0 {
            std::panic::resume_unwind(payload);
        }
        assert!(
            !self.shared.panicked.swap(false, Ordering::Relaxed),
            "a sim worker thread panicked"
        );
    }
}

impl Drop for SimPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.epoch.fetch_add(1, Ordering::SeqCst);
        // Unconditional unpark: a spinning worker sees the epoch bump;
        // a parked (or about-to-park) one needs the token. Workers that
        // never registered a handle yet cannot be parked and will see
        // the bump on their first epoch load.
        for slot in self.shared.slots.iter() {
            if let Some(t) = slot.thread.get() {
                t.unpark();
            }
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, worker: usize) {
    let slot = &shared.slots[worker - 1];
    slot.thread
        .set(std::thread::current())
        .expect("worker registers its handle exactly once");
    let mut last_epoch = 0u64;
    loop {
        // Brief spin before parking: back-to-back cycles re-dispatch
        // within microseconds, and a parked thread costs a syscall to
        // wake. `yield_now` keeps this fair when cores are scarce.
        let mut epoch = shared.epoch.load(Ordering::Acquire);
        let mut spins = 0u32;
        while epoch == last_epoch && spins < SPIN_ITERS {
            std::hint::spin_loop();
            std::thread::yield_now();
            spins += 1;
            epoch = shared.epoch.load(Ordering::Acquire);
        }
        while epoch == last_epoch {
            // Declare intent to sleep, then re-check: the Dekker pair
            // with the publisher's bump-then-check (module docs).
            slot.sleeping.store(true, Ordering::SeqCst);
            epoch = shared.epoch.load(Ordering::SeqCst);
            if epoch != last_epoch {
                slot.sleeping.store(false, Ordering::Relaxed);
                break;
            }
            std::thread::park();
            slot.sleeping.store(false, Ordering::Relaxed);
            epoch = shared.epoch.load(Ordering::Acquire);
        }
        last_epoch = epoch;
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        // SAFETY: the acquire load of `epoch` that observed the bump
        // synchronizes with the publisher's SeqCst bump, which is
        // sequenced after the cell write; and `SimPool::run` keeps
        // `data` alive until `remaining` reaches zero, which happens
        // only after this job call returns.
        let job = unsafe { *shared.job.get() };
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {
            (job.f)(job.data, worker)
        }));
        if r.is_err() {
            shared.panicked.store(true, Ordering::Relaxed);
        }
        shared.remaining.fetch_sub(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_every_worker_and_survives_reuse() {
        let pool = SimPool::new(4);
        assert_eq!(pool.threads(), 4);
        struct Data {
            hits: [AtomicUsize; 4],
        }
        unsafe fn shim(data: *const (), worker: usize) {
            // SAFETY: `data` points at the `Data` on the caller's stack,
            // alive for the whole `run` call; each worker touches only
            // its own slot.
            let d = unsafe { &*(data as *const Data) };
            d.hits[worker].fetch_add(1, Ordering::Relaxed);
        }
        let data = Data {
            hits: [
                AtomicUsize::new(0),
                AtomicUsize::new(0),
                AtomicUsize::new(0),
                AtomicUsize::new(0),
            ],
        };
        for round in 1..=5usize {
            // SAFETY: `shim` only does disjoint atomic writes.
            unsafe { pool.run(shim, (&raw const data).cast()) };
            for h in &data.hits {
                assert_eq!(h.load(Ordering::Relaxed), round);
            }
        }
    }

    #[test]
    fn survives_park_wakeups_after_idle_gaps() {
        // Force the park path: sleep past the spin window between
        // dispatches so workers actually park and must be unparked.
        let pool = SimPool::new(3);
        static HITS: AtomicUsize = AtomicUsize::new(0);
        unsafe fn shim(_data: *const (), _worker: usize) {
            HITS.fetch_add(1, Ordering::Relaxed);
        }
        for round in 1..=3usize {
            std::thread::sleep(std::time::Duration::from_millis(20));
            // SAFETY: `shim` touches only a static atomic.
            unsafe { pool.run(shim, std::ptr::null()) };
            assert_eq!(HITS.load(Ordering::Relaxed), round * 3);
        }
    }

    #[test]
    fn accrues_dispatch_overhead() {
        let pool = SimPool::new(2);
        unsafe fn shim(_data: *const (), _worker: usize) {}
        // SAFETY: `shim` does nothing.
        unsafe { pool.run(shim, std::ptr::null()) };
        let after_one = pool.dispatch_ns();
        assert!(after_one > 0, "dispatch must cost a measurable time");
        // SAFETY: as above.
        unsafe { pool.run(shim, std::ptr::null()) };
        assert!(pool.dispatch_ns() >= after_one, "counter is cumulative");
    }

    #[test]
    fn drop_joins_workers() {
        let pool = SimPool::new(2);
        drop(pool); // must not hang
    }

    #[test]
    #[should_panic(expected = "at least one spawned worker")]
    fn rejects_single_thread_pool() {
        let _ = SimPool::new(1);
    }
}
