//! Optional network event log for protocol debugging.
//!
//! When enabled, the [`crate::Network`] records packet-level events into
//! a bounded ring buffer (oldest entries are dropped first). The log has
//! zero cost while disabled, which is the default.

use std::collections::VecDeque;

use crate::ids::{Endpoint, LinkId, NodeId};
use crate::packet::PacketId;

/// One logged event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetEvent {
    /// A packet entered a source queue.
    Inject {
        /// Cycle of injection.
        cycle: u64,
        /// Packet id assigned.
        packet: PacketId,
        /// Source endpoint.
        src: Endpoint,
        /// Flit count.
        flits: u32,
    },
    /// A packet's tail was handed to a local sink.
    Deliver {
        /// Cycle of delivery.
        cycle: u64,
        /// Which packet.
        packet: PacketId,
        /// Receiving endpoint.
        endpoint: Endpoint,
    },
    /// A multicast head reserved a replica VC at `node`.
    Replicate {
        /// Cycle of the reservation.
        cycle: u64,
        /// Which packet.
        packet: PacketId,
        /// Router performing the replication.
        node: NodeId,
    },
    /// A multicast head found no free replica VC at `node` this cycle.
    ReplicaBlocked {
        /// Cycle of the stall.
        cycle: u64,
        /// Router where the head stalled.
        node: NodeId,
    },
    /// A link changed state under the fault schedule.
    LinkState {
        /// Cycle the change applied.
        cycle: u64,
        /// The affected link.
        link: LinkId,
        /// `true` = repaired, `false` = failed.
        up: bool,
    },
    /// A delivered packet was dropped by the protocol layer (e.g. a
    /// stale reply to a transaction already cancelled by the timeout
    /// path). The network itself never drops flits; drivers report
    /// drops via [`crate::Network::log_event`] so invariant-violation
    /// reports include the causal entry.
    Drop {
        /// Cycle of the drop.
        cycle: u64,
        /// Which packet was discarded.
        packet: PacketId,
        /// Router whose local sink discarded it.
        node: NodeId,
    },
}

impl NetEvent {
    /// The cycle the event happened.
    pub fn cycle(&self) -> u64 {
        match *self {
            NetEvent::Inject { cycle, .. }
            | NetEvent::Deliver { cycle, .. }
            | NetEvent::Replicate { cycle, .. }
            | NetEvent::ReplicaBlocked { cycle, .. }
            | NetEvent::LinkState { cycle, .. }
            | NetEvent::Drop { cycle, .. } => cycle,
        }
    }
}

/// Bounded ring buffer of [`NetEvent`]s.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    capacity: usize,
    events: VecDeque<NetEvent>,
    dropped: u64,
}

impl EventLog {
    /// Creates a log keeping at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "event log needs room for at least one event");
        EventLog {
            capacity,
            events: VecDeque::with_capacity(capacity),
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest at capacity.
    pub fn push(&mut self, ev: NetEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &NetEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted because of the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The `n` most recent events, oldest first (fewer when the log
    /// holds fewer). Violation reports attach this tail as causal
    /// context.
    pub fn recent(&self, n: usize) -> Vec<NetEvent> {
        let skip = self.events.len().saturating_sub(n);
        self.events.iter().skip(skip).copied().collect()
    }

    /// Retained events concerning one packet, oldest first.
    pub fn for_packet(&self, packet: PacketId) -> Vec<NetEvent> {
        self.events
            .iter()
            .filter(|e| match e {
                NetEvent::Inject { packet: p, .. }
                | NetEvent::Deliver { packet: p, .. }
                | NetEvent::Replicate { packet: p, .. }
                | NetEvent::Drop { packet: p, .. } => *p == packet,
                NetEvent::ReplicaBlocked { .. } | NetEvent::LinkState { .. } => false,
            })
            .copied()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inject(cycle: u64, id: u64) -> NetEvent {
        NetEvent::Inject {
            cycle,
            packet: PacketId(id),
            src: Endpoint::at(NodeId(0)),
            flits: 1,
        }
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let mut log = EventLog::new(2);
        log.push(inject(1, 1));
        log.push(inject(2, 2));
        log.push(inject(3, 3));
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 1);
        let cycles: Vec<u64> = log.events().map(NetEvent::cycle).collect();
        assert_eq!(cycles, vec![2, 3]);
    }

    #[test]
    fn per_packet_filter() {
        let mut log = EventLog::new(8);
        log.push(inject(1, 7));
        log.push(NetEvent::Deliver {
            cycle: 5,
            packet: PacketId(7),
            endpoint: Endpoint::at(NodeId(3)),
        });
        log.push(inject(2, 8));
        log.push(NetEvent::ReplicaBlocked {
            cycle: 3,
            node: NodeId(1),
        });
        let evs = log.for_packet(PacketId(7));
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[1].cycle(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one event")]
    fn zero_capacity_panics() {
        let _ = EventLog::new(0);
    }

    #[test]
    fn empty_log() {
        let log = EventLog::new(4);
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn drop_events_are_recorded_and_attributed() {
        // A violation report that misses the protocol-level drop of the
        // packet under suspicion is useless; the ring must both retain
        // the Drop entry and surface it in the per-packet view.
        let mut log = EventLog::new(8);
        log.push(inject(1, 7));
        log.push(NetEvent::Drop {
            cycle: 4,
            packet: PacketId(7),
            node: NodeId(2),
        });
        log.push(inject(5, 8));
        let evs = log.for_packet(PacketId(7));
        assert_eq!(evs.len(), 2);
        assert!(matches!(
            evs[1],
            NetEvent::Drop {
                cycle: 4,
                node: NodeId(2),
                ..
            }
        ));
    }

    #[test]
    fn recent_returns_the_tail() {
        let mut log = EventLog::new(4);
        for i in 0..6 {
            log.push(inject(i, i));
        }
        let tail = log.recent(2);
        assert_eq!(tail.iter().map(NetEvent::cycle).collect::<Vec<_>>(), [4, 5]);
        // Asking for more than retained yields everything retained.
        assert_eq!(log.recent(100).len(), 4);
        assert!(EventLog::new(3).recent(2).is_empty());
    }
}
