//! Deterministic table-based routing.
//!
//! Routing decisions are precomputed into a [`RoutingTable`]
//! (`next_hop[current][destination] → port`), which models the paper's
//! lookahead routing: the output port of every hop is known before the
//! flit arrives. Three generators are provided:
//!
//! * [`RoutingSpec::Xy`] — classic dimension-order XY (Design A / D-NUCA).
//! * [`RoutingSpec::Xyx`] — the paper's Fig. 5 algorithm: packets moving
//!   down (or staying in the same row) route X first then Y+; packets
//!   moving up route Y− first, finishing with X in the destination row.
//!   On the simplified mesh this only ever uses horizontal links in the
//!   first and last rows.
//! * [`RoutingSpec::ShortestPath`] — BFS with deterministic tie-breaking,
//!   for halo and custom topologies.

use std::collections::VecDeque;
use std::fmt;

use crate::ids::{LinkId, NodeId, PortId};
use crate::topology::{PortLabel, Topology, TopologyKind};

/// Which routing algorithm to build a table from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoutingSpec {
    /// Dimension-order XY routing (X first, then Y).
    Xy,
    /// The paper's XYX routing (Fig. 5).
    Xyx,
    /// Hop-count shortest path (BFS, lowest-`LinkId` tie-break).
    ShortestPath,
}

/// Error building a routing table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildRoutingError {
    /// XY/XYX need mesh coordinates; the topology has none.
    NotAMesh,
}

impl fmt::Display for BuildRoutingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildRoutingError::NotAMesh => {
                write!(f, "coordinate routing requires a mesh topology")
            }
        }
    }
}

impl std::error::Error for BuildRoutingError {}

/// Precomputed next-hop table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingTable {
    n: usize,
    /// `next[cur * n + dst]`: output port at `cur` toward `dst`.
    next: Vec<Option<PortId>>,
    /// Whether a full path from `src` to `dst` exists.
    reachable: Vec<bool>,
    spec: RoutingSpec,
}

impl RoutingSpec {
    /// Builds the routing table for `topo` with every link usable.
    ///
    /// # Errors
    ///
    /// Returns [`BuildRoutingError::NotAMesh`] when a coordinate-based
    /// algorithm is requested for a topology without coordinates.
    pub fn build(self, topo: &Topology) -> Result<RoutingTable, BuildRoutingError> {
        self.build_masked(topo, &vec![true; topo.link_count()])
    }

    /// Builds the routing table for `topo` using only links marked `true`
    /// in `link_up` (indexed by `LinkId`). The topology itself is not
    /// modified, so `LinkId`s — and everything indexed by them, like
    /// per-link statistics — stay stable across rebuilds. Pairs that the
    /// degraded algorithm cannot connect simply become unroutable.
    ///
    /// # Errors
    ///
    /// Returns [`BuildRoutingError::NotAMesh`] when a coordinate-based
    /// algorithm is requested for a topology without coordinates.
    ///
    /// # Panics
    ///
    /// Panics when `link_up.len()` does not match the topology's link
    /// count.
    pub fn build_masked(
        self,
        topo: &Topology,
        link_up: &[bool],
    ) -> Result<RoutingTable, BuildRoutingError> {
        let mut builder = RoutingBuilder::new(self, topo)?;
        Ok(builder.build(topo, link_up))
    }

    /// Mesh port label per hop for XY / XYX.
    fn mesh_port(self, topo: &Topology, cur: NodeId, dst: NodeId) -> Option<PortLabel> {
        let c = topo.coord_of(cur)?;
        let d = topo.coord_of(dst)?;
        let xoff = d.col as i32 - c.col as i32;
        let yoff = d.row as i32 - c.row as i32;
        match self {
            RoutingSpec::Xy => Some(if xoff > 0 {
                PortLabel::XPlus
            } else if xoff < 0 {
                PortLabel::XMinus
            } else if yoff > 0 {
                PortLabel::YPlus
            } else {
                PortLabel::YMinus
            }),
            // Fig. 5(a): if Yoffset >= 0 { X first, then Y+ } else { Y- }.
            RoutingSpec::Xyx => Some(if yoff >= 0 {
                if xoff > 0 {
                    PortLabel::XPlus
                } else if xoff < 0 {
                    PortLabel::XMinus
                } else {
                    PortLabel::YPlus
                }
            } else {
                PortLabel::YMinus
            }),
            RoutingSpec::ShortestPath => unreachable!("handled in build"),
        }
    }
}

/// Reusable routing-table construction state: the topology's reverse
/// adjacency index (CSR over incoming links, ascending `LinkId` within
/// each node) plus dense per-destination scratch, so masked rebuilds
/// under fault events are O(links) per destination and allocation-free
/// after the first build.
///
/// The produced tables are bit-identical to a from-scratch
/// [`RoutingSpec::build_masked`]: the BFS relaxes each node's incoming
/// links in ascending `LinkId` order and keeps the lowest-`LinkId`
/// candidate among equal-distance predecessors, which is exactly the
/// old full-link-scan builder's deterministic tie-break.
#[derive(Debug, Clone)]
pub struct RoutingBuilder {
    spec: RoutingSpec,
    n: usize,
    n_links: usize,
    /// CSR offsets: node `v`'s incoming links are
    /// `rev_links[rev_head[v]..rev_head[v + 1]]`.
    rev_head: Vec<u32>,
    /// Incoming link ids, grouped by destination node, ascending.
    rev_links: Vec<u32>,
    /// Per link: `(src node, src port)`, avoiding a topology chase in
    /// the BFS inner loop.
    link_src: Vec<(u32, PortId)>,
    /// Per link: destination node, for the reachability chain walk.
    link_dst: Vec<u32>,
    /// Mesh only: each node's `[X+, X−, Y+, Y−]` ports with their
    /// outgoing links, precomputed so the per-pair fill does no label
    /// scans.
    dir: Vec<[Option<(PortId, u32)>; 4]>,
    /// Per node: the out-link behind `next[u * n + dst]`, kept while a
    /// destination's BFS runs (tie-break comparisons) and reused by the
    /// reachability walk as the successor pointer.
    via: Vec<u32>,
    dist: Vec<u32>,
    queue: VecDeque<u32>,
    /// Reachability chain-walk state per node: 0 unknown, 1 reaches the
    /// destination, 2 dead-ends or loops, 3 on the current walk.
    state: Vec<u8>,
    walk: Vec<u32>,
}

/// Sentinel for "no link" in dense `u32` link-id scratch.
const NO_LINK: u32 = u32::MAX;

impl RoutingBuilder {
    /// Prepares a builder for `spec` over `topo`: builds the reverse
    /// adjacency index (O(links)) and sizes the dense scratch. The
    /// builder may then produce any number of masked tables for this
    /// topology without rescanning it.
    ///
    /// # Errors
    ///
    /// Returns [`BuildRoutingError::NotAMesh`] when a coordinate-based
    /// algorithm is requested for a topology without coordinates.
    pub fn new(spec: RoutingSpec, topo: &Topology) -> Result<Self, BuildRoutingError> {
        let n = topo.len();
        let n_links = topo.link_count();
        if matches!(spec, RoutingSpec::Xy | RoutingSpec::Xyx)
            && !matches!(
                topo.kind(),
                TopologyKind::Mesh { .. } | TopologyKind::SimplifiedMesh { .. }
            )
        {
            return Err(BuildRoutingError::NotAMesh);
        }
        // Counting sort of link ids by destination node keeps each CSR
        // bucket in ascending LinkId order (stable, single pass).
        let mut counts = vec![0u32; n + 1];
        for l in topo.links() {
            counts[l.dst.0 as usize + 1] += 1;
        }
        for v in 0..n {
            counts[v + 1] += counts[v];
        }
        let rev_head = counts.clone();
        let mut rev_links = vec![0u32; n_links];
        let mut cursor = counts;
        let mut link_src = Vec::with_capacity(n_links);
        let mut link_dst = Vec::with_capacity(n_links);
        for (li, l) in topo.links().iter().enumerate() {
            let v = l.dst.0 as usize;
            rev_links[cursor[v] as usize] = li as u32;
            cursor[v] += 1;
            link_src.push((l.src.0, l.src_port));
            link_dst.push(l.dst.0);
        }
        let dir = if matches!(spec, RoutingSpec::Xy | RoutingSpec::Xyx) {
            topo.routers()
                .iter()
                .map(|r| {
                    let mut d = [None; 4];
                    for (label, slot) in [
                        (PortLabel::XPlus, 0),
                        (PortLabel::XMinus, 1),
                        (PortLabel::YPlus, 2),
                        (PortLabel::YMinus, 3),
                    ] {
                        d[slot] = r.port_by_label(label).and_then(|p| {
                            r.ports[p.0 as usize].out_link.map(|lk| (p, lk.0))
                        });
                    }
                    d
                })
                .collect()
        } else {
            Vec::new()
        };
        Ok(RoutingBuilder {
            spec,
            n,
            n_links,
            rev_head,
            rev_links,
            link_src,
            link_dst,
            dir,
            via: vec![NO_LINK; n],
            dist: vec![u32::MAX; n],
            queue: VecDeque::with_capacity(n),
            state: vec![0; n],
            walk: Vec::with_capacity(n),
        })
    }

    /// Builds a fresh table for the given link mask.
    ///
    /// # Panics
    ///
    /// Panics when `link_up.len()` does not match the topology's link
    /// count or the builder was prepared for a different topology.
    pub fn build(&mut self, topo: &Topology, link_up: &[bool]) -> RoutingTable {
        let mut table = RoutingTable {
            n: self.n,
            next: vec![None; self.n * self.n],
            reachable: vec![false; self.n * self.n],
            spec: self.spec,
        };
        self.rebuild_into(topo, link_up, &mut table);
        table
    }

    /// Rebuilds `table` in place for the given link mask, reusing both
    /// the table's storage and the builder's scratch — the steady-state
    /// path for fault-driven recomputation.
    ///
    /// # Panics
    ///
    /// Panics on topology/mask/table size mismatches or when `table`
    /// was built from a different spec.
    pub fn rebuild_into(&mut self, topo: &Topology, link_up: &[bool], table: &mut RoutingTable) {
        assert_eq!(
            link_up.len(),
            topo.link_count(),
            "link mask must cover every link"
        );
        assert_eq!(topo.len(), self.n, "builder prepared for another topology");
        assert_eq!(self.n_links, topo.link_count(), "topology changed links");
        assert_eq!(table.n, self.n, "table sized for another topology");
        assert_eq!(table.spec, self.spec, "table built from another spec");
        let n = self.n;
        table.next.fill(None);
        table.reachable.fill(false);
        match self.spec {
            RoutingSpec::Xy | RoutingSpec::Xyx => {
                for cur in 0..n {
                    for dst in 0..n {
                        if cur == dst {
                            continue;
                        }
                        let label = self
                            .spec
                            .mesh_port(topo, NodeId(cur as u32), NodeId(dst as u32));
                        table.next[cur * n + dst] = label.and_then(|l| {
                            let slot = match l {
                                PortLabel::XPlus => 0,
                                PortLabel::XMinus => 1,
                                PortLabel::YPlus => 2,
                                PortLabel::YMinus => 3,
                                _ => unreachable!("mesh routing uses direction ports"),
                            };
                            self.dir[cur][slot]
                                .filter(|&(_, lk)| link_up[lk as usize])
                                .map(|(p, _)| p)
                        });
                    }
                }
            }
            RoutingSpec::ShortestPath => {
                // BFS from every destination over the reverse adjacency
                // index; each pass touches every live link once.
                for dst in 0..n {
                    self.dist.fill(u32::MAX);
                    self.queue.clear();
                    self.dist[dst] = 0;
                    self.queue.push_back(dst as u32);
                    while let Some(v) = self.queue.pop_front() {
                        let v = v as usize;
                        let d_next = self.dist[v] + 1;
                        let lo = self.rev_head[v] as usize;
                        let hi = self.rev_head[v + 1] as usize;
                        for &li in &self.rev_links[lo..hi] {
                            if !link_up[li as usize] {
                                continue;
                            }
                            let (u, port) = self.link_src[li as usize];
                            let u = u as usize;
                            if self.dist[u] == u32::MAX {
                                self.dist[u] = d_next;
                                self.queue.push_back(u as u32);
                                table.next[u * n + dst] = Some(port);
                                self.via[u] = li;
                            } else if self.dist[u] == d_next && li < self.via[u] {
                                // Deterministic tie-break: lowest LinkId
                                // wins (as in the original builder).
                                table.next[u * n + dst] = Some(port);
                                self.via[u] = li;
                            }
                        }
                    }
                }
            }
        }
        self.compute_reachability(topo, table);
    }

    /// Fills `table.reachable` by walking each destination's next-hop
    /// chains with memoization: every node is classified once per
    /// destination (reaches it, dead-ends, or loops), so the pass is
    /// O(n) per destination instead of the old O(n²) per-pair walk.
    /// Chains that revisit a node are routing loops and stay
    /// unreachable, exactly like the old bounded walk.
    fn compute_reachability(&mut self, topo: &Topology, table: &mut RoutingTable) {
        let n = self.n;
        for dst in 0..n {
            self.state.fill(0);
            self.state[dst] = 1;
            for src in 0..n {
                if self.state[src] != 0 {
                    table.reachable[src * n + dst] = self.state[src] == 1;
                    continue;
                }
                self.walk.clear();
                let mut cur = src;
                let verdict = loop {
                    match self.state[cur] {
                        1 => break 1,
                        2 | 3 => break 2, // dead end or a loop closed
                        _ => {}
                    }
                    self.state[cur] = 3;
                    self.walk.push(cur as u32);
                    match table.next[cur * n + dst] {
                        None => break 2,
                        Some(p) => {
                            let link = topo.router(NodeId(cur as u32)).ports[p.0 as usize]
                                .out_link
                                .expect("routing table port has no out link");
                            cur = self.link_dst[link.0 as usize] as usize;
                        }
                    }
                };
                for &u in &self.walk {
                    self.state[u as usize] = verdict;
                }
                table.reachable[src * n + dst] = verdict == 1;
            }
            table.reachable[dst * n + dst] = true;
        }
    }
}

impl RoutingTable {
    /// Output port at `cur` toward `dst`; `None` when `cur == dst` or
    /// the algorithm provides no route.
    pub fn next_hop(&self, cur: NodeId, dst: NodeId) -> Option<PortId> {
        self.next[cur.0 as usize * self.n + dst.0 as usize]
    }

    /// Whether a complete route from `src` to `dst` exists.
    pub fn is_routable(&self, src: NodeId, dst: NodeId) -> bool {
        self.reachable[src.0 as usize * self.n + dst.0 as usize]
    }

    /// The algorithm this table was built from.
    pub fn spec(&self) -> RoutingSpec {
        self.spec
    }

    /// The full link path from `src` to `dst`, if routable.
    pub fn path(&self, topo: &Topology, src: NodeId, dst: NodeId) -> Option<Vec<LinkId>> {
        if !self.is_routable(src, dst) {
            return None;
        }
        let mut out = Vec::new();
        let mut cur = src;
        while cur != dst {
            let p = self.next_hop(cur, dst)?;
            let link = topo.router(cur).ports[p.0 as usize].out_link?;
            out.push(link);
            cur = topo.link(link).dst;
        }
        Some(out)
    }

    /// Hop count from `src` to `dst`, if routable.
    pub fn hops(&self, topo: &Topology, src: NodeId, dst: NodeId) -> Option<u32> {
        self.path(topo, src, dst).map(|p| p.len() as u32)
    }

    /// Latency (sum of link delays) from `src` to `dst`, if routable.
    pub fn path_delay(&self, topo: &Topology, src: NodeId, dst: NodeId) -> Option<u32> {
        self.path(topo, src, dst)
            .map(|p| p.iter().map(|&l| topo.link(l).delay).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Coord;

    fn unit(n: u16) -> Vec<u32> {
        vec![1; n as usize]
    }

    fn mesh4() -> Topology {
        Topology::mesh(4, 4, &unit(3), &unit(3))
    }

    #[test]
    fn xy_routes_x_first() {
        let t = mesh4();
        let rt = RoutingSpec::Xy.build(&t).unwrap();
        let src = t.node_at(0, 0);
        let dst = t.node_at(2, 2);
        let path = rt.path(&t, src, dst).unwrap();
        assert_eq!(path.len(), 4);
        // First two hops must be horizontal.
        let first = t.link(path[0]);
        assert_eq!(t.coord_of(first.dst), Some(Coord { col: 1, row: 0 }));
        let second = t.link(path[1]);
        assert_eq!(t.coord_of(second.dst), Some(Coord { col: 2, row: 0 }));
    }

    #[test]
    fn xyx_downward_matches_xy() {
        let t = mesh4();
        let xy = RoutingSpec::Xy.build(&t).unwrap();
        let xyx = RoutingSpec::Xyx.build(&t).unwrap();
        // Core row (0) to a lower row: identical paths.
        let src = t.node_at(1, 0);
        let dst = t.node_at(3, 3);
        assert_eq!(xy.path(&t, src, dst), xyx.path(&t, src, dst));
    }

    #[test]
    fn xyx_upward_routes_y_first() {
        let t = mesh4();
        let rt = RoutingSpec::Xyx.build(&t).unwrap();
        // A reply from bank (3,3) to the core column at (1,0):
        let src = t.node_at(3, 3);
        let dst = t.node_at(1, 0);
        let path = rt.path(&t, src, dst).unwrap();
        // First three hops go straight up the column.
        for (i, l) in path.iter().take(3).enumerate() {
            let link = t.link(*l);
            assert_eq!(
                t.coord_of(link.dst),
                Some(Coord {
                    col: 3,
                    row: 2 - i as u16
                }),
                "hop {i} must be vertical"
            );
        }
    }

    #[test]
    fn xyx_works_on_simplified_mesh_for_cache_patterns() {
        let t = Topology::simplified_mesh(8, 8, &unit(7), &unit(7));
        let rt = RoutingSpec::Xyx.build(&t).unwrap();
        let core = t.node_at(3, 0);
        let memory = t.node_at(4, 7);
        for col in 0..8 {
            for row in 0..8 {
                let bank = t.node_at(col, row);
                // Request: core -> any bank (via row 0, then down).
                assert!(rt.is_routable(core, bank), "core->({col},{row})");
                // Reply: any bank -> core.
                assert!(rt.is_routable(bank, core), "({col},{row})->core");
                // Memory fill: memory -> MRU bank (row 0).
                if row == 0 {
                    assert!(rt.is_routable(memory, bank), "mem->({col},0)");
                }
                // Writeback: LRU bank (last row) -> memory.
                if row == 7 {
                    assert!(rt.is_routable(bank, memory), "({col},7)->mem");
                }
            }
        }
        // Core <-> memory.
        assert!(rt.is_routable(core, memory));
        assert!(rt.is_routable(memory, core));
    }

    #[test]
    fn xy_is_not_complete_on_simplified_mesh() {
        let t = Topology::simplified_mesh(4, 4, &unit(3), &unit(3));
        let rt = RoutingSpec::Xy.build(&t).unwrap();
        // XY from (0,1) to (2,1) needs a horizontal link in row 1.
        assert!(!rt.is_routable(t.node_at(0, 1), t.node_at(2, 1)));
    }

    #[test]
    fn xyx_mid_row_horizontal_is_unroutable_on_simplified_mesh() {
        let t = Topology::simplified_mesh(4, 4, &unit(3), &unit(3));
        let rt = RoutingSpec::Xyx.build(&t).unwrap();
        // Same-row traffic in an interior row does not occur in cache
        // communication and indeed has no route.
        assert!(!rt.is_routable(t.node_at(0, 1), t.node_at(2, 1)));
    }

    #[test]
    fn shortest_path_on_halo() {
        let t = Topology::halo(4, 4, &[1; 4], 1);
        let rt = RoutingSpec::ShortestPath.build(&t).unwrap();
        let hub = NodeId(0);
        for s in 0..4 {
            for pos in 0..4 {
                let bank = t.spike_node(s, pos);
                assert_eq!(rt.hops(&t, hub, bank), Some(pos as u32 + 1));
                assert_eq!(rt.hops(&t, bank, hub), Some(pos as u32 + 1));
            }
        }
        // Bank to bank on the same spike goes along the chain.
        assert_eq!(rt.hops(&t, t.spike_node(1, 0), t.spike_node(1, 3)), Some(3));
        // Bank to bank across spikes goes through the hub.
        assert_eq!(rt.hops(&t, t.spike_node(0, 1), t.spike_node(2, 1)), Some(4));
    }

    #[test]
    fn halo_mru_banks_equidistant_from_hub() {
        // The halo property: all MRU banks one hop from the core.
        let t = Topology::halo(16, 5, &[1, 1, 2, 2, 3], 2);
        let rt = RoutingSpec::ShortestPath.build(&t).unwrap();
        for s in 0..16 {
            assert_eq!(rt.hops(&t, NodeId(0), t.spike_node(s, 0)), Some(1));
        }
    }

    #[test]
    fn coordinate_routing_rejects_halo() {
        let t = Topology::halo(2, 2, &[1, 1], 1);
        assert_eq!(RoutingSpec::Xy.build(&t), Err(BuildRoutingError::NotAMesh));
        assert_eq!(RoutingSpec::Xyx.build(&t), Err(BuildRoutingError::NotAMesh));
    }

    #[test]
    fn path_delay_accumulates_link_delays() {
        let t = Topology::mesh(3, 3, &[2, 2], &[3, 3]);
        let rt = RoutingSpec::Xy.build(&t).unwrap();
        // (0,0) -> (2,2): 2 horizontal (2 each) + 2 vertical (3 each).
        assert_eq!(
            rt.path_delay(&t, t.node_at(0, 0), t.node_at(2, 2)),
            Some(10)
        );
    }

    #[test]
    fn self_route_is_trivially_reachable() {
        let t = mesh4();
        let rt = RoutingSpec::Xy.build(&t).unwrap();
        let n = t.node_at(1, 1);
        assert!(rt.is_routable(n, n));
        assert_eq!(rt.next_hop(n, n), None);
        assert_eq!(rt.hops(&t, n, n), Some(0));
    }

    #[test]
    fn full_mesh_xy_all_pairs_routable() {
        let t = mesh4();
        let rt = RoutingSpec::Xy.build(&t).unwrap();
        for a in 0..16u32 {
            for b in 0..16u32 {
                assert!(rt.is_routable(NodeId(a), NodeId(b)));
            }
        }
    }

    #[test]
    fn masked_build_with_all_links_up_matches_build() {
        let t = mesh4();
        let up = vec![true; t.link_count()];
        for spec in [RoutingSpec::Xy, RoutingSpec::Xyx, RoutingSpec::ShortestPath] {
            assert_eq!(spec.build(&t), spec.build_masked(&t, &up));
        }
    }

    #[test]
    fn shortest_path_routes_around_a_failed_link() {
        let t = mesh4();
        let full = RoutingSpec::ShortestPath.build(&t).unwrap();
        let (src, dst) = (t.node_at(0, 0), t.node_at(3, 0));
        let cut = full.path(&t, src, dst).unwrap()[1];
        let mut up = vec![true; t.link_count()];
        up[cut.0 as usize] = false;
        let degraded = RoutingSpec::ShortestPath.build_masked(&t, &up).unwrap();
        assert!(degraded.is_routable(src, dst));
        let detour = degraded.path(&t, src, dst).unwrap();
        assert!(!detour.contains(&cut), "path may not use the failed link");
        assert_eq!(detour.len(), 5, "one detour around a row link adds 2 hops");
    }

    #[test]
    fn xy_cannot_route_around_its_dimension_order() {
        // XY has exactly one path per pair: cutting any link on it makes
        // the pair unroutable (heads must wait for a repair).
        let t = mesh4();
        let full = RoutingSpec::Xy.build(&t).unwrap();
        let (src, dst) = (t.node_at(0, 0), t.node_at(3, 0));
        let cut = full.path(&t, src, dst).unwrap()[0];
        let mut up = vec![true; t.link_count()];
        up[cut.0 as usize] = false;
        let degraded = RoutingSpec::Xy.build_masked(&t, &up).unwrap();
        assert!(!degraded.is_routable(src, dst));
        // Pairs avoiding the cut link still route.
        assert!(degraded.is_routable(t.node_at(0, 1), t.node_at(3, 1)));
    }

    #[test]
    #[should_panic(expected = "link mask must cover")]
    fn masked_build_rejects_short_mask() {
        let t = mesh4();
        let _ = RoutingSpec::Xy.build_masked(&t, &[true; 3]);
    }

    /// The pre-rework builder, kept verbatim as a reference: full link
    /// rescan on every BFS pop and the per-pair bounded chain walk for
    /// reachability. The production [`RoutingBuilder`] must match it
    /// bit for bit.
    fn reference_build_masked(spec: RoutingSpec, topo: &Topology, link_up: &[bool]) -> RoutingTable {
        assert_eq!(link_up.len(), topo.link_count());
        let n = topo.len();
        let mut next = vec![None; n * n];
        match spec {
            RoutingSpec::Xy | RoutingSpec::Xyx => {
                for cur in 0..n {
                    for dst in 0..n {
                        if cur == dst {
                            continue;
                        }
                        let label = spec.mesh_port(topo, NodeId(cur as u32), NodeId(dst as u32));
                        next[cur * n + dst] = label.and_then(|l| {
                            let r = topo.router(NodeId(cur as u32));
                            r.port_by_label(l).filter(|p| {
                                r.ports[p.0 as usize]
                                    .out_link
                                    .is_some_and(|lk| link_up[lk.0 as usize])
                            })
                        });
                    }
                }
            }
            RoutingSpec::ShortestPath => {
                for dst in 0..n {
                    let mut dist = vec![u32::MAX; n];
                    let mut q = VecDeque::new();
                    dist[dst] = 0;
                    q.push_back(dst);
                    while let Some(v) = q.pop_front() {
                        for (li, l) in topo.links().iter().enumerate() {
                            if !link_up[li] || l.dst.0 as usize != v {
                                continue;
                            }
                            let u = l.src.0 as usize;
                            if dist[u] == u32::MAX {
                                dist[u] = dist[v] + 1;
                                q.push_back(u);
                                next[u * n + dst] = Some(l.src_port);
                            } else if dist[u] == dist[v] + 1 {
                                let better = match next[u * n + dst] {
                                    None => true,
                                    Some(p) => {
                                        let cur_link = topo.router(NodeId(u as u32)).ports
                                            [p.0 as usize]
                                            .out_link
                                            .expect("routed port must have an out link");
                                        LinkId(li as u32) < cur_link
                                    }
                                };
                                if better {
                                    next[u * n + dst] = Some(l.src_port);
                                }
                            }
                        }
                    }
                }
            }
        }
        let mut reachable = vec![false; n * n];
        for src in 0..n {
            'dst: for dst in 0..n {
                if src == dst {
                    reachable[src * n + dst] = true;
                    continue;
                }
                let mut cur = src;
                for _ in 0..=n {
                    match next[cur * n + dst] {
                        None => continue 'dst,
                        Some(p) => {
                            let link = topo.router(NodeId(cur as u32)).ports[p.0 as usize]
                                .out_link
                                .expect("routing table port has no out link");
                            cur = topo.link(link).dst.0 as usize;
                            if cur == dst {
                                reachable[src * n + dst] = true;
                                continue 'dst;
                            }
                        }
                    }
                }
            }
        }
        RoutingTable {
            n,
            next,
            reachable,
            spec,
        }
    }

    /// A deterministic sprinkling of down links for masked comparisons.
    fn masked(topo: &Topology, stride: usize) -> Vec<bool> {
        (0..topo.link_count()).map(|i| i % stride != 0).collect()
    }

    #[test]
    fn builder_is_bit_identical_to_the_reference_builder() {
        let cases: Vec<(Topology, Vec<RoutingSpec>)> = vec![
            (
                Topology::mesh(4, 4, &unit(3), &unit(3)),
                vec![RoutingSpec::Xy, RoutingSpec::Xyx, RoutingSpec::ShortestPath],
            ),
            (
                Topology::simplified_mesh(5, 4, &unit(4), &unit(3)),
                vec![RoutingSpec::Xyx, RoutingSpec::ShortestPath],
            ),
            (
                Topology::halo(4, 3, &[1, 2, 1], 2),
                vec![RoutingSpec::ShortestPath],
            ),
            (
                Topology::multi_hub_halo(3, 2, 2, &[1, 2], 2, 2),
                vec![RoutingSpec::ShortestPath],
            ),
        ];
        for (topo, specs) in &cases {
            for &spec in specs {
                let all_up = vec![true; topo.link_count()];
                for mask in [all_up, masked(topo, 5), masked(topo, 3)] {
                    let fast = spec.build_masked(topo, &mask).unwrap();
                    let reference = reference_build_masked(spec, topo, &mask);
                    assert_eq!(
                        fast,
                        reference,
                        "{spec:?} diverges from the reference on {:?}",
                        topo.kind()
                    );
                }
            }
        }
    }

    #[test]
    fn rebuild_into_reuses_scratch_without_changing_results() {
        let t = mesh4();
        let mut builder = RoutingBuilder::new(RoutingSpec::ShortestPath, &t).unwrap();
        let mut table = builder.build(&t, &vec![true; t.link_count()]);
        // Walk through several masks with one builder + one table; each
        // in-place rebuild must equal a from-scratch build.
        for stride in [7, 4, 3, 9] {
            let mask = masked(&t, stride);
            builder.rebuild_into(&t, &mask, &mut table);
            let fresh = RoutingSpec::ShortestPath.build_masked(&t, &mask).unwrap();
            assert_eq!(table, fresh, "stride {stride}");
        }
        // And back to fully up: identical to the pristine build.
        let up = vec![true; t.link_count()];
        builder.rebuild_into(&t, &up, &mut table);
        assert_eq!(table, RoutingSpec::ShortestPath.build(&t).unwrap());
    }

    #[test]
    fn shortest_path_covers_the_multi_hub_halo() {
        let t = Topology::multi_hub_halo(4, 3, 2, &[1, 1], 2, 2);
        let rt = RoutingSpec::ShortestPath.build(&t).unwrap();
        let n = t.len() as u32;
        for a in 0..n {
            for b in 0..n {
                assert!(rt.is_routable(NodeId(a), NodeId(b)), "n{a}->n{b}");
            }
        }
        // Same-hub spikes meet at their hub: bank -> hub -> bank.
        assert_eq!(
            rt.hops(&t, t.hub_spike_node(1, 0, 0), t.hub_spike_node(1, 2, 0)),
            Some(2)
        );
        // Opposite hubs are two ring hops apart.
        assert_eq!(rt.hops(&t, t.hub_node(0), t.hub_node(2)), Some(2));
    }

    #[test]
    fn shortest_path_matches_manhattan_on_full_mesh() {
        let t = mesh4();
        let rt = RoutingSpec::ShortestPath.build(&t).unwrap();
        for a in 0..16u32 {
            for b in 0..16u32 {
                let (ca, cb) = (
                    t.coord_of(NodeId(a)).unwrap(),
                    t.coord_of(NodeId(b)).unwrap(),
                );
                assert_eq!(rt.hops(&t, NodeId(a), NodeId(b)), Some(ca.manhattan(cb)));
            }
        }
    }
}
