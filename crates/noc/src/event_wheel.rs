//! Bucketed event wheel (calendar queue) for bounded-delay scheduling.
//!
//! Every in-flight delay in the simulator — link traversal, pipeline
//! stages, credit return — is a small constant fixed at network
//! construction, so a comparison-based priority queue is overkill for
//! the cycle kernel. The [`EventWheel`] keeps one FIFO bucket per cycle
//! in a window of `horizon + 1` cycles and indexes it with
//! `when % (horizon + 1)`: scheduling and draining are O(1) per event
//! with no comparisons and, in steady state, no allocations (buckets
//! and the drain buffer retain their capacity).
//!
//! # Ordering contract
//!
//! Events due the same cycle drain in **scheduling order** (the bucket
//! is a FIFO). This is exactly the `(when, seq)` order the previous
//! `BinaryHeap` implementation produced with a monotone sequence
//! number, so replacing the heap preserves bit-identical simulation
//! results; a property test checks the equivalence against a reference
//! heap.
//!
//! # Window invariant
//!
//! All pending events live in `(now, now + horizon]`, which spans at
//! most `horizon` distinct cycles — strictly fewer than the
//! `horizon + 1` buckets — so two pending events can never collide in
//! a bucket with different due cycles. [`EventWheel::schedule`] rejects
//! events outside the window.

/// A calendar queue over a bounded scheduling horizon. `T` is the event
/// payload; due cycles are `u64` simulation cycles.
#[derive(Debug)]
pub struct EventWheel<T> {
    /// `buckets[when % buckets.len()]` holds `(when, item)` pairs, all
    /// with the same `when`, in scheduling (FIFO) order.
    buckets: Vec<Vec<(u64, T)>>,
    /// Recycled drain buffer handed out by [`EventWheel::take_due`].
    spare: Vec<(u64, T)>,
    len: usize,
    horizon: u64,
}

impl<T> EventWheel<T> {
    /// Creates a wheel able to schedule up to `horizon` cycles ahead.
    ///
    /// # Panics
    ///
    /// Panics when `horizon` is zero (nothing could ever be scheduled:
    /// events are always due strictly in the future).
    #[must_use]
    pub fn new(horizon: u64) -> Self {
        assert!(horizon >= 1, "a zero-horizon wheel cannot hold events");
        let slots = usize::try_from(horizon + 1).expect("horizon fits a usize");
        EventWheel {
            buckets: (0..slots).map(|_| Vec::new()).collect(),
            spare: Vec::new(),
            len: 0,
            horizon,
        }
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The scheduling horizon this wheel was built for.
    #[must_use]
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// Schedules `item` for cycle `when`, given the current cycle `now`.
    ///
    /// # Panics
    ///
    /// Panics unless `now < when <= now + horizon` — delays outside the
    /// window indicate a mis-sized wheel, which would silently corrupt
    /// event order if admitted.
    pub fn schedule(&mut self, now: u64, when: u64, item: T) {
        assert!(
            when > now && when - now <= self.horizon,
            "event at cycle {when} outside wheel window ({now}, {}]",
            now + self.horizon
        );
        let idx = (when % self.buckets.len() as u64) as usize;
        self.buckets[idx].push((when, item));
        self.len += 1;
    }

    /// The earliest cycle any pending event is due, or `None` when the
    /// wheel is empty. O(horizon), used only on idle fast-forward.
    #[must_use]
    pub fn next_cycle(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        self.buckets
            .iter()
            .filter_map(|b| b.first().map(|&(when, _)| when))
            .min()
    }

    /// Removes and returns every event due at cycle `now`, in scheduling
    /// order. The returned buffer should be handed back via
    /// [`EventWheel::recycle`] after processing so its capacity is
    /// reused instead of reallocated.
    ///
    /// # Panics
    ///
    /// Panics if the bucket holds an event not due at `now` — the
    /// caller skipped a cycle that still had work, which the simulator
    /// never does ([`crate::Network::skip_to`] refuses to jump past a
    /// scheduled event).
    #[must_use]
    pub fn take_due(&mut self, now: u64) -> Vec<(u64, T)> {
        let idx = (now % self.buckets.len() as u64) as usize;
        let batch = std::mem::replace(&mut self.buckets[idx], std::mem::take(&mut self.spare));
        assert!(
            batch.iter().all(|&(when, _)| when == now),
            "wheel bucket for cycle {now} holds an event from another cycle"
        );
        self.len -= batch.len();
        batch
    }

    /// Iterates over every pending `(when, item)` pair, in no
    /// particular order. Used by the invariant checker to recount the
    /// wire independently of the kernel's own in-flight bookkeeping.
    pub fn iter(&self) -> impl Iterator<Item = &(u64, T)> {
        self.buckets.iter().flat_map(|b| b.iter())
    }

    /// Drops every pending event while keeping bucket and drain-buffer
    /// capacities, so a reused wheel schedules without reallocating.
    /// Part of the warm-reset path; a freshly cleared wheel behaves
    /// exactly like a new one (the extra capacity is unobservable).
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.spare.clear();
        self.len = 0;
    }

    /// Returns a drained buffer from [`EventWheel::take_due`] so the
    /// next drain reuses its capacity.
    pub fn recycle(&mut self, mut batch: Vec<(u64, T)>) {
        batch.clear();
        // Keep the larger buffer: bucket and drain capacities ping-pong.
        if batch.capacity() > self.spare.capacity() {
            self.spare = batch;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[test]
    fn drains_in_cycle_then_fifo_order() {
        let mut w = EventWheel::new(4);
        w.schedule(0, 2, "a");
        w.schedule(0, 1, "b");
        w.schedule(0, 2, "c");
        assert_eq!(w.len(), 3);
        assert_eq!(w.next_cycle(), Some(1));
        let due1 = w.take_due(1);
        assert_eq!(due1.iter().map(|&(_, x)| x).collect::<Vec<_>>(), ["b"]);
        w.recycle(due1);
        let due2 = w.take_due(2);
        assert_eq!(
            due2.iter().map(|&(_, x)| x).collect::<Vec<_>>(),
            ["a", "c"],
            "same-cycle events keep scheduling order"
        );
        w.recycle(due2);
        assert!(w.is_empty());
        assert_eq!(w.next_cycle(), None);
    }

    #[test]
    fn wraps_around_the_window() {
        let mut w = EventWheel::new(3);
        for now in 0..50u64 {
            w.schedule(now, now + 3, now);
            let due = w.take_due(now + 1);
            if now >= 2 {
                assert_eq!(due.len(), 1);
                assert_eq!(due[0], (now + 1, now - 2));
            }
            w.recycle(due);
        }
    }

    #[test]
    fn steady_state_is_allocation_free_by_capacity() {
        // Capacity reuse: after a warm-up round, bucket and drain
        // buffers stop growing.
        let mut w = EventWheel::new(2);
        for now in 0..10u64 {
            for k in 0..8 {
                w.schedule(now, now + 1 + (k % 2), k);
            }
            let due = w.take_due(now + 1);
            w.recycle(due);
        }
        let caps: Vec<usize> = w.buckets.iter().map(Vec::capacity).collect();
        for now in 10..20u64 {
            for k in 0..8 {
                w.schedule(now, now + 1 + (k % 2), k);
            }
            let due = w.take_due(now + 1);
            w.recycle(due);
        }
        let caps_after: Vec<usize> = w.buckets.iter().map(Vec::capacity).collect();
        assert_eq!(caps, caps_after, "bucket capacities must stabilise");
    }

    #[test]
    #[should_panic(expected = "outside wheel window")]
    fn rejects_past_events() {
        let mut w = EventWheel::new(4);
        w.schedule(5, 5, ());
    }

    #[test]
    #[should_panic(expected = "outside wheel window")]
    fn rejects_beyond_horizon() {
        let mut w = EventWheel::new(4);
        w.schedule(0, 5, ());
        w.schedule(0, 6, ());
    }

    #[test]
    #[should_panic(expected = "zero-horizon")]
    fn rejects_zero_horizon() {
        let _ = EventWheel::<()>::new(0);
    }

    proptest! {
        /// The wheel yields events in exactly the order the old
        /// `BinaryHeap<(when, seq)>` implementation did, for random
        /// bounded-delay schedules interleaved with draining.
        #[test]
        fn matches_reference_heap_order(
            delays in proptest::collection::vec((1u64..7, 0u32..4), 1..120)
        ) {
            let horizon = 6;
            let mut wheel = EventWheel::new(horizon);
            // Reference: min-heap on (when, seq) — the previous
            // implementation's comparator.
            let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
            let mut seq: u64 = 0;
            let mut wheel_order: Vec<(u64, u64)> = Vec::new();
            let mut heap_order: Vec<(u64, u64)> = Vec::new();
            let mut now: u64 = 0;
            for &(delay, burst) in &delays {
                // Schedule a burst, then advance one cycle and drain.
                for _ in 0..=burst {
                    wheel.schedule(now, now + delay, seq);
                    heap.push(Reverse((now + delay, seq)));
                    seq += 1;
                }
                now += 1;
                let due = wheel.take_due(now);
                for &(when, id) in &due {
                    wheel_order.push((when, id));
                }
                wheel.recycle(due);
                while let Some(&Reverse((when, id))) = heap.peek() {
                    if when > now { break; }
                    heap.pop();
                    heap_order.push((when, id));
                }
                prop_assert_eq!(&wheel_order, &heap_order);
            }
            // Drain everything left.
            while !wheel.is_empty() {
                now += 1;
                let due = wheel.take_due(now);
                for &(when, id) in &due {
                    wheel_order.push((when, id));
                }
                wheel.recycle(due);
                while let Some(&Reverse((when, id))) = heap.peek() {
                    if when > now { break; }
                    heap.pop();
                    heap_order.push((when, id));
                }
            }
            prop_assert_eq!(wheel_order, heap_order);
        }
    }
}
