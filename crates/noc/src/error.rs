//! Structured simulation errors.
//!
//! A [`SimError`] replaces the hard aborts the simulator historically
//! used (watchdog `panic!`, cycle-limit `assert!`, "system wedged"
//! `panic!`). Errors propagate through the `Result`-based
//! [`crate::Network::step`] API up to the system driver, where a sweep
//! can record them per point instead of losing the whole run.

use std::fmt;

use crate::check::InvariantViolation;

/// Why a simulation could not make further progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The network watchdog saw flits buffered with no forward progress
    /// for the configured number of cycles — a deadlock, a protocol bug,
    /// or traffic stranded by a permanent link fault.
    Watchdog {
        /// Cycle at which the watchdog fired.
        cycle: u64,
        /// Progress-free cycles that triggered it (`watchdog_cycles`).
        stalled_for: u64,
        /// Flits buffered across all routers at that point.
        buffered_flits: usize,
        /// Routers still holding work.
        busy_routers: usize,
        /// Input VCs holding flits with no allocated route (heads
        /// waiting on routing, e.g. cut off by a fault).
        blocked_heads: usize,
        /// Links down under the fault schedule when the watchdog fired.
        faults_active: u64,
    },
    /// The system driver hit its absolute cycle ceiling.
    CycleLimit {
        /// The ceiling that was reached.
        limit: u64,
    },
    /// The system had outstanding transactions but neither buffered
    /// network work nor any scheduled event — nothing can ever happen.
    Wedged {
        /// Cycle at which the system wedged.
        cycle: u64,
        /// Transactions still outstanding across all cores.
        outstanding: usize,
        /// Human-readable dump of the stuck transactions.
        detail: String,
    },
    /// The runtime invariant checker (see [`crate::check`]) caught the
    /// simulator violating one of its own correctness properties — a
    /// simulator bug, not a property of the simulated workload. Boxed:
    /// the report carries recent event-log history.
    Invariant(Box<InvariantViolation>),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Watchdog {
                cycle,
                stalled_for,
                buffered_flits,
                busy_routers,
                blocked_heads,
                faults_active,
            } => write!(
                f,
                "network watchdog: no forward progress for {stalled_for} cycles at cycle \
                 {cycle} ({buffered_flits} flits buffered in {busy_routers} routers, \
                 {blocked_heads} unrouted heads, {faults_active} links down) — deadlock, \
                 protocol bug, or traffic stranded by a fault"
            ),
            SimError::CycleLimit { limit } => {
                write!(f, "simulation exceeded the cycle ceiling ({limit} cycles)")
            }
            SimError::Wedged {
                cycle,
                outstanding,
                detail,
            } => write!(
                f,
                "system wedged at cycle {cycle} with {outstanding} outstanding txns:\n{detail}"
            ),
            SimError::Invariant(v) => write!(f, "simulator invariant violated: {v}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watchdog_display_mentions_the_stall() {
        let e = SimError::Watchdog {
            cycle: 1000,
            stalled_for: 200,
            buffered_flits: 7,
            busy_routers: 2,
            blocked_heads: 1,
            faults_active: 1,
        };
        let s = e.to_string();
        assert!(s.contains("watchdog"), "{s}");
        assert!(s.contains("200 cycles"), "{s}");
        assert!(s.contains("1 links down"), "{s}");
    }

    #[test]
    fn errors_compare_structurally() {
        let a = SimError::CycleLimit { limit: 10 };
        assert_eq!(a, SimError::CycleLimit { limit: 10 });
        assert_ne!(a, SimError::CycleLimit { limit: 11 });
    }
}
