//! Multicast replication strategies.
//!
//! The paper's router (§3.1) uses **hybrid** replication: when a
//! path-multicast head must both eject locally and continue, the router
//! copies each flit into a reserved VC of a different input physical
//! channel. That is one point in the multicast-NoC design space; this
//! module names the axis so the rest of the simulator — the cycle
//! kernel, the golden model, the invariant checker, the fuzzer, and the
//! benchmark harness — can run the same workloads under alternatives
//! and compare them under identical seeds and fault schedules:
//!
//! * [`MulticastStrategy::Hybrid`] — the paper's design: replicate into
//!   a reserved replica VC at each visited destination, the primary
//!   worm continues toward the next endpoint.
//! * [`MulticastStrategy::Tree`] — replicate at *branch routers*: a
//!   worm carries a contiguous destination range and forks (into a
//!   reserved replica VC, like hybrid) wherever the routing table sends
//!   a prefix of that range out of a different port than the rest. No
//!   serial endpoint visitation; copies travel the routing tree.
//! * [`MulticastStrategy::Path`] — pure path-based multicast: one worm
//!   serially visits every destination and a copy is peeled off to the
//!   local sink *as the worm passes through*; no replica VCs, no
//!   reservations, no extra buffering.
//!
//! The enum is the hot-path selector (stored in
//! [`crate::RouterParams::strategy`] and matched directly inside the
//! kernel); [`StrategyModel`] carries the *expectations* each strategy
//! implies — replica-copy budgets, split counts — which the invariant
//! checker and property tests consume instead of hard-coding hybrid's
//! numbers.

use std::fmt;

/// How the network replicates multicast packets. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MulticastStrategy {
    /// The paper's hybrid replication (§3.1): replicate into a reserved
    /// VC at each visited destination while the primary continues.
    #[default]
    Hybrid,
    /// Tree-based multicast: fork at branch routers of the routing
    /// tree; each copy serves a contiguous destination range.
    Tree,
    /// Path-based multicast: one worm visits every destination in
    /// order, leaving a copy at each without any replication storage.
    Path,
}

/// Every strategy, in a stable order (used by samplers and sweeps).
pub const ALL_STRATEGIES: [MulticastStrategy; 3] = [
    MulticastStrategy::Hybrid,
    MulticastStrategy::Tree,
    MulticastStrategy::Path,
];

impl MulticastStrategy {
    /// Stable lower-case name (CLI / env / JSON spelling).
    pub fn name(self) -> &'static str {
        match self {
            MulticastStrategy::Hybrid => "hybrid",
            MulticastStrategy::Tree => "tree",
            MulticastStrategy::Path => "path",
        }
    }

    /// Parses the spelling produced by [`MulticastStrategy::name`].
    pub fn parse(s: &str) -> Option<Self> {
        ALL_STRATEGIES.iter().copied().find(|k| k.name() == s)
    }

    /// The expectations this strategy implies (see [`StrategyModel`]).
    pub fn model(self) -> &'static dyn StrategyModel {
        match self {
            MulticastStrategy::Hybrid => &HybridModel,
            MulticastStrategy::Tree => &TreeModel,
            MulticastStrategy::Path => &PathModel,
        }
    }
}

impl fmt::Display for MulticastStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What a replication strategy promises about its bookkeeping, consumed
/// by the invariant checker and property tests in place of hard-coded
/// hybrid constants.
///
/// All three built-in strategies share one striking identity: a fully
/// delivered packet of `f` flits and `n` destinations creates exactly
/// `f * (n - 1)` locally written replica copies — hybrid and tree pay
/// them as replica-VC writes (one split per extra destination, each
/// copying the whole worm), path pays them as passing-delivery clones.
/// The *split* counts differ: hybrid and tree install `n - 1` splits,
/// path installs none.
pub trait StrategyModel: fmt::Debug + Sync {
    /// The strategy's stable name.
    fn name(&self) -> &'static str;

    /// Exact locally written replica copies a fully delivered packet of
    /// `flits` flits and `n_dests` destinations creates — also the
    /// running upper bound while the packet is in flight.
    fn replica_copies(&self, flits: u32, n_dests: usize) -> u64;

    /// Exact multicast splits (replica-VC reservations) a fully
    /// delivered packet with `n_dests` destinations installs.
    fn splits_per_packet(&self, n_dests: usize) -> u64;

    /// Whether the strategy reserves replica VCs (and therefore uses
    /// the remote-reservation machinery at all).
    fn uses_replica_vcs(&self) -> bool;
}

fn extra_dests(n_dests: usize) -> u64 {
    n_dests.saturating_sub(1) as u64
}

/// Expectations of [`MulticastStrategy::Hybrid`].
#[derive(Debug)]
pub struct HybridModel;

impl StrategyModel for HybridModel {
    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn replica_copies(&self, flits: u32, n_dests: usize) -> u64 {
        u64::from(flits) * extra_dests(n_dests)
    }

    fn splits_per_packet(&self, n_dests: usize) -> u64 {
        extra_dests(n_dests)
    }

    fn uses_replica_vcs(&self) -> bool {
        true
    }
}

/// Expectations of [`MulticastStrategy::Tree`].
#[derive(Debug)]
pub struct TreeModel;

impl StrategyModel for TreeModel {
    fn name(&self) -> &'static str {
        "tree"
    }

    fn replica_copies(&self, flits: u32, n_dests: usize) -> u64 {
        // Each fork splits one destination range in two; reaching
        // `n_dests` singleton ranges takes exactly `n_dests - 1` forks,
        // each copying the whole worm.
        u64::from(flits) * extra_dests(n_dests)
    }

    fn splits_per_packet(&self, n_dests: usize) -> u64 {
        extra_dests(n_dests)
    }

    fn uses_replica_vcs(&self) -> bool {
        true
    }
}

/// Expectations of [`MulticastStrategy::Path`].
#[derive(Debug)]
pub struct PathModel;

impl StrategyModel for PathModel {
    fn name(&self) -> &'static str {
        "path"
    }

    fn replica_copies(&self, flits: u32, n_dests: usize) -> u64 {
        // One clone per flit at each non-final destination the worm
        // passes through.
        u64::from(flits) * extra_dests(n_dests)
    }

    fn splits_per_packet(&self, _n_dests: usize) -> u64 {
        0
    }

    fn uses_replica_vcs(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for s in ALL_STRATEGIES {
            assert_eq!(MulticastStrategy::parse(s.name()), Some(s));
            assert_eq!(s.to_string(), s.name());
            assert_eq!(s.model().name(), s.name());
        }
        assert_eq!(MulticastStrategy::parse("ring"), None);
    }

    #[test]
    fn default_is_the_paper_design() {
        assert_eq!(MulticastStrategy::default(), MulticastStrategy::Hybrid);
    }

    #[test]
    fn replica_copy_counts_agree_across_strategies() {
        for s in ALL_STRATEGIES {
            let m = s.model();
            assert_eq!(m.replica_copies(5, 4), 15, "{}", m.name());
            assert_eq!(m.replica_copies(1, 1), 0, "unicast never replicates");
            assert_eq!(m.replica_copies(3, 0), 0, "degenerate list");
        }
    }

    #[test]
    fn split_counts_differ_by_strategy() {
        assert_eq!(MulticastStrategy::Hybrid.model().splits_per_packet(4), 3);
        assert_eq!(MulticastStrategy::Tree.model().splits_per_packet(4), 3);
        assert_eq!(MulticastStrategy::Path.model().splits_per_packet(4), 0);
        assert!(!MulticastStrategy::Path.model().uses_replica_vcs());
        assert!(MulticastStrategy::Tree.model().uses_replica_vcs());
    }
}
