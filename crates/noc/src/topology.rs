//! Port-graph topologies: mesh, simplified mesh, and halo.
//!
//! A [`Topology`] is a set of routers, each with a list of ports. A port
//! is either a *local* attachment slot (bank, core, or memory controller)
//! or carries up to one outgoing and one incoming unidirectional
//! [`Link`]. Unidirectional links let us express the paper's Fig. 4(b)
//! minimal-link mesh and the simplified mesh of Design B.

use crate::ids::{Coord, LinkId, NodeId, PortId};

/// Role of a port, used by routing-table generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortLabel {
    /// Local attachment slot (bank / core / memory controller).
    Local(u16),
    /// Mesh: toward higher column numbers (east).
    XPlus,
    /// Mesh: toward lower column numbers (west).
    XMinus,
    /// Mesh: toward higher row numbers (south, away from the core row).
    YPlus,
    /// Mesh: toward lower row numbers (north, toward the core row).
    YMinus,
    /// Halo hub: entry of spike `s`.
    Spike(u16),
    /// Halo spike router: toward the hub.
    Up,
    /// Halo spike router: away from the hub.
    Down,
    /// Multi-hub halo hub: ring link toward the next hub (clockwise).
    RingNext,
    /// Multi-hub halo hub: ring link toward the previous hub.
    RingPrev,
}

/// One router port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    /// What the port is for.
    pub label: PortLabel,
    /// Link this port drives (absent on local ports and on removed
    /// directions of the simplified mesh).
    pub out_link: Option<LinkId>,
    /// Link that feeds this port.
    pub in_link: Option<LinkId>,
}

/// One router.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Router {
    /// Grid coordinate (meshes only).
    pub coord: Option<Coord>,
    /// Ports in arbitrary but stable order. Local slots come first.
    pub ports: Vec<Port>,
}

impl Router {
    /// Port index with the given label, if present.
    pub fn port_by_label(&self, label: PortLabel) -> Option<PortId> {
        self.ports
            .iter()
            .position(|p| p.label == label)
            .map(|i| PortId(u16::try_from(i).expect("router exceeds PortId range")))
    }

    /// Number of local attachment slots.
    pub fn local_slots(&self) -> u16 {
        let n = self
            .ports
            .iter()
            .filter(|p| matches!(p.label, PortLabel::Local(_)))
            .count();
        u16::try_from(n).expect("router exceeds the local-slot range")
    }

    /// Number of ports with an incoming link plus local slots — the
    /// router's input-port count for area estimation.
    pub fn in_ports(&self) -> u32 {
        self.ports
            .iter()
            .filter(|p| p.in_link.is_some() || matches!(p.label, PortLabel::Local(_)))
            .count() as u32
    }

    /// Output-port count (outgoing links plus local slots).
    pub fn out_ports(&self) -> u32 {
        self.ports
            .iter()
            .filter(|p| p.out_link.is_some() || matches!(p.label, PortLabel::Local(_)))
            .count() as u32
    }
}

/// One unidirectional link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Link {
    /// Driving router.
    pub src: NodeId,
    /// Port on the driving router.
    pub src_port: PortId,
    /// Receiving router.
    pub dst: NodeId,
    /// Port on the receiving router.
    pub dst_port: PortId,
    /// Traversal delay in cycles (per-tile wire delay, ≥ 1).
    pub delay: u32,
}

/// What family a topology belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologyKind {
    /// Full 2D mesh, `cols × rows`.
    Mesh {
        /// Columns (x extent).
        cols: u16,
        /// Rows (y extent).
        rows: u16,
    },
    /// Design B/C/D mesh: horizontal links only in the first and last
    /// rows (requires XYX routing).
    SimplifiedMesh {
        /// Columns (x extent).
        cols: u16,
        /// Rows (y extent).
        rows: u16,
    },
    /// Halo: hub router 0 with `spikes` linear spikes of `spike_len`
    /// routers each.
    Halo {
        /// Number of spikes radiating from the hub.
        spikes: u16,
        /// Routers per spike.
        spike_len: u16,
    },
    /// Multi-hub halo: `hubs` hub routers on a bidirectional ring, each
    /// carrying its own set of `spikes` spikes of `spike_len` routers.
    MultiHubHalo {
        /// Hub routers on the ring.
        hubs: u16,
        /// Spikes per hub.
        spikes: u16,
        /// Routers per spike.
        spike_len: u16,
    },
}

/// An immutable network topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    kind: TopologyKind,
    routers: Vec<Router>,
    links: Vec<Link>,
}

impl Topology {
    /// Builds a full `cols × rows` mesh with bidirectional links and one
    /// local slot per router.
    ///
    /// `col_gap_delays[c]` is the delay of horizontal links between
    /// columns `c` and `c+1` (length `cols-1`); `row_gap_delays[r]`
    /// likewise for vertical links (length `rows-1`).
    ///
    /// # Panics
    ///
    /// Panics on dimension/delay-slice mismatches or dimensions < 1.
    pub fn mesh(cols: u16, rows: u16, col_gap_delays: &[u32], row_gap_delays: &[u32]) -> Self {
        Self::build_mesh(cols, rows, col_gap_delays, row_gap_delays, false)
    }

    /// Builds the paper's *simplified mesh*: all vertical links, but
    /// horizontal links only in the first (row 0) and last rows.
    ///
    /// # Panics
    ///
    /// Panics on dimension/delay-slice mismatches or dimensions < 1.
    pub fn simplified_mesh(
        cols: u16,
        rows: u16,
        col_gap_delays: &[u32],
        row_gap_delays: &[u32],
    ) -> Self {
        Self::build_mesh(cols, rows, col_gap_delays, row_gap_delays, true)
    }

    fn build_mesh(
        cols: u16,
        rows: u16,
        col_gap_delays: &[u32],
        row_gap_delays: &[u32],
        simplified: bool,
    ) -> Self {
        assert!(
            cols >= 1 && rows >= 1,
            "mesh dimensions must be at least 1x1"
        );
        assert_eq!(
            col_gap_delays.len(),
            cols as usize - 1,
            "need cols-1 horizontal delays"
        );
        assert_eq!(
            row_gap_delays.len(),
            rows as usize - 1,
            "need rows-1 vertical delays"
        );
        assert!(
            col_gap_delays.iter().chain(row_gap_delays).all(|&d| d >= 1),
            "link delays must be at least one cycle"
        );

        let kind = if simplified {
            TopologyKind::SimplifiedMesh { cols, rows }
        } else {
            TopologyKind::Mesh { cols, rows }
        };
        let mut topo = Topology {
            kind,
            routers: Vec::new(),
            links: Vec::new(),
        };
        for row in 0..rows {
            for col in 0..cols {
                topo.routers.push(Router {
                    coord: Some(Coord { col, row }),
                    ports: vec![Port {
                        label: PortLabel::Local(0),
                        out_link: None,
                        in_link: None,
                    }],
                });
            }
        }
        let id = |col: u16, row: u16| NodeId((row as u32) * cols as u32 + col as u32);
        // Horizontal links.
        for row in 0..rows {
            if simplified && row != 0 && row != rows - 1 {
                continue;
            }
            for col in 0..cols - 1 {
                let d = col_gap_delays[col as usize];
                topo.connect(
                    id(col, row),
                    PortLabel::XPlus,
                    id(col + 1, row),
                    PortLabel::XMinus,
                    d,
                );
                topo.connect(
                    id(col + 1, row),
                    PortLabel::XMinus,
                    id(col, row),
                    PortLabel::XPlus,
                    d,
                );
            }
        }
        // Vertical links.
        for row in 0..rows - 1 {
            let d = row_gap_delays[row as usize];
            for col in 0..cols {
                topo.connect(
                    id(col, row),
                    PortLabel::YPlus,
                    id(col, row + 1),
                    PortLabel::YMinus,
                    d,
                );
                topo.connect(
                    id(col, row + 1),
                    PortLabel::YMinus,
                    id(col, row),
                    PortLabel::YPlus,
                    d,
                );
            }
        }
        topo
    }

    /// Builds a halo: router 0 is the hub (core location) with
    /// `hub_local_slots` local slots; each of `spikes` spikes is a chain
    /// of `spike_len` routers with one bank slot each.
    ///
    /// `spike_link_delays[j]` is the delay of the link between position
    /// `j-1` and `j` of a spike (`j = 0` connects the hub to the first
    /// bank); length must be `spike_len`.
    ///
    /// # Panics
    ///
    /// Panics on parameter mismatches or zero dimensions.
    pub fn halo(
        spikes: u16,
        spike_len: u16,
        spike_link_delays: &[u32],
        hub_local_slots: u16,
    ) -> Self {
        assert!(
            spikes >= 1 && spike_len >= 1,
            "halo needs at least one spike of one router"
        );
        assert!(hub_local_slots >= 1, "hub needs at least one local slot");
        assert_eq!(
            spike_link_delays.len(),
            spike_len as usize,
            "need spike_len link delays"
        );
        assert!(
            spike_link_delays.iter().all(|&d| d >= 1),
            "link delays must be at least one cycle"
        );

        let mut topo = Topology {
            kind: TopologyKind::Halo { spikes, spike_len },
            routers: Vec::new(),
            links: Vec::new(),
        };
        let hub_ports = (0..hub_local_slots)
            .map(|s| Port {
                label: PortLabel::Local(s),
                out_link: None,
                in_link: None,
            })
            .collect();
        topo.routers.push(Router {
            coord: None,
            ports: hub_ports,
        });
        for s in 0..spikes {
            for j in 0..spike_len {
                let mut ports = vec![Port {
                    label: PortLabel::Local(0),
                    out_link: None,
                    in_link: None,
                }];
                ports.push(Port {
                    label: PortLabel::Up,
                    out_link: None,
                    in_link: None,
                });
                if j + 1 < spike_len {
                    ports.push(Port {
                        label: PortLabel::Down,
                        out_link: None,
                        in_link: None,
                    });
                }
                topo.routers.push(Router { coord: None, ports });
            }
            // Wire the chain: hub -> s0 -> s1 -> ...
            let base = 1 + (s as u32) * spike_len as u32;
            let hub_port = PortLabel::Spike(s);
            topo.routers[0].ports.push(Port {
                label: hub_port,
                out_link: None,
                in_link: None,
            });
            topo.connect(
                NodeId(0),
                hub_port,
                NodeId(base),
                PortLabel::Up,
                spike_link_delays[0],
            );
            topo.connect(
                NodeId(base),
                PortLabel::Up,
                NodeId(0),
                hub_port,
                spike_link_delays[0],
            );
            for j in 1..spike_len as u32 {
                let d = spike_link_delays[j as usize];
                let up = NodeId(base + j - 1);
                let down = NodeId(base + j);
                topo.connect(up, PortLabel::Down, down, PortLabel::Up, d);
                topo.connect(down, PortLabel::Up, up, PortLabel::Down, d);
            }
        }
        topo
    }

    /// Builds a multi-hub halo: `hubs` hub routers joined in a
    /// bidirectional ring (skipped when `hubs == 1`), each carrying its
    /// own set of `spikes` spikes of `spike_len` routers. Hubs come
    /// first (`NodeId(0..hubs)`), then the spike routers grouped by hub;
    /// see [`Topology::hub_node`] and [`Topology::hub_spike_node`].
    ///
    /// `spike_link_delays` works as in [`Topology::halo`] and applies to
    /// every hub's spikes; `ring_delay` is the hub-to-hub link delay.
    /// Every hub gets `hub_local_slots` local slots.
    ///
    /// # Panics
    ///
    /// Panics on parameter mismatches or zero dimensions.
    pub fn multi_hub_halo(
        hubs: u16,
        spikes: u16,
        spike_len: u16,
        spike_link_delays: &[u32],
        ring_delay: u32,
        hub_local_slots: u16,
    ) -> Self {
        assert!(hubs >= 1, "need at least one hub");
        assert!(
            spikes >= 1 && spike_len >= 1,
            "halo needs at least one spike of one router"
        );
        assert!(hub_local_slots >= 1, "hub needs at least one local slot");
        assert_eq!(
            spike_link_delays.len(),
            spike_len as usize,
            "need spike_len link delays"
        );
        assert!(
            spike_link_delays.iter().all(|&d| d >= 1) && ring_delay >= 1,
            "link delays must be at least one cycle"
        );

        let mut topo = Topology {
            kind: TopologyKind::MultiHubHalo {
                hubs,
                spikes,
                spike_len,
            },
            routers: Vec::new(),
            links: Vec::new(),
        };
        for _ in 0..hubs {
            topo.routers.push(Router {
                coord: None,
                ports: (0..hub_local_slots)
                    .map(|s| Port {
                        label: PortLabel::Local(s),
                        out_link: None,
                        in_link: None,
                    })
                    .collect(),
            });
        }
        for h in 0..hubs {
            let hub = NodeId(h as u32);
            for s in 0..spikes {
                let base = topo.routers.len() as u32;
                for j in 0..spike_len {
                    let mut ports = vec![
                        Port {
                            label: PortLabel::Local(0),
                            out_link: None,
                            in_link: None,
                        },
                        Port {
                            label: PortLabel::Up,
                            out_link: None,
                            in_link: None,
                        },
                    ];
                    if j + 1 < spike_len {
                        ports.push(Port {
                            label: PortLabel::Down,
                            out_link: None,
                            in_link: None,
                        });
                    }
                    topo.routers.push(Router { coord: None, ports });
                }
                let hub_port = PortLabel::Spike(s);
                topo.connect(hub, hub_port, NodeId(base), PortLabel::Up, spike_link_delays[0]);
                topo.connect(NodeId(base), PortLabel::Up, hub, hub_port, spike_link_delays[0]);
                for j in 1..spike_len as u32 {
                    let d = spike_link_delays[j as usize];
                    let up = NodeId(base + j - 1);
                    let down = NodeId(base + j);
                    topo.connect(up, PortLabel::Down, down, PortLabel::Up, d);
                    topo.connect(down, PortLabel::Up, up, PortLabel::Down, d);
                }
            }
        }
        // The hub ring (both directions); a 2-hub ring still gets two
        // distinct port pairs, and a single hub needs no ring at all.
        if hubs >= 2 {
            for h in 0..hubs {
                let a = NodeId(h as u32);
                let b = NodeId(((h + 1) % hubs) as u32);
                if a == b {
                    continue;
                }
                topo.connect(a, PortLabel::RingNext, b, PortLabel::RingPrev, ring_delay);
                topo.connect(b, PortLabel::RingPrev, a, PortLabel::RingNext, ring_delay);
            }
        }
        topo
    }

    /// Adds a unidirectional link from `src`'s port labelled `src_label`
    /// to `dst`'s port labelled `dst_label`; the ports are created if
    /// missing.
    fn connect(
        &mut self,
        src: NodeId,
        src_label: PortLabel,
        dst: NodeId,
        dst_label: PortLabel,
        delay: u32,
    ) {
        let link = LinkId(self.links.len() as u32);
        let sp = self.ensure_port(src, src_label);
        let dp = self.ensure_port(dst, dst_label);
        self.routers[src.0 as usize].ports[sp.0 as usize].out_link = Some(link);
        self.routers[dst.0 as usize].ports[dp.0 as usize].in_link = Some(link);
        self.links.push(Link {
            src,
            src_port: sp,
            dst,
            dst_port: dp,
            delay,
        });
    }

    fn ensure_port(&mut self, node: NodeId, label: PortLabel) -> PortId {
        let r = &mut self.routers[node.0 as usize];
        if let Some(i) = r.ports.iter().position(|p| p.label == label) {
            return PortId(u16::try_from(i).expect("router exceeds PortId range"));
        }
        r.ports.push(Port {
            label,
            out_link: None,
            in_link: None,
        });
        PortId(u16::try_from(r.ports.len() - 1).expect("router exceeds PortId range"))
    }

    /// Adds an extra local slot to `node` (e.g. to attach the core or
    /// memory controller next to a bank) and returns its slot index.
    pub fn add_local_slot(&mut self, node: NodeId) -> u16 {
        let slot = self.routers[node.0 as usize].local_slots();
        self.routers[node.0 as usize].ports.push(Port {
            label: PortLabel::Local(slot),
            out_link: None,
            in_link: None,
        });
        slot
    }

    /// The topology family.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Number of routers.
    pub fn len(&self) -> usize {
        self.routers.len()
    }

    /// True when the topology has no routers (never for built-in
    /// constructors, which require at least 1×1).
    pub fn is_empty(&self) -> bool {
        self.routers.is_empty()
    }

    /// All routers, indexable by `NodeId`.
    pub fn routers(&self) -> &[Router] {
        &self.routers
    }

    /// All links, indexable by `LinkId`.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Router accessor.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn router(&self, node: NodeId) -> &Router {
        &self.routers[node.0 as usize]
    }

    /// Link accessor.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn link(&self, link: LinkId) -> &Link {
        &self.links[link.0 as usize]
    }

    /// Node at a mesh coordinate.
    ///
    /// # Panics
    ///
    /// Panics when called on a non-mesh topology or out-of-range coords.
    pub fn node_at(&self, col: u16, row: u16) -> NodeId {
        let cols = match self.kind {
            TopologyKind::Mesh { cols, rows } | TopologyKind::SimplifiedMesh { cols, rows } => {
                assert!(col < cols && row < rows, "coordinate out of range");
                cols
            }
            TopologyKind::Halo { .. } | TopologyKind::MultiHubHalo { .. } => {
                panic!("node_at is only defined for meshes")
            }
        };
        NodeId((row as u32) * cols as u32 + col as u32)
    }

    /// Halo: node of bank `pos` (0 = closest to hub) on spike `s`.
    ///
    /// # Panics
    ///
    /// Panics when called on a non-halo topology or out-of-range args.
    pub fn spike_node(&self, s: u16, pos: u16) -> NodeId {
        match self.kind {
            TopologyKind::Halo { spikes, spike_len } => {
                assert!(s < spikes && pos < spike_len, "spike position out of range");
                NodeId(1 + (s as u32) * spike_len as u32 + pos as u32)
            }
            _ => panic!("spike_node is only defined for halo topologies"),
        }
    }

    /// Multi-hub halo: node of hub `h`.
    ///
    /// # Panics
    ///
    /// Panics when called on another topology kind or out of range.
    pub fn hub_node(&self, h: u16) -> NodeId {
        match self.kind {
            TopologyKind::MultiHubHalo { hubs, .. } => {
                assert!(h < hubs, "hub index out of range");
                NodeId(h as u32)
            }
            _ => panic!("hub_node is only defined for multi-hub halos"),
        }
    }

    /// Multi-hub halo: node of bank `pos` (0 = closest to the hub) on
    /// spike `s` of hub `h`.
    ///
    /// # Panics
    ///
    /// Panics when called on another topology kind or out of range.
    pub fn hub_spike_node(&self, h: u16, s: u16, pos: u16) -> NodeId {
        match self.kind {
            TopologyKind::MultiHubHalo {
                hubs,
                spikes,
                spike_len,
            } => {
                assert!(
                    h < hubs && s < spikes && pos < spike_len,
                    "spike position out of range"
                );
                let spike = (h as u32) * spikes as u32 + s as u32;
                NodeId(hubs as u32 + spike * spike_len as u32 + pos as u32)
            }
            _ => panic!("hub_spike_node is only defined for multi-hub halos"),
        }
    }

    /// Coordinate of a node (meshes only).
    pub fn coord_of(&self, node: NodeId) -> Option<Coord> {
        self.routers[node.0 as usize].coord
    }

    /// Total number of unidirectional links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// A copy of this topology with the given links removed (fault
    /// analysis / link-pruning studies). Remaining links are renumbered;
    /// ports that lose both directions disappear, local slots stay.
    ///
    /// # Panics
    ///
    /// Panics if an id in `exclude` is out of range.
    pub fn without_links(&self, exclude: &[LinkId]) -> Topology {
        for l in exclude {
            assert!((l.0 as usize) < self.links.len(), "no such link {l:?}");
        }
        let mut out = Topology {
            kind: self.kind,
            routers: self
                .routers
                .iter()
                .map(|r| Router {
                    coord: r.coord,
                    ports: r
                        .ports
                        .iter()
                        .filter(|p| matches!(p.label, PortLabel::Local(_)))
                        .map(|p| Port {
                            label: p.label,
                            out_link: None,
                            in_link: None,
                        })
                        .collect(),
                })
                .collect(),
            links: Vec::new(),
        };
        for (i, l) in self.links.iter().enumerate() {
            if exclude.contains(&LinkId(i as u32)) {
                continue;
            }
            let src_label = self.routers[l.src.0 as usize].ports[l.src_port.0 as usize].label;
            let dst_label = self.routers[l.dst.0 as usize].ports[l.dst_port.0 as usize].label;
            out.connect(l.src, src_label, l.dst, dst_label, l.delay);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(n: u16) -> Vec<u32> {
        vec![1; n as usize]
    }

    #[test]
    fn full_mesh_link_count() {
        // n x n mesh: 2*2*n*(n-1) unidirectional links.
        let t = Topology::mesh(4, 4, &unit(3), &unit(3));
        assert_eq!(t.link_count(), 4 * 4 * 3);
        assert_eq!(t.len(), 16);
    }

    #[test]
    fn simplified_mesh_removes_interior_horizontal_links() {
        let full = Topology::mesh(8, 8, &unit(7), &unit(7));
        let simp = Topology::simplified_mesh(8, 8, &unit(7), &unit(7));
        // Removed: horizontal links of rows 1..=6 -> 6 rows * 7 gaps * 2 dirs.
        assert_eq!(full.link_count() - simp.link_count(), 6 * 7 * 2);
    }

    #[test]
    fn simplified_mesh_keeps_first_and_last_row() {
        let t = Topology::simplified_mesh(4, 4, &unit(3), &unit(3));
        let top_left = t.router(t.node_at(0, 0));
        assert!(top_left.port_by_label(PortLabel::XPlus).is_some());
        let bottom_left = t.router(t.node_at(0, 3));
        assert!(bottom_left.port_by_label(PortLabel::XPlus).is_some());
        let mid = t.router(t.node_at(1, 1));
        assert!(mid.port_by_label(PortLabel::XPlus).is_none());
        assert!(mid.port_by_label(PortLabel::YPlus).is_some());
    }

    #[test]
    fn mesh_coords_roundtrip() {
        let t = Topology::mesh(5, 3, &unit(4), &unit(2));
        for row in 0..3 {
            for col in 0..5 {
                let n = t.node_at(col, row);
                assert_eq!(t.coord_of(n), Some(Coord { col, row }));
            }
        }
    }

    #[test]
    fn mesh_interior_router_has_five_ports() {
        let t = Topology::mesh(4, 4, &unit(3), &unit(3));
        let mid = t.router(t.node_at(1, 1));
        assert_eq!(mid.ports.len(), 5);
        assert_eq!(mid.in_ports(), 5);
        assert_eq!(mid.out_ports(), 5);
        let corner = t.router(t.node_at(0, 0));
        assert_eq!(corner.ports.len(), 3);
    }

    #[test]
    fn simplified_interior_router_is_three_port() {
        let t = Topology::simplified_mesh(8, 8, &unit(7), &unit(7));
        let mid = t.router(t.node_at(3, 4));
        assert_eq!(mid.ports.len(), 3); // local + Y+ + Y-
    }

    #[test]
    fn mesh_link_delays_respected() {
        let t = Topology::mesh(3, 2, &[2, 3], &[4]);
        // Find the link from (0,0) to (1,0).
        let n00 = t.node_at(0, 0);
        let r = t.router(n00);
        let p = r.port_by_label(PortLabel::XPlus).unwrap();
        let l = t.link(r.ports[p.0 as usize].out_link.unwrap());
        assert_eq!(l.delay, 2);
        let pv = r.port_by_label(PortLabel::YPlus).unwrap();
        let lv = t.link(r.ports[pv.0 as usize].out_link.unwrap());
        assert_eq!(lv.delay, 4);
    }

    #[test]
    fn halo_structure() {
        let t = Topology::halo(4, 3, &[1, 1, 2], 2);
        // 1 hub + 4*3 spike routers.
        assert_eq!(t.len(), 13);
        // Hub: 2 local slots + 4 spike ports.
        assert_eq!(t.router(NodeId(0)).ports.len(), 6);
        assert_eq!(t.router(NodeId(0)).local_slots(), 2);
        // Links: per spike 3 bidirectional hops = 6 unidirectional.
        assert_eq!(t.link_count(), 4 * 6);
        // Chain end has no Down port.
        let end = t.spike_node(0, 2);
        assert!(t.router(end).port_by_label(PortLabel::Down).is_none());
        assert!(t.router(end).port_by_label(PortLabel::Up).is_some());
    }

    #[test]
    fn halo_spike_node_indexing() {
        let t = Topology::halo(3, 4, &[1; 4], 1);
        assert_eq!(t.spike_node(0, 0), NodeId(1));
        assert_eq!(t.spike_node(1, 0), NodeId(5));
        assert_eq!(t.spike_node(2, 3), NodeId(12));
    }

    #[test]
    fn add_local_slot_assigns_next_index() {
        let mut t = Topology::mesh(2, 2, &unit(1), &unit(1));
        let n = t.node_at(1, 0);
        assert_eq!(t.add_local_slot(n), 1);
        assert_eq!(t.add_local_slot(n), 2);
        assert_eq!(t.router(n).local_slots(), 3);
    }

    #[test]
    #[should_panic(expected = "cols-1 horizontal delays")]
    fn wrong_delay_slice_panics() {
        let _ = Topology::mesh(4, 4, &[1, 1], &[1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "coordinate out of range")]
    fn out_of_range_coord_panics() {
        let t = Topology::mesh(2, 2, &[1], &[1]);
        let _ = t.node_at(2, 0);
    }

    #[test]
    fn one_by_one_mesh_is_valid() {
        let t = Topology::mesh(1, 1, &[], &[]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.link_count(), 0);
        assert!(!t.is_empty());
    }

    #[test]
    fn without_links_removes_and_renumbers() {
        let t = Topology::mesh(3, 3, &unit(2), &unit(2));
        let total = t.link_count();
        let cut = t.without_links(&[LinkId(0), LinkId(5)]);
        assert_eq!(cut.link_count(), total - 2);
        // Local slots survive on every router.
        for r in cut.routers() {
            assert_eq!(r.local_slots(), 1);
        }
    }

    #[test]
    fn without_links_preserves_delays_and_labels() {
        let t = Topology::mesh(3, 2, &[2, 3], &[4]);
        let cut = t.without_links(&[LinkId(0)]);
        // Every surviving link still appears with its delay.
        for l in cut.links() {
            assert!(
                t.links()
                    .iter()
                    .any(|o| o.src == l.src && o.dst == l.dst && o.delay == l.delay),
                "link {l:?} not in the original"
            );
        }
        // Port labels still resolve for routing.
        let n = cut.node_at(0, 0);
        assert!(cut.router(n).port_by_label(PortLabel::YPlus).is_some());
    }

    #[test]
    #[should_panic(expected = "no such link")]
    fn without_unknown_link_panics() {
        let t = Topology::mesh(2, 2, &unit(1), &unit(1));
        let _ = t.without_links(&[LinkId(99)]);
    }

    #[test]
    fn links_are_paired_back_to_back() {
        let t = Topology::mesh(3, 3, &unit(2), &unit(2));
        for l in t.links() {
            // The reverse link must exist with the same delay.
            assert!(
                t.links()
                    .iter()
                    .any(|r| r.src == l.dst && r.dst == l.src && r.delay == l.delay),
                "missing reverse of {l:?}"
            );
        }
    }
}
