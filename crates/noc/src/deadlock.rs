//! Channel-dependency analysis and deadlock-freedom proofs.
//!
//! A routing algorithm on a wormhole network is deadlock-free if the
//! *channel dependency graph* (CDG) — a node per channel (link), an edge
//! whenever some routed path uses one channel directly after another —
//! is acyclic (Dally & Seitz). The paper argues XYX is deadlock-free "by
//! enforcing a total order of channels" (Fig. 5(b));
//! [`ChannelDependencyGraph::enumeration`] produces exactly such a total
//! order (a topological order of the CDG),
//! and the tests verify every routed path follows strictly increasing
//! channel numbers.

use crate::ids::{LinkId, NodeId};
use crate::routing::RoutingTable;
use crate::topology::Topology;

/// Channel dependency graph for a (topology, routing, traffic) triple.
#[derive(Debug, Clone)]
pub struct ChannelDependencyGraph {
    n_links: usize,
    /// Adjacency: `edges[a]` holds every channel `b` such that some path
    /// uses `a` immediately before `b`.
    edges: Vec<Vec<u32>>,
}

/// Result of a deadlock analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockReport {
    /// Whether the CDG is acyclic (⇒ deadlock-free routing).
    pub acyclic: bool,
    /// A cycle witness (channel ids) when not acyclic.
    pub cycle: Option<Vec<LinkId>>,
}

impl ChannelDependencyGraph {
    /// Builds the CDG for **all routable pairs** of the topology.
    pub fn from_all_pairs(topo: &Topology, table: &RoutingTable) -> Self {
        let pairs: Vec<(NodeId, NodeId)> = (0..topo.len() as u32)
            .flat_map(|a| (0..topo.len() as u32).map(move |b| (NodeId(a), NodeId(b))))
            .filter(|(a, b)| a != b)
            .collect();
        Self::from_traffic(topo, table, &pairs)
    }

    /// Builds the CDG restricted to the given traffic pairs (e.g. only
    /// the communication patterns that occur in a cache system, Fig. 4a).
    pub fn from_traffic(topo: &Topology, table: &RoutingTable, pairs: &[(NodeId, NodeId)]) -> Self {
        let n_links = topo.link_count();
        let mut edges: Vec<Vec<u32>> = vec![Vec::new(); n_links];
        for &(src, dst) in pairs {
            let Some(path) = table.path(topo, src, dst) else {
                continue;
            };
            for w in path.windows(2) {
                let (a, b) = (w[0].0 as usize, w[1].0);
                if !edges[a].contains(&b) {
                    edges[a].push(b);
                }
            }
        }
        ChannelDependencyGraph { n_links, edges }
    }

    /// Number of dependency edges.
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// Checks acyclicity; returns a cycle witness when one exists.
    pub fn analyze(&self) -> DeadlockReport {
        // Iterative three-colour DFS.
        const WHITE: u8 = 0;
        const GREY: u8 = 1;
        const BLACK: u8 = 2;
        let mut colour = vec![WHITE; self.n_links];
        let mut parent: Vec<Option<usize>> = vec![None; self.n_links];
        for start in 0..self.n_links {
            if colour[start] != WHITE {
                continue;
            }
            let mut stack = vec![(start, 0usize)];
            colour[start] = GREY;
            while let Some(&mut (v, ref mut i)) = stack.last_mut() {
                if *i < self.edges[v].len() {
                    let w = self.edges[v][*i] as usize;
                    *i += 1;
                    match colour[w] {
                        WHITE => {
                            colour[w] = GREY;
                            parent[w] = Some(v);
                            stack.push((w, 0));
                        }
                        GREY => {
                            // Found a back edge v -> w: reconstruct cycle.
                            let mut cyc = vec![LinkId(v as u32)];
                            let mut cur = v;
                            while cur != w {
                                cur = parent[cur].expect("grey node must have a parent on stack");
                                cyc.push(LinkId(cur as u32));
                            }
                            cyc.reverse();
                            return DeadlockReport {
                                acyclic: false,
                                cycle: Some(cyc),
                            };
                        }
                        _ => {}
                    }
                } else {
                    colour[v] = BLACK;
                    stack.pop();
                }
            }
        }
        DeadlockReport {
            acyclic: true,
            cycle: None,
        }
    }

    /// Produces a channel enumeration: a total order such that every
    /// dependency goes from a lower to a higher number (Kahn topological
    /// sort). Returns `None` when the CDG is cyclic.
    ///
    /// This is the constructive counterpart of the paper's Fig. 5(b):
    /// "any path in XYX routing follows increasingly numbered channels".
    pub fn enumeration(&self) -> Option<Vec<u32>> {
        let mut indeg = vec![0u32; self.n_links];
        for es in &self.edges {
            for &w in es {
                indeg[w as usize] += 1;
            }
        }
        let mut order = vec![0u32; self.n_links];
        let mut queue: Vec<usize> = (0..self.n_links).filter(|&v| indeg[v] == 0).collect();
        // Deterministic: process in id order.
        queue.sort_unstable();
        let mut next_number = 0u32;
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            order[v] = next_number;
            next_number += 1;
            let mut newly = Vec::new();
            for &w in &self.edges[v] {
                let w = w as usize;
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    newly.push(w);
                }
            }
            newly.sort_unstable();
            queue.extend(newly);
        }
        if next_number as usize == self.n_links {
            Some(order)
        } else {
            None
        }
    }
}

/// Verifies that `path` follows strictly increasing channel numbers
/// under `enumeration`.
pub fn path_is_increasing(enumeration: &[u32], path: &[LinkId]) -> bool {
    path.windows(2)
        .all(|w| enumeration[w[0].0 as usize] < enumeration[w[1].0 as usize])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::RoutingSpec;

    fn unit(n: u16) -> Vec<u32> {
        vec![1; n as usize]
    }

    #[test]
    fn xy_on_full_mesh_is_deadlock_free() {
        let t = Topology::mesh(5, 5, &unit(4), &unit(4));
        let rt = RoutingSpec::Xy.build(&t).unwrap();
        let cdg = ChannelDependencyGraph::from_all_pairs(&t, &rt);
        assert!(cdg.analyze().acyclic);
    }

    #[test]
    fn xyx_on_full_mesh_is_deadlock_free() {
        let t = Topology::mesh(5, 5, &unit(4), &unit(4));
        let rt = RoutingSpec::Xyx.build(&t).unwrap();
        let cdg = ChannelDependencyGraph::from_all_pairs(&t, &rt);
        assert!(cdg.analyze().acyclic);
    }

    #[test]
    fn xyx_on_simplified_mesh_is_deadlock_free() {
        let t = Topology::simplified_mesh(8, 8, &unit(7), &unit(7));
        let rt = RoutingSpec::Xyx.build(&t).unwrap();
        let cdg = ChannelDependencyGraph::from_all_pairs(&t, &rt);
        let report = cdg.analyze();
        assert!(report.acyclic, "cycle: {:?}", report.cycle);
    }

    #[test]
    fn shortest_path_on_halo_is_deadlock_free() {
        // Halo spikes are trees: any minimal routing is deadlock-free.
        let t = Topology::halo(16, 5, &[1, 1, 2, 2, 3], 2);
        let rt = RoutingSpec::ShortestPath.build(&t).unwrap();
        let cdg = ChannelDependencyGraph::from_all_pairs(&t, &rt);
        assert!(cdg.analyze().acyclic);
    }

    #[test]
    fn xyx_channel_enumeration_exists_and_orders_paths() {
        let t = Topology::simplified_mesh(3, 3, &unit(2), &unit(2));
        let rt = RoutingSpec::Xyx.build(&t).unwrap();
        let cdg = ChannelDependencyGraph::from_all_pairs(&t, &rt);
        let order = cdg
            .enumeration()
            .expect("XYX must admit a total channel order");
        for a in 0..t.len() as u32 {
            for b in 0..t.len() as u32 {
                if let Some(path) = rt.path(&t, NodeId(a), NodeId(b)) {
                    assert!(
                        path_is_increasing(&order, &path),
                        "path {a}->{b} not increasing: {path:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn enumeration_none_for_cyclic_graph() {
        // Hand-built 3-cycle.
        let cdg = ChannelDependencyGraph {
            n_links: 3,
            edges: vec![vec![1], vec![2], vec![0]],
        };
        assert!(cdg.enumeration().is_none());
        let r = cdg.analyze();
        assert!(!r.acyclic);
        assert_eq!(r.cycle.as_ref().map(Vec::len), Some(3));
    }

    #[test]
    fn cycle_witness_is_a_real_cycle() {
        let cdg = ChannelDependencyGraph {
            n_links: 4,
            edges: vec![vec![1], vec![2], vec![1], vec![]],
        };
        let r = cdg.analyze();
        assert!(!r.acyclic);
        let cyc = r.cycle.unwrap();
        // Every consecutive pair (and the wrap-around) must be an edge.
        for i in 0..cyc.len() {
            let a = cyc[i].0 as usize;
            let b = cyc[(i + 1) % cyc.len()].0;
            assert!(cdg.edges[a].contains(&b), "{a}->{b} missing");
        }
    }

    #[test]
    fn restricted_traffic_cdg_is_smaller() {
        let t = Topology::mesh(4, 4, &unit(3), &unit(3));
        let rt = RoutingSpec::Xy.build(&t).unwrap();
        let all = ChannelDependencyGraph::from_all_pairs(&t, &rt);
        let core = t.node_at(1, 0);
        let pairs: Vec<_> = (0..16u32).map(|b| (core, NodeId(b))).collect();
        let restricted = ChannelDependencyGraph::from_traffic(&t, &rt, &pairs);
        assert!(restricted.edge_count() < all.edge_count());
        assert!(restricted.analyze().acyclic);
    }

    #[test]
    fn empty_graph_is_acyclic() {
        let cdg = ChannelDependencyGraph {
            n_links: 0,
            edges: vec![],
        };
        assert!(cdg.analyze().acyclic);
        assert_eq!(cdg.enumeration(), Some(vec![]));
    }
}
