//! The cycle-driven wormhole network simulator.
//!
//! [`Network`] steps all routers in lockstep. Each cycle a router
//! performs, for flits at the front of input VCs:
//!
//! 1. **Routing + VC allocation** (lookahead/single-cycle: both complete
//!    within the cycle): heads pick an output port from the routing
//!    table and claim a free downstream VC with available credit
//!    tracking. Multicast heads additionally reserve a replica VC in a
//!    different input physical channel (§3.1 hybrid replication).
//! 2. **Switch allocation**: round-robin input-side VC selection, then
//!    round-robin output-side port arbitration — VCs of one physical
//!    channel share a crossbar port, so at most one flit leaves each
//!    input port per cycle, and at most one flit enters each output.
//! 3. **Traversal**: winners move across the crossbar; link traversal
//!    takes the link's wire delay; a credit returns upstream when a flit
//!    leaves an input buffer.
//!
//! With `router_stages = 1` a flit can enter and leave a router in the
//! same cycle, reproducing the paper's single-cycle router; larger
//! values model a conventional pipeline for ablations.
//!
//! A [`FaultSchedule`] (see [`crate::faults`]) can take links down and
//! up at fixed cycles. Each state change rebuilds the routing table over
//! the surviving links; heads that lose every path wait in place for a
//! repair, and a permanent partition eventually surfaces as a
//! [`SimError::Watchdog`] from [`Network::step`] instead of a panic.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::check::InvariantChecker;
use crate::commit::{apply_intent, apply_winner, commit_shim, CommitJob, Effect, Mailbox, SlabPtrs};
use crate::deadlock::ChannelDependencyGraph;
use crate::error::SimError;
use crate::event_wheel::EventWheel;
use crate::evlog::{EventLog, NetEvent};
use crate::faults::FaultSchedule;
use crate::ids::{Endpoint, LinkId, NodeId, PortId};
use crate::packet::{FlitRef, Packet, PacketId};
use crate::par::SimPool;
use crate::params::RouterParams;
use crate::router::{
    ComputeScratch, NetSlabs, OutRoute, RouteIntent, RouterIntent, RouterScratch, Split,
};
use crate::routing::{RoutingBuilder, RoutingTable};
use crate::stats::NetStats;
use crate::strategy::MulticastStrategy;
use crate::topology::{PortLabel, Topology};

/// Fewest active routers for which an *uncalibrated* gate shards a
/// cycle — the static floor the adaptive threshold starts from (and
/// never drops below). Kept low so correctness campaigns on small
/// topologies (the fuzzer's meshes) still exercise the two-phase path
/// with `sim_threads > 1` before calibration settles.
const MIN_PAR_WORK: usize = 8;

/// Hard ceiling on the adaptive threshold: on hosts where a pool
/// dispatch never pays for itself (one core, heavy oversubscription)
/// the calibrated break-even grows without bound; clamping keeps the
/// arithmetic sane. Effectively "always serial" for any real topology.
const MAX_PAR_WORK: usize = 1 << 20;

/// A serial-decided cycle every this many consecutive parallel cycles
/// re-measures the serial kernel, so the serial-cost estimate tracks
/// the workload as it drifts. Cheap: a serial probe does strictly less
/// work than the parallel cycle it replaces would have.
const SERIAL_PROBE_EVERY: u32 = 1024;

/// A parallel-decided cycle every this many consecutive serial cycles
/// re-measures the pool dispatch, so a host whose scheduling improves
/// (cores freed up) gets the parallel kernel back. Each probe that
/// still loses doubles the interval (up to [`PAR_PROBE_MAX`]) so a
/// host where sharding never pays converges to near-zero probe
/// overhead; a probe that would win snaps the interval back here.
const PAR_PROBE_EVERY: u32 = 512;

/// Ceiling for the parallel-probe backoff. At this interval even a
/// grossly oversubscribed probe (a parallel cycle costing 50x a serial
/// one) stays under 0.1% of wall time.
const PAR_PROBE_MAX: u32 = 1 << 16;

/// Serial cycles are timed once every this many (when `sim_threads >
/// 1`), amortizing the two `Instant::now` calls so the gate costs the
/// serial path nearly nothing.
const SERIAL_SAMPLE_EVERY: u32 = 8;

/// EWMA smoothing for the gate's cost estimates: `new = (1 - ALPHA) *
/// old + ALPHA * sample`.
const GATE_ALPHA: f64 = 0.1;

/// Wall-clock breakdown of the two-phase cycle kernel. Lives outside
/// [`NetStats`] on purpose: stats are part of the bit-identity
/// determinism contract, and wall-clock timings must never be.
#[derive(Debug, Default, Clone, Copy)]
pub struct PhaseStats {
    /// Cycles that ran the parallel two-phase kernel.
    pub parallel_cycles: u64,
    /// Cycles that ran the classic serial kernel (thread count 1, or
    /// the adaptive gate choosing serial).
    pub serial_cycles: u64,
    /// Nanoseconds spent in the sharded compute phase.
    pub compute_ns: u64,
    /// Nanoseconds spent in the commit phase (the sharded apply plus
    /// the deterministic merge, or the serial fallback).
    pub commit_ns: u64,
    /// Nanoseconds of pool dispatch overhead (job publish + waiting
    /// out the spawned workers' tail) across all parallel cycles.
    pub dispatch_ns: u64,
    /// Cycles the adaptive gate decided serially although `sim_threads
    /// > 1` (small worklist, or a calibrated host where dispatch never
    /// pays). Zero when `sim_threads == 1`.
    pub adaptive_serial_cycles: u64,
    /// Cycles the adaptive gate decided to shard (including
    /// calibration probes). Zero when `sim_threads == 1`.
    pub adaptive_parallel_cycles: u64,
}

/// Online serial-vs-parallel calibration for the cycle kernel.
///
/// Both kernels are bit-identical, so the choice is free of
/// determinism risk — purely a wall-clock decision, re-made every
/// cycle from three measured quantities:
///
/// * `serial_ns_per_router` — EWMA of the serial kernel's cost per
///   worklist router, sampled every [`SERIAL_SAMPLE_EVERY`]-th serial
///   cycle (and on every serial probe);
/// * `dispatch_ns` — EWMA of one parallel cycle's pool-dispatch
///   overhead, measured by [`SimPool`] as publish + tail-wait time and
///   differenced here per cycle;
/// * `par_ns_per_router` — EWMA of a whole parallel cycle's cost per
///   worklist router with the dispatch overhead subtracted out: the
///   sharded kernel's *measured* marginal rate, which already folds in
///   shard imbalance, the serial commit merge, and — crucially — hosts
///   where the "parallel" workers in fact serialize (one core, heavy
///   oversubscription) and the marginal rate exceeds serial.
///
/// The break-even worklist follows from pricing a cycle both ways with
/// measured rates: serial costs `s·W`, parallel costs `D + p·W`, so
/// parallel wins when `W > D / (s − p)` — and *never* when `p ≥ s`
/// (the threshold pegs to [`MAX_PAR_WORK`]). Unlike a model that
/// assumes compute divides by the thread count, this cannot be fooled
/// by a host that grants fewer cores than `sim_threads` asks for. The
/// threshold is clamped to `[MIN_PAR_WORK, MAX_PAR_WORK]` and defaults
/// to [`MIN_PAR_WORK`] until the estimates exist. Periodic probes run
/// the minority kernel so whichever estimate is going stale gets
/// refreshed (see [`SERIAL_PROBE_EVERY`] / [`PAR_PROBE_EVERY`]);
/// parallel probes back off exponentially while they keep losing.
///
/// The estimates describe the *host*, not the simulation, so they
/// survive [`Network::reset`] along with the pool.
#[derive(Debug)]
struct AdaptiveGate {
    /// EWMA serial cost per worklist router, ns; 0 until first sample.
    serial_ns_per_router: f64,
    /// EWMA parallel marginal cost per worklist router (dispatch
    /// excluded), ns; 0 until the first parallel cycle.
    par_ns_per_router: f64,
    /// EWMA pool-dispatch overhead per parallel cycle, ns; 0 until the
    /// first parallel cycle.
    dispatch_ns: f64,
    /// Pool cumulative dispatch counter at the last reading.
    last_dispatch_total: u64,
    /// Calibrated break-even worklist length.
    threshold: usize,
    /// Consecutive serial decisions (drives parallel probing).
    serial_streak: u32,
    /// Consecutive parallel decisions (drives serial probing).
    parallel_streak: u32,
    /// Current parallel-probe interval (doubles while probes lose).
    par_probe_interval: u32,
    /// Serial cycles since the last timed one.
    sample_tick: u32,
    /// The next serial cycle is a probe: time it regardless of the
    /// sampling tick.
    probe_pending: bool,
}

impl Default for AdaptiveGate {
    fn default() -> Self {
        AdaptiveGate {
            serial_ns_per_router: 0.0,
            par_ns_per_router: 0.0,
            dispatch_ns: 0.0,
            last_dispatch_total: 0,
            threshold: MIN_PAR_WORK,
            serial_streak: 0,
            parallel_streak: 0,
            par_probe_interval: PAR_PROBE_EVERY,
            sample_tick: 0,
            probe_pending: false,
        }
    }
}

impl AdaptiveGate {
    /// Decides this cycle's kernel for a worklist of `work_len` active
    /// routers (`sim_threads > 1` and `work_len > 0` at every call).
    fn choose_parallel(&mut self, work_len: usize) -> bool {
        // Bootstrap: price both kernels before trusting the threshold.
        // The first gated cycle shards (seeding the dispatch estimate),
        // the next runs serial with forced timing (seeding the serial
        // estimate) — so calibration completes within two cycles
        // instead of waiting out a probe interval, which matters for
        // short runs on hosts where sharding never pays.
        let mut par = if self.dispatch_ns == 0.0 {
            true
        } else if self.serial_ns_per_router == 0.0 {
            self.probe_pending = true;
            false
        } else {
            work_len >= self.threshold
        };
        if par {
            if self.parallel_streak >= SERIAL_PROBE_EVERY {
                par = false;
                self.probe_pending = true;
            }
        } else if self.serial_streak >= self.par_probe_interval && self.serial_ns_per_router > 0.0
        {
            par = true;
        }
        if par {
            self.parallel_streak += 1;
            self.serial_streak = 0;
        } else {
            self.serial_streak += 1;
            self.parallel_streak = 0;
        }
        par
    }

    /// Whether this serial cycle should be timed.
    fn serial_sample_due(&mut self) -> bool {
        if std::mem::take(&mut self.probe_pending) {
            self.sample_tick = 0;
            return true;
        }
        self.sample_tick += 1;
        if self.sample_tick >= SERIAL_SAMPLE_EVERY {
            self.sample_tick = 0;
            true
        } else {
            false
        }
    }

    /// Feeds one timed serial cycle (`elapsed` ns over `work_len`
    /// routers) into the serial-cost estimate.
    fn note_serial(&mut self, elapsed_ns: u64, work_len: usize) {
        let per_router = elapsed_ns as f64 / work_len.max(1) as f64;
        self.serial_ns_per_router = if self.serial_ns_per_router == 0.0 {
            per_router
        } else {
            (1.0 - GATE_ALPHA) * self.serial_ns_per_router + GATE_ALPHA * per_router
        };
        self.update_threshold();
    }

    /// Feeds one whole parallel cycle (`elapsed` ns over `work_len`
    /// routers, with the pool's cumulative dispatch counter for the
    /// fixed-overhead split) into the parallel-cost estimates; returns
    /// the per-cycle dispatch delta for [`PhaseStats::dispatch_ns`].
    fn note_parallel(&mut self, pool_total_ns: u64, elapsed_ns: u64, work_len: usize) -> u64 {
        let delta = pool_total_ns.saturating_sub(self.last_dispatch_total);
        self.last_dispatch_total = pool_total_ns;
        self.dispatch_ns = if self.dispatch_ns == 0.0 {
            delta as f64
        } else {
            (1.0 - GATE_ALPHA) * self.dispatch_ns + GATE_ALPHA * delta as f64
        };
        let marginal = elapsed_ns.saturating_sub(delta) as f64 / work_len.max(1) as f64;
        self.par_ns_per_router = if self.par_ns_per_router == 0.0 {
            marginal
        } else {
            (1.0 - GATE_ALPHA) * self.par_ns_per_router + GATE_ALPHA * marginal
        };
        self.update_threshold();
        // Probe backoff: a parallel cycle that leaves the threshold
        // above this worklist just confirmed serial still wins here —
        // stretch the next probe out. One that would win resets the
        // cadence (the threshold decision takes over from there).
        if work_len < self.threshold {
            self.par_probe_interval = (self.par_probe_interval * 2).min(PAR_PROBE_MAX);
        } else {
            self.par_probe_interval = PAR_PROBE_EVERY;
        }
        delta
    }

    /// Re-derives the break-even worklist from the current estimates:
    /// `D / (s − p)` routers, or "never" when the measured parallel
    /// marginal rate is no better than serial.
    fn update_threshold(&mut self) {
        if self.serial_ns_per_router > 0.0 && self.dispatch_ns > 0.0 {
            let gain = self.serial_ns_per_router - self.par_ns_per_router;
            self.threshold = if gain <= 0.0 {
                MAX_PAR_WORK
            } else {
                ((self.dispatch_ns / gain).ceil() as usize).clamp(MIN_PAR_WORK, MAX_PAR_WORK)
            };
        }
    }

    /// The threshold the sharded-commit decision shares (no probing:
    /// runs inside an already-parallel cycle).
    fn run_threshold(&self) -> usize {
        self.threshold
    }
}

/// A packet handed to a local sink.
#[derive(Debug)]
pub struct Delivered<P> {
    /// The packet (shared with any other multicast deliveries).
    pub packet: Arc<Packet<P>>,
    /// Which endpoint received it.
    pub endpoint: Endpoint,
    /// Cycle the tail flit was ejected.
    pub cycle: u64,
}

// Manual impl: `derive(Clone)` would demand `P: Clone`, but cloning
// only bumps the `Arc` and copies plain fields.
impl<P> Clone for Delivered<P> {
    fn clone(&self) -> Self {
        Delivered {
            packet: Arc::clone(&self.packet),
            endpoint: self.endpoint,
            cycle: self.cycle,
        }
    }
}

#[derive(Debug)]
enum EvKind<P> {
    /// A flit finishes traversing `link` into downstream VC `vc`.
    Arrive {
        link: LinkId,
        vc: u8,
        flit: FlitRef<P>,
    },
    /// A credit returns to the upstream side of `link`, VC `vc`.
    Credit { link: LinkId, vc: u8 },
}

/// Cycle-driven network of single-cycle multicasting wormhole routers.
pub struct Network<P> {
    /// Shared read-only topology. Behind an `Arc` so a structural cache
    /// can hand the same instance to every worker's network; the kernel
    /// never mutates it.
    topo: Arc<Topology>,
    /// The routing table in use. Starts as the (possibly shared)
    /// fault-free table; the first fault replaces it with a privately
    /// owned degraded copy, so a shared pristine table is never written.
    table: Arc<RoutingTable>,
    params: RouterParams,
    /// All router microarchitectural state, as structure-of-arrays
    /// slabs: each router's VC buffers, routes, credits, and round-robin
    /// pointers occupy a contiguous index range of flat arrays (see
    /// [`NetSlabs`]), so the compute phase streams contiguous memory
    /// and the sharded commit can hand workers disjoint ranges.
    slabs: NetSlabs<P>,
    /// In-flight flits and returning credits, bucketed by due cycle.
    /// Every delay is a small constant fixed at construction, so a
    /// calendar queue replaces the comparison-based heap; FIFO buckets
    /// preserve the old `(when, seq)` heap order exactly.
    events: EventWheel<EvKind<P>>,
    /// Reusable per-cycle temporaries of the router loop (switch
    /// allocation candidates, winners, the sorted worklist). Owned
    /// here so `step` performs no steady-state allocations.
    scratch: RouterScratch,
    cycle: u64,
    next_packet: u64,
    /// Routers that may have work this coming cycle.
    pending: Vec<u32>,
    pending_flag: Vec<bool>,
    delivered: VecDeque<Delivered<P>>,
    /// Remote replica reservations, indexed `link.0 * vcs + vc`; an
    /// upstream router may not allocate a reserved downstream VC.
    reserved: Vec<bool>,
    /// Flits currently on the wire, indexed `link.0 * vcs + vc`. A VC
    /// with in-flight flits is not free for replica reservation even if
    /// its buffer is empty.
    inflight: Vec<u32>,
    stats: NetStats,
    last_progress: u64,
    /// Optional debugging event log (disabled by default).
    evlog: Option<EventLog>,
    /// Optional runtime invariant checker (disabled by default; see
    /// [`crate::check`]). The disabled path is one branch per hook so
    /// the kernel stays allocation-free.
    checker: Option<InvariantChecker>,
    /// Scheduled link faults (empty by default) and the cursor of the
    /// next event still to apply.
    faults: FaultSchedule,
    next_fault: usize,
    /// Per-link up/down state under the fault schedule.
    link_up: Vec<bool>,
    /// The fault-free routing table, kept from the first fault rebuild
    /// onward so injection checks and reroute accounting can compare
    /// against the intact topology. `None` until a fault applies.
    base_table: Option<Arc<RoutingTable>>,
    /// A retired degraded table kept across [`Network::reset`] so the
    /// next run's first fault can rebuild into its storage instead of
    /// allocating a fresh table. Always uniquely owned.
    spare_table: Option<Arc<RoutingTable>>,
    /// Masked-rebuild state (reverse adjacency index + dense scratch),
    /// created at the first fault event and reused for every later
    /// rebuild so fault recomputation stops reallocating O(n²).
    rebuilder: Option<RoutingBuilder>,
    /// Resolved compute-thread count (`params.sim_threads`, with `0`
    /// replaced by the host's available parallelism).
    sim_threads: usize,
    /// Persistent compute-phase worker pool, created on the first cycle
    /// that shards (never for `sim_threads == 1`).
    pool: Option<SimPool>,
    /// Per-router compute-phase intents, indexed by router id.
    intents: Vec<RouterIntent>,
    /// Routers whose compute pass bailed (multicast split needs live
    /// replica reservation) and re-run the serial kernel at commit.
    deferred: Vec<bool>,
    /// One compute scratch per pool worker (sized with the pool).
    compute_scratch: Vec<ComputeScratch>,
    /// `reserved` slots flipped during the current commit pass; a later
    /// router whose snapshot covered a flipped slot discards its intent
    /// and recomputes serially.
    res_dirty: Vec<bool>,
    res_dirty_list: Vec<u32>,
    /// Widest router (ports), for sizing per-worker scratch.
    max_ports: usize,
    /// Effect mailbox for live router processing and the serial commit
    /// fallback (reused each cycle, so it stops allocating once warm).
    live_mb: Mailbox<P>,
    /// Per-worker effect mailboxes for the sharded commit (sized with
    /// the pool).
    commit_mb: Vec<Mailbox<P>>,
    phase: PhaseStats,
    /// Online serial-vs-parallel calibration (meaningful only when
    /// `sim_threads > 1`). Host-describing, so it survives resets.
    gate: AdaptiveGate,
}

impl<P> Network<P> {
    /// Builds a network over `topo` using the given routing table.
    ///
    /// # Panics
    ///
    /// Panics if `params` are invalid.
    pub fn new(topo: Topology, table: RoutingTable, params: RouterParams) -> Self {
        Self::with_shared(Arc::new(topo), Arc::new(table), params)
    }

    /// Builds a network over *shared* structure: the topology and the
    /// fault-free routing table may be `Arc`s handed out by a structural
    /// cache and shared read-only across many networks (one per sweep
    /// worker). The kernel never writes through either `Arc` — fault
    /// rebuilds move the degraded table into a privately owned
    /// allocation first — so sharing is safe and free.
    ///
    /// # Panics
    ///
    /// Panics if `params` are invalid.
    pub fn with_shared(
        topo: Arc<Topology>,
        table: Arc<RoutingTable>,
        params: RouterParams,
    ) -> Self {
        params.validate();
        let slabs = NetSlabs::build(&topo, params.vcs_per_port, params.vc_depth);
        let n = topo.len();
        let n_links = topo.link_count();
        // Bound the event horizon: the longest link traversal (wire
        // delay plus extra pipeline stages) or the credit return,
        // whichever scheduling delay is larger.
        let max_link_delay = topo.links().iter().map(|l| l.delay).max().unwrap_or(1);
        let horizon = u64::from((max_link_delay + params.router_stages - 1).max(1))
            .max(u64::from(params.credit_delay));
        let max_ports = topo.routers().iter().map(|r| r.ports.len()).max().unwrap_or(0);
        let sim_threads = match params.sim_threads {
            0 => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            t => t as usize,
        };
        Network {
            stats: NetStats::new(n_links),
            evlog: None,
            checker: None,
            reserved: vec![false; n_links * params.vcs_per_port as usize],
            inflight: vec![0; n_links * params.vcs_per_port as usize],
            slabs,
            events: EventWheel::new(horizon),
            scratch: RouterScratch::for_max_ports(max_ports),
            cycle: 0,
            next_packet: 0,
            pending: Vec::new(),
            pending_flag: vec![false; n],
            delivered: VecDeque::new(),
            last_progress: 0,
            faults: FaultSchedule::default(),
            next_fault: 0,
            link_up: vec![true; n_links],
            base_table: None,
            spare_table: None,
            rebuilder: None,
            sim_threads,
            pool: None,
            intents: (0..n)
                .map(|_| RouterIntent::for_ports(max_ports, params.vcs_per_port as usize))
                .collect(),
            deferred: vec![false; n],
            compute_scratch: Vec::new(),
            res_dirty: vec![false; n_links * params.vcs_per_port as usize],
            // Pre-sized to its hard bound (one entry per distinct
            // (link, VC) slot) so the commit pre-scan never allocates.
            res_dirty_list: Vec::with_capacity(n_links * params.vcs_per_port as usize),
            max_ports,
            // A winner produces at most 4 effects (replica copy,
            // ejection or link departure, credit return, reservation
            // release), and one router commits at most one winner per
            // port — the mailbox bound for live/serial-commit use,
            // where effects drain after every position.
            live_mb: VecDeque::with_capacity(max_ports * 4),
            commit_mb: Vec::new(),
            phase: PhaseStats::default(),
            gate: AdaptiveGate::default(),
            topo,
            table,
            params,
        }
    }

    /// Returns the network to its just-constructed state while keeping
    /// every allocation: slab storage, event-wheel buckets, scratch
    /// buffers, mailboxes, the worker pool, and the fault-rebuild
    /// machinery all retain their capacity. This is the warm-evaluation
    /// path's arena reset — after it, the network is observationally
    /// identical to `Network::with_shared(topo, table, params)` on the
    /// same structure (bit-identical simulation results), but stepping
    /// it performs zero steady-state allocations from the first cycle.
    ///
    /// The fault schedule, event log, and invariant checker are
    /// cleared (they are per-run configuration; reinstall per point).
    /// If a fault had degraded the routing table, the pristine table
    /// `Arc` moves back into place and the degraded copy is retired as
    /// a spare for the next run's first fault rebuild.
    pub fn reset(&mut self) {
        self.slabs.reset(self.params.vc_depth);
        self.events.clear();
        self.scratch.requesting.clear();
        self.scratch.winners.clear();
        self.scratch.work.clear();
        self.cycle = 0;
        self.next_packet = 0;
        self.pending.clear();
        self.pending_flag.fill(false);
        self.delivered.clear();
        self.reserved.fill(false);
        self.inflight.fill(0);
        self.stats.reset();
        self.last_progress = 0;
        self.evlog = None;
        self.checker = None;
        self.faults = FaultSchedule::default();
        self.next_fault = 0;
        self.link_up.fill(true);
        // Restore the fault-free table; keep the degraded storage (and
        // the rebuilder scratch) so a faulted next run allocates nothing.
        if let Some(pristine) = self.base_table.take() {
            let degraded = std::mem::replace(&mut self.table, pristine);
            self.spare_table = Some(degraded);
        }
        for intent in &mut self.intents {
            intent.clear();
        }
        self.deferred.fill(false);
        self.res_dirty.fill(false);
        self.res_dirty_list.clear();
        self.live_mb.clear();
        for mb in &mut self.commit_mb {
            mb.clear();
        }
        self.phase = PhaseStats::default();
    }

    /// Installs a fault schedule. Events at or before the current cycle
    /// apply on the next [`Network::step`]. Replaces any earlier
    /// schedule.
    ///
    /// # Panics
    ///
    /// Panics when an event names a link the topology does not have.
    pub fn set_fault_schedule(&mut self, schedule: FaultSchedule) {
        for e in schedule.events() {
            assert!(
                (e.link.0 as usize) < self.topo.link_count(),
                "fault schedule names nonexistent link {:?}",
                e.link
            );
        }
        self.faults = schedule;
        self.next_fault = 0;
    }

    /// Whether `link` is currently up under the fault schedule.
    pub fn link_is_up(&self, link: LinkId) -> bool {
        self.link_up[link.0 as usize]
    }

    /// The routing table of the intact topology (ignoring faults).
    fn pristine_table(&self) -> &RoutingTable {
        self.base_table.as_deref().unwrap_or(&self.table)
    }

    /// Applies fault events due at the current cycle and rebuilds the
    /// routing table around the surviving links.
    fn apply_due_faults(&mut self) {
        let mut changed = false;
        while let Some(&ev) = self.faults.events().get(self.next_fault) {
            if ev.cycle > self.cycle {
                break;
            }
            self.next_fault += 1;
            let slot = ev.link.0 as usize;
            if self.link_up[slot] == ev.up {
                continue;
            }
            self.link_up[slot] = ev.up;
            changed = true;
            if ev.up {
                self.stats.link_up_events += 1;
            } else {
                self.stats.link_down_events += 1;
            }
            self.log(NetEvent::LinkState {
                cycle: self.cycle,
                link: ev.link,
                up: ev.up,
            });
        }
        if changed {
            if self.rebuilder.is_none() {
                self.rebuilder = Some(
                    RoutingBuilder::new(self.table.spec(), &self.topo)
                        .expect("the spec already built a table for this topology"),
                );
            }
            let rebuilder = self.rebuilder.as_mut().expect("created above");
            // Invariant: `base_table` is written exactly once per run —
            // at the first fault event, when `self.table` still is the
            // intact (possibly shared) table. That first rebuild goes
            // into a privately owned `Arc` — a spare retired by a prior
            // [`Network::reset`] when one exists, a fresh allocation
            // otherwise — so the intact table moves into `base_table`
            // unchanged and a table shared through a structural cache is
            // never written. Every later rebuild (repairs included)
            // reuses the degraded table's storage and the builder's
            // scratch, so steady-state fault recomputation allocates
            // nothing. `pristine_table` keeps serving the fault-free
            // view for injection checks and reroute accounting.
            if self.base_table.is_none() {
                let rebuilt = match self.spare_table.take() {
                    Some(mut spare) => {
                        let t = Arc::get_mut(&mut spare).expect("spare table is uniquely owned");
                        rebuilder.rebuild_into(&self.topo, &self.link_up, t);
                        spare
                    }
                    None => Arc::new(rebuilder.build(&self.topo, &self.link_up)),
                };
                let pristine = std::mem::replace(&mut self.table, rebuilt);
                self.base_table = Some(pristine);
            } else {
                let t = Arc::get_mut(&mut self.table)
                    .expect("degraded table is uniquely owned after the first fault");
                rebuilder.rebuild_into(&self.topo, &self.link_up, t);
            }
            if let Some(checker) = &mut self.checker {
                let order =
                    ChannelDependencyGraph::from_all_pairs(&self.topo, &self.table).enumeration();
                checker.on_table_rebuilt(order);
            }
            // The topology changed: give stranded traffic a fresh
            // watchdog window to drain over the new routes, and wake
            // every router holding flits so blocked heads retry routing.
            self.last_progress = self.cycle;
            for i in 0..self.slabs.n_routers() {
                if self.slabs.has_work(i) {
                    self.mark_pending(NodeId(i as u32));
                }
            }
        }
    }

    /// The topology this network runs on.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The routing table in use.
    pub fn routing(&self) -> &RoutingTable {
        &self.table
    }

    /// Router parameters.
    pub fn params(&self) -> &RouterParams {
        &self.params
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Wall-clock breakdown of the two-phase kernel. Unlike
    /// [`Network::stats`], this is *not* deterministic — it reports how
    /// much host time each phase took, never simulation results.
    pub fn phase_stats(&self) -> PhaseStats {
        self.phase
    }

    /// The resolved compute-thread count (after `sim_threads == 0`
    /// auto-detection). `1` means the serial kernel.
    pub fn sim_threads(&self) -> usize {
        self.sim_threads
    }

    /// Current simulation cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Enables event logging with a ring buffer of `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn enable_event_log(&mut self, capacity: usize) {
        self.evlog = Some(EventLog::new(capacity));
    }

    /// Takes the event log, disabling further logging.
    pub fn take_event_log(&mut self) -> Option<EventLog> {
        self.evlog.take()
    }

    /// Appends an externally observed event (e.g. a protocol-level
    /// packet drop) to the event log, so invariant-violation reports
    /// include the causal entry. No-op while logging is disabled.
    pub fn log_event(&mut self, ev: NetEvent) {
        self.log(ev);
    }

    /// Enables per-cycle invariant checking (see [`crate::check`]).
    /// Also enables a small event log when none is active, so violation
    /// reports carry recent history. Idempotent.
    ///
    /// # Panics
    ///
    /// Panics when traffic was already injected: the checker must
    /// observe every packet from injection onward.
    pub fn enable_invariant_checker(&mut self) {
        assert_eq!(
            self.next_packet, 0,
            "enable the invariant checker before injecting traffic"
        );
        if self.checker.is_some() {
            return;
        }
        if self.evlog.is_none() {
            self.enable_event_log(64);
        }
        let order = ChannelDependencyGraph::from_all_pairs(&self.topo, &self.table).enumeration();
        self.checker = Some(InvariantChecker::new(order, self.params.strategy));
    }

    /// The invariant checker, when enabled.
    pub fn invariant_checker(&self) -> Option<&InvariantChecker> {
        self.checker.as_ref()
    }

    /// Takes the invariant checker, disabling further checking.
    pub fn take_invariant_checker(&mut self) -> Option<InvariantChecker> {
        self.checker.take()
    }

    fn log(&mut self, ev: NetEvent) {
        if let Some(l) = &mut self.evlog {
            l.push(ev);
        }
    }

    /// Injects `packet` at its source endpoint's local port. All flits
    /// enter the source queue immediately; they start moving next cycle.
    /// Returns the assigned packet id.
    ///
    /// # Panics
    ///
    /// Panics when the source or a destination endpoint does not exist,
    /// when a destination is unroutable on the *intact* topology (a
    /// protocol bug — a route cut only by an active fault is accepted;
    /// the head waits for a repair), or when a multicast list visits the
    /// same router twice in a row.
    pub fn inject(&mut self, mut packet: Packet<P>) -> PacketId {
        let src = packet.src;
        let sp = self
            .local_port(src.node, src.slot)
            .unwrap_or_else(|| panic!("source endpoint {src} does not exist"));
        // The first endpoint may share the source router (e.g. the core
        // multicasting to the bank on its own router); consecutive
        // destination endpoints must live on distinct routers.
        let mut prev = src.node;
        for (i, e) in packet.dest.endpoints().iter().enumerate() {
            assert!(
                self.local_port(e.node, e.slot).is_some(),
                "destination endpoint {e} does not exist"
            );
            assert!(
                i == 0 || e.node != prev,
                "multicast list must not visit router {prev} twice in a row"
            );
            assert!(
                self.pristine_table().is_routable(prev, e.node),
                "no route from {prev} to {} under {:?}",
                e.node,
                self.table.spec()
            );
            prev = e.node;
        }
        packet.id = PacketId(self.next_packet);
        self.next_packet += 1;
        packet.injected_at = self.cycle;
        self.stats.packets_injected += 1;
        let id = packet.id;
        let flits = packet.flits;
        let pkt = Arc::new(packet);
        if let Some(c) = &mut self.checker {
            c.on_inject(id, flits, pkt.dest.endpoints());
        }
        // Pick the least-occupied injection VC so distinct packets can
        // interleave across VCs of the local port.
        let base = self.slabs.vc_slot(src.node.0 as usize, sp.0 as usize, 0);
        let vc_idx = (0..self.slabs.vcs)
            .min_by_key(|&v| self.slabs.occ[base + v])
            .expect("local ports always have VCs");
        let dest_hi = pkt.dest.endpoints().len() as u32;
        // One run-length entry (and one `Arc`) covers the whole packet,
        // however many flits it carries.
        self.slabs.buf[base + vc_idx].push_run(pkt, 0, flits, dest_hi);
        self.slabs.occ[base + vc_idx] += flits;
        self.slabs.buffered[src.node.0 as usize] += flits;
        self.mark_pending(src.node);
        self.log(NetEvent::Inject {
            cycle: self.cycle,
            packet: id,
            src,
            flits,
        });
        id
    }

    /// True when some router has buffered flits to process this cycle.
    pub fn is_busy(&self) -> bool {
        !self.pending.is_empty()
    }

    /// When idle, the cycle of the next scheduled event (in-flight flit
    /// or credit), if any.
    pub fn next_event_cycle(&self) -> Option<u64> {
        self.events.next_cycle()
    }

    /// Fast-forwards the clock to `cycle` while the network is idle.
    ///
    /// # Panics
    ///
    /// Panics if the network is busy, if an event is scheduled before
    /// `cycle`, or if `cycle` is in the past.
    pub fn skip_to(&mut self, cycle: u64) {
        assert!(!self.is_busy(), "cannot skip while routers have work");
        assert!(cycle >= self.cycle, "cannot skip backwards");
        if let Some(w) = self.next_event_cycle() {
            assert!(
                w >= cycle,
                "event scheduled at {w}, before skip target {cycle}"
            );
        }
        self.cycle = cycle;
        self.stats.cycles = cycle;
        self.last_progress = self.last_progress.max(cycle.saturating_sub(1));
    }

    /// Advances to the next cycle in which anything can happen: steps
    /// once when routers have work, otherwise fast-forwards to just
    /// before the next scheduled event and steps into it. With neither
    /// work nor events, simply advances the clock one cycle.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from [`Network::step`].
    pub fn advance(&mut self) -> Result<(), SimError> {
        if !self.is_busy() {
            if let Some(w) = self.next_event_cycle() {
                if w > self.cycle + 1 {
                    self.skip_to(w - 1);
                }
            }
        }
        self.step()
    }

    /// Drains every delivery produced so far, in delivery order.
    pub fn drain_all_delivered(&mut self) -> Vec<Delivered<P>> {
        self.delivered.drain(..).collect()
    }

    /// Like [`Network::drain_all_delivered`], but appends into a
    /// caller-owned buffer so a driver loop can reuse one allocation
    /// across calls.
    pub fn drain_all_delivered_into(&mut self, out: &mut Vec<Delivered<P>>) {
        out.extend(self.delivered.drain(..));
    }

    /// Drains deliveries for one router (helper for small tests; large
    /// drivers should use [`Network::drain_all_delivered`]). Delivery
    /// order is preserved on both sides.
    pub fn drain_delivered(&mut self, node: NodeId) -> Vec<Delivered<P>> {
        let mut out = Vec::new();
        self.drain_delivered_into(node, &mut out);
        out
    }

    /// Appends deliveries for `node` into `out`; reusable-buffer variant
    /// of [`Network::drain_delivered`]. A single rotation pass *moves*
    /// each matched delivery out (no `Arc` clone): every entry is popped
    /// from the front exactly once and either kept or pushed back, so
    /// both the drained and the remaining sequences keep their order.
    pub fn drain_delivered_into(&mut self, node: NodeId, out: &mut Vec<Delivered<P>>) {
        for _ in 0..self.delivered.len() {
            let d = self.delivered.pop_front().expect("iterating current length");
            if d.endpoint.node == node {
                out.push(d);
            } else {
                self.delivered.push_back(d);
            }
        }
    }

    /// Advances the simulation by one cycle, applying any fault-schedule
    /// events that fall due first.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Watchdog`] when the watchdog detects no
    /// forward progress for `params.watchdog_cycles` cycles while flits
    /// are buffered (a deadlock, a protocol bug, or traffic stranded by
    /// a permanent fault). The network state is left intact for
    /// inspection; further stepping keeps returning the error.
    pub fn step(&mut self) -> Result<(), SimError> {
        self.cycle += 1;
        self.stats.cycles = self.cycle;
        self.apply_due_faults();
        self.deliver_events();
        // Deterministic processing order. The pending list and the
        // scratch worklist ping-pong so both keep their capacity:
        // `mark_pending` refills `self.pending` (now the recycled
        // buffer) while we iterate this cycle's sorted list.
        let mut work = std::mem::replace(&mut self.pending, std::mem::take(&mut self.scratch.work));
        work.sort_unstable();
        for &i in &work {
            self.pending_flag[i as usize] = false;
        }
        // Reset last cycle's commit-time reservation dirty set.
        for &s in &self.res_dirty_list {
            self.res_dirty[s as usize] = false;
        }
        self.res_dirty_list.clear();
        // Kernel choice: per-instance calibration of the serial cost vs
        // the pool-dispatch cost (both kernels are bit-identical, so the
        // decision is pure wall-clock). With one thread there is no
        // choice and no gate bookkeeping at all.
        let parallel =
            self.sim_threads > 1 && !work.is_empty() && self.gate.choose_parallel(work.len());
        if parallel {
            self.phase.adaptive_parallel_cycles += 1;
            // Time the whole sharded cycle: the gate prices parallel
            // from its measured total cost, not a modeled speedup, so
            // a host that can't actually run the workers concurrently
            // calibrates itself back to serial.
            let t0 = Instant::now();
            self.step_two_phase(&work);
            let total = self.pool.as_ref().expect("pool created").dispatch_ns();
            self.phase.dispatch_ns +=
                self.gate
                    .note_parallel(total, t0.elapsed().as_nanos() as u64, work.len());
        } else {
            // Classic serial kernel — also the reference semantics the
            // two-phase kernel must reproduce bit-for-bit.
            self.phase.serial_cycles += 1;
            let gated = self.sim_threads > 1 && !work.is_empty();
            if gated {
                self.phase.adaptive_serial_cycles += 1;
            }
            let t0 = (gated && self.gate.serial_sample_due()).then(Instant::now);
            // Split borrow: take the slabs out of `self` once for the
            // whole loop; helpers receive them as an explicit argument.
            // Nothing below may touch `self.slabs` (it is empty) until
            // restored.
            let mut slabs = std::mem::take(&mut self.slabs);
            for &i in &work {
                self.process_router(i, &mut slabs);
            }
            self.slabs = slabs;
            if let Some(t0) = t0 {
                self.gate
                    .note_serial(t0.elapsed().as_nanos() as u64, work.len());
            }
        }
        work.clear();
        self.scratch.work = work;
        self.audit_invariants();
        if let Some(v) = self
            .checker
            .as_ref()
            .and_then(|c| c.violations().first())
        {
            return Err(SimError::Invariant(Box::new(v.clone())));
        }
        // Watchdog.
        if self.is_busy() && self.cycle - self.last_progress > self.params.watchdog_cycles {
            return Err(SimError::Watchdog {
                cycle: self.cycle,
                stalled_for: self.params.watchdog_cycles,
                buffered_flits: self.slabs.buffered_flits_total() as usize,
                busy_routers: self.pending.len(),
                blocked_heads: self.slabs.blocked_heads_total(),
                faults_active: self.stats.faults_active(),
            });
        }
        Ok(())
    }

    fn deliver_events(&mut self) {
        if self.events.is_empty() {
            return;
        }
        let mut batch = self.events.take_due(self.cycle);
        for (_when, kind) in batch.drain(..) {
            match kind {
                EvKind::Arrive { link, vc, flit } => {
                    let l = *self.topo.link(link);
                    let slot = link.0 as usize * self.params.vcs_per_port as usize + vc as usize;
                    self.inflight[slot] -= 1;
                    let ps = self
                        .slabs
                        .port_slot(l.dst.0 as usize, l.dst_port.0 as usize);
                    self.slabs.util[ps] += 1;
                    let slot = ps * self.slabs.vcs + vc as usize;
                    assert!(
                        self.slabs.occ[slot] < u32::from(self.params.vc_depth),
                        "VC overflow at {} port {:?} vc {vc}: credit protocol violated",
                        l.dst,
                        l.dst_port
                    );
                    self.slabs.buf[slot].push_back(flit);
                    self.slabs.occ[slot] += 1;
                    self.slabs.buffered[l.dst.0 as usize] += 1;
                    let occ = self.slabs.occ[slot] as u8;
                    if occ > self.stats.peak_vc_occupancy {
                        self.stats.peak_vc_occupancy = occ;
                    }
                    self.mark_pending(l.dst);
                }
                EvKind::Credit { link, vc } => {
                    let l = *self.topo.link(link);
                    let oslot =
                        self.slabs
                            .vc_slot(l.src.0 as usize, l.src_port.0 as usize, vc as usize);
                    self.slabs.out_credits[oslot] += 1;
                    assert!(
                        self.slabs.out_credits[oslot] <= self.params.vc_depth,
                        "credit overflow on {link:?} vc {vc}"
                    );
                    self.mark_pending(l.src);
                }
            }
        }
        self.events.recycle(batch);
    }

    fn mark_pending(&mut self, node: NodeId) {
        if !self.pending_flag[node.0 as usize] {
            self.pending_flag[node.0 as usize] = true;
            self.pending.push(node.0);
        }
    }

    fn local_port(&self, node: NodeId, slot: u16) -> Option<PortId> {
        if node.0 as usize >= self.topo.len() {
            return None;
        }
        self.topo.router(node).port_by_label(PortLabel::Local(slot))
    }

    fn schedule(&mut self, when: u64, kind: EvKind<P>) {
        self.events.schedule(self.cycle, when, kind);
    }

    /// One router's routing / VC allocation / switch allocation /
    /// traversal for the current cycle.
    ///
    /// `slabs` is the full SoA state, split-borrowed out of `self` by
    /// [`Network::step`] (or the commit loop) for the duration of the
    /// router loop. All per-cycle temporaries live in `self.scratch`
    /// and `self.live_mb` (cleared, never reallocated), so steady-state
    /// processing is allocation-free.
    fn process_router(&mut self, idx: u32, slabs: &mut NetSlabs<P>) {
        let node = NodeId(idx);
        let ri = idx as usize;

        self.allocate_routes(node, slabs);

        // Phase A: each input port nominates one sendable VC. Nominees
        // land in a dense `(port, vc, output)` list (ascending port
        // order) so phase B touches only nominating ports instead of
        // rescanning every (output, input) pair against the route slab.
        let n_ports = slabs.n_ports(ri);
        let n_vcs = slabs.vcs as u8;
        debug_assert!(self.scratch.nominated.is_empty());
        for p in 0..n_ports {
            let start = slabs.rr_in[slabs.port_slot(ri, p)];
            for k in 0..n_vcs {
                let v = (start + k) % n_vcs;
                if let Some(rt) = self.vc_sendable(slabs, ri, p, v as usize) {
                    self.scratch.nominated.push((p as u8, v, rt.port));
                    break;
                }
            }
        }

        // Phase B: each requested output port grants one nominating
        // input port. Every nominee requests exactly one output, so the
        // nominee list partitions by output port; walking the distinct
        // outputs in ascending order visits them exactly as the
        // historical all-pairs `for o in 0..n_ports` scan did.
        debug_assert!(self.scratch.winners.is_empty());
        let mut next_o = self.scratch.nominated.iter().map(|&(_, _, o)| o).min();
        while let Some(o) = next_o {
            self.scratch.requesting.clear();
            let mut pick_v = 0;
            for &(p, v, po) in &self.scratch.nominated {
                if po == o {
                    self.scratch.requesting.push(p);
                    pick_v = v;
                }
            }
            let ps_o = slabs.port_slot(ri, o as usize);
            let start = slabs.out_rr[ps_o];
            let pick = self
                .scratch
                .requesting
                .iter()
                .copied()
                .find(|&p| p >= start)
                .unwrap_or(self.scratch.requesting[0]);
            slabs.out_rr[ps_o] = pick.wrapping_add(1) % n_ports.max(1) as u8;
            if self.scratch.requesting.len() > 1 {
                pick_v = self
                    .scratch
                    .nominated
                    .iter()
                    .find(|&&(p, _, _)| p == pick)
                    .map(|&(_, v, _)| v)
                    .expect("picked port has a nominee");
            }
            self.scratch.winners.push((pick, pick_v));
            next_o = self
                .scratch
                .nominated
                .iter()
                .map(|&(_, _, po)| po)
                .filter(|&po| po > o)
                .min();
        }
        self.scratch.nominated.clear();

        // Traversal: apply each winner through the shared commit-path
        // implementation, collecting global effects into the (reused)
        // live mailbox, then drain it immediately — effect order within
        // one router is exactly the serial order. The winners buffer
        // moves out and back so `self` stays borrowable; a Vec move
        // allocates nothing.
        let winners = std::mem::take(&mut self.scratch.winners);
        let mut mb = std::mem::take(&mut self.live_mb);
        debug_assert!(mb.is_empty());
        {
            let view = SlabPtrs::new(slabs);
            for &(p, v) in &winners {
                // SAFETY: `slabs` is exclusively borrowed here and the
                // view is used single-threaded, so the "caller owns the
                // router" contract holds trivially.
                unsafe {
                    apply_winner(
                        &view,
                        &self.topo,
                        &self.params,
                        self.cycle,
                        node,
                        p as usize,
                        v as usize,
                        0,
                        &mut mb,
                    );
                }
                self.last_progress = self.cycle;
            }
        }
        while let Some((_, eff)) = mb.pop_front() {
            self.apply_effect(eff);
        }
        self.live_mb = mb;
        self.scratch.winners = winners;
        self.scratch.winners.clear();

        if slabs.has_work(ri) {
            self.mark_pending(node);
        }
    }

    /// The two-phase cycle kernel: a sharded, read-only **compute**
    /// pass records each active router's decisions as intents, then a
    /// **commit** pass applies them in sorted worklist order — itself
    /// sharded by router ownership, with cross-router effects routed
    /// through per-worker mailboxes and merged in worklist order.
    ///
    /// # Why this is bit-identical to the serial kernel
    ///
    /// In the serial kernel, the only *cross-router* state a router's
    /// turn reads that an earlier router's turn may have written in the
    /// same cycle is (a) the remote-reservation bitmap `reserved`
    /// (consulted by output-VC allocation) and (b) upstream output-VC
    /// ownership plus wire occupancy (consulted only by the multicast
    /// replica-VC search). Buffers and credits of *other* routers
    /// cannot change mid-cycle: every flit arrival and credit return is
    /// scheduled at least one cycle ahead. The compute pass therefore
    /// works from a true snapshot, with those two channels handled as:
    ///
    /// * A router whose cycle needs the replica-VC search (a multicast
    ///   head splitting now) **defers**: its compute records nothing
    ///   and the commit pass runs the full serial [`Network::process_router`]
    ///   at its worklist turn. Because compute writes no live state,
    ///   the state a deferred router sees at its turn is exactly what
    ///   the serial kernel would have shown it — earlier routers fully
    ///   committed, later ones untouched.
    /// * A commit that flips a `reserved` slot (replica reserve or
    ///   release) marks it dirty; a later router whose output links
    ///   cover a dirty slot discards its intent and recomputes
    ///   serially at its turn ([`Network::intent_invalidated`]).
    ///
    /// Everything else an intent carries — routes, output-VC claims,
    /// round-robin pointers, switch winners — derives from the router's
    /// *own* state, which only its own turn mutates, and the commit
    /// replays those mutations in the serial order.
    fn step_two_phase(&mut self, work: &[u32]) {
        self.phase.parallel_cycles += 1;
        if self.pool.is_none() {
            let pool = SimPool::new(self.sim_threads);
            self.compute_scratch = (0..pool.threads())
                .map(|_| ComputeScratch::for_max_ports(self.max_ports))
                .collect();
            // Hard bound per worker: its share of the worklist times
            // the per-router effect maximum (4 per winner, one winner
            // per port), so sharded commits never grow a mailbox.
            let mb_cap = (self.slabs.n_routers() * self.max_ports * 4)
                .div_ceil(pool.threads().max(1))
                + self.max_ports * 4;
            self.commit_mb = (0..pool.threads())
                .map(|_| Mailbox::with_capacity(mb_cap))
                .collect();
            self.pool = Some(pool);
        }

        // Compute phase: shard the worklist across the pool.
        let t_compute = Instant::now();
        {
            let intents = self.intents.as_mut_ptr();
            let deferred = self.deferred.as_mut_ptr();
            let scratch = self.compute_scratch.as_mut_ptr();
            let job = ComputeJob {
                ctx: ComputeCtx {
                    topo: &self.topo,
                    table: &self.table,
                    base: self.base_table.as_deref(),
                    params: &self.params,
                    reserved: &self.reserved,
                    slabs: &self.slabs,
                },
                work,
                intents,
                deferred,
                scratch,
                next: AtomicUsize::new(0),
            };
            let pool = self.pool.as_ref().expect("created above");
            // SAFETY: `compute_shim::<P>` only *reads* the shared
            // snapshot in `ctx` (plain fields and `Arc` targets; it
            // never clones, drops, or mutates an `Arc` and never touches
            // the `P` payload), and writes only disjoint slots:
            // `intents[i]` / `deferred[i]` for distinct router ids
            // claimed through the shared `next` counter, and
            // `scratch[w]` for the worker's own index. `run` blocks
            // until every worker finished, so the stack-borrowed `job`
            // outlives all use.
            unsafe { pool.run(compute_shim::<P>, (&raw const job).cast()) };
        }
        self.phase.compute_ns += t_compute.elapsed().as_nanos() as u64;

        // Commit phase: split the worklist into *runs* of committable
        // routers separated by *barriers* (deferred or invalidated
        // routers, which re-run the live serial kernel with all earlier
        // effects merged). Each run is applied by the pool — workers own
        // disjoint routers and record global effects in per-worker
        // mailboxes — then merged in worklist order, so the sequence of
        // global writes is exactly the serial kernel's.
        //
        // The pre-scan marks each valid intent's predicted reservation
        // releases dirty *before* extending the run past later routers
        // (check-then-mark: a router checks its own invalidation before
        // its releases are marked, just as the serial kernel flips
        // `reserved` only after that router's own decisions are done).
        // Predictions are exact — winners apply unconditionally, and a
        // replica VC's tail-at-front status is own-router state no
        // earlier commit can change — so the dirty set a later router
        // sees matches the serial kernel's flip-for-flip.
        let t_commit = Instant::now();
        let mut slabs = std::mem::take(&mut self.slabs);
        let intents = std::mem::take(&mut self.intents);
        let mut pos = 0;
        while pos < work.len() {
            let lo = pos;
            while pos < work.len() {
                let idx = work[pos];
                if self.deferred[idx as usize] || self.intent_invalidated(idx) {
                    break;
                }
                for &slot in &intents[idx as usize].releases {
                    if !self.res_dirty[slot as usize] {
                        self.res_dirty[slot as usize] = true;
                        self.res_dirty_list.push(slot);
                    }
                }
                pos += 1;
            }
            if pos > lo {
                self.commit_run(&work[lo..pos], &intents, &mut slabs);
            }
            if pos < work.len() {
                // Barrier: live serial processing — exact by
                // construction, with every earlier effect applied.
                self.process_router(work[pos], &mut slabs);
                pos += 1;
            }
        }
        self.intents = intents;
        self.slabs = slabs;
        self.phase.commit_ns += t_commit.elapsed().as_nanos() as u64;
    }

    /// Commits one run of valid intents: sharded across the pool when
    /// the run is large enough, serial otherwise, followed by the
    /// in-order mailbox merge. Either way the global write sequence is
    /// the serial kernel's.
    fn commit_run(&mut self, run: &[u32], intents: &[RouterIntent], slabs: &mut NetSlabs<P>) {
        let threads = self.sim_threads;
        if run.len() >= self.gate.run_threshold() && threads > 1 {
            {
                let job = CommitJob {
                    slabs: SlabPtrs::new(slabs),
                    topo: &self.topo,
                    params: &self.params,
                    intents: intents.as_ptr(),
                    run,
                    cycle: self.cycle,
                    mailboxes: self.commit_mb.as_mut_ptr(),
                    stride: threads,
                };
                let pool = self.pool.as_ref().expect("pool exists in two-phase path");
                // SAFETY: workers own disjoint routers (static
                // round-robin over run positions), and every slab write
                // in `apply_intent`/`apply_winner` stays inside the
                // owner's contiguous slot ranges; `mailboxes[w]` is
                // touched only by worker `w`. Shared state (`topo`,
                // `params`, `intents`) is read-only. Flits are moved or
                // `Arc`-cloned (atomic), never dropped, on workers —
                // the last drop and any `P` access happen on this
                // thread during the merge. `run` blocks until every
                // worker finished, so the stack-borrowed `job` outlives
                // all use, and its Acquire/Release handshake orders the
                // workers' writes before the merge reads them.
                unsafe { pool.run(commit_shim::<P>, (&raw const job).cast()) };
            }
            for (off, &idx) in run.iter().enumerate() {
                let w = off % threads;
                let mut mb = std::mem::take(&mut self.commit_mb[w]);
                self.merge_position(idx, &intents[idx as usize], &mut mb, off as u32, slabs);
                self.commit_mb[w] = mb;
            }
        } else {
            let mut mb = std::mem::take(&mut self.live_mb);
            debug_assert!(mb.is_empty());
            for &idx in run {
                {
                    let view = SlabPtrs::new(slabs);
                    // SAFETY: single-threaded use of the view under an
                    // exclusive borrow of `slabs`.
                    unsafe {
                        apply_intent(
                            &view,
                            &self.topo,
                            &self.params,
                            self.cycle,
                            idx,
                            &intents[idx as usize],
                            0,
                            &mut mb,
                        );
                    }
                }
                self.merge_position(idx, &intents[idx as usize], &mut mb, 0, slabs);
            }
            self.live_mb = mb;
        }
    }

    /// Merges one committed router's global consequences, in the exact
    /// serial order: stats preamble (blocked-route cycles, reroute
    /// counts), this position's effects from `mb`, then the progress /
    /// re-scheduling postamble.
    fn merge_position(
        &mut self,
        idx: u32,
        intent: &RouterIntent,
        mb: &mut Mailbox<P>,
        pos: u32,
        slabs: &NetSlabs<P>,
    ) {
        self.stats.route_blocked_cycles += u64::from(intent.route_blocked);
        for rt in &intent.routes {
            if rt.rerouted {
                self.stats.packets_rerouted += 1;
            }
        }
        while mb.front().is_some_and(|&(t, _)| t == pos) {
            let (_, eff) = mb.pop_front().expect("checked front");
            self.apply_effect(eff);
        }
        if !intent.winners.is_empty() {
            self.last_progress = self.cycle;
        }
        if slabs.has_work(idx as usize) {
            self.mark_pending(NodeId(idx));
        }
    }

    /// Applies one recorded commit effect to global state. Called in
    /// the deterministic merge order, so every observable sequence
    /// (event wheel, delivered queue, stats, checker, event log)
    /// matches the serial kernel's.
    fn apply_effect(&mut self, eff: Effect<P>) {
        match eff {
            Effect::Arrive {
                when,
                link,
                vc,
                flit,
            } => {
                self.stats.flits_per_link[link.0 as usize] += 1;
                if flit.is_head() {
                    if let Some(c) = &mut self.checker {
                        c.on_link_send(flit.pkt.id, flit.dest_idx, link);
                    }
                }
                self.inflight
                    [link.0 as usize * self.params.vcs_per_port as usize + vc as usize] += 1;
                self.schedule(when, EvKind::Arrive { link, vc, flit });
            }
            Effect::Credit { when, link, vc } => {
                self.schedule(when, EvKind::Credit { link, vc });
            }
            Effect::Eject { flit } => {
                let is_tail = flit.is_tail();
                self.stats.flits_ejected += 1;
                if let Some(c) = &mut self.checker {
                    c.on_eject(flit.pkt.id, flit.seq, flit.dest_idx, flit.target(), is_tail);
                }
                if is_tail {
                    let endpoint = flit.target();
                    self.stats.packets_delivered += 1;
                    let latency = self.cycle - flit.pkt.injected_at;
                    self.stats.total_packet_latency += latency;
                    self.stats.record_latency(latency);
                    self.log(NetEvent::Deliver {
                        cycle: self.cycle,
                        packet: flit.pkt.id,
                        endpoint,
                    });
                    self.delivered.push_back(Delivered {
                        packet: flit.pkt,
                        endpoint,
                        cycle: self.cycle,
                    });
                }
            }
            Effect::ReplicaCopy { packet } => {
                if let Some(c) = &mut self.checker {
                    c.on_replica_copy(packet);
                }
            }
            Effect::Release { node, port, vc } => {
                self.reserve_remote(node, port as usize, vc as usize, false);
            }
        }
    }

    /// Whether commit-time `reserved` flips touched a slot router
    /// `idx`'s compute snapshot may have read — the VCs of its output
    /// links. Almost always decided by the empty-list fast path.
    fn intent_invalidated(&self, idx: u32) -> bool {
        if self.res_dirty_list.is_empty() {
            return false;
        }
        let vcs = self.params.vcs_per_port as usize;
        self.topo
            .router(NodeId(idx))
            .ports
            .iter()
            .filter_map(|p| p.out_link)
            .any(|l| {
                let base = l.0 as usize * vcs;
                self.res_dirty[base..base + vcs].iter().any(|&d| d)
            })
    }

    /// Routing and VC allocation for head flits at VC fronts,
    /// dispatched per replication strategy. The hybrid body is the
    /// paper's §3.1 logic, untouched; tree and path live in their own
    /// loops so the baseline cannot drift.
    ///
    /// Receives the split-borrowed slabs (see
    /// [`Network::process_router`]); the replica-VC search reads the
    /// upstream neighbours' output state from the same slabs.
    fn allocate_routes(&mut self, node: NodeId, slabs: &mut NetSlabs<P>) {
        match self.params.strategy {
            MulticastStrategy::Hybrid => self.allocate_routes_hybrid(node, slabs),
            MulticastStrategy::Tree => self.allocate_routes_tree(node, slabs),
            MulticastStrategy::Path => self.allocate_routes_path(node, slabs),
        }
    }

    /// Hybrid replication (§3.1): at each visited destination, reserve
    /// a replica VC on a different input channel and keep the primary
    /// moving toward the next endpoint.
    fn allocate_routes_hybrid(&mut self, node: NodeId, slabs: &mut NetSlabs<P>) {
        let ri = node.0 as usize;
        for p in 0..slabs.n_ports(ri) {
            for v in 0..slabs.vcs {
                let slot = slabs.vc_slot(ri, p, v);
                // Copy the head's routing facts out before any `&mut`
                // helper call needs the slabs.
                let (target, next_target, dest_idx, split_is_none) = {
                    if slabs.occ[slot] == 0 || slabs.route[slot].is_some() {
                        continue;
                    }
                    let front = slabs.buf[slot].front().expect("occupied VC has a front");
                    assert!(
                        front.is_head(),
                        "non-head flit at front of unrouted VC: packet {:?} seq {}",
                        front.pkt.id,
                        front.seq
                    );
                    let next_target = if front.has_more_targets() {
                        Some(front.pkt.dest.endpoints()[front.dest_idx as usize + 1])
                    } else {
                        None
                    };
                    (
                        front.target(),
                        next_target,
                        front.dest_idx,
                        slabs.split[slot].is_none(),
                    )
                };

                if target.node == node {
                    let eject_port = self
                        .local_port(node, target.slot)
                        .unwrap_or_else(|| panic!("endpoint {target} vanished"))
                        .0;
                    if let Some(next) = next_target {
                        // Multicast split: reserve a replica VC first.
                        if split_is_none {
                            match self.find_replica_vc(node, slabs, p) {
                                Some((rp, rv)) => {
                                    let rslot = slabs.vc_slot(ri, rp, rv);
                                    slabs.replica_role[rslot] = true;
                                    slabs.route[rslot] = Some(OutRoute {
                                        port: eject_port as u8,
                                        vc: 0,
                                        eject: true,
                                    });
                                    slabs.split[slot] = Some(Split {
                                        port: rp as u8,
                                        vc: rv as u8,
                                        resume: dest_idx + 1,
                                    });
                                    let pkt_id =
                                        slabs.buf[slot].front().expect("head present").pkt.id;
                                    self.reserve_remote(node, rp, rv, true);
                                    self.stats.replications += 1;
                                    self.log(NetEvent::Replicate {
                                        cycle: self.cycle,
                                        packet: pkt_id,
                                        node,
                                    });
                                }
                                None => {
                                    self.stats.replication_blocked_cycles += 1;
                                    self.log(NetEvent::ReplicaBlocked {
                                        cycle: self.cycle,
                                        node,
                                    });
                                    continue;
                                }
                            }
                        }
                        // Primary continues toward the next endpoint.
                        let Some(out) = self.table.next_hop(node, next.node) else {
                            // Every path to the next endpoint is cut by a
                            // fault; the head waits for a repair (or the
                            // watchdog).
                            self.stats.route_blocked_cycles += 1;
                            continue;
                        };
                        if let Some(ovc) = self.claim_out_vc(node, slabs, out.0 as usize) {
                            slabs.route[slot] = Some(OutRoute {
                                port: out.0 as u8,
                                vc: ovc,
                                eject: false,
                            });
                            self.note_reroute(node, next.node, out);
                        }
                    } else {
                        slabs.route[slot] = Some(OutRoute {
                            port: eject_port as u8,
                            vc: 0,
                            eject: true,
                        });
                    }
                } else {
                    let Some(out) = self.table.next_hop(node, target.node) else {
                        // Fault cut every path toward the target; wait.
                        self.stats.route_blocked_cycles += 1;
                        continue;
                    };
                    if let Some(ovc) = self.claim_out_vc(node, slabs, out.0 as usize) {
                        slabs.route[slot] = Some(OutRoute {
                            port: out.0 as u8,
                            vc: ovc,
                            eject: false,
                        });
                        self.note_reroute(node, target.node, out);
                    }
                }
            }
        }
    }

    /// Path-based multicast: no replication state at all. A worm whose
    /// current target lives here but has further endpoints routes
    /// onward toward the next one; the local copy peels off in
    /// [`crate::commit::apply_winner`] as the flits pass through.
    fn allocate_routes_path(&mut self, node: NodeId, slabs: &mut NetSlabs<P>) {
        let ri = node.0 as usize;
        for p in 0..slabs.n_ports(ri) {
            for v in 0..slabs.vcs {
                let slot = slabs.vc_slot(ri, p, v);
                let (target, next_target) = {
                    if slabs.occ[slot] == 0 || slabs.route[slot].is_some() {
                        continue;
                    }
                    let front = slabs.buf[slot].front().expect("occupied VC has a front");
                    assert!(
                        front.is_head(),
                        "non-head flit at front of unrouted VC: packet {:?} seq {}",
                        front.pkt.id,
                        front.seq
                    );
                    let next_target = if front.has_more_targets() {
                        Some(front.pkt.dest.endpoints()[front.dest_idx as usize + 1])
                    } else {
                        None
                    };
                    (front.target(), next_target)
                };

                // Route toward the worm's next stop: the following
                // endpoint when the current target is local and more
                // remain, otherwise the current target (or ejection).
                let toward = if target.node == node {
                    match next_target {
                        Some(next) => next,
                        None => {
                            let eject_port = self
                                .local_port(node, target.slot)
                                .unwrap_or_else(|| panic!("endpoint {target} vanished"))
                                .0;
                            slabs.route[slot] = Some(OutRoute {
                                port: eject_port as u8,
                                vc: 0,
                                eject: true,
                            });
                            continue;
                        }
                    }
                } else {
                    target
                };
                let Some(out) = self.table.next_hop(node, toward.node) else {
                    // Fault cut every path; the head waits for a repair.
                    self.stats.route_blocked_cycles += 1;
                    continue;
                };
                if let Some(ovc) = self.claim_out_vc(node, slabs, out.0 as usize) {
                    slabs.route[slot] = Some(OutRoute {
                        port: out.0 as u8,
                        vc: ovc,
                        eject: false,
                    });
                    self.note_reroute(node, toward.node, out);
                }
            }
        }
    }

    /// Tree-based multicast: a worm serves the destination range
    /// `dest_idx .. dest_hi`. At every router the longest prefix of the
    /// range sharing the first destination's action (local ejection or
    /// the table's next hop) stays on this worm; the remainder forks
    /// into a reserved replica VC (the same storage hybrid replication
    /// uses) and is routed — and possibly forked again — from this
    /// router on later cycles.
    ///
    /// Forking is **opportunistic**: a branch point with no free
    /// replica VC never blocks the worm. Hybrid can afford to wait
    /// (its replicas eject immediately, so the VC it wants always
    /// drains), but tree replicas are network worms holding buffers for
    /// many cycles — two fork-blocked heads whose replica VCs hold each
    /// other's flits would deadlock. Instead the worm degrades to
    /// path-style serialization: it carries the whole range toward the
    /// first endpoint (retrying the fork at later routers), and at an
    /// ejection router with no replica VC it routes toward the next
    /// endpoint and lets the commit phase peel the local copy off as a
    /// passing delivery. The mid-route retry is also gated on the
    /// suffix still being routable from here — a worm that drifted past
    /// a branch point may stand where the table cannot reach the
    /// divergent endpoints (XYX turn limits), and a fork there would
    /// strand the replica; serializing through the endpoint chain,
    /// whose per-segment routability injection asserted, always works.
    fn allocate_routes_tree(&mut self, node: NodeId, slabs: &mut NetSlabs<P>) {
        let ri = node.0 as usize;
        for p in 0..slabs.n_ports(ri) {
            for v in 0..slabs.vcs {
                let slot = slabs.vc_slot(ri, p, v);
                let (pkt, lo, hi) = {
                    if slabs.occ[slot] == 0 || slabs.route[slot].is_some() {
                        continue;
                    }
                    let front = slabs.buf[slot].front().expect("occupied VC has a front");
                    assert!(
                        front.is_head(),
                        "non-head flit at front of unrouted VC: packet {:?} seq {}",
                        front.pkt.id,
                        front.seq
                    );
                    (Arc::clone(front.pkt), front.dest_idx, front.dest_hi)
                };
                let eps = pkt.dest.endpoints();
                debug_assert!((lo as usize) < eps.len() && hi as usize <= eps.len() && lo < hi);
                // The split survives route-blocked cycles: once the fork
                // is placed, only the primary's own route is (re)sought.
                let already_split = slabs.split[slot].is_some();
                let first = eps[lo as usize];
                if first.node == node {
                    // Consecutive endpoints never share a router, so an
                    // ejecting group is always a singleton: fork the
                    // rest of the range before ejecting.
                    if hi - lo >= 2
                        && !already_split
                        && !self.fork_tree(node, slabs, slot, p, lo + 1, pkt.id)
                    {
                        // No replica VC free: degrade to a passing
                        // delivery — route toward the next endpoint and
                        // let the commit phase peel the local copy off.
                        let next = eps[lo as usize + 1];
                        let Some(out) = self.table.next_hop(node, next.node) else {
                            self.stats.route_blocked_cycles += 1;
                            continue;
                        };
                        if let Some(ovc) = self.claim_out_vc(node, slabs, out.0 as usize) {
                            slabs.route[slot] = Some(OutRoute {
                                port: out.0 as u8,
                                vc: ovc,
                                eject: false,
                            });
                            self.note_reroute(node, next.node, out);
                        }
                        continue;
                    }
                    let eject_port = self
                        .local_port(node, first.slot)
                        .unwrap_or_else(|| panic!("endpoint {first} vanished"))
                        .0;
                    slabs.route[slot] = Some(OutRoute {
                        port: eject_port as u8,
                        vc: 0,
                        eject: true,
                    });
                } else {
                    let Some(out) = self.table.next_hop(node, first.node) else {
                        // Fault cut every path; wait for a repair.
                        self.stats.route_blocked_cycles += 1;
                        continue;
                    };
                    if !already_split {
                        // Branch-point scan: how far does the range
                        // share the first destination's next hop?
                        let mut k = lo + 1;
                        while k < hi {
                            let e = eps[k as usize];
                            if e.node == node || self.table.next_hop(node, e.node) != Some(out) {
                                break;
                            }
                            k += 1;
                        }
                        // Fork the divergent suffix when it is routable
                        // (or local) from here; otherwise — and when no
                        // replica VC is free — carry the whole range on
                        // and retry further along.
                        if k < hi {
                            let e = eps[k as usize];
                            if e.node == node || self.table.next_hop(node, e.node).is_some() {
                                let _ = self.fork_tree(node, slabs, slot, p, k, pkt.id);
                            }
                        }
                    }
                    if let Some(ovc) = self.claim_out_vc(node, slabs, out.0 as usize) {
                        slabs.route[slot] = Some(OutRoute {
                            port: out.0 as u8,
                            vc: ovc,
                            eject: false,
                        });
                        self.note_reroute(node, first.node, out);
                    }
                }
            }
        }
    }

    /// Places a tree fork on input VC `slot`: reserves a replica VC on
    /// a different input channel (hybrid's §3.1 machinery) that will
    /// receive the clone carrying destinations `resume ..`. Unlike
    /// hybrid, the replica head starts *unrouted* — it is routed (and
    /// possibly forked again) from this router on later cycles. Returns
    /// `false` when no replica VC is free.
    fn fork_tree(
        &mut self,
        node: NodeId,
        slabs: &mut NetSlabs<P>,
        slot: usize,
        primary_port: usize,
        resume: u32,
        pkt_id: PacketId,
    ) -> bool {
        match self.find_replica_vc(node, slabs, primary_port) {
            Some((rp, rv)) => {
                let ri = node.0 as usize;
                let rslot = slabs.vc_slot(ri, rp, rv);
                slabs.replica_role[rslot] = true;
                slabs.split[slot] = Some(Split {
                    port: rp as u8,
                    vc: rv as u8,
                    resume,
                });
                self.reserve_remote(node, rp, rv, true);
                self.stats.replications += 1;
                self.log(NetEvent::Replicate {
                    cycle: self.cycle,
                    packet: pkt_id,
                    node,
                });
                true
            }
            None => {
                self.stats.replication_blocked_cycles += 1;
                self.log(NetEvent::ReplicaBlocked {
                    cycle: self.cycle,
                    node,
                });
                false
            }
        }
    }

    /// Counts a route allocation that deviates from the fault-free
    /// table (the packet is detouring around a failed link).
    fn note_reroute(&mut self, node: NodeId, toward: NodeId, used: PortId) {
        if let Some(base) = &self.base_table {
            if base.next_hop(node, toward) != Some(used) {
                self.stats.packets_rerouted += 1;
            }
        }
    }

    /// Claims a free downstream VC on output port `o`; returns its index.
    fn claim_out_vc(&mut self, node: NodeId, slabs: &mut NetSlabs<P>, o: usize) -> Option<u8> {
        let link = self.topo.router(node).ports[o]
            .out_link
            .unwrap_or_else(|| panic!("output port {o} of {node} has no link"));
        let vcs = self.params.vcs_per_port as usize;
        let base = slabs.vc_slot(node.0 as usize, o, 0);
        for v in 0..vcs {
            let reserved = self.reserved[link.0 as usize * vcs + v];
            if !slabs.out_owner[base + v] && !reserved {
                slabs.out_owner[base + v] = true;
                return Some(v as u8);
            }
        }
        None
    }

    /// Finds a free VC in a *different, less-utilised* input physical
    /// channel for multicast replication.
    ///
    /// Reads the local router *and* its upstream neighbours from the
    /// split-borrowed `slabs`, so it stays correct while `self.slabs`
    /// is taken out during the router loop.
    fn find_replica_vc(
        &self,
        node: NodeId,
        slabs: &NetSlabs<P>,
        primary_port: usize,
    ) -> Option<(usize, usize)> {
        let ri = node.0 as usize;
        let mut best: Option<(u64, usize, usize)> = None;
        for p in 0..slabs.n_ports(ri) {
            let ps = slabs.port_slot(ri, p);
            if p == primary_port || slabs.is_local[ps] {
                continue;
            }
            let Some(in_link) = self.topo.router(node).ports[p].in_link else {
                continue;
            };
            // The upstream side must not have allocated the VC, and no
            // flits may still be on the wire toward it.
            let l = self.topo.link(in_link);
            let vcs = self.params.vcs_per_port as usize;
            let up_base = slabs.vc_slot(l.src.0 as usize, l.src_port.0 as usize, 0);
            for v in 0..slabs.vcs {
                if !slabs.vc_is_free(ps * vcs + v) {
                    continue;
                }
                if self.inflight[in_link.0 as usize * vcs + v] > 0 {
                    continue;
                }
                if slabs.out_owner[up_base + v] {
                    continue;
                }
                let util = slabs.util[ps];
                if best.is_none_or(|(bu, _, _)| util < bu) {
                    best = Some((util, p, v));
                }
                break; // one candidate VC per port is enough
            }
        }
        best.map(|(_, p, v)| (p, v))
    }

    /// Marks/unmarks a remote replica reservation so the upstream router
    /// cannot allocate the VC while it holds replica flits.
    fn reserve_remote(&mut self, node: NodeId, port: usize, vc: usize, on: bool) {
        if let Some(in_link) = self.topo.router(node).ports[port].in_link {
            let vcs = self.params.vcs_per_port as usize;
            let slot = in_link.0 as usize * vcs + vc;
            if self.reserved[slot] != on {
                self.reserved[slot] = on;
                // Invalidation breadcrumb for the two-phase commit: a
                // later router whose compute snapshot covered this slot
                // must recompute serially (`intent_invalidated`). The
                // set resets at the top of every `step`.
                if !self.res_dirty[slot] {
                    self.res_dirty[slot] = true;
                    self.res_dirty_list.push(slot as u32);
                }
            }
        }
    }

    /// Whether input VC (`p`, `v`) of router `ri` can send a flit this
    /// cycle; returns its allocated route so switch allocation can reuse
    /// the output port without re-reading the route slab.
    fn vc_sendable(&self, slabs: &NetSlabs<P>, ri: usize, p: usize, v: usize) -> Option<OutRoute> {
        let slot = slabs.vc_slot(ri, p, v);
        debug_assert_eq!(slabs.occ[slot] as usize, slabs.buf[slot].len());
        if slabs.occ[slot] == 0 {
            return None;
        }
        let route = slabs.route[slot]?;
        // Multicast primary also writes into the replica VC: need space.
        if let Some(s) = slabs.split[slot] {
            let rslot = slabs.vc_slot(ri, s.port as usize, s.vc as usize);
            if slabs.occ[rslot] >= u32::from(self.params.vc_depth) {
                return None;
            }
        }
        if route.eject
            || slabs.out_credits[slabs.vc_slot(ri, route.port as usize, route.vc as usize)] > 0
        {
            Some(route)
        } else {
            None
        }
    }

    /// End-of-step invariant audit (no-op unless the checker is on):
    /// recounts the wire from the event wheel, audits per-(link, VC)
    /// credit conservation and global flit conservation, runs the
    /// exactly-once delivery audit when the network is quiescent, and
    /// seals this cycle's findings with recent event-log history. Lives
    /// here rather than in [`crate::check`] because it reads the
    /// network's private state ([`EvKind`] included).
    fn audit_invariants(&mut self) {
        if self.checker.is_none() {
            return;
        }
        let mut c = self.checker.take().expect("checked above");
        let vcs = self.params.vcs_per_port as usize;
        c.begin_wire(self.topo.link_count() * vcs);
        for ev in self.events.iter() {
            match &ev.1 {
                EvKind::Arrive { link, vc, .. } => {
                    c.wire_flit(link.0 as usize * vcs + *vc as usize);
                }
                EvKind::Credit { link, vc } => {
                    c.wire_credit(link.0 as usize * vcs + *vc as usize);
                }
            }
        }
        for (li, l) in self.topo.links().iter().enumerate() {
            let up_base = self
                .slabs
                .vc_slot(l.src.0 as usize, l.src_port.0 as usize, 0);
            let down_base = self
                .slabs
                .vc_slot(l.dst.0 as usize, l.dst_port.0 as usize, 0);
            for v in 0..vcs {
                let slot = li * vcs + v;
                c.check_slot(
                    LinkId(li as u32),
                    v as u8,
                    slot,
                    self.slabs.out_credits[up_base + v],
                    self.slabs.buf[down_base + v].len() as u32,
                    self.slabs.replica_role[down_base + v],
                    self.inflight[slot],
                    self.params.vc_depth,
                );
            }
        }
        let buffered = self.slabs.buffered_flits_total();
        c.check_conservation(buffered, self.stats.flits_ejected);
        if self.pending.is_empty() && self.events.is_empty() {
            c.audit_quiescent();
        }
        c.seal(self.cycle, self.evlog.as_ref());
        self.checker = Some(c);
    }
}

/// Read-only snapshot handed to compute workers: immutable borrows
/// only. Everything the compute phase *writes* is per-router
/// (`intents`, `deferred`) or per-worker (`scratch`) and reached
/// through the raw pointers in [`ComputeJob`].
struct ComputeCtx<'a, P> {
    topo: &'a Topology,
    table: &'a RoutingTable,
    base: Option<&'a RoutingTable>,
    params: &'a RouterParams,
    reserved: &'a [bool],
    slabs: &'a NetSlabs<P>,
}

impl<P> ComputeCtx<'_, P> {
    /// Serial-equivalent decision pass for one router, recorded into
    /// `intent`. Returns `true` when the router must defer to the
    /// serial commit pass (a multicast head needs the live replica-VC
    /// search and reservation); the intent is then meaningless.
    ///
    /// Mirrors [`Network::allocate_routes`] plus the two switch
    /// allocation phases of [`Network::process_router`], decision for
    /// decision — any change to one must be mirrored in the other.
    fn compute_router(
        &self,
        idx: u32,
        intent: &mut RouterIntent,
        scratch: &mut ComputeScratch,
    ) -> bool {
        intent.clear();
        let node = NodeId(idx);
        let s = self.slabs;
        let ri = idx as usize;

        // Routing + VC allocation, as intents.
        for p in 0..s.n_ports(ri) {
            for v in 0..s.vcs {
                let slot = s.vc_slot(ri, p, v);
                if s.occ[slot] == 0 || s.route[slot].is_some() {
                    continue;
                }
                let front = s.buf[slot].front().expect("occupied VC has a front");
                assert!(
                    front.is_head(),
                    "non-head flit at front of unrouted VC: packet {:?} seq {}",
                    front.pkt.id,
                    front.seq
                );
                if matches!(self.params.strategy, MulticastStrategy::Tree)
                    && front.dest_hi - front.dest_idx >= 2
                {
                    // A tree worm with a multi-destination range may
                    // fork at any router, which needs the live
                    // replica-VC search: defer. (Conservative — the
                    // range may turn out not to branch here — but
                    // deferral is bit-identical by construction.)
                    return true;
                }
                let target = front.target();
                let next_target = if front.has_more_targets() {
                    Some(front.pkt.dest.endpoints()[front.dest_idx as usize + 1])
                } else {
                    None
                };
                if target.node == node {
                    if let Some(next) = next_target {
                        match self.params.strategy {
                            MulticastStrategy::Hybrid => {
                                if s.split[slot].is_none() {
                                    // Multicast split this cycle: defer.
                                    return true;
                                }
                                // Split already placed; the primary
                                // continues toward the next endpoint.
                            }
                            // Path multicast needs no replication state:
                            // the worm just routes onward (the passing
                            // copy peels off at traversal time).
                            MulticastStrategy::Path => {}
                            MulticastStrategy::Tree => {
                                unreachable!("tree multicast heads defer above")
                            }
                        }
                        let Some(out) = self.table.next_hop(node, next.node) else {
                            intent.route_blocked += 1;
                            continue;
                        };
                        if let Some(ovc) = self.claim_out_vc(node, out.0 as usize, intent) {
                            intent.routes.push(RouteIntent {
                                port: p as u8,
                                vc: v as u8,
                                route: OutRoute {
                                    port: out.0 as u8,
                                    vc: ovc,
                                    eject: false,
                                },
                                rerouted: self.is_reroute(node, next.node, out),
                            });
                        }
                    } else {
                        let eject_port = self
                            .topo
                            .router(node)
                            .port_by_label(PortLabel::Local(target.slot))
                            .unwrap_or_else(|| panic!("endpoint {target} vanished"))
                            .0;
                        intent.routes.push(RouteIntent {
                            port: p as u8,
                            vc: v as u8,
                            route: OutRoute {
                                port: eject_port as u8,
                                vc: 0,
                                eject: true,
                            },
                            rerouted: false,
                        });
                    }
                } else {
                    let Some(out) = self.table.next_hop(node, target.node) else {
                        intent.route_blocked += 1;
                        continue;
                    };
                    if let Some(ovc) = self.claim_out_vc(node, out.0 as usize, intent) {
                        intent.routes.push(RouteIntent {
                            port: p as u8,
                            vc: v as u8,
                            route: OutRoute {
                                port: out.0 as u8,
                                vc: ovc,
                                eject: false,
                            },
                            rerouted: self.is_reroute(node, target.node, out),
                        });
                    }
                }
            }
        }

        // Phase A: each input port nominates one sendable VC.
        let n_ports = s.n_ports(ri);
        let n_vcs = s.vcs as u8;
        scratch.nominee[..n_ports].fill(None);
        for p in 0..n_ports {
            let start = s.rr_in[s.port_slot(ri, p)];
            for k in 0..n_vcs {
                let v = (start + k) % n_vcs;
                if self.vc_sendable(ri, p, v as usize, intent) {
                    scratch.nominee[p] = Some(v);
                    break;
                }
            }
        }

        // Phase B: each output port grants one nominating input port.
        for o in 0..n_ports {
            scratch.requesting.clear();
            for p in 0..n_ports {
                let Some(v) = scratch.nominee[p] else {
                    continue;
                };
                let routed_here = self
                    .effective_route(ri, p, v as usize, intent)
                    .is_some_and(|rt| rt.port as usize == o);
                if routed_here {
                    scratch.requesting.push(p as u8);
                }
            }
            if scratch.requesting.is_empty() {
                continue;
            }
            let start = s.out_rr[s.port_slot(ri, o)];
            let pick = scratch
                .requesting
                .iter()
                .copied()
                .find(|&p| p >= start)
                .unwrap_or(scratch.requesting[0]);
            intent
                .rr_out
                .push((o as u8, pick.wrapping_add(1) % n_ports.max(1) as u8));
            let v = scratch.nominee[pick as usize].expect("requesting port has nominee");
            intent.winners.push((pick, v));
            // Predict the replica-reservation release this winner will
            // perform: a replica VC whose front flit is the tail frees
            // its input link's reservation when committed. Exact, not
            // conservative — the winner applies unconditionally, and
            // both `replica_role` and the buffer front are own-router
            // state that only this router's turn mutates.
            let wslot = s.vc_slot(ri, pick as usize, v as usize);
            if s.replica_role[wslot] && s.buf[wslot].front().is_some_and(|f| f.is_tail()) {
                if let Some(in_link) = self.topo.router(node).ports[pick as usize].in_link {
                    intent
                        .releases
                        .push(in_link.0 * u32::from(self.params.vcs_per_port) + u32::from(v));
                }
            }
        }
        false
    }

    /// The route VC (`p`, `v`) of router `ri` will hold once this
    /// router's intent commits: the live route, or the one recorded
    /// this cycle.
    fn effective_route(
        &self,
        ri: usize,
        p: usize,
        v: usize,
        intent: &RouterIntent,
    ) -> Option<OutRoute> {
        if let Some(rt) = self.slabs.route[self.slabs.vc_slot(ri, p, v)] {
            return Some(rt);
        }
        intent
            .routes
            .iter()
            .find(|x| x.port as usize == p && x.vc as usize == v)
            .map(|x| x.route)
    }

    /// Intent-aware mirror of [`Network::vc_sendable`].
    fn vc_sendable(&self, ri: usize, p: usize, v: usize, intent: &RouterIntent) -> bool {
        let s = self.slabs;
        let slot = s.vc_slot(ri, p, v);
        if s.occ[slot] == 0 {
            return false;
        }
        let Some(route) = self.effective_route(ri, p, v, intent) else {
            return false;
        };
        if let Some(sp) = s.split[slot] {
            let rslot = s.vc_slot(ri, sp.port as usize, sp.vc as usize);
            if s.occ[rslot] >= u32::from(self.params.vc_depth) {
                return false;
            }
        }
        if route.eject {
            true
        } else {
            s.out_credits[s.vc_slot(ri, route.port as usize, route.vc as usize)] > 0
        }
    }

    /// Intent-aware mirror of [`Network::claim_out_vc`]: also skips VCs
    /// this intent already claimed, reproducing the serial kernel's
    /// first-free scan over in-cycle allocations.
    fn claim_out_vc(&self, node: NodeId, o: usize, intent: &RouterIntent) -> Option<u8> {
        let link = self.topo.router(node).ports[o]
            .out_link
            .unwrap_or_else(|| panic!("output port {o} of {node} has no link"));
        let vcs = self.params.vcs_per_port as usize;
        let base = self.slabs.vc_slot(node.0 as usize, o, 0);
        for v in 0..vcs {
            if self.reserved[link.0 as usize * vcs + v] || self.slabs.out_owner[base + v] {
                continue;
            }
            let claimed = intent
                .routes
                .iter()
                .any(|x| !x.route.eject && x.route.port as usize == o && x.route.vc as usize == v);
            if !claimed {
                return Some(v as u8);
            }
        }
        None
    }

    /// Mirror of [`Network::note_reroute`], returning the verdict
    /// instead of bumping the counter.
    fn is_reroute(&self, node: NodeId, toward: NodeId, used: PortId) -> bool {
        self.base
            .is_some_and(|b| b.next_hop(node, toward) != Some(used))
    }
}

/// One cycle's compute-phase job, shared by every pool worker.
struct ComputeJob<'a, P> {
    ctx: ComputeCtx<'a, P>,
    work: &'a [u32],
    intents: *mut RouterIntent,
    deferred: *mut bool,
    scratch: *mut ComputeScratch,
    /// Next unclaimed worklist position (handed out in chunks).
    next: AtomicUsize,
}

/// Worklist items claimed per `next` bump — amortizes the shared
/// counter without hurting balance (per-router work is fine-grained).
const COMPUTE_CHUNK: usize = 8;

/// Type-erased pool entry point; see the SAFETY note at the call site
/// in [`Network::step_two_phase`].
unsafe fn compute_shim<P>(data: *const (), worker: usize) {
    // SAFETY: `data` points at the caller's `ComputeJob`, which
    // `SimPool::run` keeps alive until every worker finished.
    let job = unsafe { &*data.cast::<ComputeJob<'_, P>>() };
    // SAFETY: each worker dereferences only its own scratch slot.
    let scratch = unsafe { &mut *job.scratch.add(worker) };
    loop {
        let base = job.next.fetch_add(COMPUTE_CHUNK, Ordering::Relaxed);
        if base >= job.work.len() {
            return;
        }
        let end = (base + COMPUTE_CHUNK).min(job.work.len());
        for &idx in &job.work[base..end] {
            // SAFETY: worklist entries are unique router ids, so each
            // intent/deferred slot is written by exactly one worker.
            let intent = unsafe { &mut *job.intents.add(idx as usize) };
            let deferred = unsafe { &mut *job.deferred.add(idx as usize) };
            *deferred = job.ctx.compute_router(idx, intent, scratch);
        }
    }
}

impl<P: std::fmt::Debug> std::fmt::Debug for Network<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("cycle", &self.cycle)
            .field("routers", &self.slabs.n_routers())
            .field("pending", &self.pending.len())
            .field("events", &self.events.len())
            .field("delivered", &self.delivered.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{flits_for_bytes, Dest};
    use crate::routing::RoutingSpec;

    fn unit(n: u16) -> Vec<u32> {
        vec![1; n as usize]
    }

    fn mesh_net(cols: u16, rows: u16) -> Network<u32> {
        let topo = Topology::mesh(cols, rows, &unit(cols - 1), &unit(rows - 1));
        let table = RoutingSpec::Xy.build(&topo).unwrap();
        Network::new(topo, table, RouterParams::default())
    }

    fn run_until_idle<P>(net: &mut Network<P>, max: u64) {
        let mut steps = 0;
        while net.is_busy() || net.next_event_cycle().is_some() {
            net.advance().expect("network reported a simulation error");
            steps += 1;
            assert!(steps < max, "network did not go idle in {max} steps");
        }
    }

    #[test]
    fn single_flit_unicast_latency_is_hops_plus_one() {
        let mut net = mesh_net(4, 4);
        let src = Endpoint::at(net.topology().node_at(0, 0));
        let dst = Endpoint::at(net.topology().node_at(3, 0));
        net.inject(Packet::new(src, Dest::unicast(dst), 1, 7u32));
        run_until_idle(&mut net, 100);
        let got = net.drain_delivered(dst.node);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].packet.payload, 7);
        // 3 link hops (1 cycle each) + ejection cycle + initial cycle.
        assert!(got[0].cycle <= 6, "latency {} too high", got[0].cycle);
    }

    #[test]
    fn five_flit_packet_delivers_once() {
        let mut net = mesh_net(4, 4);
        let src = Endpoint::at(net.topology().node_at(1, 1));
        let dst = Endpoint::at(net.topology().node_at(2, 3));
        net.inject(Packet::new(
            src,
            Dest::unicast(dst),
            flits_for_bytes(64),
            9u32,
        ));
        run_until_idle(&mut net, 200);
        let got = net.drain_delivered(dst.node);
        assert_eq!(got.len(), 1);
        assert_eq!(net.stats().packets_delivered, 1);
        assert_eq!(net.stats().flits_ejected, 5);
    }

    #[test]
    fn delivery_to_second_local_slot() {
        let topo = {
            let mut t = Topology::mesh(2, 2, &[1], &[1]);
            t.add_local_slot(t.node_at(1, 0));
            t
        };
        let table = RoutingSpec::Xy.build(&topo).unwrap();
        let mut net: Network<()> = Network::new(topo, table, RouterParams::default());
        let dst = Endpoint {
            node: net.topology().node_at(1, 0),
            slot: 1,
        };
        let src = Endpoint::at(net.topology().node_at(0, 1));
        net.inject(Packet::new(src, Dest::unicast(dst), 1, ()));
        run_until_idle(&mut net, 100);
        let got = net.drain_all_delivered();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].endpoint, dst);
    }

    #[test]
    fn multicast_down_a_column_delivers_to_every_bank() {
        let mut net = mesh_net(4, 4);
        let col = 2u16;
        let src = Endpoint::at(net.topology().node_at(0, 0));
        let path: Vec<Endpoint> = (0..4)
            .map(|r| Endpoint::at(net.topology().node_at(col, r)))
            .collect();
        net.inject(Packet::new(src, Dest::multicast(path.clone()), 1, 1u32));
        run_until_idle(&mut net, 200);
        let got = net.drain_all_delivered();
        assert_eq!(got.len(), 4, "one delivery per bank");
        let mut nodes: Vec<NodeId> = got.iter().map(|d| d.endpoint.node).collect();
        nodes.sort();
        let mut want: Vec<NodeId> = path.iter().map(|e| e.node).collect();
        want.sort();
        assert_eq!(nodes, want);
        assert_eq!(net.stats().replications, 3, "three splits along the column");
    }

    #[test]
    fn multicast_deliveries_are_pipelined() {
        // Bank k should receive the request roughly k cycles after bank 0,
        // not after the full packet finished elsewhere.
        let mut net = mesh_net(2, 8);
        let src = Endpoint::at(net.topology().node_at(0, 0));
        let path: Vec<Endpoint> = (0..8)
            .map(|r| Endpoint::at(net.topology().node_at(1, r)))
            .collect();
        net.inject(Packet::new(src, Dest::multicast(path), 1, 0u32));
        run_until_idle(&mut net, 300);
        let got = net.drain_all_delivered();
        assert_eq!(got.len(), 8);
        let mut by_row: Vec<(u16, u64)> = got
            .iter()
            .map(|d| {
                (
                    net.topology().coord_of(d.endpoint.node).unwrap().row,
                    d.cycle,
                )
            })
            .collect();
        by_row.sort();
        for w in by_row.windows(2) {
            assert!(w[1].1 >= w[0].1, "farther banks cannot hear earlier");
            assert!(w[1].1 - w[0].1 <= 4, "pipelining broken: {by_row:?}");
        }
        let spread = by_row[7].1 - by_row[0].1;
        assert!(
            spread <= 16,
            "multicast should be pipelined, spread {spread}"
        );
    }

    #[test]
    fn multicast_five_flit_packet() {
        let mut net = mesh_net(2, 4);
        let src = Endpoint::at(net.topology().node_at(0, 0));
        let path: Vec<Endpoint> = (0..4)
            .map(|r| Endpoint::at(net.topology().node_at(1, r)))
            .collect();
        net.inject(Packet::new(src, Dest::multicast(path), 5, 0u32));
        run_until_idle(&mut net, 500);
        let got = net.drain_all_delivered();
        assert_eq!(got.len(), 4);
        assert_eq!(net.stats().flits_ejected, 20);
    }

    #[test]
    fn many_packets_same_destination_all_arrive() {
        let mut net = mesh_net(4, 4);
        let dst = Endpoint::at(net.topology().node_at(3, 3));
        for i in 0..20 {
            let src = Endpoint::at(net.topology().node_at(i % 4, 0));
            net.inject(Packet::new(src, Dest::unicast(dst), 3, i as u32));
        }
        run_until_idle(&mut net, 2_000);
        let got = net.drain_delivered(dst.node);
        assert_eq!(got.len(), 20);
        let mut payloads: Vec<u32> = got.iter().map(|d| d.packet.payload).collect();
        payloads.sort();
        assert_eq!(payloads, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn wormhole_packets_do_not_interleave_within_a_vc() {
        // Two 5-flit packets from the same source to the same dest must
        // each arrive exactly once (tails seen once each).
        let mut net = mesh_net(3, 1);
        let src = Endpoint::at(net.topology().node_at(0, 0));
        let dst = Endpoint::at(net.topology().node_at(2, 0));
        net.inject(Packet::new(src, Dest::unicast(dst), 5, 1u32));
        net.inject(Packet::new(src, Dest::unicast(dst), 5, 2u32));
        run_until_idle(&mut net, 500);
        let got = net.drain_delivered(dst.node);
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn link_stats_count_traversals() {
        let mut net = mesh_net(2, 1);
        let src = Endpoint::at(net.topology().node_at(0, 0));
        let dst = Endpoint::at(net.topology().node_at(1, 0));
        net.inject(Packet::new(src, Dest::unicast(dst), 4, 0u32));
        run_until_idle(&mut net, 100);
        let total: u64 = net.stats().flits_per_link.iter().sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn slow_links_add_latency() {
        let topo = Topology::mesh(2, 1, &[5], &[]);
        let table = RoutingSpec::Xy.build(&topo).unwrap();
        let mut net: Network<()> = Network::new(topo, table, RouterParams::default());
        let src = Endpoint::at(net.topology().node_at(0, 0));
        let dst = Endpoint::at(net.topology().node_at(1, 0));
        net.inject(Packet::new(src, Dest::unicast(dst), 1, ()));
        run_until_idle(&mut net, 100);
        let got = net.drain_delivered(dst.node);
        assert!(
            got[0].cycle >= 6,
            "5-cycle link must delay delivery, got {}",
            got[0].cycle
        );
    }

    #[test]
    fn pipelined_router_is_slower() {
        let lat = |params: RouterParams| {
            let topo = Topology::mesh(8, 1, &[1; 7], &[]);
            let table = RoutingSpec::Xy.build(&topo).unwrap();
            let mut net: Network<()> = Network::new(topo, table, params);
            let src = Endpoint::at(net.topology().node_at(0, 0));
            let dst = Endpoint::at(net.topology().node_at(7, 0));
            net.inject(Packet::new(src, Dest::unicast(dst), 1, ()));
            run_until_idle(&mut net, 500);
            net.drain_delivered(dst.node)[0].cycle
        };
        let single = lat(RouterParams::hpca07());
        let four_stage = lat(RouterParams::pipelined(4));
        assert!(
            four_stage >= single + 3 * 6,
            "4-stage router should add ~3 cycles/hop: {single} vs {four_stage}"
        );
    }

    #[test]
    fn skip_to_fast_forwards_idle_network() {
        let mut net = mesh_net(2, 2);
        assert!(!net.is_busy());
        net.skip_to(500);
        assert_eq!(net.cycle(), 500);
        // Still functional afterwards.
        let src = Endpoint::at(net.topology().node_at(0, 0));
        let dst = Endpoint::at(net.topology().node_at(1, 1));
        net.inject(Packet::new(src, Dest::unicast(dst), 1, 0u32));
        run_until_idle(&mut net, 100);
        assert_eq!(net.drain_delivered(dst.node).len(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot skip while routers have work")]
    fn skip_while_busy_panics() {
        let mut net = mesh_net(2, 2);
        let src = Endpoint::at(net.topology().node_at(0, 0));
        let dst = Endpoint::at(net.topology().node_at(1, 1));
        net.inject(Packet::new(src, Dest::unicast(dst), 1, 0u32));
        net.skip_to(100);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn inject_to_missing_endpoint_panics() {
        let mut net = mesh_net(2, 2);
        let src = Endpoint::at(net.topology().node_at(0, 0));
        let dst = Endpoint {
            node: net.topology().node_at(1, 1),
            slot: 3,
        };
        net.inject(Packet::new(src, Dest::unicast(dst), 1, 0u32));
    }

    #[test]
    fn halo_multicast_down_spike() {
        let topo = Topology::halo(4, 4, &[1; 4], 2);
        let table = RoutingSpec::ShortestPath.build(&topo).unwrap();
        let mut net: Network<u32> = Network::new(topo, table, RouterParams::default());
        let hub_core = Endpoint {
            node: NodeId(0),
            slot: 1,
        };
        let path: Vec<Endpoint> = (0..4)
            .map(|p| Endpoint::at(net.topology().spike_node(2, p)))
            .collect();
        net.inject(Packet::new(hub_core, Dest::multicast(path), 1, 0u32));
        run_until_idle(&mut net, 300);
        assert_eq!(net.drain_all_delivered().len(), 4);
    }

    #[test]
    fn injection_latency_counts_from_inject_cycle() {
        let mut net = mesh_net(2, 1);
        net.skip_to(100);
        let src = Endpoint::at(net.topology().node_at(0, 0));
        let dst = Endpoint::at(net.topology().node_at(1, 0));
        net.inject(Packet::new(src, Dest::unicast(dst), 1, 0u32));
        run_until_idle(&mut net, 100);
        let s = net.stats();
        assert!(
            s.total_packet_latency < 10,
            "latency {}",
            s.total_packet_latency
        );
    }

    #[test]
    fn event_log_records_packet_lifecycle() {
        let mut net = mesh_net(2, 4);
        net.enable_event_log(64);
        let src = Endpoint::at(net.topology().node_at(0, 0));
        let path: Vec<Endpoint> = (0..4)
            .map(|r| Endpoint::at(net.topology().node_at(1, r)))
            .collect();
        let id = net.inject(Packet::new(src, Dest::multicast(path), 1, 0u32));
        run_until_idle(&mut net, 300);
        let log = net.take_event_log().expect("log was enabled");
        let evs = log.for_packet(id);
        // One inject, three replications, four deliveries.
        assert_eq!(
            evs.iter()
                .filter(|e| matches!(e, crate::evlog::NetEvent::Inject { .. }))
                .count(),
            1
        );
        assert_eq!(
            evs.iter()
                .filter(|e| matches!(e, crate::evlog::NetEvent::Replicate { .. }))
                .count(),
            3
        );
        assert_eq!(
            evs.iter()
                .filter(|e| matches!(e, crate::evlog::NetEvent::Deliver { .. }))
                .count(),
            4
        );
        // Cycles are monotone.
        for w in evs.windows(2) {
            assert!(w[0].cycle() <= w[1].cycle());
        }
    }

    #[test]
    fn credit_backpressure_bounds_buffer_occupancy() {
        // Flood one link: downstream buffers must never exceed the VC
        // depth (the credit protocol's invariant, asserted in
        // deliver_events and visible in the peak statistic).
        let mut net = mesh_net(2, 1);
        let src = Endpoint::at(net.topology().node_at(0, 0));
        let dst = Endpoint::at(net.topology().node_at(1, 0));
        for i in 0..30 {
            net.inject(Packet::new(src, Dest::unicast(dst), 5, i));
        }
        run_until_idle(&mut net, 5_000);
        assert_eq!(net.stats().packets_delivered, 30);
        assert!(
            net.stats().peak_vc_occupancy <= net.params().vc_depth,
            "peak {} exceeds depth {}",
            net.stats().peak_vc_occupancy,
            net.params().vc_depth
        );
    }

    #[test]
    fn round_robin_arbitration_is_fair_under_contention() {
        // Two sources hammer one destination; neither may be starved.
        let mut net = mesh_net(3, 1);
        let a = Endpoint::at(net.topology().node_at(0, 0));
        let b = Endpoint::at(net.topology().node_at(2, 0));
        let dst = Endpoint::at(net.topology().node_at(1, 0));
        for i in 0..40u32 {
            net.inject(Packet::new(a, Dest::unicast(dst), 1, i));
            net.inject(Packet::new(b, Dest::unicast(dst), 1, 1000 + i));
        }
        run_until_idle(&mut net, 20_000);
        let got = net.drain_delivered(dst.node);
        assert_eq!(got.len(), 80);
        // Interleaving: within the first half of deliveries, both
        // sources appear substantially.
        let first_half = &got[..40];
        let from_a = first_half
            .iter()
            .filter(|d| d.packet.payload < 1000)
            .count();
        assert!(
            (10..=30).contains(&from_a),
            "arbitration starved one source: {from_a}/40 from A"
        );
    }

    #[test]
    fn latency_histogram_populates_through_delivery() {
        let mut net = mesh_net(4, 4);
        let src = Endpoint::at(net.topology().node_at(0, 0));
        let dst = Endpoint::at(net.topology().node_at(3, 3));
        for i in 0..5 {
            net.inject(Packet::new(src, Dest::unicast(dst), 1, i));
        }
        run_until_idle(&mut net, 2_000);
        let total: u64 = net.stats().latency_buckets.iter().sum();
        assert_eq!(total, 5);
        assert!(net.stats().latency_quantile(1.0).is_some());
    }

    #[test]
    fn shortest_path_traffic_reroutes_around_failed_link() {
        let topo = Topology::mesh(4, 4, &unit(3), &unit(3));
        let table = RoutingSpec::ShortestPath.build(&topo).unwrap();
        let mut net: Network<u32> = Network::new(topo, table, RouterParams::default());
        let src = Endpoint::at(net.topology().node_at(0, 0));
        let dst = Endpoint::at(net.topology().node_at(3, 0));
        let cut = net
            .routing()
            .path(net.topology(), src.node, dst.node)
            .unwrap()[1];
        net.set_fault_schedule(FaultSchedule::permanent(cut, 1));
        net.inject(Packet::new(src, Dest::unicast(dst), 1, 7u32));
        run_until_idle(&mut net, 200);
        let got = net.drain_delivered(dst.node);
        assert_eq!(got.len(), 1, "the packet must arrive over a detour");
        let s = net.stats();
        assert_eq!(s.flits_per_link[cut.0 as usize], 0, "failed link unused");
        assert!(s.packets_rerouted >= 1, "detour must be counted");
        assert_eq!(s.link_down_events, 1);
        assert_eq!(s.faults_active(), 1);
        assert!(!net.link_is_up(cut));
    }

    #[test]
    fn permanent_fault_surfaces_as_watchdog_error() {
        // XY has a single path per pair: cutting it strands the head, and
        // a tiny watchdog turns that into a structured error, not a panic.
        let topo = Topology::mesh(4, 1, &unit(3), &[]);
        let table = RoutingSpec::Xy.build(&topo).unwrap();
        let params = RouterParams {
            watchdog_cycles: 200,
            ..RouterParams::hpca07()
        };
        let mut net: Network<u32> = Network::new(topo, table, params);
        let src = Endpoint::at(net.topology().node_at(0, 0));
        let dst = Endpoint::at(net.topology().node_at(3, 0));
        let cut = net
            .routing()
            .path(net.topology(), src.node, dst.node)
            .unwrap()[0];
        net.set_fault_schedule(FaultSchedule::permanent(cut, 1));
        net.inject(Packet::new(src, Dest::unicast(dst), 1, 0u32));
        let err = loop {
            match net.step() {
                Ok(()) => assert!(net.cycle() < 10_000, "watchdog never fired"),
                Err(e) => break e,
            }
        };
        match err {
            SimError::Watchdog {
                faults_active,
                blocked_heads,
                buffered_flits,
                ..
            } => {
                assert_eq!(faults_active, 1);
                assert!(blocked_heads >= 1, "the stuck head must be visible");
                assert!(buffered_flits >= 1);
            }
            other => panic!("expected a watchdog error, got {other:?}"),
        }
        assert!(net.stats().route_blocked_cycles > 0);
    }

    #[test]
    fn transient_fault_heals_and_traffic_completes() {
        let topo = Topology::mesh(4, 1, &unit(3), &[]);
        let table = RoutingSpec::Xy.build(&topo).unwrap();
        let mut net: Network<u32> = Network::new(topo, table, RouterParams::default());
        let src = Endpoint::at(net.topology().node_at(0, 0));
        let dst = Endpoint::at(net.topology().node_at(3, 0));
        let cut = net
            .routing()
            .path(net.topology(), src.node, dst.node)
            .unwrap()[0];
        net.set_fault_schedule(FaultSchedule::transient(cut, 1, 60));
        net.inject(Packet::new(src, Dest::unicast(dst), 1, 0u32));
        run_until_idle(&mut net, 500);
        let got = net.drain_delivered(dst.node);
        assert_eq!(got.len(), 1, "delivery resumes after the repair");
        assert!(got[0].cycle >= 60, "cannot arrive before the link is back");
        let s = net.stats();
        assert_eq!(s.link_down_events, 1);
        assert_eq!(s.link_up_events, 1);
        assert_eq!(s.faults_active(), 0);
        assert!(s.route_blocked_cycles > 0, "the head waited for the repair");
        assert_eq!(s.packets_rerouted, 0, "XY offers no detour, only waiting");
    }

    #[test]
    fn fault_events_while_idle_apply_before_later_traffic() {
        let topo = Topology::mesh(4, 4, &unit(3), &unit(3));
        let table = RoutingSpec::ShortestPath.build(&topo).unwrap();
        let mut net: Network<u32> = Network::new(topo, table, RouterParams::default());
        let src = Endpoint::at(net.topology().node_at(0, 0));
        let dst = Endpoint::at(net.topology().node_at(3, 0));
        let cut = net
            .routing()
            .path(net.topology(), src.node, dst.node)
            .unwrap()[0];
        net.set_fault_schedule(FaultSchedule::permanent(cut, 10));
        net.skip_to(100);
        net.inject(Packet::new(src, Dest::unicast(dst), 1, 0u32));
        run_until_idle(&mut net, 200);
        assert_eq!(net.drain_delivered(dst.node).len(), 1);
        assert_eq!(net.stats().flits_per_link[cut.0 as usize], 0);
    }

    #[test]
    fn heavy_random_traffic_drains() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut net = mesh_net(6, 6);
        let n = 36u32;
        let mut expected = 0;
        for _ in 0..300 {
            let a = rng.gen_range(0..n);
            let mut b = rng.gen_range(0..n);
            if a == b {
                b = (b + 1) % n;
            }
            let flits = if rng.gen_bool(0.5) { 1 } else { 5 };
            net.inject(Packet::new(
                Endpoint::at(NodeId(a)),
                Dest::unicast(Endpoint::at(NodeId(b))),
                flits,
                a,
            ));
            expected += 1;
        }
        run_until_idle(&mut net, 50_000);
        assert_eq!(net.stats().packets_delivered, expected);
    }

    /// Drives a mixed unicast/multicast load (seeded) on an 8×8 mesh
    /// with the given thread count and returns the full delivered
    /// sequence plus final stats.
    fn threaded_run(threads: u32) -> (Vec<(PacketId, Endpoint, u64)>, NetStats) {
        use rand::{Rng, SeedableRng};
        let topo = Topology::mesh(8, 8, &[1; 7], &[1; 7]);
        let table = RoutingSpec::Xy.build(&topo).unwrap();
        let params = RouterParams {
            sim_threads: threads,
            ..RouterParams::hpca07()
        };
        let mut net: Network<u32> = Network::new(topo, table, params);
        net.enable_invariant_checker();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for i in 0..400u32 {
            let src = Endpoint::at(net.topology().node_at(rng.gen_range(0..8), 0));
            if rng.gen_bool(0.3) {
                let col = rng.gen_range(0..8);
                let path: Vec<Endpoint> = (0..8)
                    .map(|r| Endpoint::at(net.topology().node_at(col, r)))
                    .collect();
                net.inject(Packet::new(src, Dest::multicast(path), 1, i));
            } else {
                let dst = Endpoint::at(
                    net.topology()
                        .node_at(rng.gen_range(0..8), rng.gen_range(1..8)),
                );
                net.inject(Packet::new(src, Dest::unicast(dst), 5, i));
            }
        }
        run_until_idle(&mut net, 100_000);
        let seq = net
            .drain_all_delivered()
            .iter()
            .map(|d| (d.packet.id, d.endpoint, d.cycle))
            .collect();
        (seq, net.stats().clone())
    }

    #[test]
    fn two_phase_kernel_is_bit_identical_to_serial() {
        let (serial_seq, serial_stats) = threaded_run(1);
        for threads in [2u32, 4] {
            let (seq, stats) = threaded_run(threads);
            assert_eq!(seq, serial_seq, "{threads} threads: delivery order");
            assert_eq!(stats, serial_stats, "{threads} threads: stats");
        }
    }

    #[test]
    fn two_phase_kernel_actually_shards() {
        use rand::{Rng, SeedableRng};
        let topo = Topology::mesh(8, 8, &[1; 7], &[1; 7]);
        let table = RoutingSpec::Xy.build(&topo).unwrap();
        let params = RouterParams {
            sim_threads: 4,
            ..RouterParams::hpca07()
        };
        let mut net: Network<u32> = Network::new(topo, table, params);
        assert_eq!(net.sim_threads(), 4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for i in 0..300u32 {
            let src = Endpoint::at(NodeId(rng.gen_range(0..64)));
            let mut d = rng.gen_range(0..64);
            if d == src.node.0 {
                d = (d + 1) % 64;
            }
            net.inject(Packet::new(
                src,
                Dest::unicast(Endpoint::at(NodeId(d))),
                3,
                i,
            ));
        }
        run_until_idle(&mut net, 100_000);
        let phase = net.phase_stats();
        assert!(
            phase.parallel_cycles > 0,
            "a saturated 64-router mesh must shard some cycles"
        );
    }

    #[test]
    fn drain_delivered_moves_and_preserves_order_both_sides() {
        let mut net = mesh_net(4, 1);
        let a = Endpoint::at(net.topology().node_at(2, 0));
        let b = Endpoint::at(net.topology().node_at(3, 0));
        let src = Endpoint::at(net.topology().node_at(0, 0));
        for i in 0..6u32 {
            let dst = if i % 2 == 0 { a } else { b };
            net.inject(Packet::new(src, Dest::unicast(dst), 1, i));
        }
        run_until_idle(&mut net, 2_000);
        let mut to_a = Vec::new();
        net.drain_delivered_into(a.node, &mut to_a);
        assert_eq!(to_a.len(), 3);
        assert!(to_a.windows(2).all(|w| w[0].cycle <= w[1].cycle));
        // Each delivery's Arc is now uniquely held by the drained buffer
        // (plus nothing else): the drain moved, it did not clone.
        for d in &to_a {
            assert_eq!(Arc::strong_count(&d.packet), 1, "delivery was cloned");
        }
        // The remaining deque kept b's deliveries in order; a second
        // drain into the same buffer appends.
        net.drain_delivered_into(b.node, &mut to_a);
        assert_eq!(to_a.len(), 6);
        assert!(net.drain_all_delivered().is_empty());
    }
}
