//! Deterministic link-fault injection.
//!
//! A [`FaultSchedule`] is a sorted list of link down/up events at fixed
//! cycles. The [`crate::Network`] applies due events at the start of each
//! stepped cycle and rebuilds its routing table over the surviving links
//! (`LinkId`s are preserved, so per-link statistics stay comparable).
//!
//! Schedules are plain data: they can be written out explicitly for
//! targeted tests, or generated from a seed with [`FaultSchedule::random`]
//! so that a sweep point's faults derive from the point's own RNG stream
//! and results stay bit-identical regardless of worker count.
//!
//! The fault model is *fail-stop with draining*: flits already on a wire
//! or mid-packet over a failed link complete (wormhole streams cannot be
//! cut without corrupting flow control), but no new packet may allocate
//! the link. Heads with no remaining route wait in place for a repair —
//! or for the watchdog, which surfaces a permanent partition as a
//! structured [`crate::SimError::Watchdog`].

use crate::ids::LinkId;

/// One scheduled link state change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Cycle at which the change applies (start of that cycle).
    pub cycle: u64,
    /// The affected link.
    pub link: LinkId,
    /// `true` = link repaired, `false` = link failed.
    pub up: bool,
}

/// A deterministic, cycle-ordered schedule of link faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// Builds a schedule from arbitrary events; they are sorted by
    /// `(cycle, link, up)` so iteration order is deterministic.
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| (e.cycle, e.link.0, e.up));
        FaultSchedule { events }
    }

    /// A single link that fails at `cycle` and never recovers.
    pub fn permanent(link: LinkId, cycle: u64) -> Self {
        FaultSchedule::new(vec![FaultEvent {
            cycle,
            link,
            up: false,
        }])
    }

    /// A single link that fails at `down` and recovers at `up`.
    ///
    /// # Panics
    ///
    /// Panics unless `up > down`.
    pub fn transient(link: LinkId, down: u64, up: u64) -> Self {
        assert!(up > down, "repair must come after the fault");
        FaultSchedule::new(vec![
            FaultEvent {
                cycle: down,
                link,
                up: false,
            },
            FaultEvent {
                cycle: up,
                link,
                up: true,
            },
        ])
    }

    /// Generates `faults` link-down events at seeded-random links and
    /// cycles within `window` (half-open). When `repair_after` is set,
    /// each link recovers that many cycles after failing. The output is
    /// a pure function of the arguments, so a sweep point seeding this
    /// from its own RNG stream is bit-identical for any worker count.
    ///
    /// # Panics
    ///
    /// Panics when `link_count` is zero (no links to fail) or the window
    /// is empty.
    pub fn random(
        seed: u64,
        link_count: usize,
        faults: u32,
        window: (u64, u64),
        repair_after: Option<u64>,
    ) -> Self {
        assert!(link_count > 0, "cannot inject faults without links");
        assert!(window.1 > window.0, "fault window must be non-empty");
        let span = window.1 - window.0;
        let mut events = Vec::new();
        for k in 0..faults as u64 {
            let link = LinkId((splitmix64(seed, 2 * k) % link_count as u64) as u32);
            let cycle = window.0 + splitmix64(seed, 2 * k + 1) % span;
            events.push(FaultEvent {
                cycle,
                link,
                up: false,
            });
            if let Some(r) = repair_after {
                events.push(FaultEvent {
                    cycle: cycle + r,
                    link,
                    up: true,
                });
            }
        }
        FaultSchedule::new(events)
    }

    /// The events, sorted by cycle.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the schedule holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }
}

/// SplitMix64 of `seed + index·φ` — the same mixer the sweep engine uses
/// for per-point seed derivation, kept dependency-free.
fn splitmix64(seed: u64, index: u64) -> u64 {
    let mut z = seed.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_sort_by_cycle() {
        let s = FaultSchedule::new(vec![
            FaultEvent {
                cycle: 50,
                link: LinkId(1),
                up: true,
            },
            FaultEvent {
                cycle: 10,
                link: LinkId(1),
                up: false,
            },
        ]);
        assert_eq!(s.len(), 2);
        assert!(!s.events()[0].up);
        assert!(s.events()[1].up);
    }

    #[test]
    fn transient_orders_down_then_up() {
        let s = FaultSchedule::transient(LinkId(3), 100, 200);
        assert_eq!(s.events()[0].cycle, 100);
        assert!(!s.events()[0].up);
        assert_eq!(s.events()[1].cycle, 200);
        assert!(s.events()[1].up);
    }

    #[test]
    #[should_panic(expected = "repair must come after")]
    fn transient_rejects_inverted_window() {
        let _ = FaultSchedule::transient(LinkId(0), 200, 100);
    }

    #[test]
    fn random_is_deterministic_and_in_window() {
        let a = FaultSchedule::random(0xCAFE, 24, 5, (100, 1000), Some(50));
        let b = FaultSchedule::random(0xCAFE, 24, 5, (100, 1000), Some(50));
        assert_eq!(a, b, "same arguments must give the same schedule");
        assert_eq!(a.len(), 10, "each fault pairs with a repair");
        for e in a.events() {
            assert!((e.link.0 as usize) < 24);
            assert!(e.cycle >= 100 && e.cycle < 1050);
        }
        let c = FaultSchedule::random(0xBEEF, 24, 5, (100, 1000), Some(50));
        assert_ne!(a, c, "different seeds must diverge");
    }

    #[test]
    fn default_is_empty() {
        assert!(FaultSchedule::default().is_empty());
        assert!(!FaultSchedule::permanent(LinkId(0), 5).is_empty());
    }
}
