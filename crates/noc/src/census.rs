//! Link-utilisation census.
//!
//! Section 1 of the paper observes that "20% of the links in a mesh
//! network are never used" by D-NUCA cache traffic, and §4 derives the
//! minimal link set (Fig. 4(b)). [`LinkCensus`] reproduces both: given a
//! routing table and the set of (source, destination) flows that occur
//! in a cache system, it marks which links any flow traverses.

use crate::ids::{LinkId, NodeId};
use crate::routing::RoutingTable;
use crate::stats::NetStats;
use crate::topology::Topology;

/// Which links a traffic pattern touches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkCensus {
    used: Vec<bool>,
}

impl LinkCensus {
    /// Census over statically routed flows.
    pub fn from_flows(topo: &Topology, table: &RoutingTable, flows: &[(NodeId, NodeId)]) -> Self {
        let mut used = vec![false; topo.link_count()];
        for &(src, dst) in flows {
            if let Some(path) = table.path(topo, src, dst) {
                for l in path {
                    used[l.0 as usize] = true;
                }
            }
        }
        LinkCensus { used }
    }

    /// Census from dynamic simulation statistics.
    pub fn from_stats(stats: &NetStats) -> Self {
        LinkCensus {
            used: stats.flits_per_link.iter().map(|&f| f > 0).collect(),
        }
    }

    /// Total number of links considered.
    pub fn total(&self) -> usize {
        self.used.len()
    }

    /// Number of links some flow uses.
    pub fn used(&self) -> usize {
        self.used.iter().filter(|&&u| u).count()
    }

    /// Number of links no flow ever uses.
    pub fn unused(&self) -> usize {
        self.total() - self.used()
    }

    /// Fraction of links never used (the paper's headline 20 %).
    pub fn unused_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.unused() as f64 / self.total() as f64
        }
    }

    /// Whether a specific link is used.
    pub fn is_used(&self, link: LinkId) -> bool {
        self.used[link.0 as usize]
    }

    /// Ids of all unused links.
    pub fn unused_links(&self) -> Vec<LinkId> {
        self.used
            .iter()
            .enumerate()
            .filter(|(_, &u)| !u)
            .map(|(i, _)| LinkId(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::RoutingSpec;
    use crate::topology::Topology;

    fn unit(n: u16) -> Vec<u32> {
        vec![1; n as usize]
    }

    /// The cache-system flow set of Fig. 4(a) on a mesh: requests
    /// core→banks, replies banks→core, column neighbours, memory fills
    /// and writebacks.
    fn cache_flows(topo: &Topology, cols: u16, rows: u16) -> Vec<(NodeId, NodeId)> {
        let core = topo.node_at(cols / 2 - 1, 0);
        let memory = topo.node_at(cols / 2, rows - 1);
        let mut flows = Vec::new();
        for c in 0..cols {
            for r in 0..rows {
                let bank = topo.node_at(c, r);
                flows.push((core, bank));
                flows.push((bank, core));
                if r + 1 < rows {
                    flows.push((bank, topo.node_at(c, r + 1)));
                    flows.push((topo.node_at(c, r + 1), bank));
                }
            }
            // Memory fill goes to the MRU bank of the column.
            flows.push((memory, topo.node_at(c, 0)));
            // Writeback from the LRU bank of the column.
            flows.push((topo.node_at(c, rows - 1), memory));
        }
        flows.push((core, memory));
        flows.push((memory, core));
        flows
    }

    #[test]
    fn cache_traffic_leaves_mesh_links_unused() {
        let t = Topology::mesh(16, 16, &unit(15), &unit(15));
        let rt = RoutingSpec::Xy.build(&t).unwrap();
        let flows = cache_flows(&t, 16, 16);
        let census = LinkCensus::from_flows(&t, &rt, &flows);
        let frac = census.unused_fraction();
        // The paper reports ~20% of links never used in the 16x16 mesh.
        assert!(frac > 0.10 && frac < 0.35, "unused fraction {frac}");
    }

    #[test]
    fn simplified_mesh_with_xyx_has_high_utilisation() {
        let t = Topology::simplified_mesh(16, 16, &unit(15), &unit(15));
        let rt = RoutingSpec::Xyx.build(&t).unwrap();
        let flows = cache_flows(&t, 16, 16);
        let census = LinkCensus::from_flows(&t, &rt, &flows);
        assert!(
            census.unused_fraction() < 0.15,
            "simplified mesh should waste few links, got {}",
            census.unused_fraction()
        );
    }

    #[test]
    fn halo_uses_every_link() {
        let t = Topology::halo(8, 4, &[1; 4], 1);
        let rt = RoutingSpec::ShortestPath.build(&t).unwrap();
        let hub = NodeId(0);
        let mut flows = Vec::new();
        for s in 0..8 {
            for p in 0..4 {
                flows.push((hub, t.spike_node(s, p)));
                flows.push((t.spike_node(s, p), hub));
            }
        }
        let census = LinkCensus::from_flows(&t, &rt, &flows);
        assert_eq!(census.unused(), 0);
        assert_eq!(census.used(), t.link_count());
    }

    #[test]
    fn from_stats_matches_flit_counts() {
        let stats = NetStats {
            flits_per_link: vec![0, 7, 0, 2, 1],
            ..Default::default()
        };
        let c = LinkCensus::from_stats(&stats);
        assert_eq!(c.total(), 5);
        assert_eq!(c.used(), 3);
        assert_eq!(c.unused_links(), vec![LinkId(0), LinkId(2)]);
        assert!(c.is_used(LinkId(1)));
        assert!(!c.is_used(LinkId(0)));
    }

    #[test]
    fn empty_census() {
        let c = LinkCensus { used: vec![] };
        assert_eq!(c.unused_fraction(), 0.0);
    }
}
