//! Seeded differential fuzzing against the golden reference model.
//!
//! Each iteration derives a scenario — topology, routing spec, packet
//! plan, transient fault schedule — from a seed, then runs it three
//! ways:
//!
//! 1. the fast wormhole simulator, with the [`crate::check`] invariant
//!    checker enabled when requested,
//! 2. the fast simulator **again**, asserting bit-identical delivery
//!    sequences (cycle, packet, endpoint) — the determinism property,
//! 3. the [`crate::golden`] store-and-forward reference, asserting the
//!    two models deliver the same `(packet, endpoint)` **multiset**.
//!
//! Order across the two models is *not* compared: wormhole virtual
//! channels legitimately interleave packets that a store-and-forward
//! model serializes. Delivery order is instead pinned by the
//! determinism check in (2). All faults generated here are transient
//! and repaired, so both models must deliver everything.
//!
//! The multicast replication strategy (see [`crate::strategy`]) is a
//! fuzzed axis too: unless [`FuzzOptions::strategy`] pins one, each
//! iteration samples hybrid/tree/path from a stream decorrelated from
//! scenario generation — the same seed always yields the same scenario
//! *and* the same strategy, preserving the collapsed-seed reproduction
//! contract below. [`FuzzOptions::cross_strategy`] instead runs every
//! scenario under **all** strategies and asserts they deliver the same
//! `(packet, endpoint)` multiset: replication mechanics may differ,
//! who-gets-what may not.
//!
//! Reproduction: iteration `i` of `(seed, iters)` is exactly iteration
//! `0` of `(seed + i, 1)` — a failure report carries that collapsed
//! seed so one CLI invocation (`nucanet fuzz --iters 1 --seed <s>`)
//! replays the failing scenario.

use crate::error::SimError;
use crate::faults::{FaultEvent, FaultSchedule};
use crate::golden::{GoldenPacket, GoldenSim};
use crate::ids::{Endpoint, LinkId, NodeId};
use crate::network::Network;
use crate::packet::{Dest, Packet, PacketId};
use crate::params::RouterParams;
use crate::routing::RoutingSpec;
use crate::strategy::{MulticastStrategy, ALL_STRATEGIES};
use crate::topology::Topology;

/// Knobs for a fuzzing campaign.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Scenarios to run.
    pub iters: u64,
    /// Base seed; each iteration derives its own stream from it.
    pub seed: u64,
    /// Enable the runtime invariant checker inside the fast simulator.
    pub check: bool,
    /// Per-scenario cycle budget for the fast simulator before the
    /// iteration is declared a failure.
    pub max_cycles: u64,
    /// Compute threads for the fast simulator's cycle kernel (`1` =
    /// serial, `0` = auto). Results are bit-identical for any value, so
    /// fuzzing with `sim_threads > 1` differentially tests the
    /// two-phase kernel against the golden model.
    pub sim_threads: u32,
    /// Warm-reset scenarios to run after the main campaign: each
    /// replays a scenario on a freshly built network, calls
    /// [`Network::reset`], and reruns the *same* network, asserting the
    /// delivered sequence and the network counters are bit-identical to
    /// the fresh run. Exercises the warm-evaluation contract the sweep
    /// engine's arenas rely on. `0` disables the pass.
    pub warm_iters: u64,
    /// Pin every iteration to one multicast strategy, or `None` (the
    /// default) to sample hybrid/tree/path per iteration from a stream
    /// derived from — but decorrelated from — the scenario seed.
    pub strategy: Option<MulticastStrategy>,
    /// Run each scenario under **every** strategy and require all of
    /// them to deliver the same `(packet, endpoint)` multiset (each one
    /// still differentially checked against the golden model). Ignores
    /// [`FuzzOptions::strategy`].
    pub cross_strategy: bool,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            iters: 200,
            seed: 0xA11CE,
            check: true,
            max_cycles: 50_000,
            sim_threads: 1,
            warm_iters: 0,
            strategy: None,
            cross_strategy: false,
        }
    }
}

/// A failing iteration, with everything needed to replay it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzFailure {
    /// Zero-based index of the failing iteration.
    pub iter: u64,
    /// Collapsed seed: `fuzz --iters 1 --seed <this>` replays it.
    pub seed: u64,
    /// What went wrong (invariant violation, delivery mismatch, …).
    pub detail: String,
}

/// Aggregate outcome of a fuzzing campaign.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Iterations completed (including the failing one, if any).
    pub iters_run: u64,
    /// Packets injected across all iterations.
    pub packets: u64,
    /// Deliveries observed by the fast simulator.
    pub deliveries: u64,
    /// Multicast packets among `packets`.
    pub multicasts: u64,
    /// Fault events exercised across all iterations.
    pub fault_events: u64,
    /// Warm-reset replay scenarios completed (see
    /// [`FuzzOptions::warm_iters`]).
    pub warm_iters_run: u64,
    /// Scenario runs per strategy, indexed in [`ALL_STRATEGIES`] order
    /// (hybrid, tree, path). Cross-strategy iterations count all three.
    pub strategy_runs: [u64; 3],
    /// The first failure, if any; the campaign stops there.
    pub failure: Option<FuzzFailure>,
}

/// splitmix64 stream, seeded once, used for all scenario decisions.
#[derive(Debug)]
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`. Modulo bias is irrelevant for fuzzing.
    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next() % n
    }
}

/// One planned packet.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Plan {
    src: Endpoint,
    dests: Vec<Endpoint>,
    flits: u32,
    at: u64,
}

/// One generated scenario.
#[derive(Debug)]
struct Scenario {
    topo: Topology,
    spec: RoutingSpec,
    plans: Vec<Plan>,
    faults: Vec<FaultEvent>,
}

fn gen_scenario(seed: u64) -> Scenario {
    let mut rng = Rng(seed);
    let shape = rng.below(5);
    let (topo, spec) = match shape {
        0 | 1 => {
            let cols = 2 + rng.below(4) as u16;
            let rows = 2 + rng.below(3) as u16;
            let cg: Vec<u32> = (1..cols).map(|_| 1 + rng.below(3) as u32).collect();
            let rg: Vec<u32> = (1..rows).map(|_| 1 + rng.below(3) as u32).collect();
            let spec = if shape == 0 { RoutingSpec::Xy } else { RoutingSpec::Xyx };
            (Topology::mesh(cols, rows, &cg, &rg), spec)
        }
        2 => {
            let cols = 3 + rng.below(3) as u16;
            let rows = 3 + rng.below(2) as u16;
            let cg: Vec<u32> = (1..cols).map(|_| 1 + rng.below(3) as u32).collect();
            let rg: Vec<u32> = (1..rows).map(|_| 1 + rng.below(3) as u32).collect();
            (
                Topology::simplified_mesh(cols, rows, &cg, &rg),
                RoutingSpec::Xyx,
            )
        }
        3 => {
            let spikes = 3 + rng.below(3) as u16;
            let spike_len = 1 + rng.below(3) as u16;
            let delays: Vec<u32> = (0..spike_len).map(|_| 1 + rng.below(3) as u32).collect();
            (
                Topology::halo(spikes, spike_len, &delays, 1),
                RoutingSpec::ShortestPath,
            )
        }
        _ => {
            let hubs = 2 + rng.below(3) as u16;
            let spikes = 1 + rng.below(3) as u16;
            let spike_len = 1 + rng.below(2) as u16;
            let delays: Vec<u32> = (0..spike_len).map(|_| 1 + rng.below(3) as u32).collect();
            let ring_delay = 1 + rng.below(2) as u32;
            (
                Topology::multi_hub_halo(hubs, spikes, spike_len, &delays, ring_delay, 1),
                RoutingSpec::ShortestPath,
            )
        }
    };
    // Not every pair is routable (XYX on a simplified mesh cannot turn
    // X-wards in a middle row), and `Network::inject` asserts pristine
    // routability — so plan only traffic the spec can actually carry.
    let table = spec.build(&topo).expect("fuzz topologies are routable");
    let nodes = topo.routers().len() as u64;
    let n_packets = 5 + rng.below(36);
    let mut plans = Vec::with_capacity(n_packets as usize);
    for _ in 0..n_packets {
        let src = Endpoint::at(NodeId(rng.below(nodes) as u32));
        let want_multicast = rng.below(4) == 0;
        let chain: Option<Vec<Endpoint>> = if want_multicast {
            // Path multicast along a natural chain of the topology.
            let c = match topo.kind() {
                crate::topology::TopologyKind::Mesh { cols, rows }
                | crate::topology::TopologyKind::SimplifiedMesh { cols, rows } => {
                    let col = rng.below(cols as u64) as u16;
                    (0..rows)
                        .map(|r| Endpoint::at(topo.node_at(col, r)))
                        .collect()
                }
                crate::topology::TopologyKind::Halo { spikes, spike_len } => {
                    let s = rng.below(spikes as u64) as u16;
                    (0..spike_len)
                        .map(|p| Endpoint::at(topo.spike_node(s, p)))
                        .collect::<Vec<_>>()
                }
                crate::topology::TopologyKind::MultiHubHalo {
                    hubs,
                    spikes,
                    spike_len,
                } => {
                    let h = rng.below(hubs as u64) as u16;
                    let s = rng.below(spikes as u64) as u16;
                    (0..spike_len)
                        .map(|p| Endpoint::at(topo.hub_spike_node(h, s, p)))
                        .collect::<Vec<_>>()
                }
            };
            // Keep the chain only when every segment is routable and no
            // two consecutive stops share a router (inject asserts both).
            let mut prev = src.node;
            let ok = c.iter().enumerate().all(|(i, e)| {
                let fine = (i == 0 || e.node != prev) && table.is_routable(prev, e.node);
                prev = e.node;
                fine
            });
            if ok {
                Some(c)
            } else {
                None
            }
        } else {
            None
        };
        let dests = if let Some(c) = chain {
            c
        } else {
            let mut d = rng.below(nodes) as u32;
            let mut tries = 0;
            while NodeId(d) == src.node || !table.is_routable(src.node, NodeId(d)) {
                tries += 1;
                if tries > 64 {
                    d = (0..nodes as u32)
                        .find(|&x| NodeId(x) != src.node && table.is_routable(src.node, NodeId(x)))
                        .expect("every fuzz router reaches at least one peer");
                    break;
                }
                d = rng.below(nodes) as u32;
            }
            vec![Endpoint::at(NodeId(d))]
        };
        plans.push(Plan {
            src,
            dests,
            flits: 1 + rng.below(8) as u32,
            at: rng.below(200),
        });
    }
    let n_faults = rng.below(3);
    let mut faults = Vec::new();
    for _ in 0..n_faults {
        let link = LinkId(rng.below(topo.link_count() as u64) as u32);
        let down = 1 + rng.below(40);
        let up = down + 1 + rng.below(40);
        faults.push(FaultEvent {
            cycle: down,
            link,
            up: false,
        });
        faults.push(FaultEvent {
            cycle: up,
            link,
            up: true,
        });
    }
    Scenario {
        topo,
        spec,
        plans,
        faults,
    }
}

/// What one fast-simulator run produced, in delivery order.
type FastDeliveries = Vec<(u64, PacketId, Endpoint)>;

/// Stream salt for the per-iteration strategy draw: XORed into the
/// scenario seed so sampling the strategy axis never perturbs what
/// [`gen_scenario`] generates for that seed.
const STRATEGY_STREAM: u64 = 0x5354_5241_5447_5953;

/// The strategy a sampled iteration runs under — a pure function of the
/// collapsed seed, so `fuzz --iters 1 --seed <s>` replays both the
/// scenario and its strategy.
fn sample_strategy(seed: u64) -> MulticastStrategy {
    let mut rng = Rng(seed ^ STRATEGY_STREAM);
    ALL_STRATEGIES[rng.below(ALL_STRATEGIES.len() as u64) as usize]
}

fn strategy_slot(strategy: MulticastStrategy) -> usize {
    ALL_STRATEGIES
        .iter()
        .position(|&s| s == strategy)
        .expect("ALL_STRATEGIES is exhaustive")
}

fn fast_run(
    sc: &Scenario,
    strategy: MulticastStrategy,
    check: bool,
    max_cycles: u64,
    sim_threads: u32,
) -> Result<(Vec<PacketId>, FastDeliveries), String> {
    let table = sc
        .spec
        .build(&sc.topo)
        .map_err(|e| format!("routing build failed: {e:?}"))?;
    let params = RouterParams {
        sim_threads,
        strategy,
        ..RouterParams::hpca07()
    };
    let mut net: Network<u64> = Network::new(sc.topo.clone(), table, params);
    arm(&mut net, sc, check);
    drive(&mut net, sc, max_cycles)
}

/// Configures a pristine (fresh or reset) network for a scenario run.
fn arm(net: &mut Network<u64>, sc: &Scenario, check: bool) {
    if check {
        net.enable_invariant_checker();
    }
    net.set_fault_schedule(FaultSchedule::new(sc.faults.clone()));
}

/// Injects a scenario's packet plan and steps the network until it
/// drains, collecting the delivered sequence.
fn drive(
    net: &mut Network<u64>,
    sc: &Scenario,
    max_cycles: u64,
) -> Result<(Vec<PacketId>, FastDeliveries), String> {
    let mut order: Vec<usize> = (0..sc.plans.len()).collect();
    order.sort_by_key(|&i| sc.plans[i].at);
    let mut ids = vec![PacketId(0); sc.plans.len()];
    let mut next = 0usize;
    let mut out: FastDeliveries = Vec::new();
    let mut inbox = Vec::new();
    loop {
        while next < order.len() && sc.plans[order[next]].at <= net.cycle() {
            let p = &sc.plans[order[next]];
            let dest = if p.dests.len() == 1 {
                Dest::unicast(p.dests[0])
            } else {
                Dest::multicast(p.dests.clone())
            };
            ids[order[next]] = net.inject(Packet::new(p.src, dest, p.flits, order[next] as u64));
            next += 1;
        }
        if next == order.len() && !net.is_busy() && net.next_event_cycle().is_none() {
            break;
        }
        if net.cycle() > max_cycles {
            return Err(format!(
                "fast simulator did not drain within {max_cycles} cycles"
            ));
        }
        net.step().map_err(|e| format!("fast simulator error: {e}"))?;
        net.drain_all_delivered_into(&mut inbox);
        for d in inbox.drain(..) {
            out.push((d.cycle, d.packet.id, d.endpoint));
        }
    }
    Ok((ids, out))
}

fn golden_run(
    sc: &Scenario,
    strategy: MulticastStrategy,
    ids: &[PacketId],
    max_cycles: u64,
) -> Result<Vec<(u64, Endpoint)>, String> {
    let table = sc
        .spec
        .build(&sc.topo)
        .map_err(|e| format!("routing build failed: {e:?}"))?;
    let mut sim = GoldenSim::new(sc.topo.clone(), table);
    sim.set_strategy(strategy);
    sim.set_fault_schedule(FaultSchedule::new(sc.faults.clone()));
    let packets: Vec<GoldenPacket> = sc
        .plans
        .iter()
        .zip(ids)
        .map(|(p, &id)| GoldenPacket {
            id,
            src: p.src,
            dests: p.dests.clone(),
            flits: p.flits,
            inject_at: p.at,
        })
        .collect();
    // Store-and-forward is slower per hop; give it a wider budget.
    let got = sim
        .run(&packets, max_cycles.saturating_mul(4))
        .map_err(|e| format!("golden simulator error: {e}"))?;
    Ok(got.iter().map(|d| (d.id.0, d.endpoint)).collect())
}

/// Runs one scenario end to end; `Ok` carries `(packets, deliveries,
/// multicasts, fault events)` counters for the campaign report.
fn run_one(
    seed: u64,
    strategy: MulticastStrategy,
    check: bool,
    max_cycles: u64,
    sim_threads: u32,
) -> Result<(u64, u64, u64, u64), String> {
    let sc = gen_scenario(seed);
    let (_, fast_set) = differential_one(&sc, strategy, check, max_cycles, sim_threads)?;
    let multicasts = sc.plans.iter().filter(|p| p.dests.len() > 1).count() as u64;
    Ok((
        sc.plans.len() as u64,
        fast_set.len() as u64,
        multicasts,
        sc.faults.len() as u64,
    ))
}

/// What one differential run yields: the injected packet ids and the
/// sorted delivered `(payload, endpoint)` multiset.
type DeliveredRun = (Vec<PacketId>, Vec<(u64, Endpoint)>);

/// Runs one scenario under one strategy — determinism check plus the
/// golden-model multiset comparison — and returns the packet ids and
/// the sorted delivered `(packet, endpoint)` multiset.
fn differential_one(
    sc: &Scenario,
    strategy: MulticastStrategy,
    check: bool,
    max_cycles: u64,
    sim_threads: u32,
) -> Result<DeliveredRun, String> {
    let (ids, first) = fast_run(sc, strategy, check, max_cycles, sim_threads)?;
    let (ids2, second) = fast_run(sc, strategy, check, max_cycles, sim_threads)?;
    if ids != ids2 || first != second {
        return Err(format!(
            "fast simulator is nondeterministic under {strategy}: \
             run 1 delivered {} entries, run 2 {}",
            first.len(),
            second.len()
        ));
    }
    let mut fast_set: Vec<(u64, Endpoint)> = first.iter().map(|&(_, id, e)| (id.0, e)).collect();
    fast_set.sort_unstable();
    let mut golden_set = golden_run(sc, strategy, &ids, max_cycles)?;
    golden_set.sort_unstable();
    if fast_set != golden_set {
        let only_fast: Vec<_> = fast_set
            .iter()
            .filter(|x| !golden_set.contains(x))
            .collect();
        let only_golden: Vec<_> = golden_set
            .iter()
            .filter(|x| !fast_set.contains(x))
            .collect();
        return Err(format!(
            "delivery multisets diverge under {strategy}: fast={} golden={} entries; \
             only-fast={only_fast:?} only-golden={only_golden:?}",
            fast_set.len(),
            golden_set.len()
        ));
    }
    Ok((ids, fast_set))
}

/// Runs one scenario under **every** strategy and requires identical
/// delivered multisets; each strategy is also differentially checked
/// against the golden model on the way.
fn cross_run_one(
    seed: u64,
    check: bool,
    max_cycles: u64,
    sim_threads: u32,
) -> Result<(u64, u64, u64, u64), String> {
    let sc = gen_scenario(seed);
    let mut baseline: Option<(MulticastStrategy, Vec<(u64, Endpoint)>)> = None;
    for strategy in ALL_STRATEGIES {
        let (_, set) = differential_one(&sc, strategy, check, max_cycles, sim_threads)?;
        match &baseline {
            None => baseline = Some((strategy, set)),
            Some((base, want)) => {
                if set != *want {
                    return Err(format!(
                        "strategies disagree on the delivered multiset: \
                         {base}={} entries, {strategy}={} entries",
                        want.len(),
                        set.len()
                    ));
                }
            }
        }
    }
    let deliveries = baseline.expect("ALL_STRATEGIES is non-empty").1.len() as u64;
    let multicasts = sc.plans.iter().filter(|p| p.dests.len() > 1).count() as u64;
    Ok((
        sc.plans.len() as u64,
        deliveries,
        multicasts,
        sc.faults.len() as u64,
    ))
}

/// Runs one warm-reset replay: build a network, run the scenario, call
/// [`Network::reset`], rerun the *same* network object, and require the
/// warm pass to be indistinguishable from the fresh one — packet ids,
/// the full `(cycle, packet, endpoint)` delivery sequence, and the
/// network counters must all match bit for bit.
fn warm_run_one(
    seed: u64,
    strategy: MulticastStrategy,
    check: bool,
    max_cycles: u64,
    sim_threads: u32,
) -> Result<(), String> {
    let sc = gen_scenario(seed);
    let table = sc
        .spec
        .build(&sc.topo)
        .map_err(|e| format!("routing build failed: {e:?}"))?;
    let params = RouterParams {
        sim_threads,
        strategy,
        ..RouterParams::hpca07()
    };
    let mut net: Network<u64> = Network::new(sc.topo.clone(), table, params);
    arm(&mut net, &sc, check);
    let (fresh_ids, fresh) = drive(&mut net, &sc, max_cycles)?;
    let fresh_stats = net.stats().clone();
    net.reset();
    arm(&mut net, &sc, check);
    let (warm_ids, warm) = drive(&mut net, &sc, max_cycles)?;
    if fresh_ids != warm_ids {
        return Err("warm replay assigned different packet ids".into());
    }
    if fresh != warm {
        let divergence = fresh
            .iter()
            .zip(&warm)
            .position(|(a, b)| a != b)
            .unwrap_or(fresh.len().min(warm.len()));
        return Err(format!(
            "warm replay diverges from the fresh run: fresh={} warm={} deliveries, \
             first divergence at entry {divergence}",
            fresh.len(),
            warm.len()
        ));
    }
    if fresh_stats != *net.stats() {
        return Err(format!(
            "warm replay counters diverge: fresh={fresh_stats:?} warm={:?}",
            net.stats()
        ));
    }
    Ok(())
}

/// Runs a fuzzing campaign and stops at the first failure.
pub fn run_fuzz(opts: &FuzzOptions) -> FuzzReport {
    let mut report = FuzzReport::default();
    for iter in 0..opts.iters {
        let seed = opts.seed.wrapping_add(iter);
        report.iters_run += 1;
        let outcome = if opts.cross_strategy {
            for s in ALL_STRATEGIES {
                report.strategy_runs[strategy_slot(s)] += 1;
            }
            cross_run_one(seed, opts.check, opts.max_cycles, opts.sim_threads)
        } else {
            let strategy = opts.strategy.unwrap_or_else(|| sample_strategy(seed));
            report.strategy_runs[strategy_slot(strategy)] += 1;
            run_one(seed, strategy, opts.check, opts.max_cycles, opts.sim_threads)
        };
        match outcome {
            Ok((packets, deliveries, multicasts, faults)) => {
                report.packets += packets;
                report.deliveries += deliveries;
                report.multicasts += multicasts;
                report.fault_events += faults;
            }
            Err(detail) => {
                report.failure = Some(FuzzFailure { iter, seed, detail });
                return report;
            }
        }
    }
    // Warm-reset differential pass: replay the same seed stream through
    // a reset-and-rerun cycle (see [`FuzzOptions::warm_iters`]). The
    // per-seed strategy rule matches the main campaign's so collapsed
    // seeds replay warm failures too.
    for iter in 0..opts.warm_iters {
        let seed = opts.seed.wrapping_add(iter);
        let strategy = opts.strategy.unwrap_or_else(|| sample_strategy(seed));
        report.warm_iters_run += 1;
        if let Err(detail) =
            warm_run_one(seed, strategy, opts.check, opts.max_cycles, opts.sim_threads)
        {
            report.failure = Some(FuzzFailure { iter, seed, detail });
            return report;
        }
    }
    report
}

/// Convenience: formats one `SimError` chain for failure reports.
pub fn describe_error(e: &SimError) -> String {
    e.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_generation_is_deterministic() {
        let a = gen_scenario(42);
        let b = gen_scenario(42);
        assert_eq!(a.plans, b.plans);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.spec, b.spec);
    }

    #[test]
    fn seeds_vary_the_scenario() {
        let a = gen_scenario(1);
        let b = gen_scenario(2);
        assert!(a.plans != b.plans || a.faults != b.faults || a.spec != b.spec);
    }

    #[test]
    fn short_campaign_is_clean_with_checker_on() {
        // `strategy: None` samples the strategy axis per iteration, so
        // this campaign sweeps hybrid/tree/path under the checker.
        let report = run_fuzz(&FuzzOptions {
            iters: 30,
            seed: 7,
            check: true,
            max_cycles: 50_000,
            sim_threads: 1,
            warm_iters: 0,
            strategy: None,
            cross_strategy: false,
        });
        assert!(
            report.failure.is_none(),
            "fuzz failure: {:?}",
            report.failure
        );
        assert_eq!(report.iters_run, 30);
        assert!(report.packets > 0);
        assert!(report.deliveries >= report.packets);
        assert!(report.multicasts > 0, "generator never produced a multicast");
        assert!(report.fault_events > 0, "generator never produced a fault");
        assert!(
            report.strategy_runs.iter().all(|&n| n > 0),
            "30 sampled iterations never hit some strategy: {:?}",
            report.strategy_runs
        );
    }

    #[test]
    fn short_campaign_is_clean_with_four_sim_threads() {
        // Same seeds as the serial campaign above: the two-phase kernel
        // must clear the checker and match the golden model too — under
        // the same sampled strategies (the draw depends only on seed).
        let report = run_fuzz(&FuzzOptions {
            iters: 15,
            seed: 7,
            check: true,
            max_cycles: 50_000,
            sim_threads: 4,
            warm_iters: 0,
            strategy: None,
            cross_strategy: false,
        });
        assert!(
            report.failure.is_none(),
            "fuzz failure with 4 sim threads: {:?}",
            report.failure
        );
    }

    #[test]
    fn warm_replays_match_fresh_runs() {
        // Reset-and-replay over a varied seed stream: mesh/halo shapes,
        // multicasts, transient faults, and all three strategies pass
        // through reset().
        let report = run_fuzz(&FuzzOptions {
            iters: 0,
            seed: 7,
            check: true,
            max_cycles: 50_000,
            sim_threads: 1,
            warm_iters: 25,
            strategy: None,
            cross_strategy: false,
        });
        assert!(
            report.failure.is_none(),
            "warm fuzz failure: {:?}",
            report.failure
        );
        assert_eq!(report.warm_iters_run, 25);
    }

    #[test]
    fn cross_strategy_runs_agree_on_deliveries() {
        let report = run_fuzz(&FuzzOptions {
            iters: 10,
            seed: 99,
            check: true,
            max_cycles: 50_000,
            sim_threads: 1,
            warm_iters: 0,
            strategy: None,
            cross_strategy: true,
        });
        assert!(
            report.failure.is_none(),
            "cross-strategy failure: {:?}",
            report.failure
        );
        assert_eq!(
            report.strategy_runs,
            [10, 10, 10],
            "cross mode runs every scenario under every strategy"
        );
        assert!(report.multicasts > 0, "campaign never exercised a multicast");
    }

    #[test]
    fn pinned_strategy_campaigns_are_clean() {
        for strategy in ALL_STRATEGIES {
            let report = run_fuzz(&FuzzOptions {
                iters: 8,
                seed: 21,
                check: true,
                max_cycles: 50_000,
                sim_threads: 1,
                warm_iters: 0,
                strategy: Some(strategy),
                cross_strategy: false,
            });
            assert!(
                report.failure.is_none(),
                "fuzz failure pinned to {strategy}: {:?}",
                report.failure
            );
            assert_eq!(report.strategy_runs[strategy_slot(strategy)], 8);
        }
    }

    #[test]
    fn strategy_sampling_is_decorrelated_from_scenarios() {
        // The draw is a pure function of the seed, and nearby seeds
        // must not all land on the same strategy.
        let draws: Vec<MulticastStrategy> = (0..12).map(sample_strategy).collect();
        assert_eq!(draws, (0..12).map(sample_strategy).collect::<Vec<_>>());
        assert!(
            ALL_STRATEGIES
                .iter()
                .all(|s| draws.contains(s)),
            "12 consecutive seeds never drew some strategy: {draws:?}"
        );
        // And sampling does not change the scenario itself.
        let a = gen_scenario(5);
        let b = gen_scenario(5);
        assert_eq!(a.plans, b.plans);
    }

    #[test]
    fn collapsed_seed_replays_the_same_iteration() {
        // Iteration i of (seed, iters) must equal iteration 0 of
        // (seed + i, 1) — the reproduction contract in the module docs.
        let base = 1000u64;
        let i = 5u64;
        let a = gen_scenario(base.wrapping_add(i));
        let direct = run_fuzz(&FuzzOptions {
            iters: 1,
            seed: base + i,
            check: false,
            max_cycles: 50_000,
            sim_threads: 1,
            warm_iters: 0,
            strategy: None,
            cross_strategy: false,
        });
        assert!(direct.failure.is_none());
        assert_eq!(direct.packets, a.plans.len() as u64);
    }
}

