#![warn(missing_docs)]
//! Flit-level on-chip network simulator for large-scale cache systems.
//!
//! This crate is the interconnect substrate of the HPCA'07 paper
//! *"A Domain-Specific On-Chip Network Design for Large Scale Cache
//! Systems"*. It provides:
//!
//! * [`topology`] — port-graph topologies: full 2D meshes, the paper's
//!   *simplified mesh* (horizontal links only in the first and last rows),
//!   and the *halo* (a hub with linear spikes of banks).
//! * [`routing`] — deterministic table-based routing built from XY
//!   dimension-order, the paper's deadlock-free **XYX** algorithm
//!   (Fig. 5), and BFS shortest-path for arbitrary graphs.
//! * [`deadlock`] — channel-dependency-graph construction, acyclicity
//!   checking, and channel enumeration (the total order that proves
//!   XYX deadlock freedom).
//! * [`router`]/[`network`] — a cycle-driven wormhole network of
//!   **single-cycle multicasting routers**: 4 VCs × 4-flit buffers per
//!   physical channel, credit flow control, round-robin two-phase switch
//!   allocation, and the paper's *hybrid* multicast replication that
//!   copies a replica flit into a free VC of a different input port
//!   (no dedicated multicast storage; blocks when no VC is free).
//! * [`census`] — link-utilisation census reproducing the paper's
//!   observation that a large fraction of mesh links is never used by
//!   cache traffic.
//! * [`faults`]/[`error`] — deterministic link fault injection
//!   ([`FaultSchedule`]) with routing-table recomputation around failed
//!   links, and the structured [`SimError`] that `Network::step` returns
//!   instead of aborting on deadlock.
//! * [`check`] — an opt-in runtime invariant checker (flit conservation,
//!   credit accounting, in-order wormhole delivery, exactly-once
//!   multicast, increasing channel enumeration) with zero cost while
//!   disabled.
//! * [`golden`]/[`fuzz`] — a deliberately simple store-and-forward
//!   reference simulator and the seeded differential harness that
//!   checks the fast simulator against it.
//!
//! # Quickstart
//!
//! ```
//! use nucanet_noc::{Topology, RoutingSpec, Network, RouterParams, Packet, Dest, Endpoint, NodeId};
//!
//! // A 4x4 mesh with unit link delays; every router has one local slot.
//! let topo = Topology::mesh(4, 4, &[1, 1, 1], &[1, 1, 1]);
//! let routing = RoutingSpec::Xy.build(&topo).unwrap();
//! let mut net = Network::new(topo, routing, RouterParams::default());
//!
//! let src = Endpoint { node: NodeId(0), slot: 0 };
//! let dst = Endpoint { node: NodeId(15), slot: 0 };
//! net.inject(Packet::new(src, Dest::unicast(dst), 5, ()));
//! while net.is_busy() || net.next_event_cycle().is_some() {
//!     net.advance().expect("no deadlock in this tiny run");
//! }
//! let got = net.drain_delivered(NodeId(15));
//! assert_eq!(got.len(), 1);
//! ```

pub mod census;
pub mod check;
mod commit;
pub mod deadlock;
pub mod error;
pub mod event_wheel;
pub mod evlog;
pub mod faults;
pub mod fuzz;
pub mod golden;
pub mod ids;
pub mod network;
pub mod packet;
mod par;
pub mod params;
pub mod router;
pub mod routing;
pub mod stats;
pub mod strategy;
pub mod topology;

pub use census::LinkCensus;
pub use check::{InvariantChecker, InvariantKind, InvariantViolation};
pub use deadlock::{ChannelDependencyGraph, DeadlockReport};
pub use error::SimError;
pub use fuzz::{run_fuzz, FuzzFailure, FuzzOptions, FuzzReport};
pub use golden::{GoldenDelivery, GoldenPacket, GoldenSim};
pub use event_wheel::EventWheel;
pub use evlog::{EventLog, NetEvent};
pub use faults::{FaultEvent, FaultSchedule};
pub use ids::{Coord, Endpoint, LinkId, NodeId, PortId};
pub use network::{Delivered, Network, PhaseStats};
pub use packet::{Dest, Packet, PacketId};
pub use params::RouterParams;
pub use routing::{BuildRoutingError, RoutingBuilder, RoutingSpec, RoutingTable};
pub use stats::NetStats;
pub use strategy::{MulticastStrategy, StrategyModel, ALL_STRATEGIES};
pub use topology::{PortLabel, Topology, TopologyKind};
