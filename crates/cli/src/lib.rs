//! Command-line front end for the `nucanet` simulator.
//!
//! The binary is a thin shell over this library so every command is unit
//! testable:
//!
//! ```text
//! nucanet run      --design F --scheme mc-fastlru --bench gcc [--accesses N] [--cores K]
//! nucanet compare  --bench twolf [--design A]         # all schemes side by side
//! nucanet designs  --bench mcf [--scheme mc-fastlru]  # all designs side by side
//! nucanet area                                        # Table 4 for all designs
//! nucanet energy   --design F --bench vpr             # §7 energy report
//! nucanet census                                      # link-utilisation analysis
//! nucanet trace    --bench art --accesses 10000       # dump a trace to stdout
//! ```
//!
//! Argument parsing is hand-rolled (`--key value` pairs) to keep the
//! dependency set identical to the library's.

pub mod args;
pub mod commands;
pub mod render;

pub use args::{Args, ParseError};
pub use commands::run_command;
