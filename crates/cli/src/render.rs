//! Plain-text and CSV rendering of results.

use nucanet::Metrics;

/// A simple table accumulated row by row, rendered as aligned text or
/// CSV.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column names.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header width.
    pub fn push<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width must match the header"
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders aligned, human-readable text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders RFC-4180-ish CSV (quotes cells containing commas).
    pub fn to_csv(&self) -> String {
        let esc = |c: &String| -> String {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.header.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// One-line summary of a run's metrics.
pub fn metrics_line(m: &Metrics) -> String {
    let (bank, net, mem) = m.latency_breakdown();
    format!(
        "{} accesses | hit rate {:.3} | avg {:.1} cy (hit {:.1} / miss {:.1}) | \
         split bank {:.0}% net {:.0}% mem {:.0}% | {} cycles",
        m.accesses(),
        m.hit_rate(),
        m.avg_latency(),
        m.avg_hit_latency(),
        m.avg_miss_latency(),
        100.0 * bank,
        100.0 * net,
        100.0 * mem,
        m.cycles
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_is_aligned() {
        let mut t = Table::new(vec!["name", "value"]);
        t.push(vec!["a", "1"]);
        t.push(vec!["longer", "22"]);
        let text = t.to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].len(), lines[2].len());
        assert!(lines[3].ends_with("22"));
    }

    #[test]
    fn csv_quotes_commas() {
        let mut t = Table::new(vec!["k"]);
        t.push(vec!["a,b"]);
        t.push(vec!["say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push(vec!["only-one"]);
    }

    #[test]
    fn empty_table() {
        let t = Table::new(vec!["x"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.to_csv(), "x\n");
    }
}
