//! `nucanet` binary: parse the command line, run it, print the result.

use nucanet_cli::commands::help_text;
use nucanet_cli::{run_command, Args};

fn main() {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", help_text());
            std::process::exit(2);
        }
    };
    match run_command(&args) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}\n\n{}", help_text());
            std::process::exit(2);
        }
    }
}
